// Virtual-slot fast-forward: the VirtualClock lattice contract, occupancy
// wake/re-idle behaviour of a parked master, and the central equivalence
// property -- a fixed seed produces byte-identical discovery histories and
// presence-delta streams whether masters drum every slot (--exact-slots) or
// fast-forward closed-form across idle spans (the default). DESIGN.md
// section 5c derives why; these tests enforce it.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/piconet.hpp"
#include "src/baseband/radio.hpp"
#include "src/core/simulation.hpp"
#include "src/fault/plan.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/virtual_clock.hpp"

namespace bips {
namespace {

using baseband::BackoffConfig;
using baseband::BdAddr;
using baseband::ChannelConfig;
using baseband::Device;
using baseband::InquiryConfig;
using baseband::InquiryResponse;
using baseband::InquiryScanner;
using baseband::Inquirer;
using baseband::RadioChannel;
using baseband::ScanChannelMode;
using baseband::ScanConfig;

// ---- VirtualClock lattice contract --------------------------------------

TEST(VirtualClock, WakeResumesOnTheCadenceLattice) {
  sim::Simulator sim;
  sim::VirtualClock vc(sim, 2 * kSlot);  // 1250 us cadence
  const SimTime t0 = SimTime(Duration::micros(10'000).ns());
  vc.park(t0);
  EXPECT_TRUE(vc.parked());

  // Wake 3.2 cadences after the park: slots at t0, +1250, +2500, +3750 are
  // all elided (the one at +3750 lies before the off-grid wake point), and
  // the drumming resumes at the next on-grid instant, +5000.
  const auto wk = vc.wake(t0 + Duration::micros(4'000));
  EXPECT_EQ(wk.skipped, 4u);
  EXPECT_EQ(wk.resume, t0 + Duration::micros(5'000));
  EXPECT_FALSE(vc.parked());
  EXPECT_EQ(vc.skipped_total(), 4u);
  EXPECT_EQ(sim.obs().metrics.counter_value("kernel.skipped_slots"), 4u);
}

TEST(VirtualClock, OnGridWakeDoesNotSkipTheResumeSlot) {
  sim::Simulator sim;
  sim::VirtualClock vc(sim, 2 * kSlot);
  const SimTime t0 = SimTime(Duration::micros(20'000).ns());
  vc.park(t0);
  // An exactly on-grid wake re-runs that slot instead of skipping it: only
  // the two strictly-earlier activations are elided.
  const auto wk = vc.wake(t0 + Duration::micros(2'500));
  EXPECT_EQ(wk.skipped, 2u);
  EXPECT_EQ(wk.resume, t0 + Duration::micros(2'500));
}

TEST(VirtualClock, RetireCountsElisionsWithoutAResumeSlot) {
  sim::Simulator sim;
  sim::VirtualClock vc(sim, 2 * kSlot);
  const SimTime t0 = SimTime(0);
  vc.park(t0);
  EXPECT_EQ(vc.elided_before(t0 + Duration::micros(3'000)), 3u);
  EXPECT_EQ(vc.retire(t0 + Duration::micros(3'000)), 3u);
  EXPECT_FALSE(vc.parked());
}

// ---- occupancy wake / re-idle at the slot boundary ----------------------

struct TrialResult {
  std::optional<SimTime> discovered;
  std::uint64_t ids_sent = 0;
  std::uint64_t ids_heard = 0;
  std::uint64_t fhs_received = 0;
  std::uint64_t skipped = 0;
  std::uint64_t wakeups = 0;
  std::int64_t tx_ns = 0;      // master's energy ledger (TX airtime)
  std::int64_t listen_ns = 0;  // master's energy ledger (receiver-on time)
};

// One master inquiring forever; one scanner that starts far out of range,
// enters coverage at t=2.5 s and leaves again at t=7 s. In fast-forward
// mode the master must park while alone, wake on the exact slot lattice
// when the scanner's next window registers in range, re-park in every scan
// gap, and park for good once the scanner is gone. Position changes land in
// the scanner's window *gaps*: listen positions are snapshotted at
// registration, and the ff-radius contract covers walking drift within a
// window, not teleports (a real walker crosses the coverage edge at m/s).
TrialResult range_transition_trial(std::uint64_t seed, bool exact,
                                   bool spatial_grid) {
  ChannelConfig ch;
  ch.exact_slots = exact;
  ch.spatial_grid = spatial_grid;
  ch.grid_threshold = spatial_grid ? 1 : 48;  // force the grid path when on
  sim::Simulator sim;
  Rng rng(seed);
  RadioChannel radio(sim, rng, ch);
  Device master(sim, radio, BdAddr(0xA1), rng.fork());
  Device slave(sim, radio, BdAddr(0xB1), rng.fork());
  slave.set_position({100, 0});  // far outside the 10 m range

  TrialResult r;
  Inquirer inq(master, InquiryConfig{}, [&](const InquiryResponse& resp) {
    if (!r.discovered) r.discovered = resp.received_at;
  });
  // Dense periodic scan: windows [k*640, k*640+320) ms re-register every
  // cycle, so position changes (placed in the gaps at 2.5 s and 7 s) take
  // effect at the next window in both modes alike, and the 4.5 s in-range
  // stretch holds enough windows to discover reliably.
  ScanConfig scfg;
  scfg.window = Duration::millis(320);
  scfg.interval = Duration::millis(640);
  InquiryScanner scan(slave, scfg, BackoffConfig{});
  scan.set_initial_channel(
      static_cast<std::uint32_t>(rng.uniform(baseband::kTrainSize)));
  scan.start_with_phase(Duration(0));  // pin windows to the k*640 ms grid
  inq.start();

  sim.run_until(SimTime(Duration::millis(2'500).ns()));
  slave.set_position({5, 0});  // walk in (scan gap: 2500 mod 640 >= 320)
  sim.run_until(SimTime(Duration::millis(7'000).ns()));
  slave.set_position({100, 0});  // walk out (gap again: 7000 mod 640 >= 320)
  // End at an instant off the 312.5 us slot lattice: run_until executes
  // same-instant events, while a mid-park stats read uses the in-event FIFO
  // convention (a half-slot ID due exactly "now" has not fired) -- probing
  // off-lattice keeps the two bookkeeping views comparable.
  sim.run_until(SimTime(Duration::micros(10'000'100).ns()));

  r.ids_sent = inq.stats().ids_sent;
  r.fhs_received = inq.stats().fhs_received;
  r.ids_heard = scan.stats().ids_heard;
  // The stats() read above also settled the lazy energy credit of any
  // in-progress park (probe is off-lattice, so both modes agree on which
  // TX/listen intervals have completed by now).
  r.tx_ns = master.energy().tx_time.ns();
  r.listen_ns = master.energy().listen_time.ns();
  // stop() retires the final park, settling its elisions into the counter
  // (while parked, only the lazy stats() view is current).
  inq.stop();
  scan.stop();
  r.skipped = sim.obs().metrics.counter_value("kernel.skipped_slots");
  r.wakeups = sim.obs().metrics.counter_value("radio.occ_wakeups");
  return r;
}

TEST(FastForward, RangeTransitionsWakeAndReidleOnTheExactSlotBoundary) {
  for (const bool spatial_grid : {false, true}) {
    for (std::uint64_t seed = 31; seed < 36; ++seed) {
      const TrialResult ex =
          range_transition_trial(seed, /*exact=*/true, spatial_grid);
      const TrialResult ff =
          range_transition_trial(seed, /*exact=*/false, spatial_grid);
      const std::string label =
          (spatial_grid ? "grid" : "flat") + std::string(", seed ") +
          std::to_string(seed);

      // The exact drumming discovers the scanner; fast-forward must land on
      // the identical instant -- a wake that misses the 1250 us lattice by
      // even one half-slot desynchronises the train sweep and shows up here.
      ASSERT_TRUE(ex.discovered.has_value()) << label;
      ASSERT_TRUE(ff.discovered.has_value()) << label;
      EXPECT_EQ(ex.discovered->ns(), ff.discovered->ns()) << label;

      // Every observable statistic matches: the elided slots are credited
      // as if they had run.
      EXPECT_EQ(ex.ids_sent, ff.ids_sent) << label;
      EXPECT_EQ(ex.ids_heard, ff.ids_heard) << label;
      EXPECT_EQ(ex.fhs_received, ff.fhs_received) << label;

      // The energy ledger is mode-invariant too: a mid-park read credits
      // the elided TX/listen time lazily, pinned to the same completed
      // intervals the exact path accounted.
      EXPECT_GT(ex.tx_ns, 0) << label;
      EXPECT_EQ(ex.tx_ns, ff.tx_ns) << label;
      EXPECT_GT(ex.listen_ns, 0) << label;
      EXPECT_EQ(ex.listen_ns, ff.listen_ns) << label;

      // Mode bookkeeping: exact mode never parks. Fast-forward parked
      // before the scanner arrived, in every scan gap while it was near
      // (hence >= 2 occupancy wakeups: each wake implies the master had
      // re-idled first), and for the whole post-departure stretch -- the
      // final 3 s alone elide > 2000 slot activations.
      EXPECT_EQ(ex.skipped, 0u) << label;
      EXPECT_EQ(ex.wakeups, 0u) << label;
      EXPECT_GE(ff.wakeups, 2u) << label;
      EXPECT_GT(ff.skipped, 2000u) << label;
    }
  }
}

TEST(FastForward, ParkedInquirerCreditsStatsLazily) {
  // A master with no scanner anywhere parks immediately; a mid-park stats()
  // read must still see the IDs the exact path would have sent by now
  // (1600/s), without ending the park.
  sim::Simulator sim;
  Rng rng(7);
  RadioChannel radio(sim, rng, ChannelConfig{});  // default: fast-forward
  Device master(sim, radio, BdAddr(0xA1), rng.fork());
  Inquirer inq(master, InquiryConfig{}, nullptr);
  inq.start();
  sim.run_until(SimTime(Duration::seconds(2).ns()));
  EXPECT_NEAR(static_cast<double>(inq.stats().ids_sent), 3200.0, 10.0);
  // Repeated reads only add the delta since the last one.
  const auto first = inq.stats().ids_sent;
  sim.run_until(SimTime(Duration::seconds(4).ns()));
  EXPECT_NEAR(static_cast<double>(inq.stats().ids_sent - first), 3200.0,
              10.0);
  // Ending the park settles the whole ledger: stats are unchanged (already
  // credited lazily) and the elided slots land in the kernel counter.
  const auto at_stop = inq.stats().ids_sent;
  inq.stop();
  EXPECT_EQ(inq.stats().ids_sent, at_stop);
  EXPECT_GT(sim.obs().metrics.counter_value("kernel.skipped_slots"), 0u);
}

// ---- supervised piconet equivalence -------------------------------------

struct SupervisedResult {
  std::int64_t lost_at_ns = -1;  // instant of the supervision disconnect
  std::uint64_t lost_addr = 0;
  std::uint64_t polls = 0;
  std::uint64_t link_losses = 0;
  std::uint64_t parks = 0;
  std::uint64_t elided = 0;
};

// A supervised piconet under fast-forward must reproduce the exact path's
// supervision behaviour byte-for-byte: one slave sits parked (park mode) in
// coverage for the whole run, the other walks straight out at 1.2 m/s on a
// continuous position provider and is dropped by the 2 s supervision
// timeout *mid-park* -- the master is quiescent when the deadline
// approaches, so the disconnect instant is reconstructed from the deadline
// wake, not observed by drumming. Any error in the speed-bound horizons or
// the last_reachable reconstruction moves the disconnect by at least one
// 25 ms round and fails the exact-instant comparison.
SupervisedResult supervised_walkout_trial(std::uint64_t seed, bool exact) {
  sim::Simulator sim;
  Rng rng(seed);
  baseband::ChannelConfig ch;
  ch.exact_slots = exact;
  baseband::RadioChannel radio(sim, rng, ch);
  Device mdev(sim, radio, BdAddr(0xA1), rng.fork());
  baseband::PiconetMaster master(mdev, baseband::PiconetMaster::Config{});
  Device parked_dev(sim, radio, BdAddr(0xB1), rng.fork(), {5, 0});
  Device walker_dev(sim, radio, BdAddr(0xB2), rng.fork(), {8, 0});
  baseband::SlaveLink parked(parked_dev);
  baseband::SlaveLink walker(walker_dev);

  SupervisedResult r;
  master.set_on_link_loss([&](BdAddr a) {
    r.lost_at_ns = sim.now().ns();
    r.lost_addr = a.raw();
  });
  master.attach(parked);
  master.attach(walker);
  master.park(BdAddr(0xB1));  // parked members are supervised too
  // Continuous walkout, well under the 2.0 m/s ff speed bound: leaves the
  // 10 m range at t = 5/3 s, supervision fires ~2 s later.
  walker_dev.set_position_provider(
      [&sim] { return Vec2{8.0 + 1.2 * sim.now().ns() * 1e-9, 0.0}; });

  // Probe off the 25 ms round lattice (see range_transition_trial).
  sim.run_until(SimTime(Duration::micros(10'000'100).ns()));
  r.polls = master.stats().polls;
  r.link_losses = master.stats().link_losses;
  r.parks = sim.obs().metrics.counter_value("piconet.quiesce_parks");
  r.elided = sim.obs().metrics.counter_value("piconet.elided_polls");
  return r;
}

TEST(FastForward, SupervisedWalkoutDisconnectsAtTheIdenticalInstant) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const SupervisedResult ex = supervised_walkout_trial(seed, true);
    const SupervisedResult ff = supervised_walkout_trial(seed, false);
    const std::string label = "seed " + std::to_string(seed);

    // The walker is dropped in both modes, at the same simulated instant,
    // and the parked slave survives (it never leaves coverage).
    EXPECT_EQ(ex.lost_addr, 0xB2u) << label;
    EXPECT_EQ(ff.lost_addr, ex.lost_addr) << label;
    ASSERT_GE(ex.lost_at_ns, 0) << label;
    EXPECT_EQ(ff.lost_at_ns, ex.lost_at_ns) << label;
    EXPECT_EQ(ex.link_losses, 1u) << label;
    EXPECT_EQ(ff.link_losses, ex.link_losses) << label;
    EXPECT_EQ(ff.polls, ex.polls) << label;

    // Fast-forward did elide: the post-disconnect stretch alone (walker
    // gone, parked slave pinned at d = 5) holds multi-second parks.
    EXPECT_EQ(ex.parks, 0u) << label;
    EXPECT_EQ(ex.elided, 0u) << label;
    EXPECT_GE(ff.parks, 2u) << label;
    EXPECT_GT(ff.elided, 100u) << label;
  }
}

// ---- whole-stack equivalence harness ------------------------------------

struct ModeCapture {
  std::string history;        // location-DB transition history (CSV)
  std::string presence;       // the trace's presence-delta stream (JSONL)
  std::uint64_t executed = 0; // kernel events actually run
  std::uint64_t skipped = 0;  // slots elided by fast-forward
  std::uint64_t elided_polls = 0;  // piconet rounds elided by quiesce
};

ModeCapture building_run(std::uint64_t seed, bool exact, bool chaos = false) {
  core::SimulationConfig cfg;
  cfg.seed = seed;
  cfg.stagger_inquiry = true;
  cfg.channel.exact_slots = exact;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  core::BipsSimulation sim(mobility::Building::grid(2, 2), cfg);
  for (int i = 0; i < 6; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % 4));
  }
  if (chaos) {
    // Pull the chaos window into the 45 s run (defaults start at 60 s).
    fault::ChaosParams cp;
    cp.start = Duration::seconds(10);
    cp.window = Duration::seconds(20);
    cp.min_outage = Duration::seconds(3);
    cp.max_outage = Duration::seconds(8);
    fault::FaultPlan::chaos(seed, sim.workstation_count(), cp).apply(sim);
  }
  std::ostringstream trace_os;
  obs::JsonlSink sink(trace_os);
  sim.simulator().obs().tracer.set_sink(&sink);
  sim.run_for(Duration::seconds(45));
  sim.simulator().obs().tracer.set_sink(nullptr);
  sink.flush();

  ModeCapture cap;
  std::ostringstream history;
  sim.write_history_csv(history);
  cap.history = history.str();
  // Full traces legitimately differ across modes (radio.ff and
  // kernel.sample records); the *presence-delta* stream may not.
  std::istringstream lines(trace_os.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"kind\":\"presence\"") != std::string::npos) {
      cap.presence += line;
      cap.presence += '\n';
    }
  }
  cap.executed = sim.simulator().events_executed();
  cap.skipped =
      sim.simulator().obs().metrics.counter_value("kernel.skipped_slots");
  cap.elided_polls =
      sim.simulator().obs().metrics.counter_value("piconet.elided_polls");
  return cap;
}

TEST(FastForward, ExactAndVirtualModesAreByteEquivalent) {
  for (const std::uint64_t seed : {3u, 7u, 11u, 19u, 42u}) {
    const ModeCapture ex = building_run(seed, /*exact=*/true);
    const ModeCapture ff = building_run(seed, /*exact=*/false);

    EXPECT_FALSE(ex.history.empty()) << "seed " << seed;
    EXPECT_EQ(ex.history, ff.history) << "seed " << seed;
    EXPECT_FALSE(ex.presence.empty()) << "seed " << seed;
    EXPECT_EQ(ex.presence, ff.presence) << "seed " << seed;

    // Fast-forward earns its keep: it retires the same observable run with
    // far fewer executed kernel events, the difference living in the
    // skipped-slot ledger -- and the supervised piconets contribute (their
    // drained poll rounds quiesce instead of drumming).
    EXPECT_EQ(ex.skipped, 0u) << "seed " << seed;
    EXPECT_GT(ff.skipped, 0u) << "seed " << seed;
    EXPECT_EQ(ex.elided_polls, 0u) << "seed " << seed;
    EXPECT_GT(ff.elided_polls, 0u) << "seed " << seed;
    EXPECT_LT(ff.executed, ex.executed) << "seed " << seed;
  }
}

TEST(FastForward, ChaosSeedsStayByteEquivalentAcrossModes) {
  // Crash/restart/partition faults hit mid-run -- station crashes tear
  // piconets down while quiesced, restarts rebuild them, the server resync
  // replays presence -- and the two modes must still agree byte-for-byte.
  for (const std::uint64_t seed : {7u, 21u}) {
    const ModeCapture ex = building_run(seed, /*exact=*/true, /*chaos=*/true);
    const ModeCapture ff = building_run(seed, /*exact=*/false, /*chaos=*/true);

    EXPECT_FALSE(ex.history.empty()) << "seed " << seed;
    EXPECT_EQ(ex.history, ff.history) << "seed " << seed;
    EXPECT_FALSE(ex.presence.empty()) << "seed " << seed;
    EXPECT_EQ(ex.presence, ff.presence) << "seed " << seed;
    EXPECT_GT(ff.skipped, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bips
