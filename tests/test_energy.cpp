// Tests for the radio-on (energy) accounting: the battery currency behind
// the spec's default scan schedule.
#include <gtest/gtest.h>

#include <memory>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct EnergyRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{21};
  RadioChannel radio{sim, rng, ChannelConfig{}};

  std::unique_ptr<Device> dev(std::uint64_t a) {
    return std::make_unique<Device>(sim, radio, BdAddr(a), rng.fork());
  }
  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
};

TEST_F(EnergyRig, FreshDeviceHasZeroEnergy) {
  auto d = dev(0xB1);
  EXPECT_EQ(d->energy().radio_on().ns(), 0);
  EXPECT_DOUBLE_EQ(d->energy().duty(Duration::seconds(10)), 0.0);
}

TEST_F(EnergyRig, IdleScannerDutyMatchesSchedule) {
  // No master around: the scanner only pays its periodic windows.
  auto d = dev(0xB1);
  InquiryScanner scan(*d, ScanConfig{}, BackoffConfig{});
  scan.start_with_phase(Duration(0));
  const Duration horizon = Duration::from_seconds(25.6);  // 20 windows
  run_s(25.6);
  scan.stop();  // credit any open listen
  const double duty = d->energy().duty(horizon);
  // Spec duty: 11.25 ms / 1.28 s = 0.879%.
  EXPECT_NEAR(duty, 0.0088, 0.0012);
  EXPECT_EQ(d->energy().tx_time.ns(), 0);
}

TEST_F(EnergyRig, ContinuousScannerIsAlwaysOn) {
  auto d = dev(0xB1);
  ScanConfig cfg;
  cfg.window = cfg.interval = kDefaultScanInterval;
  InquiryScanner scan(*d, cfg, BackoffConfig{});
  scan.start_with_phase(Duration(0));
  run_s(12.8);
  scan.stop();
  EXPECT_NEAR(d->energy().duty(Duration::from_seconds(12.8)), 1.0, 0.01);
}

TEST_F(EnergyRig, InquirerPaysTxAndRxTime) {
  auto d = dev(0xA1);
  Inquirer inq(*d, InquiryConfig{}, nullptr);
  inq.start();
  run_s(1.0);
  inq.stop();
  // TX: ~1600 IDs of 68 us each ~ 0.109 s.
  EXPECT_NEAR(d->energy().tx_time.to_seconds(),
              static_cast<double>(inq.stats().ids_sent) * 68e-6, 1e-3);
  // RX: two response listens of 1310 us per 1250 us TX slot: > wall time.
  EXPECT_GT(d->energy().listen_time.to_seconds(), 1.0);
  EXPECT_LT(d->energy().listen_time.to_seconds(), 2.5);
}

TEST_F(EnergyRig, DiscoveredSlavePaysForBackoffListening) {
  auto master = dev(0xA1);
  auto slave = dev(0xB1);
  Inquirer inq(*master, InquiryConfig{}, nullptr);
  ScanConfig cfg;  // default schedule
  InquiryScanner scan(*slave, cfg, BackoffConfig{});
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  run_s(12.8);
  scan.stop();
  // Responding costs more than idle scanning (post-backoff continuous
  // listening until the second ID), but stays well under continuous.
  const double duty = slave->energy().duty(Duration::from_seconds(12.8));
  EXPECT_GT(duty, 0.0088);
  EXPECT_LT(duty, 0.5);
  EXPECT_GT(slave->energy().tx_time.ns(), 0);  // the FHS responses
}

TEST_F(EnergyRig, TxAccountingPerPacketType) {
  auto d = dev(0xB1);
  Packet id;
  id.type = PacketType::kId;
  radio.transmit(d.get(), RfChannel{0, 1}, id);
  Packet fhs;
  fhs.type = PacketType::kFhs;
  radio.transmit(d.get(), RfChannel{0, 2}, fhs);
  sim.run();
  EXPECT_EQ(d->energy().tx_time.ns(),
            Duration::micros(68).ns() + Duration::micros(366).ns());
}

}  // namespace
}  // namespace bips::baseband
