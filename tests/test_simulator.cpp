// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace bips::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::millis(30), [&] { order.push_back(3); });
  s.schedule(Duration::millis(10), [&] { order.push_back(1); });
  s.schedule(Duration::millis(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime(Duration::millis(30).ns()));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesDuringCallback) {
  Simulator s;
  s.schedule(Duration::seconds(2), [&] {
    EXPECT_EQ(s.now(), SimTime(Duration::seconds(2).ns()));
  });
  s.run();
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(Duration::millis(1), [&] {
    s.schedule(Duration::millis(1), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().ns(), Duration::millis(2).ns());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  auto h = s.schedule(Duration::millis(5), [&] { fired = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  bool fired = false;
  auto h = s.schedule(Duration::millis(5), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  h.cancel();  // must not crash or underflow counters
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, DoubleCancelIsIdempotent) {
  Simulator s;
  auto h = s.schedule(Duration::millis(5), [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(s.events_pending(), 0u);
  s.run();
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator s;
  std::vector<int> fired;
  s.schedule(Duration::millis(10), [&] { fired.push_back(1); });
  s.schedule(Duration::millis(30), [&] { fired.push_back(2); });
  s.run_until(SimTime(Duration::millis(20).ns()));
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_EQ(s.now().ns(), Duration::millis(20).ns());
  // The future event survives and fires on the next run.
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesTime) {
  Simulator s;
  s.run_until(SimTime(Duration::seconds(5).ns()));
  EXPECT_EQ(s.now().ns(), Duration::seconds(5).ns());
}

TEST(Simulator, EventAtHorizonFires) {
  Simulator s;
  bool fired = false;
  s.schedule(Duration::millis(20), [&] { fired = true; });
  s.run_until(SimTime(Duration::millis(20).ns()));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int fired = 0;
  s.schedule(Duration::millis(1), [&] { ++fired; });
  s.schedule(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CountersTrackExecutionAndPending) {
  Simulator s;
  s.schedule(Duration::millis(1), [] {});
  auto h = s.schedule(Duration::millis(2), [] {});
  EXPECT_EQ(s.events_pending(), 2u);
  h.cancel();
  EXPECT_EQ(s.events_pending(), 1u);
  s.run();
  EXPECT_EQ(s.events_executed(), 1u);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, SchedulingIntoThePastDies) {
  Simulator s;
  s.schedule(Duration::millis(10), [&] {
    EXPECT_DEATH(s.schedule_at(SimTime::zero(), [] {}), "past");
  });
  s.run();
}

TEST(Simulator, CancelAfterFireWithReusedSlotIsNoop) {
  // Regression: the pre-arena kernel cancelled lazily by id, so a stale
  // handle cancelled *after* its event fired could shoot down an unrelated
  // event that had reused the same queue position. Generation tags make the
  // stale cancel a true no-op even when the arena slot has a new occupant.
  Simulator s;
  bool first = false, second = false;
  auto h = s.schedule(Duration::millis(1), [&] { first = true; });
  s.run();
  ASSERT_TRUE(first);
  // This schedule reuses the slot the fired event vacated.
  s.schedule(Duration::millis(1), [&] { second = true; });
  h.cancel();  // stale: must not touch the new occupant
  s.run();
  EXPECT_TRUE(second);
}

TEST(Simulator, CancelDuringDispatchOfSameInstant) {
  // An event may cancel a later event scheduled for the *same* instant;
  // the victim must not run even though it was already due when the
  // canceller fired.
  Simulator s;
  bool victim_ran = false;
  EventHandle victim;
  s.schedule(Duration::millis(5), [&] { victim.cancel(); });
  victim = s.schedule(Duration::millis(5), [&] { victim_ran = true; });
  s.schedule(Duration::millis(5), [&] { /* keep a third in the tie */ });
  s.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, SameInstantOrderSurvivesSlotChurn) {
  // Insertion order within one instant must hold even when the arena is a
  // patchwork of reused slots: recycle many slots first, then schedule a
  // same-instant batch whose slot numbers are descending free-list pops.
  Simulator s;
  for (int i = 0; i < 64; ++i) {
    auto h = s.schedule(Duration::micros(i), [] {});
    if (i % 2 == 0) h.cancel();
  }
  s.run();
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    s.schedule(Duration::millis(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ArenaReusesSlotsUnderChurn) {
  // Schedule/fire/cancel cycles must not grow the arena beyond the
  // high-water mark of *concurrent* events: a long-running simulation with
  // bounded concurrency keeps a bounded footprint.
  Simulator s;
  for (int round = 0; round < 1000; ++round) {
    auto a = s.schedule(Duration::micros(1), [] {});
    auto b = s.schedule(Duration::micros(2), [] {});
    s.schedule(Duration::micros(3), [] {});
    b.cancel();
    s.run();
    (void)a;
  }
  EXPECT_LE(s.arena_slots(), 8u);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Process, CallAfterFiresOnceAndClearsPending) {
  Simulator s;
  int fired = 0;
  Process p(s, [&] { ++fired; });
  p.call_after(Duration::millis(5));
  EXPECT_TRUE(p.pending());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(p.pending());
}

TEST(Process, BodyCanRearmItself) {
  Simulator s;
  int fired = 0;
  Process p(s, [&]() {
    if (++fired < 3) p.call_after(Duration::millis(1));
  });
  p.call_after(Duration::millis(1));
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now().ns(), Duration::millis(3).ns());
}

TEST(Process, RearmReplacesPendingActivation) {
  // call_at on an armed process cancels the earlier activation: exactly one
  // firing, at the later time.
  Simulator s;
  std::vector<std::int64_t> at;
  Process p(s, [&] { at.push_back(s.now().ns()); });
  p.call_after(Duration::millis(10));
  p.call_after(Duration::millis(20));
  s.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], Duration::millis(20).ns());
}

TEST(Process, CancelIsIdempotentAndDisarms) {
  Simulator s;
  int fired = 0;
  Process p(s, [&] { ++fired; });
  p.call_after(Duration::millis(1));
  p.cancel();
  p.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(p.pending());
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  s.run_until(SimTime(Duration::millis(55).ns()));
  EXPECT_EQ(fired, 5);  // t=10,20,30,40,50
}

TEST(PeriodicTimer, StopHalts) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  s.schedule(Duration::millis(25), [&] { t.stop(); });
  s.run_until(SimTime(Duration::millis(100).ns()));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, CallbackCanStopItself) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] {
    if (++fired == 3) t.stop();
  });
  t.start();
  s.run_until(SimTime(Duration::seconds(1).ns()));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, StartAfterInitialDelay) {
  Simulator s;
  std::vector<std::int64_t> at;
  PeriodicTimer t(s, Duration::millis(10), [&] { at.push_back(s.now().ns()); });
  t.start_after(Duration::millis(3));
  s.run_until(SimTime(Duration::millis(30).ns()));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], Duration::millis(3).ns());
  EXPECT_EQ(at[1], Duration::millis(13).ns());
  EXPECT_EQ(at[2], Duration::millis(23).ns());
}

TEST(PeriodicTimer, RestartReplacesSchedule) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  t.start();  // restart: must not double-fire
  s.run_until(SimTime(Duration::millis(35).ns()));
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace bips::sim
