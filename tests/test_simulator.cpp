// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace bips::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::millis(30), [&] { order.push_back(3); });
  s.schedule(Duration::millis(10), [&] { order.push_back(1); });
  s.schedule(Duration::millis(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime(Duration::millis(30).ns()));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesDuringCallback) {
  Simulator s;
  s.schedule(Duration::seconds(2), [&] {
    EXPECT_EQ(s.now(), SimTime(Duration::seconds(2).ns()));
  });
  s.run();
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(Duration::millis(1), [&] {
    s.schedule(Duration::millis(1), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().ns(), Duration::millis(2).ns());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  auto h = s.schedule(Duration::millis(5), [&] { fired = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  bool fired = false;
  auto h = s.schedule(Duration::millis(5), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  h.cancel();  // must not crash or underflow counters
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, DoubleCancelIsIdempotent) {
  Simulator s;
  auto h = s.schedule(Duration::millis(5), [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(s.events_pending(), 0u);
  s.run();
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator s;
  std::vector<int> fired;
  s.schedule(Duration::millis(10), [&] { fired.push_back(1); });
  s.schedule(Duration::millis(30), [&] { fired.push_back(2); });
  s.run_until(SimTime(Duration::millis(20).ns()));
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_EQ(s.now().ns(), Duration::millis(20).ns());
  // The future event survives and fires on the next run.
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesTime) {
  Simulator s;
  s.run_until(SimTime(Duration::seconds(5).ns()));
  EXPECT_EQ(s.now().ns(), Duration::seconds(5).ns());
}

TEST(Simulator, EventAtHorizonFires) {
  Simulator s;
  bool fired = false;
  s.schedule(Duration::millis(20), [&] { fired = true; });
  s.run_until(SimTime(Duration::millis(20).ns()));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int fired = 0;
  s.schedule(Duration::millis(1), [&] { ++fired; });
  s.schedule(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CountersTrackExecutionAndPending) {
  Simulator s;
  s.schedule(Duration::millis(1), [] {});
  auto h = s.schedule(Duration::millis(2), [] {});
  EXPECT_EQ(s.events_pending(), 2u);
  h.cancel();
  EXPECT_EQ(s.events_pending(), 1u);
  s.run();
  EXPECT_EQ(s.events_executed(), 1u);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulator, SchedulingIntoThePastDies) {
  Simulator s;
  s.schedule(Duration::millis(10), [&] {
    EXPECT_DEATH(s.schedule_at(SimTime::zero(), [] {}), "past");
  });
  s.run();
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  s.run_until(SimTime(Duration::millis(55).ns()));
  EXPECT_EQ(fired, 5);  // t=10,20,30,40,50
}

TEST(PeriodicTimer, StopHalts) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  s.schedule(Duration::millis(25), [&] { t.stop(); });
  s.run_until(SimTime(Duration::millis(100).ns()));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, CallbackCanStopItself) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] {
    if (++fired == 3) t.stop();
  });
  t.start();
  s.run_until(SimTime(Duration::seconds(1).ns()));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, StartAfterInitialDelay) {
  Simulator s;
  std::vector<std::int64_t> at;
  PeriodicTimer t(s, Duration::millis(10), [&] { at.push_back(s.now().ns()); });
  t.start_after(Duration::millis(3));
  s.run_until(SimTime(Duration::millis(30).ns()));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], Duration::millis(3).ns());
  EXPECT_EQ(at[1], Duration::millis(13).ns());
  EXPECT_EQ(at[2], Duration::millis(23).ns());
}

TEST(PeriodicTimer, RestartReplacesSchedule) {
  Simulator s;
  int fired = 0;
  PeriodicTimer t(s, Duration::millis(10), [&] { ++fired; });
  t.start();
  t.start();  // restart: must not double-fire
  s.run_until(SimTime(Duration::millis(35).ns()));
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace bips::sim
