// Unit tests for the byte-level wire codec.
#include <gtest/gtest.h>

#include <string>

#include "src/proto/wire.hpp"

namespace bips::proto {
namespace {

TEST(Wire, IntegerRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, LittleEndianLayout) {
  Writer w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x02);
  EXPECT_EQ(w.bytes()[1], 0x01);
}

TEST(Wire, DoubleRoundTrip) {
  Writer w;
  w.f64(3.14159265358979);
  w.f64(-0.0);
  w.f64(1e300);
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), 1e300);
}

TEST(Wire, BoolRoundTrip) {
  Writer w;
  w.boolean(true);
  w.boolean(false);
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
}

TEST(Wire, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string("bin\0ary", 7));
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
}

TEST(Wire, OversizedStringTruncatesAt65535) {
  Writer w;
  w.str(std::string(100'000, 'x'));
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.str().size(), 65'535u);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, UnderflowSticksAndReturnsZeros) {
  const Bytes b{0x01};
  Reader r(b);
  EXPECT_EQ(r.u32(), 0u);  // needs 4, has 1
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // sticky even though one byte existed
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, TruncatedStringFailsCleanly) {
  Writer w;
  w.u16(100);  // promises 100 bytes
  Bytes b = w.take();
  b.push_back('x');  // delivers 1
  Reader r(b);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, RemainingTracksPosition) {
  Writer w;
  w.u32(7);
  w.u32(8);
  const Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, EmptyBufferReads) {
  const Bytes b;
  Reader r(b);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Wire, WriterSizeAndTakeReset) {
  Writer w;
  w.u32(1);
  EXPECT_EQ(w.size(), 4u);
  const Bytes b = w.take();
  EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace bips::proto
