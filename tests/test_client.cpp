// Unit tests for the BIPS handheld client: query bookkeeping, reply
// dispatch, subscriptions -- driven against a fake workstation piconet.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/baseband/piconet.hpp"
#include "src/core/client.hpp"

namespace bips::core {
namespace {

struct ClientRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{51};
  baseband::RadioChannel radio{sim, rng, baseband::ChannelConfig{}};

  // Fake workstation side.
  std::unique_ptr<baseband::Device> master_dev =
      std::make_unique<baseband::Device>(sim, radio, baseband::BdAddr(0xA1),
                                         rng.fork());
  baseband::PiconetMaster master{*master_dev, baseband::PiconetMaster::Config{}};
  std::vector<proto::Message> at_master;

  std::unique_ptr<BipsClient> client;

  void SetUp() override {
    ClientConfig cfg;
    cfg.userid = "alice";
    cfg.password = "pw";
    cfg.auto_login = false;  // drive everything explicitly
    client = std::make_unique<BipsClient>(sim, radio,
                                          baseband::BdAddr(0xB1), rng.fork(),
                                          cfg);
    master.set_on_message([this](baseband::BdAddr, const baseband::AclPayload& p) {
      auto m = proto::decode(p);
      ASSERT_TRUE(m.has_value());
      at_master.push_back(*m);
    });
    ASSERT_TRUE(master.attach(client->link()));
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
  void master_sends(const proto::Message& m) {
    master.send(baseband::BdAddr(0xB1), proto::encode(m));
  }
  template <typename T>
  std::vector<T> master_got() {
    std::vector<T> out;
    for (const auto& m : at_master) {
      if (const T* v = std::get_if<T>(&m)) out.push_back(*v);
    }
    return out;
  }
};

TEST_F(ClientRig, QueriesRefusedWhenDisconnected) {
  master.detach(baseband::BdAddr(0xB1));
  EXPECT_FALSE(client->where_is("Bob", nullptr));
  EXPECT_FALSE(client->find_path_to("Bob", nullptr));
  EXPECT_FALSE(client->who_is_in("lab", nullptr));
  EXPECT_FALSE(client->subscribe("Bob", nullptr));
  EXPECT_FALSE(client->logout());
}

TEST_F(ClientRig, QueryIdsAreUniqueAndRepliesDispatchById) {
  std::optional<std::string> room1, room2;
  ASSERT_TRUE(client->where_is(
      "Bob", [&](const proto::WhereIsReply& r) { room1 = r.room; }));
  ASSERT_TRUE(client->where_is(
      "Carol", [&](const proto::WhereIsReply& r) { room2 = r.room; }));
  run_ms(60);
  auto reqs = master_got<proto::WhereIsRequest>();
  ASSERT_EQ(reqs.size(), 2u);
  ASSERT_NE(reqs[0].query_id, reqs[1].query_id);

  // Answer in reverse order; each lands on its own callback.
  master_sends(proto::WhereIsReply{reqs[1].query_id,
                                   proto::QueryStatus::kOk, "carol-room"});
  master_sends(proto::WhereIsReply{reqs[0].query_id,
                                   proto::QueryStatus::kOk, "bob-room"});
  run_ms(60);
  EXPECT_EQ(room1, "bob-room");
  EXPECT_EQ(room2, "carol-room");
}

TEST_F(ClientRig, ReplyCallbacksFireExactlyOnce) {
  int calls = 0;
  ASSERT_TRUE(client->where_is(
      "Bob", [&](const proto::WhereIsReply&) { ++calls; }));
  run_ms(60);
  const auto id = master_got<proto::WhereIsRequest>()[0].query_id;
  master_sends(proto::WhereIsReply{id, proto::QueryStatus::kOk, "x"});
  master_sends(proto::WhereIsReply{id, proto::QueryStatus::kOk, "x"});
  run_ms(60);
  EXPECT_EQ(calls, 1);
}

TEST_F(ClientRig, UnknownQueryIdIgnored) {
  int calls = 0;
  ASSERT_TRUE(client->where_is(
      "Bob", [&](const proto::WhereIsReply&) { ++calls; }));
  run_ms(60);
  master_sends(proto::WhereIsReply{0xDEAD, proto::QueryStatus::kOk, "x"});
  run_ms(60);
  EXPECT_EQ(calls, 0);
}

TEST_F(ClientRig, MalformedPayloadIgnored) {
  master.send(baseband::BdAddr(0xB1), {0xFF, 0x00, 0x13});
  run_ms(60);  // must not crash; nothing dispatched
  EXPECT_EQ(client->stats().replies_received, 0u);
}

TEST_F(ClientRig, SubscriptionEventsDispatchToTheRightWatch) {
  std::vector<std::string> bob_rooms, carol_rooms;
  ASSERT_TRUE(client->subscribe("Bob", [&](const proto::MovementEvent& ev) {
    bob_rooms.push_back(ev.room);
  }));
  ASSERT_TRUE(client->subscribe("Carol", [&](const proto::MovementEvent& ev) {
    carol_rooms.push_back(ev.room);
  }));
  run_ms(60);
  master_sends(proto::MovementEvent{0xB1, "Bob", true, "lab", 1});
  master_sends(proto::MovementEvent{0xB1, "Carol", true, "lobby", 2});
  master_sends(proto::MovementEvent{0xB1, "Dave", true, "office", 3});
  run_ms(60);
  EXPECT_EQ(bob_rooms, std::vector<std::string>{"lab"});
  EXPECT_EQ(carol_rooms, std::vector<std::string>{"lobby"});
}

TEST_F(ClientRig, UnsubscribeStopsDispatchLocally) {
  int events = 0;
  ASSERT_TRUE(client->subscribe(
      "Bob", [&](const proto::MovementEvent&) { ++events; }));
  run_ms(60);
  ASSERT_TRUE(client->unsubscribe("Bob"));
  run_ms(60);
  master_sends(proto::MovementEvent{0xB1, "Bob", true, "lab", 1});
  run_ms(60);
  EXPECT_EQ(events, 0);
  // Both the subscribe and the unsubscribe went up the link.
  EXPECT_EQ(master_got<proto::SubscribeRequest>().size(), 2u);
  EXPECT_TRUE(master_got<proto::SubscribeRequest>()[1].unsubscribe);
}

TEST_F(ClientRig, HistoryAndWhoIsInRoundTripThroughCallbacks) {
  std::optional<proto::HistoryReply> hist;
  std::optional<proto::WhoIsInReply> who;
  ASSERT_TRUE(client->where_was(
      "Bob", SimTime(42), [&](const proto::HistoryReply& r) { hist = r; }));
  ASSERT_TRUE(client->who_is_in(
      "lab", [&](const proto::WhoIsInReply& r) { who = r; }));
  run_ms(60);
  const auto hreq = master_got<proto::HistoryRequest>();
  const auto wreq = master_got<proto::WhoIsInRequest>();
  ASSERT_EQ(hreq.size(), 1u);
  ASSERT_EQ(wreq.size(), 1u);
  EXPECT_EQ(hreq[0].at_time_ns, 42);
  EXPECT_EQ(wreq[0].room, "lab");

  proto::HistoryReply hr;
  hr.query_id = hreq[0].query_id;
  hr.was_present = true;
  hr.room = "lab";
  master_sends(hr);
  proto::WhoIsInReply wr;
  wr.query_id = wreq[0].query_id;
  wr.users = {"Bob"};
  master_sends(wr);
  run_ms(60);
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->room, "lab");
  ASSERT_TRUE(who.has_value());
  EXPECT_EQ(who->users, std::vector<std::string>{"Bob"});
}

TEST_F(ClientRig, LoginReplyUpdatesSessionState) {
  EXPECT_FALSE(client->logged_in());
  master_sends(proto::LoginReply{0xB1, true, ""});
  run_ms(60);
  EXPECT_TRUE(client->logged_in());
  // Logout round trip.
  EXPECT_TRUE(client->logout());
  run_ms(60);
  ASSERT_EQ(master_got<proto::LogoutRequest>().size(), 1u);
  master_sends(proto::LogoutReply{0xB1, true});
  run_ms(60);
  EXPECT_FALSE(client->logged_in());
}

// --- server-amnesia recovery: the epoch relay's client half ------------

TEST_F(ClientRig, EpochAdvanceTriggersExactlyOneRelogin) {
  proto::LoginReply granted{0xB1, true, ""};
  granted.server_epoch = 1;
  master_sends(granted);
  run_ms(60);
  ASSERT_TRUE(client->logged_in());
  EXPECT_EQ(client->login_epoch(), 1u);

  // The workstation relays the restarted server's epoch. The client must
  // notice its session is from a dead incarnation and re-log-in once.
  at_master.clear();
  master_sends(proto::EpochNotice{2});
  run_ms(1000);  // past the 50 ms re-login delay, inside the 2 s retry beat
  EXPECT_FALSE(client->logged_in());
  auto reqs = master_got<proto::LoginRequest>();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].prior_epoch, 1u);  // tells the server this is a re-login
  EXPECT_EQ(client->stats().relogins, 1u);

  proto::LoginReply regrant{0xB1, true, ""};
  regrant.server_epoch = 2;
  master_sends(regrant);
  run_ms(60);
  EXPECT_TRUE(client->logged_in());
  EXPECT_EQ(client->login_epoch(), 2u);

  // A duplicate notice for the already-adopted epoch is a no-op.
  at_master.clear();
  master_sends(proto::EpochNotice{2});
  run_ms(3000);
  EXPECT_TRUE(client->logged_in());
  EXPECT_TRUE(master_got<proto::LoginRequest>().empty());
  EXPECT_EQ(client->stats().relogins, 1u);
}

TEST_F(ClientRig, StaleEpochLoginAckIgnored) {
  // The client has heard epoch 3; a successful-looking ack stamped by a
  // dead incarnation (epoch 2, e.g. delayed in a retransmit queue across
  // the restart) must not establish a session against the new server.
  master_sends(proto::EpochNotice{3});
  run_ms(60);
  EXPECT_EQ(client->known_epoch(), 3u);

  proto::LoginReply stale{0xB1, true, ""};
  stale.server_epoch = 2;
  master_sends(stale);
  run_ms(60);
  EXPECT_FALSE(client->logged_in());

  proto::LoginReply fresh{0xB1, true, ""};
  fresh.server_epoch = 3;
  master_sends(fresh);
  run_ms(60);
  EXPECT_TRUE(client->logged_in());
  EXPECT_EQ(client->login_epoch(), 3u);
}

TEST_F(ClientRig, ReloginRetriesUntilAcked) {
  proto::LoginReply granted{0xB1, true, ""};
  granted.server_epoch = 1;
  master_sends(granted);
  run_ms(60);
  ASSERT_TRUE(client->logged_in());

  // Epoch bump, but every re-login request goes unanswered: the 2 s login
  // retry loop must keep trying, and the first ack from the new
  // incarnation must close the loop.
  at_master.clear();
  master_sends(proto::EpochNotice{2});
  run_ms(5000);
  EXPECT_FALSE(client->logged_in());
  const auto unanswered = master_got<proto::LoginRequest>();
  EXPECT_GE(unanswered.size(), 2u);
  for (const auto& r : unanswered) EXPECT_EQ(r.prior_epoch, 1u);

  proto::LoginReply regrant{0xB1, true, ""};
  regrant.server_epoch = 2;
  master_sends(regrant);
  run_ms(60);
  EXPECT_TRUE(client->logged_in());
  EXPECT_EQ(client->stats().relogins, 1u);  // one drop, however many sends
}

}  // namespace
}  // namespace bips::core
