// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.hpp"

namespace bips {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsCentered) {
  Rng r(19);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += r.uniform_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(29);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(31);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.exponential(2.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(37);
  double sum = 0, sq = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(99), parent2(99);
  Rng childA = parent1.fork();
  Rng childB = parent2.fork();
  // Same parent seed -> same fork.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA.next_u64(), childB.next_u64());
  // Fork differs from parent's continued stream.
  Rng parent3(99);
  Rng child = parent3.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent3.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace bips
