// Integration tests of the inquiry procedure: master Inquirer vs slave
// InquiryScanner over the collision channel. These tests pin down the
// timing structure behind the paper's Table 1 and Figure 2.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct InquiryRig {
  sim::Simulator sim;
  Rng rng;
  RadioChannel radio;

  explicit InquiryRig(std::uint64_t seed = 1)
      : rng(seed), radio(sim, rng, ChannelConfig{}) {}

  std::unique_ptr<Device> make_device(std::uint64_t addr) {
    return std::make_unique<Device>(sim, radio, BdAddr(addr), rng.fork());
  }
};

ScanConfig continuous_scan() {
  ScanConfig s;
  s.window = kDefaultScanInterval;  // window == interval: always listening
  s.interval = kDefaultScanInterval;
  s.channel_mode = ScanChannelMode::kFixed;
  return s;
}

TEST(Inquiry, SameTrainContinuousScanDiscoversWithinBackoffBound) {
  InquiryRig rig(11);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  std::optional<SimTime> discovered;
  InquiryConfig icfg;  // starts on train A
  Inquirer inq(*master, icfg,
               [&](const InquiryResponse& r) {
                 EXPECT_EQ(r.addr.raw(), 0xB1u);
                 if (!discovered) discovered = r.received_at;
               });

  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(3);  // train A
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(3).ns()));

  ASSERT_TRUE(discovered.has_value());
  // First ID within one train sweep (10 ms) + backoff <= 0.64 s + second
  // sweep + exchange: comfortably under 0.7 s.
  EXPECT_LT(discovered->to_seconds(), 0.7);
  EXPECT_EQ(inq.stats().unique_responses, 1u);
}

TEST(Inquiry, DifferentTrainNeedsTrainSwitch) {
  InquiryRig rig(12);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  std::optional<SimTime> discovered;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { discovered = r.received_at; });
  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(20);  // train B
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(6).ns()));

  ASSERT_TRUE(discovered.has_value());
  // Nothing can happen before the 2.56 s train dwell elapses...
  EXPECT_GT(discovered->to_seconds(), 2.56);
  // ...and with continuous scanning it completes soon after the switch.
  EXPECT_LT(discovered->to_seconds(), 3.3);
  EXPECT_GE(inq.stats().train_switches, 1u);
}

TEST(Inquiry, TrainAOnlyMasterNeverFindsTrainBSlave) {
  InquiryRig rig(13);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  bool discovered = false;
  InquiryConfig icfg;
  icfg.switch_trains = false;  // the Figure 2 master
  Inquirer inq(*master, icfg,
               [&](const InquiryResponse&) { discovered = true; });
  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(25);  // train B, and kFixed keeps it there
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(12).ns()));

  EXPECT_FALSE(discovered);
  EXPECT_EQ(inq.stats().train_switches, 0u);
}

TEST(Inquiry, OutOfRangeSlaveIsNotDiscovered) {
  InquiryRig rig(14);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  slave->set_position({50, 0});  // range is 10 m

  bool discovered = false;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse&) { discovered = true; });
  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(4).ns()));
  EXPECT_FALSE(discovered);
  EXPECT_EQ(scan.stats().ids_heard, 0u);
}

TEST(Inquiry, PeriodicScanTakesLongerThanContinuous) {
  // With the default 11.25 ms / 1.28 s schedule the mean decomposes into
  // the first-window wait (~0.64 s) plus the response backoff (~0.32 s):
  // just under one second. Individual trials vary, so average a few seeds.
  double sum = 0;
  int n = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    InquiryRig rig(100 + seed);
    auto master = rig.make_device(0xA1);
    auto slave = rig.make_device(0xB1);

    std::optional<SimTime> discovered;
    Inquirer inq(*master, InquiryConfig{},
                 [&](const InquiryResponse& r) { discovered = r.received_at; });
    ScanConfig scfg;  // defaults: 11.25 ms window, 1.28 s interval
    scfg.channel_mode = ScanChannelMode::kStickyTrain;
    InquiryScanner scan(*slave, scfg, BackoffConfig{});
    scan.set_initial_channel(
        static_cast<std::uint32_t>(rig.rng.uniform(kTrainSize)));  // train A
    scan.start();
    inq.start();
    rig.sim.run_until(SimTime(Duration::seconds(8).ns()));
    ASSERT_TRUE(discovered.has_value()) << "seed " << seed;
    sum += discovered->to_seconds();
    ++n;
  }
  const double mean = sum / n;
  // Expected ~0.96 s (0.64 first window + 0.32 backoff).
  EXPECT_GT(mean, 0.6);
  EXPECT_LT(mean, 1.5);
}

TEST(Inquiry, DuplicateResponsesAreDeduplicatedPerSession) {
  InquiryRig rig(15);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  int callbacks = 0;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse&) { ++callbacks; });
  BackoffConfig bo;
  bo.respond_repeatedly = true;
  InquiryScanner scan(*slave, continuous_scan(), bo);
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(8).ns()));

  EXPECT_EQ(callbacks, 1);
  EXPECT_GT(scan.stats().fhs_sent, 1u);  // kept answering
  EXPECT_EQ(inq.stats().unique_responses, 1u);
  EXPECT_GT(inq.stats().fhs_received, 1u);
}

TEST(Inquiry, RespondOnceStopsAfterFirstFhs) {
  InquiryRig rig(16);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  Inquirer inq(*master, InquiryConfig{}, nullptr);
  BackoffConfig bo;
  bo.respond_repeatedly = false;
  InquiryScanner scan(*slave, continuous_scan(), bo);
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(6).ns()));

  EXPECT_EQ(scan.stats().fhs_sent, 1u);
  EXPECT_FALSE(scan.running());  // stopped itself after responding
}

TEST(Inquiry, TwoSlavesOnSameChannelBothEventuallyDiscovered) {
  InquiryRig rig(17);
  auto master = rig.make_device(0xA1);
  auto s1 = rig.make_device(0xB1);
  auto s2 = rig.make_device(0xB2);

  std::set<std::uint64_t> found;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { found.insert(r.addr.raw()); });
  InquiryScanner scan1(*s1, continuous_scan(), BackoffConfig{});
  InquiryScanner scan2(*s2, continuous_scan(), BackoffConfig{});
  scan1.set_initial_channel(7);
  scan2.set_initial_channel(7);  // same channel: responses may collide
  scan1.start_with_phase(Duration(0));
  scan2.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(10).ns()));

  EXPECT_EQ(found.size(), 2u);
}

TEST(Inquiry, TwentySlavesAllDiscoveredWithDedicatedMaster) {
  InquiryRig rig(18);
  auto master = rig.make_device(0xA1);
  std::vector<std::unique_ptr<Device>> slaves;
  std::vector<std::unique_ptr<InquiryScanner>> scans;

  std::set<std::uint64_t> found;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { found.insert(r.addr.raw()); });
  for (int i = 0; i < 20; ++i) {
    slaves.push_back(rig.make_device(0xB0 + i));
    auto scan = std::make_unique<InquiryScanner>(*slaves.back(),
                                                 continuous_scan(),
                                                 BackoffConfig{});
    scan->start();
    scans.push_back(std::move(scan));
  }
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(12).ns()));
  EXPECT_EQ(found.size(), 20u);
}

TEST(Inquiry, StopSilencesTheMaster) {
  InquiryRig rig(19);
  auto master = rig.make_device(0xA1);
  Inquirer inq(*master, InquiryConfig{}, nullptr);
  inq.start();
  rig.sim.run_until(SimTime(Duration::millis(100).ns()));
  inq.stop();
  const auto sent = inq.stats().ids_sent;
  EXPECT_FALSE(inq.active());
  rig.sim.run_until(SimTime(Duration::millis(300).ns()));
  EXPECT_EQ(inq.stats().ids_sent, sent);
  EXPECT_EQ(rig.radio.listen_count(master.get()), 0u);
}

TEST(Inquiry, IdRateMatchesSlotStructure) {
  // Two IDs per even slot -> 1600 IDs per second.
  InquiryRig rig(20);
  auto master = rig.make_device(0xA1);
  Inquirer inq(*master, InquiryConfig{}, nullptr);
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(2).ns()));
  inq.stop();
  EXPECT_NEAR(static_cast<double>(inq.stats().ids_sent), 3200.0, 10.0);
}

TEST(Inquiry, ScannerStopClearsBackoffState) {
  InquiryRig rig(21);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  Inquirer inq(*master, InquiryConfig{}, nullptr);
  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  // Run until the slave has heard the first ID and entered backoff.
  rig.sim.run_until(SimTime(Duration::millis(50).ns()));
  scan.stop();
  EXPECT_FALSE(scan.running());
  EXPECT_FALSE(scan.in_backoff());
  EXPECT_EQ(rig.radio.listen_count(slave.get()), 0u);
}

TEST(Inquiry, RestartedInquirySessionRediscoveres) {
  InquiryRig rig(22);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  int callbacks = 0;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse&) { ++callbacks; });
  InquiryScanner scan(*slave, continuous_scan(), BackoffConfig{});
  scan.set_initial_channel(3);
  scan.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(2).ns()));
  inq.stop();
  EXPECT_EQ(callbacks, 1);
  inq.start();  // new session: dedup set reset
  rig.sim.run_until(SimTime(Duration::seconds(4).ns()));
  EXPECT_EQ(callbacks, 2);
}

}  // namespace
}  // namespace bips::baseband

// ---- interlaced scan (Bluetooth 1.2 extension) ------------------------------

namespace bips::baseband {
namespace {

TEST(InterlacedScan, ReachableOnBothTrainsWithoutTrainSwitch) {
  // Master locked to train A, slave's channel in train B: a classic scanner
  // is invisible (see TrainAOnlyMasterNeverFindsTrainBSlave); an interlaced
  // one answers via its second sub-window.
  InquiryRig rig(61);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  std::optional<SimTime> found;
  InquiryConfig icfg;
  icfg.switch_trains = false;
  Inquirer inq(*master, icfg,
               [&](const InquiryResponse& r) { found = r.received_at; });
  ScanConfig scan;
  scan.channel_mode = ScanChannelMode::kFixed;
  scan.interlaced = true;
  InquiryScanner sc(*slave, scan, BackoffConfig{});
  sc.set_initial_channel(25);  // train B
  sc.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(8).ns()));
  ASSERT_TRUE(found.has_value());
  EXPECT_LT(found->to_seconds(), 3.0);
}

TEST(InterlacedScan, CutsTheDifferentTrainPenalty) {
  // With a train-switching master, a misaligned interlaced slave no longer
  // waits out the 2.56 s dwell.
  double sum = 0;
  int n = 0;
  for (std::uint64_t seed = 70; seed < 80; ++seed) {
    InquiryRig rig(seed);
    auto master = rig.make_device(0xA1);
    auto slave = rig.make_device(0xB1);
    std::optional<SimTime> found;
    Inquirer inq(*master, InquiryConfig{},
                 [&](const InquiryResponse& r) { found = r.received_at; });
    ScanConfig scan;
    scan.channel_mode = ScanChannelMode::kStickyTrain;
    scan.interlaced = true;
    InquiryScanner sc(*slave, scan, BackoffConfig{});
    sc.set_initial_channel(20);  // "different" train
    sc.start();
    inq.start();
    rig.sim.run_until(SimTime(Duration::seconds(10).ns()));
    ASSERT_TRUE(found.has_value()) << "seed " << seed;
    sum += found->to_seconds();
    ++n;
  }
  // Classic different-train mean is ~4.2-4.5 s; interlacing brings it to
  // the same-train regime (~1 s).
  EXPECT_LT(sum / n, 2.0);
}

TEST(InterlacedScan, DoublesTheIdleEnergyCost) {
  InquiryRig rig(62);
  auto classic_dev = rig.make_device(0xB1);
  auto inter_dev = rig.make_device(0xB2);
  ScanConfig classic_cfg;  // defaults
  ScanConfig inter_cfg;
  inter_cfg.interlaced = true;
  InquiryScanner classic(*classic_dev, classic_cfg, BackoffConfig{});
  InquiryScanner inter(*inter_dev, inter_cfg, BackoffConfig{});
  classic.start_with_phase(Duration(0));
  inter.start_with_phase(Duration(0));
  rig.sim.run_until(SimTime(Duration::from_seconds(25.6).ns()));
  classic.stop();
  inter.stop();
  const double ratio =
      static_cast<double>(inter_dev->energy().listen_time.ns()) /
      static_cast<double>(classic_dev->energy().listen_time.ns());
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(InterlacedScan, RequiresRoomForTwoWindows) {
  InquiryRig rig(63);
  auto slave = rig.make_device(0xB1);
  ScanConfig scan;
  scan.interlaced = true;
  scan.window = Duration::millis(700);
  scan.interval = Duration::millis(1280);  // < 2 * window
  EXPECT_DEATH(InquiryScanner(*slave, scan, BackoffConfig{}), "interval");
}

}  // namespace
}  // namespace bips::baseband
