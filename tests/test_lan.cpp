// Unit tests for the simulated Ethernet LAN.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/lan.hpp"

namespace bips::net {
namespace {

struct LanRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{3};
};

TEST_F(LanRig, DeliversWithBaseLatency) {
  Lan::Config cfg;
  cfg.base_latency = Duration::micros(200);
  cfg.jitter = Duration(0);
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();

  std::optional<std::int64_t> arrival;
  b.set_handler([&](Address from, const Payload& p) {
    EXPECT_EQ(from, a.address());
    EXPECT_EQ(p, (Payload{1, 2}));
    arrival = sim.now().ns();
  });
  EXPECT_TRUE(a.send(b.address(), {1, 2}));
  sim.run();
  ASSERT_TRUE(arrival.has_value());
  EXPECT_EQ(*arrival, 200'000);
}

TEST_F(LanRig, AddressesAreSequential) {
  Lan lan(sim, rng, Lan::Config{});
  EXPECT_EQ(lan.create_endpoint().address(), 0u);
  EXPECT_EQ(lan.create_endpoint().address(), 1u);
  EXPECT_EQ(lan.create_endpoint().address(), 2u);
}

TEST_F(LanRig, SendToUnknownAddressFails) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& a = lan.create_endpoint();
  EXPECT_FALSE(a.send(42, {1}));
}

TEST_F(LanRig, JitterStaysWithinBounds) {
  Lan::Config cfg;
  cfg.base_latency = Duration::micros(100);
  cfg.jitter = Duration::micros(50);
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  std::vector<std::int64_t> arrivals;
  b.set_handler([&](Address, const Payload&) {
    arrivals.push_back(sim.now().ns());
  });
  for (int i = 0; i < 100; ++i) {
    sim.schedule(Duration::millis(i), [&] { a.send(b.address(), {0}); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t latency = arrivals[i] - Duration::millis(i).ns();
    EXPECT_GE(latency, 100'000);
    EXPECT_LT(latency, 150'000);
  }
}

TEST_F(LanRig, FifoPerPairUnderJitter) {
  Lan::Config cfg;
  cfg.base_latency = Duration::micros(10);
  cfg.jitter = Duration::micros(500);  // heavy jitter forces reordering risk
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  std::vector<std::uint8_t> order;
  b.set_handler([&](Address, const Payload& p) { order.push_back(p[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) a.send(b.address(), {i});
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(LanRig, LossDropsDeterministicallyAtOne) {
  Lan::Config cfg;
  cfg.loss = 1.0;
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  int got = 0;
  b.set_handler([&](Address, const Payload&) { ++got; });
  for (int i = 0; i < 20; ++i) a.send(b.address(), {1});
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.dropped"), 20u);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.sent"), 20u);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.delivered"), 0u);
}

TEST_F(LanRig, PartialLossRateApproximatelyRespected) {
  Lan::Config cfg;
  cfg.loss = 0.25;
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  int got = 0;
  b.set_handler([&](Address, const Payload&) { ++got; });
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(Duration::micros(i), [&] { a.send(b.address(), {1}); });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(got) / kN, 0.75, 0.03);
}

TEST_F(LanRig, SelfSendWorks) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& a = lan.create_endpoint();
  int got = 0;
  a.set_handler([&](Address from, const Payload&) {
    EXPECT_EQ(from, a.address());
    ++got;
  });
  a.send(a.address(), {1});
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(LanRig, ManyEndpointsIndependentStreams) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& hub = lan.create_endpoint();
  std::vector<Endpoint*> spokes;
  for (int i = 0; i < 10; ++i) spokes.push_back(&lan.create_endpoint());
  int got = 0;
  hub.set_handler([&](Address, const Payload&) { ++got; });
  for (auto* s : spokes) s->send(hub.address(), {1});
  sim.run();
  EXPECT_EQ(got, 10);
}

TEST_F(LanRig, HandlerMaySendReply) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  bool replied = false;
  b.set_handler([&](Address from, const Payload&) { b.send(from, {2}); });
  a.set_handler([&](Address, const Payload& p) {
    EXPECT_EQ(p[0], 2);
    replied = true;
  });
  a.send(b.address(), {1});
  sim.run();
  EXPECT_TRUE(replied);
}

TEST_F(LanRig, PartitionDropsOnlyDuringWindow) {
  Lan::Config cfg;
  cfg.jitter = Duration(0);
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  int got = 0;
  b.set_handler([&](Address, const Payload&) { ++got; });

  lan.partition({a.address()}, {b.address()}, SimTime(Duration::seconds(1).ns()),
                SimTime(Duration::seconds(2).ns()));
  // One datagram before, one inside, one after the window.
  sim.schedule(Duration::millis(500), [&] { a.send(b.address(), {0}); });
  sim.schedule(Duration::millis(1500), [&] { a.send(b.address(), {1}); });
  sim.schedule(Duration::millis(2500), [&] { a.send(b.address(), {2}); });
  sim.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.partition_dropped"), 1u);
}

TEST_F(LanRig, PartitionIsSymmetricAndSparesOutsiders) {
  Lan::Config cfg;
  cfg.jitter = Duration(0);
  Lan lan(sim, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  Endpoint& c = lan.create_endpoint();  // not in either group
  int b_got = 0, c_got = 0, a_got = 0;
  a.set_handler([&](Address, const Payload&) { ++a_got; });
  b.set_handler([&](Address, const Payload&) { ++b_got; });
  c.set_handler([&](Address, const Payload&) { ++c_got; });

  lan.partition({a.address()}, {b.address()}, SimTime::zero(),
                SimTime(Duration::seconds(10).ns()));
  EXPECT_TRUE(lan.partitioned(a.address(), b.address()));
  EXPECT_TRUE(lan.partitioned(b.address(), a.address()));
  EXPECT_FALSE(lan.partitioned(a.address(), c.address()));
  a.send(b.address(), {1});
  b.send(a.address(), {1});
  a.send(c.address(), {1});
  sim.run();
  EXPECT_EQ(a_got, 0);
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(c_got, 1);
}

TEST_F(LanRig, LinkLossAffectsOnlyThatPair) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  Endpoint& c = lan.create_endpoint();
  int b_got = 0, c_got = 0;
  b.set_handler([&](Address, const Payload&) { ++b_got; });
  c.set_handler([&](Address, const Payload&) { ++c_got; });

  lan.set_link_loss(a.address(), b.address(), 1.0);
  EXPECT_EQ(lan.link_loss(b.address(), a.address()), 1.0);  // symmetric
  for (int i = 0; i < 10; ++i) {
    a.send(b.address(), {1});
    a.send(c.address(), {1});
  }
  sim.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(c_got, 10);

  lan.set_link_loss(a.address(), b.address(), 0.0);  // heal
  a.send(b.address(), {1});
  sim.run();
  EXPECT_EQ(b_got, 1);
}

TEST_F(LanRig, RuntimeLossChangeTakesEffect) {
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  int got = 0;
  b.set_handler([&](Address, const Payload&) { ++got; });
  lan.set_loss(1.0);
  a.send(b.address(), {1});
  sim.run();
  EXPECT_EQ(got, 0);
  lan.set_loss(0.0);
  a.send(b.address(), {1});
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(LanRig, FifoStateStaysBoundedUnderLongTraffic) {
  // Regression guard: last_delivery_ used to grow one entry per (from, to)
  // pair forever; with amortized pruning, entries whose delivery time has
  // passed are reclaimed.
  Lan lan(sim, rng, Lan::Config{});
  Endpoint& hub = lan.create_endpoint();
  std::vector<Endpoint*> spokes;
  for (int i = 0; i < 64; ++i) spokes.push_back(&lan.create_endpoint());
  hub.set_handler([](Address, const Payload&) {});
  // Well past the prune period of sends, spread over simulated hours so
  // every past delivery is reclaimable at prune time.
  for (int round = 0; round < 40; ++round) {
    sim.schedule(Duration::seconds(round), [&] {
      for (auto* s : spokes) s->send(hub.address(), {1});
    });
  }
  sim.run();
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.delivered"), 64u * 40u);
  // All deliveries are in the past by the end of the run; the next prune
  // leaves at most the entries touched since it.
  EXPECT_LE(lan.fifo_state_size(), 2u * 64u + 1u);
}

}  // namespace
}  // namespace bips::net
