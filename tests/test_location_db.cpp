// Unit tests for the central location database.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/location_db.hpp"

namespace bips::core {
namespace {

constexpr std::uint64_t kDev1 = 0xB1, kDev2 = 0xB2;
SimTime at(double s) { return SimTime(Duration::from_seconds(s).ns()); }

TEST(LocationDb, LoginBindsOneToOne) {
  LocationDatabase db;
  EXPECT_TRUE(db.login("alice", kDev1, at(1)));
  EXPECT_EQ(db.addr_of("alice"), kDev1);
  EXPECT_EQ(db.userid_of(kDev1), "alice");
  EXPECT_TRUE(db.logged_in("alice"));
  EXPECT_EQ(db.session_count(), 1u);
}

TEST(LocationDb, RebindingEitherSideFails) {
  LocationDatabase db;
  ASSERT_TRUE(db.login("alice", kDev1, at(1)));
  EXPECT_FALSE(db.login("alice", kDev2, at(2)));  // userid taken
  EXPECT_FALSE(db.login("bob", kDev1, at(2)));    // device taken
  EXPECT_TRUE(db.login("bob", kDev2, at(2)));
}

TEST(LocationDb, InvalidLoginArgumentsRejected) {
  LocationDatabase db;
  EXPECT_FALSE(db.login("", kDev1, at(1)));
  EXPECT_FALSE(db.login("alice", 0, at(1)));
}

TEST(LocationDb, LogoutClearsSessionAndPresence) {
  LocationDatabase db;
  ASSERT_TRUE(db.login("alice", kDev1, at(1)));
  db.set_present(kDev1, 3, at(2));
  EXPECT_TRUE(db.logout(kDev1));
  EXPECT_FALSE(db.logged_in("alice"));
  EXPECT_FALSE(db.piconet_of(kDev1).has_value());
  EXPECT_FALSE(db.logout(kDev1));  // already gone
  // userid free again.
  EXPECT_TRUE(db.login("alice", kDev2, at(3)));
}

TEST(LocationDb, PresenceLifecycle) {
  LocationDatabase db;
  EXPECT_FALSE(db.piconet_of(kDev1).has_value());
  EXPECT_TRUE(db.set_present(kDev1, 5, at(1)));
  EXPECT_EQ(db.piconet_of(kDev1), 5u);
  EXPECT_EQ(db.present_since(kDev1), at(1));
  EXPECT_TRUE(db.set_absent(kDev1, 5, at(2)));
  EXPECT_FALSE(db.piconet_of(kDev1).has_value());
}

TEST(LocationDb, DuplicatePresenceIsRedundant) {
  LocationDatabase db;
  EXPECT_TRUE(db.set_present(kDev1, 5, at(1)));
  EXPECT_FALSE(db.set_present(kDev1, 5, at(2)));
  EXPECT_EQ(db.stats().redundant_updates, 1u);
  // The original timestamp survives.
  EXPECT_EQ(db.present_since(kDev1), at(1));
}

TEST(LocationDb, MoveBetweenStationsIsOneUpdate) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(1));
  EXPECT_TRUE(db.set_present(kDev1, 6, at(2)));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);
  EXPECT_EQ(db.present_since(kDev1), at(2));
}

TEST(LocationDb, StaleAbsenceFromOldStationIgnored) {
  // Device moved 5 -> 6; station 5's late absence must not erase the newer
  // presence at 6.
  LocationDatabase db;
  db.set_present(kDev1, 5, at(1));
  db.set_present(kDev1, 6, at(2));
  EXPECT_FALSE(db.set_absent(kDev1, 5, at(3)));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);
}

TEST(LocationDb, AbsenceForUnknownDeviceIsRedundant) {
  LocationDatabase db;
  EXPECT_FALSE(db.set_absent(kDev1, 5, at(1)));
  EXPECT_EQ(db.stats().redundant_updates, 1u);
}

TEST(LocationDb, PopulationCounts) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(1));
  db.set_present(kDev2, 5, at(1));
  EXPECT_EQ(db.population_of(5), 2u);
  db.set_present(kDev2, 6, at(2));
  EXPECT_EQ(db.population_of(5), 1u);
  EXPECT_EQ(db.population_of(6), 1u);
  EXPECT_EQ(db.population_of(7), 0u);
}

TEST(LocationDb, HistoryRecordsTransitionsInOrder) {
  // The full protocol flow of a move: station 5 reports presence, station 6
  // takes over, station 5 notices the departure (retiring its fallback
  // claim), station 6 finally reports the absence.
  LocationDatabase db;
  db.set_present(kDev1, 5, at(1));
  db.set_present(kDev1, 6, at(2));
  db.set_absent(kDev1, 5, at(3));  // station 5's own delayed absence
  db.set_absent(kDev1, 6, at(4));
  ASSERT_EQ(db.history().size(), 3u);
  EXPECT_TRUE(db.history()[0].present);
  EXPECT_EQ(db.history()[0].station, 5u);
  EXPECT_TRUE(db.history()[1].present);
  EXPECT_EQ(db.history()[1].station, 6u);
  EXPECT_FALSE(db.history()[2].present);
  EXPECT_EQ(db.history()[2].at, at(4));
}

TEST(LocationDb, HistoryBounded) {
  LocationDatabase db(4);
  for (int i = 0; i < 10; ++i) {
    db.set_present(kDev1, static_cast<StationId>(i), at(i));
  }
  EXPECT_EQ(db.history().size(), 4u);
  EXPECT_EQ(db.history().back().station, 9u);
  EXPECT_EQ(db.history().front().station, 6u);
}

TEST(LocationDb, StatsCountStateChanges) {
  LocationDatabase db;
  db.login("alice", kDev1, at(0));
  db.set_present(kDev1, 1, at(1));
  db.set_present(kDev1, 1, at(2));  // redundant
  db.set_present(kDev1, 2, at(3));
  db.set_absent(kDev1, 2, at(4));
  db.logout(kDev1);
  EXPECT_EQ(db.stats().presence_updates, 3u);
  EXPECT_EQ(db.stats().redundant_updates, 1u);
  EXPECT_EQ(db.stats().logins, 1u);
  EXPECT_EQ(db.stats().logouts, 1u);
}

}  // namespace
}  // namespace bips::core

// ---- temporal and inverse queries -----------------------------------------

namespace bips::core {
namespace {

TEST(LocationDbHistory, WhereWasTracksMovements) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10));
  db.set_present(kDev1, 6, at(20));
  db.set_absent(kDev1, 5, at(22));  // station 5 retires its claim
  db.set_absent(kDev1, 6, at(30));

  EXPECT_FALSE(db.where_was(kDev1, at(5)).has_value());  // before any record
  auto fix = db.where_was(kDev1, at(15));
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->station, 5u);
  EXPECT_EQ(fix->since, at(10));
  fix = db.where_was(kDev1, at(25));
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->station, 6u);
  EXPECT_FALSE(db.where_was(kDev1, at(35)).has_value());  // after leaving
}

TEST(LocationDbHistory, WhereWasAtExactTransitionInstant) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10));
  const auto fix = db.where_was(kDev1, at(10));
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->station, 5u);
}

TEST(LocationDbHistory, WhereWasIgnoresOtherDevices) {
  LocationDatabase db;
  db.set_present(kDev2, 7, at(10));
  EXPECT_FALSE(db.where_was(kDev1, at(20)).has_value());
}

TEST(LocationDbHistory, EvictionLosesOldAnswers) {
  LocationDatabase db(2);  // tiny history
  db.set_present(kDev1, 1, at(1));
  db.set_present(kDev1, 2, at(2));
  db.set_present(kDev1, 3, at(3));  // evicts the t=1 record
  EXPECT_FALSE(db.where_was(kDev1, at(1.5)).has_value());
  EXPECT_TRUE(db.where_was(kDev1, at(2.5)).has_value());
}

TEST(LocationDbInverse, DevicesAtStation) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(1));
  db.set_present(kDev2, 5, at(2));
  auto devs = db.devices_at(5);
  std::sort(devs.begin(), devs.end());
  EXPECT_EQ(devs, (std::vector<std::uint64_t>{kDev1, kDev2}));
  EXPECT_TRUE(db.devices_at(9).empty());
}

}  // namespace
}  // namespace bips::core

// ---- RSSI presence arbitration (overlapping piconets) ----------------------

namespace bips::core {
namespace {

TEST(LocationDbRssi, WeakerSimultaneousClaimSuppressed) {
  LocationDatabase db;
  EXPECT_TRUE(db.set_present(kDev1, 5, at(10), -50.0));
  // 2 s later, a farther workstation also heard the device.
  EXPECT_FALSE(db.set_present(kDev1, 6, at(12), -70.0));
  EXPECT_EQ(db.piconet_of(kDev1), 5u);
  EXPECT_EQ(db.stats().conflicts_suppressed, 1u);
}

TEST(LocationDbRssi, StrongerSimultaneousClaimWins) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -70.0);
  EXPECT_TRUE(db.set_present(kDev1, 6, at(12), -50.0));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);
}

TEST(LocationDbRssi, OldAttributionAlwaysYields) {
  // Outside the conflict window the user has genuinely moved: even a much
  // weaker sighting overrides.
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -30.0);
  EXPECT_TRUE(db.set_present(kDev1, 6, at(30), -80.0));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);
}

TEST(LocationDbRssi, EqualStrengthFavoursTheNewerClaim) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -60.0);
  EXPECT_TRUE(db.set_present(kDev1, 6, at(11), -60.0));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);
}

TEST(LocationDbRssi, RedundantUpdateRefreshesStrength) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -80.0);
  EXPECT_FALSE(db.set_present(kDev1, 5, at(11), -40.0));  // same station
  // The refreshed strength now defends against a mid-loud neighbour.
  EXPECT_FALSE(db.set_present(kDev1, 6, at(12), -60.0));
  EXPECT_EQ(db.piconet_of(kDev1), 5u);
}

TEST(LocationDbRssi, ConfigurableWindow) {
  LocationDatabase db;
  db.set_conflict_window(Duration::seconds(1));
  db.set_present(kDev1, 5, at(10), -30.0);
  // 2 s later is outside the 1 s window: newest wins despite weak signal.
  EXPECT_TRUE(db.set_present(kDev1, 6, at(12), -80.0));
}

}  // namespace
}  // namespace bips::core

// ---- runner-up promotion (the stranded-delta fix) --------------------------

namespace bips::core {
namespace {

TEST(LocationDbRunnerUp, SuppressedClaimPromotedWhenWinnerLeaves) {
  // The scenario that stranded devices before the fix: station 6's weaker
  // claim was suppressed (its workstation sent a delta and went silent);
  // when station 5 reports absence, 6's claim must take over instead of the
  // record vanishing.
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -40.0);
  EXPECT_FALSE(db.set_present(kDev1, 6, at(12), -70.0));  // suppressed
  EXPECT_TRUE(db.set_absent(kDev1, 5, at(20)));
  EXPECT_EQ(db.piconet_of(kDev1), 6u);  // promoted, not absent
}

TEST(LocationDbRunnerUp, DemotedPrimaryPromotedWhenWinnerLeaves) {
  // Override path: 6 wins over 5; 5's workstation still believes the server
  // knows about it. If 6 leaves first, 5 comes back.
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -70.0);
  EXPECT_TRUE(db.set_present(kDev1, 6, at(12), -40.0));
  EXPECT_TRUE(db.set_absent(kDev1, 6, at(20)));
  EXPECT_EQ(db.piconet_of(kDev1), 5u);
}

TEST(LocationDbRunnerUp, RunnerUpRetiredByItsOwnAbsence) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -70.0);
  db.set_present(kDev1, 6, at(12), -40.0);  // 5 demoted to runner-up
  EXPECT_FALSE(db.set_absent(kDev1, 5, at(14)));  // retires the fallback
  EXPECT_TRUE(db.set_absent(kDev1, 6, at(20)));
  EXPECT_FALSE(db.piconet_of(kDev1).has_value());  // fully gone
}

TEST(LocationDbRunnerUp, StrongerSuppressedClaimReplacesWeakerRunnerUp) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -30.0);
  EXPECT_FALSE(db.set_present(kDev1, 6, at(11), -60.0));  // runner-up: 6
  EXPECT_FALSE(db.set_present(kDev1, 7, at(12), -45.0));  // stronger: replaces
  EXPECT_TRUE(db.set_absent(kDev1, 5, at(13)));
  EXPECT_EQ(db.piconet_of(kDev1), 7u);
}

TEST(LocationDbRunnerUp, PromotionRecordsAnEnterTransition) {
  LocationDatabase db;
  db.set_present(kDev1, 5, at(10), -40.0);
  db.set_present(kDev1, 6, at(12), -70.0);  // suppressed -> runner-up
  db.set_absent(kDev1, 5, at(20));
  ASSERT_GE(db.history().size(), 2u);
  const auto& last = db.history().back();
  EXPECT_TRUE(last.present);
  EXPECT_EQ(last.station, 6u);
}

TEST(LocationDbRunnerUp, LogoutDropsEverything) {
  LocationDatabase db;
  db.login("alice", kDev1, at(0));
  db.set_present(kDev1, 5, at(10), -40.0);
  db.set_present(kDev1, 6, at(12), -70.0);  // runner-up
  db.logout(kDev1);
  EXPECT_FALSE(db.piconet_of(kDev1).has_value());
}

}  // namespace
}  // namespace bips::core
