// Unit tests for inquiry/page hop selection.
#include <gtest/gtest.h>

#include <set>

#include "src/baseband/hopping.hpp"

namespace bips::baseband {
namespace {

TEST(Hopping, TrainPartition) {
  for (std::uint32_t i = 0; i < kTrainSize; ++i) {
    EXPECT_EQ(train_of(i), Train::kA);
  }
  for (std::uint32_t i = kTrainSize; i < kChannelsPerSet; ++i) {
    EXPECT_EQ(train_of(i), Train::kB);
  }
  EXPECT_EQ(train_base(Train::kA), 0u);
  EXPECT_EQ(train_base(Train::kB), 16u);
  EXPECT_EQ(other_train(Train::kA), Train::kB);
  EXPECT_EQ(other_train(Train::kB), Train::kA);
}

TEST(Hopping, TrainSweepCoversExactlyItsSixteenChannels) {
  for (Train t : {Train::kA, Train::kB}) {
    std::set<std::uint32_t> seen;
    for (std::uint32_t slot = 0; slot < kTrainTxSlots; ++slot) {
      seen.insert(inquiry_tx_channel(t, slot, 0));
      seen.insert(inquiry_tx_channel(t, slot, 1));
    }
    EXPECT_EQ(seen.size(), kTrainSize);
    for (const auto ch : seen) EXPECT_EQ(train_of(ch), t);
  }
}

TEST(Hopping, TwoChannelsPerTxSlotAreDistinct) {
  for (std::uint32_t slot = 0; slot < kTrainTxSlots; ++slot) {
    EXPECT_NE(inquiry_tx_channel(Train::kA, slot, 0),
              inquiry_tx_channel(Train::kA, slot, 1));
  }
}

TEST(Hopping, ResponseChannelPairsOneToOne) {
  std::set<std::uint32_t> resp;
  for (std::uint32_t i = 0; i < kChannelsPerSet; ++i) {
    const RfChannel r = inquiry_response_channel(i);
    EXPECT_EQ(r.ns, 0u);
    resp.insert(r.index);
  }
  EXPECT_EQ(resp.size(), kChannelsPerSet);
}

TEST(Hopping, InquiryChannelsShareTheGiacNamespace) {
  EXPECT_EQ(inquiry_channel(7).ns, 0u);
  EXPECT_EQ(inquiry_channel(7).index, 7u);
}

TEST(Hopping, PageNamespaceIsPerAddressAndNonZero) {
  const BdAddr a(0x111111111111), b(0x222222222222);
  EXPECT_NE(page_namespace(a), 0u);
  EXPECT_NE(page_namespace(a), page_namespace(b));
  // Stable for the same address.
  EXPECT_EQ(page_namespace(a), page_namespace(BdAddr(0x111111111111)));
}

TEST(Hopping, PageChannelsNeverCollideWithInquiry) {
  const BdAddr a(0xABCDEF012345);
  for (std::uint32_t i = 0; i < kChannelsPerSet; ++i) {
    EXPECT_NE(page_channel(a, i).ns, 0u);
  }
}

TEST(Hopping, PageScanChannelFollowsClockPhase) {
  const BdAddr a(0x010203040506);
  const RfChannel c0 = page_scan_channel(a, 0);
  const RfChannel c1 = page_scan_channel(a, 1);
  EXPECT_EQ(c0.ns, page_namespace(a));
  EXPECT_NE(c0.index, c1.index);
  // Wraps mod 32.
  EXPECT_EQ(page_scan_channel(a, 32).index, c0.index);
}

TEST(Hopping, PredictedPageIndexMatchesScanPhaseBits) {
  // The pager predicts from FHS clock bits 16-12, which is exactly what the
  // scanner's clock uses.
  EXPECT_EQ(predicted_page_index(0), 0u);
  EXPECT_EQ(predicted_page_index(1u << 12), 1u);
  EXPECT_EQ(predicted_page_index(31u << 12), 31u);
  EXPECT_EQ(predicted_page_index(32u << 12), 0u);  // wraps
}

TEST(BdAddr, Formatting) {
  EXPECT_EQ(BdAddr(0x0A1B2C3D4E5F).to_string(), "0a:1b:2c:3d:4e:5f");
  EXPECT_EQ(BdAddr().to_string(), "00:00:00:00:00:00");
  EXPECT_TRUE(BdAddr().is_null());
  EXPECT_FALSE(BdAddr(1).is_null());
}

TEST(BdAddr, MasksTo48Bits) {
  EXPECT_EQ(BdAddr(0xFFFF'ABCD'0123'4567ull).raw(), 0xABCD'0123'4567ull);
}

TEST(Packet, Durations) {
  Packet p;
  p.type = PacketType::kId;
  EXPECT_EQ(p.duration().ns(), 68'000);
  p.type = PacketType::kFhs;
  EXPECT_EQ(p.duration().ns(), 366'000);
  // Every packet fits within its slot-pair budget.
  for (auto t : {PacketType::kId, PacketType::kFhs, PacketType::kPoll,
                 PacketType::kNull, PacketType::kAclData}) {
    p.type = t;
    EXPECT_LE(p.duration(), kSlot);
  }
}

}  // namespace
}  // namespace bips::baseband
