// Unit tests for the metrics registry (src/obs/metrics.hpp) and the
// Stats-struct migration of the instrumented components.
#include <gtest/gtest.h>

#include <string>

#include "src/core/location_db.hpp"
#include "src/net/lan.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"

namespace bips::obs {
namespace {

TEST(Metrics, InterningReturnsTheSameCell) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, CellAddressesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter* first = &reg.counter("a");
  for (int i = 0; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(first, &reg.counter("a"));
  first->inc();
  EXPECT_EQ(reg.counter_value("a"), 1u);
}

TEST(Metrics, DisabledRegistryDropsWritesButKeepsValues) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Timer& t = reg.timer("t");
  c.inc(3);
  g.set(1.5);
  t.record(2.0);

  reg.set_enabled(false);
  c.inc(100);
  g.set(99.0);
  t.record(99.0);
  EXPECT_EQ(c.value(), 3u);          // accumulated state survives the gate
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_EQ(t.stats().count(), 1u);

  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 4u);
}

TEST(Metrics, CallbackGaugeIsPolledAtReadTime) {
  MetricsRegistry reg;
  double live = 1.0;
  reg.gauge("live").set_callback([&] { return live; });
  EXPECT_DOUBLE_EQ(reg.gauge("live").value(), 1.0);
  live = 7.0;
  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 7.0);
}

TEST(Metrics, SnapshotIsSortedByNameRegardlessOfRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.timer("m.mid").record(3.0);
  reg.gauge("a.first").set(1.0);

  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "a.first");
  EXPECT_STREQ(rows[0].kind, "gauge");
  EXPECT_EQ(rows[1].name, "m.mid");
  EXPECT_STREQ(rows[1].kind, "timer");
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_DOUBLE_EQ(rows[1].value, 3.0);
  EXPECT_EQ(rows[2].name, "z.last");
  EXPECT_STREQ(rows[2].kind, "counter");
  EXPECT_EQ(rows[2].count, 2u);
}

TEST(Metrics, ToJsonIsDeterministicAndTyped) {
  MetricsRegistry reg;
  reg.counter("c").inc(42);
  reg.gauge("g").set(2.5);
  reg.timer("t").record(1.0);
  reg.timer("t").record(3.0);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"c\":42,\"g\":2.5,"
            "\"t\":{\"count\":2,\"mean\":2,\"min\":1,\"max\":3}}");
  EXPECT_EQ(json, reg.to_json());  // stable across calls
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistration) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  reg.timer("t").record(5.0);
  c.inc(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.timer("t").stats().count(), 0u);
  EXPECT_TRUE(reg.has("c"));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(&c, &reg.counter("c"));
}

TEST(Metrics, CounterValueIsZeroForAbsentOrNonCounterNames) {
  MetricsRegistry reg;
  reg.gauge("g").set(5.0);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.counter_value("g"), 0u);
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_TRUE(reg.has("g"));
}

// ---- migration equivalence: legacy Stats accessors == registry cells ----

TEST(MetricsMigration, LanCountsTrafficInRegistryCells) {
  sim::Simulator sim;
  Rng rng{3};
  net::Lan lan(sim, rng, net::Lan::Config{});
  net::Endpoint& a = lan.create_endpoint();
  net::Endpoint& b = lan.create_endpoint();
  b.set_handler([](net::Address, const net::Payload&) {});
  for (int i = 0; i < 5; ++i) a.send(b.address(), {1});
  sim.run();

  EXPECT_EQ(sim.obs().metrics.counter_value("lan.sent"), 5u);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.delivered"), 5u);
  EXPECT_EQ(sim.obs().metrics.counter_value("lan.dropped"), 0u);
}

TEST(MetricsMigration, StandaloneLocationDbFallsBackToOwnRegistry) {
  // Without a simulator-owned registry the database still counts -- it
  // creates a private one, so the deprecated stats() keeps working in
  // isolation (unit tests, offline tools).
  core::LocationDatabase db;
  ASSERT_TRUE(db.login("alice", 0xB1, SimTime(Duration::seconds(1).ns())));
  ASSERT_TRUE(db.set_present(0xB1, 3, SimTime(Duration::seconds(2).ns())));
  const auto s = db.stats();
  EXPECT_EQ(s.logins, 1u);
  EXPECT_EQ(s.presence_updates, 1u);
}

TEST(MetricsMigration, KernelGaugesAreLiveInEverySimulator) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule(Duration::seconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  auto& m = sim.obs().metrics;
  ASSERT_TRUE(m.has("kernel.events_executed"));
  EXPECT_DOUBLE_EQ(m.gauge("kernel.events_executed").value(),
                   static_cast<double>(sim.events_executed()));
  EXPECT_DOUBLE_EQ(m.gauge("kernel.events_pending").value(), 0.0);
}

}  // namespace
}  // namespace bips::obs
