// Property-style parameterised sweeps (TEST_P) over the protocol knobs:
// invariants that must hold across the whole configuration space, not just
// the defaults.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/net/lan.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct Rig {
  sim::Simulator sim;
  Rng rng;
  RadioChannel radio;
  explicit Rig(std::uint64_t seed) : rng(seed), radio(sim, rng, ChannelConfig{}) {}
  std::unique_ptr<Device> dev(std::uint64_t a) {
    return std::make_unique<Device>(sim, radio, BdAddr(a), rng.fork());
  }
};

// ---- sweep 1: backoff window ------------------------------------------

class BackoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackoffSweep, DiscoveryBoundedByBackoffWindow) {
  const int max_slots = GetParam();
  Rig rig(1000 + max_slots);
  auto master = rig.dev(0xA1);
  auto slave = rig.dev(0xB1);

  std::optional<SimTime> found;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { found = r.received_at; });
  ScanConfig scan;
  scan.window = scan.interval = kDefaultScanInterval;  // continuous
  scan.channel_mode = ScanChannelMode::kFixed;
  BackoffConfig bo;
  bo.max_slots = max_slots;
  InquiryScanner sc(*slave, scan, bo);
  sc.set_initial_channel(4);  // train A
  sc.start_with_phase(Duration(0));
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(8).ns()));

  ASSERT_TRUE(found.has_value());
  // Bound: one train sweep + backoff + one sweep + exchange slack.
  const double bound =
      0.010 + max_slots * kSlot.to_seconds() + 0.010 + 0.050;
  EXPECT_LT(found->to_seconds(), bound);
}

INSTANTIATE_TEST_SUITE_P(Backoffs, BackoffSweep,
                         ::testing::Values(0, 31, 127, 255, 511, 1023, 2047));

// ---- sweep 2: scan schedule -------------------------------------------

class ScanSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (win ms*100, int ms)

TEST_P(ScanSweep, DiscoveryWithinAFewIntervals) {
  const auto [win_hundredths_ms, interval_ms] = GetParam();
  Rig rig(2000 + interval_ms + win_hundredths_ms);
  auto master = rig.dev(0xA1);
  auto slave = rig.dev(0xB1);

  std::optional<SimTime> found;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { found = r.received_at; });
  ScanConfig scan;
  scan.window = Duration::micros(win_hundredths_ms * 10);
  scan.interval = Duration::millis(interval_ms);
  scan.channel_mode = ScanChannelMode::kStickyTrain;
  InquiryScanner sc(*slave, scan, BackoffConfig{});
  sc.set_initial_channel(2);  // train A
  sc.start();
  inq.start();
  rig.sim.run_until(SimTime(Duration::seconds(30).ns()));

  ASSERT_TRUE(found.has_value());
  // Three waits of at most one interval each (first window, backoff
  // re-entry, response window) plus the backoff itself and slack.
  const double bound = 3.0 * interval_ms / 1000.0 + 0.64 + 0.2;
  EXPECT_LT(found->to_seconds(), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ScanSweep,
    ::testing::Values(std::tuple{1125, 1280},   // spec defaults
                      std::tuple{2250, 1280},   // double window
                      std::tuple{1125, 640},    // faster interval
                      std::tuple{4500, 2560},   // slow but wide
                      std::tuple{1125, 320}));  // very aggressive

// ---- sweep 3: population ----------------------------------------------

class PopulationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PopulationSweep, DedicatedMasterFindsEveryone) {
  const int n = GetParam();
  Rig rig(3000 + n);
  auto master = rig.dev(0xA1);
  std::set<std::uint64_t> found;
  Inquirer inq(*master, InquiryConfig{},
               [&](const InquiryResponse& r) { found.insert(r.addr.raw()); });
  std::vector<std::unique_ptr<Device>> devs;
  std::vector<std::unique_ptr<InquiryScanner>> scans;
  for (int i = 0; i < n; ++i) {
    devs.push_back(rig.dev(0xB00 + i));
    ScanConfig scan;
    scan.window = scan.interval = kDefaultScanInterval;
    scans.push_back(
        std::make_unique<InquiryScanner>(*devs.back(), scan, BackoffConfig{}));
    scans.back()->start();
  }
  inq.start();
  rig.sim.run_until(SimTime(Duration::from_seconds(10.24).ns()));
  EXPECT_EQ(found.size(), static_cast<std::size_t>(n));

  // Channel accounting sanity: every loss is attributed.
  const auto& m = rig.sim.obs().metrics;
  EXPECT_GT(m.counter_value("radio.transmissions"), 0u);
  EXPECT_EQ(m.counter_value("radio.dropped_per"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Populations, PopulationSweep,
                         ::testing::Values(1, 2, 5, 10, 15, 20, 30));

// ---- sweep 4: scan channel modes --------------------------------------

class ChannelModeSweep : public ::testing::TestWithParam<ScanChannelMode> {};

TEST_P(ChannelModeSweep, TrainMembershipInvariant) {
  Rig rig(4000);
  auto slave = rig.dev(0xB1);
  ScanConfig scan;
  scan.channel_mode = GetParam();
  InquiryScanner sc(*slave, scan, BackoffConfig{});
  sc.set_initial_channel(5);  // train A
  sc.start_with_phase(Duration(0));
  // Step through windows; the *reported* upcoming train must follow the
  // mode's rule.
  bool ever_b = false;
  for (int w = 0; w < 40; ++w) {
    const Train t = sc.current_train();
    if (GetParam() == ScanChannelMode::kFixed ||
        GetParam() == ScanChannelMode::kStickyTrain) {
      EXPECT_EQ(t, Train::kA);
    }
    ever_b |= (t == Train::kB);
    rig.sim.run_until(rig.sim.now() + scan.interval);
  }
  if (GetParam() == ScanChannelMode::kSequence) {
    EXPECT_TRUE(ever_b);  // the full sequence crosses trains
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ChannelModeSweep,
                         ::testing::Values(ScanChannelMode::kFixed,
                                           ScanChannelMode::kStickyTrain,
                                           ScanChannelMode::kSequence));

}  // namespace
}  // namespace bips::baseband

namespace bips::sim {
namespace {

// ---- sweep 5: engine ordering invariant --------------------------------

class EngineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSeedSweep, FireTimesAreMonotone) {
  Simulator s;
  Rng rng(GetParam());
  std::vector<std::int64_t> fire_times;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    const auto delay = Duration::micros(
        static_cast<std::int64_t>(rng.uniform(1'000'000)));
    handles.push_back(
        s.schedule(delay, [&] { fire_times.push_back(s.now().ns()); }));
  }
  // Cancel a random third.
  for (auto& h : handles) {
    if (rng.chance(0.33)) h.cancel();
  }
  s.run();
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    ASSERT_LE(fire_times[i - 1], fire_times[i]);
  }
  EXPECT_EQ(s.events_pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace bips::sim

namespace bips::net {
namespace {

// ---- sweep 6: LAN FIFO under any jitter --------------------------------

class LanJitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(LanJitterSweep, FifoHoldsForAnyJitter) {
  sim::Simulator simu;
  Rng rng(GetParam());
  Lan::Config cfg;
  cfg.base_latency = Duration::micros(50);
  cfg.jitter = Duration::micros(GetParam() * 100);
  Lan lan(simu, rng, cfg);
  Endpoint& a = lan.create_endpoint();
  Endpoint& b = lan.create_endpoint();
  std::vector<std::uint8_t> order;
  b.set_handler([&](Address, const Payload& p) { order.push_back(p[0]); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    simu.schedule(Duration::micros(i * 7),
                  [&a, &b, i] { a.send(b.address(), {i}); });
  }
  simu.run();
  ASSERT_EQ(order.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) ASSERT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(Jitters, LanJitterSweep,
                         ::testing::Values(0, 1, 5, 20, 100));

}  // namespace
}  // namespace bips::net

// ---- sweep 7: randomized full-system soak ----------------------------------

#include "src/core/simulation.hpp"

namespace bips::core {
namespace {

class SystemSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemSoak, InvariantsHoldOnRandomDeployments) {
  Rng rng(GetParam());

  // Random connected building: 2..6 rooms on a chain plus random extras.
  mobility::Building b;
  const int rooms = 2 + static_cast<int>(rng.uniform(5));
  for (int i = 0; i < rooms; ++i) {
    b.add_room("r" + std::to_string(i),
               Vec2{12.0 * i + rng.uniform_double() * 3,
                    rng.uniform_double() * 6});
  }
  for (int i = 1; i < rooms; ++i) {
    b.connect(static_cast<mobility::RoomId>(i - 1),
              static_cast<mobility::RoomId>(i));
  }
  if (rooms > 2 && rng.chance(0.5)) {
    b.connect(0, static_cast<mobility::RoomId>(rooms - 1),
              12.0 * rooms);
  }

  SimulationConfig cfg;
  cfg.seed = GetParam() * 7919;
  cfg.stagger_inquiry = rng.chance(0.5);
  cfg.lan.loss = rng.chance(0.3) ? 0.2 : 0.0;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(5);
  cfg.mobility.pause_max = Duration::seconds(30);

  BipsSimulation sim(std::move(b), cfg);
  const int users = 1 + static_cast<int>(rng.uniform(10));
  for (int i = 0; i < users; ++i) {
    sim.add_user("User" + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(rng.uniform(rooms)));
  }
  sim.enable_tracking_metrics(Duration::seconds(1));
  sim.run_for(Duration::seconds(150));

  // Invariants, whatever happened above:
  for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
    auto& pico = sim.workstation(static_cast<StationId>(s)).scheduler().piconet();
    // AM_ADDR limit never exceeded.
    EXPECT_LE(pico.active_count(), 7u);
    // Membership arithmetic consistent.
    EXPECT_EQ(pico.active_count() + pico.parked_count(), pico.slave_count());
  }
  // Every DB presence points at a real station and a logged-in or at least
  // known device; every session is unique per user and device.
  const auto& db = sim.server().locations();
  std::size_t present = 0;
  for (int i = 0; i < users; ++i) {
    const std::string id = "u" + std::to_string(i);
    const auto room = sim.db_room(id);
    if (room) {
      EXPECT_LT(*room, sim.workstation_count());
      ++present;
    }
    if (sim.client(id)->logged_in()) {
      EXPECT_TRUE(db.logged_in(id));
      EXPECT_EQ(db.addr_of(id), sim.client(id)->addr().raw());
    }
  }
  // On a lossless LAN everything acks out eventually.
  if (cfg.lan.loss == 0.0) {
    for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
      EXPECT_EQ(sim.workstation(static_cast<StationId>(s)).unacked_updates(),
                0u);
    }
  }
  // The system did make progress: most users are somewhere in the DB.
  EXPECT_GT(present, 0u);
  // Tracking samples only count logged-in users; accuracy is a probability.
  const auto& m = sim.tracking();
  EXPECT_LE(m.correct_room + m.agree_absent + m.wrong_room + m.false_absent +
                m.false_present,
            m.samples);
}

INSTANTIATE_TEST_SUITE_P(Deployments, SystemSoak,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

}  // namespace
}  // namespace bips::core
