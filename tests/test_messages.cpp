// Unit + property tests for BIPS protocol messages.
#include <gtest/gtest.h>

#include "src/proto/messages.hpp"
#include "src/util/rng.hpp"

namespace bips::proto {
namespace {

template <typename T>
T round_trip(const T& in) {
  const Bytes b = encode(Message(in));
  const auto out = decode(b);
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*out));
  return std::get<T>(*out);
}

TEST(Messages, LoginRequestRoundTrip) {
  LoginRequest m{0xC0FFEE000001, "gm", "secret-pw"};
  const auto out = round_trip(m);
  EXPECT_EQ(out.bd_addr, m.bd_addr);
  EXPECT_EQ(out.userid, "gm");
  EXPECT_EQ(out.password, "secret-pw");
}

TEST(Messages, LoginReplyRoundTrip) {
  LoginReply m{42, false, "bad credentials"};
  const auto out = round_trip(m);
  EXPECT_EQ(out.bd_addr, 42u);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.reason, "bad credentials");
}

TEST(Messages, LogoutRoundTrips) {
  const auto req = round_trip(LogoutRequest{7, "alice"});
  EXPECT_EQ(req.bd_addr, 7u);
  EXPECT_EQ(req.userid, "alice");
  const auto rep = round_trip(LogoutReply{7, true});
  EXPECT_TRUE(rep.ok);
}

TEST(Messages, PresenceUpdateRoundTrip) {
  PresenceUpdate m{3, 0xB1, true, 123'456'789};
  const auto out = round_trip(m);
  EXPECT_EQ(out.workstation, 3u);
  EXPECT_EQ(out.bd_addr, 0xB1u);
  EXPECT_TRUE(out.present);
  EXPECT_EQ(out.timestamp_ns, 123'456'789);
}

TEST(Messages, WhereIsRoundTrips) {
  const auto req = round_trip(WhereIsRequest{9, 0xB2, "Prof. Rossi"});
  EXPECT_EQ(req.query_id, 9u);
  EXPECT_EQ(req.requester_bd_addr, 0xB2u);
  EXPECT_EQ(req.target_user, "Prof. Rossi");
  const auto rep =
      round_trip(WhereIsReply{9, QueryStatus::kOk, "lab-networks"});
  EXPECT_EQ(rep.status, QueryStatus::kOk);
  EXPECT_EQ(rep.room, "lab-networks");
}

TEST(Messages, PathRoundTrips) {
  const auto req = round_trip(PathRequest{5, 0xB3, "Bob", 2});
  EXPECT_EQ(req.from_room, 2u);
  PathReply rep_in;
  rep_in.query_id = 5;
  rep_in.status = QueryStatus::kOk;
  rep_in.rooms = {"lobby", "office-a", "office-b"};
  rep_in.distance = 26.0;
  const auto rep = round_trip(rep_in);
  EXPECT_EQ(rep.rooms, rep_in.rooms);
  EXPECT_DOUBLE_EQ(rep.distance, 26.0);
}

TEST(Messages, EmptyPathReply) {
  PathReply m;
  m.status = QueryStatus::kNotLoggedIn;
  const auto out = round_trip(m);
  EXPECT_TRUE(out.rooms.empty());
  EXPECT_EQ(out.status, QueryStatus::kNotLoggedIn);
}

TEST(Messages, AllStatusValuesSurvive) {
  for (auto s : {QueryStatus::kOk, QueryStatus::kUnknownUser,
                 QueryStatus::kNotLoggedIn, QueryStatus::kAccessDenied,
                 QueryStatus::kUnreachable, QueryStatus::kLocationUnknown}) {
    EXPECT_EQ(round_trip(WhereIsReply{1, s, ""}).status, s);
  }
}

TEST(Messages, StatusNames) {
  EXPECT_STREQ(to_string(QueryStatus::kOk), "ok");
  EXPECT_STREQ(to_string(QueryStatus::kAccessDenied), "access-denied");
  EXPECT_STREQ(to_string(QueryStatus::kLocationUnknown), "location-unknown");
}

TEST(Messages, DecodeRejectsEmpty) {
  EXPECT_FALSE(decode(Bytes{}).has_value());
}

TEST(Messages, DecodeRejectsUnknownTag) {
  EXPECT_FALSE(decode(Bytes{0x00}).has_value());
  EXPECT_FALSE(decode(Bytes{0x63}).has_value());
}

TEST(Messages, DecodeRejectsTruncation) {
  Bytes b = encode(Message(LoginRequest{1, "user", "pw"}));
  for (std::size_t cut = 1; cut < b.size(); ++cut) {
    const Bytes partial(b.begin(), b.begin() + cut);
    EXPECT_FALSE(decode(partial).has_value()) << "cut at " << cut;
  }
}

TEST(Messages, DecodeRejectsTrailingGarbage) {
  Bytes b = encode(Message(LogoutReply{1, true}));
  b.push_back(0xFF);
  EXPECT_FALSE(decode(b).has_value());
}

TEST(Messages, DecodeRejectsInvalidStatusByte) {
  Bytes b = encode(Message(WhereIsReply{1, QueryStatus::kOk, "x"}));
  b[4 + 1] = 99;  // status byte sits after tag + u32 query id
  EXPECT_FALSE(decode(b).has_value());
}

// Property: random byte soup never crashes the decoder, and every decode
// success re-encodes to a canonical form that decodes identically.
TEST(Messages, FuzzDecodeNeverCrashes) {
  bips::Rng rng(0xF00D);
  int decoded = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    Bytes b(rng.uniform(40));
    for (auto& byte : b) {
      byte = static_cast<std::uint8_t>(rng.uniform(256));
    }
    const auto m = decode(b);
    if (m) {
      ++decoded;
      const Bytes canonical = encode(*m);
      EXPECT_TRUE(decode(canonical).has_value());
    }
  }
  // Sanity: the fuzzer isn't vacuous -- some inputs do parse.
  EXPECT_GT(decoded, 0);
}

// Property: encode/decode is the identity on randomly generated messages.
TEST(Messages, RandomMessageRoundTripProperty) {
  bips::Rng rng(0xBEEF);
  auto rand_str = [&](std::size_t max_len) {
    std::string s(rng.uniform(max_len + 1), '\0');
    for (auto& c : s) c = static_cast<char>('a' + rng.uniform(26));
    return s;
  };
  for (int trial = 0; trial < 2'000; ++trial) {
    switch (rng.uniform(4)) {
      case 0: {
        LoginRequest m{rng.next_u64() & 0xFFFFFFFFFFFF, rand_str(12),
                       rand_str(20)};
        const auto out = round_trip(m);
        EXPECT_EQ(out.userid, m.userid);
        EXPECT_EQ(out.password, m.password);
        break;
      }
      case 1: {
        PresenceUpdate m{static_cast<std::uint32_t>(rng.uniform(100)),
                         rng.next_u64() & 0xFFFFFFFFFFFF, rng.chance(0.5),
                         static_cast<std::int64_t>(rng.next_u64() >> 1)};
        const auto out = round_trip(m);
        EXPECT_EQ(out.workstation, m.workstation);
        EXPECT_EQ(out.timestamp_ns, m.timestamp_ns);
        break;
      }
      case 2: {
        WhereIsRequest m{static_cast<std::uint32_t>(rng.next_u64()),
                         rng.next_u64() & 0xFFFFFFFFFFFF, rand_str(30)};
        const auto out = round_trip(m);
        EXPECT_EQ(out.query_id, m.query_id);
        EXPECT_EQ(out.target_user, m.target_user);
        break;
      }
      default: {
        PathReply m;
        m.query_id = static_cast<std::uint32_t>(rng.next_u64());
        m.status = QueryStatus::kOk;
        const auto n = rng.uniform(6);
        for (std::uint64_t i = 0; i < n; ++i) m.rooms.push_back(rand_str(10));
        m.distance = rng.uniform_double() * 100;
        const auto out = round_trip(m);
        EXPECT_EQ(out.rooms, m.rooms);
        EXPECT_DOUBLE_EQ(out.distance, m.distance);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace bips::proto

// ---- extended message set (subscriptions, history, reliability) ----------

namespace bips::proto {
namespace {

TEST(MessagesExt, PresenceUpdateCarriesSeq) {
  PresenceUpdate m{3, 0xB1, true, 42, 77};
  const auto out = round_trip(m);
  EXPECT_EQ(out.seq, 77u);
}

TEST(MessagesExt, PresenceAckRoundTrip) {
  const auto out = round_trip(PresenceAck{9, 123456789ull});
  EXPECT_EQ(out.workstation, 9u);
  EXPECT_EQ(out.seq, 123456789ull);
}

TEST(MessagesExt, WhoIsInRoundTrips) {
  const auto req = round_trip(WhoIsInRequest{4, 0xB1, "library"});
  EXPECT_EQ(req.room, "library");
  WhoIsInReply rep_in;
  rep_in.query_id = 4;
  rep_in.status = QueryStatus::kOk;
  rep_in.users = {"Alice", "Bob"};
  const auto rep = round_trip(rep_in);
  EXPECT_EQ(rep.users, rep_in.users);
}

TEST(MessagesExt, WhoIsInEmptyRoom) {
  WhoIsInReply m;
  m.status = QueryStatus::kOk;
  EXPECT_TRUE(round_trip(m).users.empty());
}

TEST(MessagesExt, HistoryRoundTrips) {
  const auto req = round_trip(HistoryRequest{5, 0xB2, "Bob", -17});
  EXPECT_EQ(req.at_time_ns, -17);
  HistoryReply rep_in;
  rep_in.query_id = 5;
  rep_in.status = QueryStatus::kOk;
  rep_in.was_present = true;
  rep_in.room = "lab-systems";
  rep_in.since_ns = 999;
  const auto rep = round_trip(rep_in);
  EXPECT_TRUE(rep.was_present);
  EXPECT_EQ(rep.room, "lab-systems");
  EXPECT_EQ(rep.since_ns, 999);
}

TEST(MessagesExt, SubscribeRoundTrips) {
  const auto sub = round_trip(SubscribeRequest{6, 0xB3, "Carol", false});
  EXPECT_FALSE(sub.unsubscribe);
  const auto unsub = round_trip(SubscribeRequest{7, 0xB3, "Carol", true});
  EXPECT_TRUE(unsub.unsubscribe);
  EXPECT_EQ(round_trip(SubscribeReply{6, QueryStatus::kAccessDenied}).status,
            QueryStatus::kAccessDenied);
}

TEST(MessagesExt, MovementEventRoundTrip) {
  MovementEvent m{0xB4, "Dave", true, "coffee-corner", 5'000'000'000};
  const auto out = round_trip(m);
  EXPECT_EQ(out.subscriber_bd_addr, 0xB4u);
  EXPECT_EQ(out.target_user, "Dave");
  EXPECT_TRUE(out.entered);
  EXPECT_EQ(out.room, "coffee-corner");
  EXPECT_EQ(out.timestamp_ns, 5'000'000'000);
}

// ---- versioned unified Query/QueryResult wire format -----------------------

TEST(QueryWire, QueryRoundTripsEveryKind) {
  const Query queries[] = {
      Query::where_is("alice", "Bob"),
      Query::path_to("alice", "Bob", 7),
      Query::who_is_in("alice", "library"),
      Query::where_was("alice", "Bob", SimTime(123'456'789)),
      Query::history_since("", "Bob", SimTime(42)),
  };
  for (const Query& q : queries) {
    const Query out = round_trip(q);
    EXPECT_EQ(out.kind, q.kind);
    EXPECT_EQ(out.requester, q.requester);
    EXPECT_EQ(out.target, q.target);
    EXPECT_EQ(out.from_station, q.from_station);
    EXPECT_EQ(out.at_ns, q.at_ns);
  }
}

TEST(QueryWire, QueryResultRoundTripsEveryStatus) {
  for (auto s : {QueryStatus::kOk, QueryStatus::kUnknownUser,
                 QueryStatus::kNotLoggedIn, QueryStatus::kAccessDenied,
                 QueryStatus::kUnreachable, QueryStatus::kLocationUnknown,
                 QueryStatus::kZoneUnavailable}) {
    QueryResult res;
    res.status = s;
    EXPECT_EQ(round_trip(res).status, s);
  }
  EXPECT_STREQ(to_string(QueryStatus::kZoneUnavailable), "zone-unavailable");
}

TEST(QueryWire, QueryResultRoundTripsAllFields) {
  QueryResult res;
  res.status = QueryStatus::kOk;
  res.room = "lab-networks";
  res.users = {"Alice", "Bob"};
  res.rooms = {"lobby", "corridor", "lab-networks"};
  res.distance = 23.5;
  res.was_present = true;
  res.since = SimTime(7'000'000'001);
  res.visits = {{"lobby", true, SimTime(1)}, {"lobby", false, SimTime(2)}};
  const QueryResult out = round_trip(res);
  EXPECT_EQ(out.room, res.room);
  EXPECT_EQ(out.users, res.users);
  EXPECT_EQ(out.rooms, res.rooms);
  EXPECT_DOUBLE_EQ(out.distance, res.distance);
  EXPECT_TRUE(out.was_present);
  EXPECT_EQ(out.since, res.since);
  ASSERT_EQ(out.visits.size(), 2u);
  EXPECT_EQ(out.visits[0].room, "lobby");
  EXPECT_TRUE(out.visits[0].entered);
  EXPECT_FALSE(out.visits[1].entered);
  EXPECT_EQ(out.visits[1].at, SimTime(2));
}

TEST(QueryWire, PresenceBatchRoundTrip) {
  PresenceBatch batch;
  batch.workstation = 5;
  batch.updates.push_back(PresenceUpdate{5, 0xB1, true, 100, 3, -52.0});
  batch.updates.push_back(PresenceUpdate{5, 0xB2, false, 200, 4, 0.0});
  const PresenceBatch out = round_trip(batch);
  EXPECT_EQ(out.workstation, 5u);
  ASSERT_EQ(out.updates.size(), 2u);
  EXPECT_EQ(out.updates[0].bd_addr, 0xB1u);
  EXPECT_TRUE(out.updates[0].present);
  EXPECT_EQ(out.updates[0].seq, 3u);
  EXPECT_EQ(out.updates[1].bd_addr, 0xB2u);
  EXPECT_FALSE(out.updates[1].present);
  EXPECT_EQ(out.updates[1].timestamp_ns, 200);
}

// The version byte leads both bodies (right after the tag byte): an
// encoder from the future is rejected instead of misparsed.
TEST(QueryWire, RejectsUnknownWireVersion) {
  Bytes q = encode(Message(Query::where_is("a", "B")));
  q[1] = kQueryWireVersion + 1;
  EXPECT_FALSE(decode(q).has_value());

  Bytes res = encode(Message(QueryResult{}));
  res[1] = 0;  // version 0 never existed
  EXPECT_FALSE(decode(res).has_value());
}

TEST(QueryWire, RejectsUnknownKindAndStatusBytes) {
  Bytes q = encode(Message(Query::where_is("a", "B")));
  q[2] = 250;  // kind byte follows the version byte
  EXPECT_FALSE(decode(q).has_value());

  Bytes res = encode(Message(QueryResult{}));
  res[2] = static_cast<std::uint8_t>(QueryStatus::kZoneUnavailable) + 1;
  EXPECT_FALSE(decode(res).has_value());
}

TEST(QueryWire, RejectsTruncationAtEveryByte) {
  QueryResult res;
  res.status = QueryStatus::kOk;
  res.room = "lab";
  res.users = {"Alice"};
  res.visits = {{"lab", true, SimTime(9)}};
  for (const Message m :
       {Message(Query::history_since("alice", "Bob", SimTime(5))),
        Message(res)}) {
    const Bytes b = encode(m);
    for (std::size_t cut = 1; cut < b.size(); ++cut) {
      EXPECT_FALSE(decode(Bytes(b.begin(), b.begin() + cut)).has_value())
          << "cut at " << cut;
    }
  }
}

TEST(MessagesExt, NewTagsRejectTruncation) {
  for (const Message m : {Message(PresenceAck{1, 2}),
                          Message(WhoIsInRequest{1, 2, "x"}),
                          Message(SubscribeRequest{1, 2, "y", false}),
                          Message(MovementEvent{1, "z", true, "r", 3})}) {
    Bytes b = encode(m);
    for (std::size_t cut = 1; cut < b.size(); ++cut) {
      EXPECT_FALSE(decode(Bytes(b.begin(), b.begin() + cut)).has_value());
    }
  }
}

TEST(SessionWire, EpochNoticeRoundTrip) {
  EpochNotice m;
  m.server_epoch = 0xDEADBEEF;
  const auto out = round_trip(m);
  EXPECT_EQ(out.server_epoch, 0xDEADBEEFu);
}

TEST(SessionWire, EpochNoticeRejectsTruncation) {
  const Bytes b = encode(Message(EpochNotice{7}));
  for (std::size_t cut = 1; cut < b.size(); ++cut) {
    EXPECT_FALSE(decode(Bytes(b.begin(), b.begin() + cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(SessionWire, LoginMessagesCarryEpochFields) {
  LoginRequest req{0xB1, "gm", "pw"};
  req.prior_epoch = 3;
  EXPECT_EQ(round_trip(req).prior_epoch, 3u);

  LoginReply rep{0xB1, true, ""};
  rep.server_epoch = 4;
  EXPECT_EQ(round_trip(rep).server_epoch, 4u);
}

// Both session bodies lead with kSessionWireVersion; any other version
// byte must be rejected outright, not misparsed against the new layout.
TEST(SessionWire, LoginMessagesRejectWrongWireVersion) {
  for (const Message m : {Message(LoginRequest{0xB1, "gm", "pw"}),
                          Message(LoginReply{0xB1, true, ""})}) {
    Bytes b = encode(m);
    ASSERT_GT(b.size(), 2u);
    ASSERT_EQ(b[1], kSessionWireVersion);  // tag byte, then version byte
    b[1] = kSessionWireVersion + 1;
    EXPECT_FALSE(decode(b).has_value());
    b[1] = 1;  // the pre-epoch implicit-v1 layout is not decodable either
    EXPECT_FALSE(decode(b).has_value());
  }
}

TEST(SessionWire, LoginMessagesRejectTruncation) {
  LoginRequest req{0xB1, "gm", "pw"};
  req.prior_epoch = 9;
  LoginReply rep{0xB1, true, ""};
  rep.server_epoch = 9;
  for (const Message m : {Message(req), Message(rep)}) {
    const Bytes b = encode(m);
    for (std::size_t cut = 1; cut < b.size(); ++cut) {
      EXPECT_FALSE(decode(Bytes(b.begin(), b.begin() + cut)).has_value())
          << "cut at " << cut;
    }
  }
}

}  // namespace
}  // namespace bips::proto
