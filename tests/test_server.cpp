// Wire-level tests of the BIPS central server over the simulated LAN.
#include <gtest/gtest.h>

#include <optional>

#include "src/core/server.hpp"

namespace bips::core {
namespace {

using proto::QueryStatus;

struct ServerRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{17};
  net::Lan lan{sim, rng, net::Lan::Config{}};
  mobility::Building building = mobility::Building::department();
  BipsServer server{sim, lan, building, BipsServer::Config{}};
  net::Endpoint& ws = lan.create_endpoint();  // plays a workstation
  std::vector<proto::Message> replies;

  void SetUp() override {
    ws.set_handler([this](net::Address, const net::Payload& data) {
      auto m = proto::decode(data);
      ASSERT_TRUE(m.has_value());
      replies.push_back(*m);
    });
    ASSERT_TRUE(server.registry().register_user("alice", "Alice", "pw-a", 1));
    ASSERT_TRUE(server.registry().register_user("bob", "Bob", "pw-b", 2));
  }

  void send(const proto::Message& m) {
    ws.send(server.address(), proto::encode(m));
    sim.run();
  }

  template <typename T>
  T last_reply() {
    EXPECT_FALSE(replies.empty());
    T out = std::get<T>(replies.back());
    return out;
  }

  void login(const std::string& userid, std::uint64_t addr,
             const std::string& pw) {
    send(proto::LoginRequest{addr, userid, pw});
    ASSERT_TRUE(last_reply<proto::LoginReply>().ok);
  }

  std::uint64_t ctr(std::string_view name) const {
    return sim.obs().metrics.counter_value(name);
  }
};

TEST_F(ServerRig, LoginHappyPath) {
  send(proto::LoginRequest{0xB1, "alice", "pw-a"});
  const auto rep = last_reply<proto::LoginReply>();
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.bd_addr, 0xB1u);
  EXPECT_TRUE(server.locations().logged_in("alice"));
  EXPECT_EQ(ctr("server.logins_ok"), 1u);
}

TEST_F(ServerRig, LoginBadPassword) {
  send(proto::LoginRequest{0xB1, "alice", "wrong"});
  const auto rep = last_reply<proto::LoginReply>();
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.reason, "bad credentials");
  EXPECT_FALSE(server.locations().logged_in("alice"));
}

TEST_F(ServerRig, LoginUnknownUser) {
  send(proto::LoginRequest{0xB1, "ghost", "pw"});
  EXPECT_FALSE(last_reply<proto::LoginReply>().ok);
}

TEST_F(ServerRig, LoginIsIdempotentForSameBinding) {
  login("alice", 0xB1, "pw-a");
  send(proto::LoginRequest{0xB1, "alice", "pw-a"});
  EXPECT_TRUE(last_reply<proto::LoginReply>().ok);
  EXPECT_EQ(server.locations().session_count(), 1u);
}

TEST_F(ServerRig, SecondDeviceForSameUserRejected) {
  login("alice", 0xB1, "pw-a");
  send(proto::LoginRequest{0xB2, "alice", "pw-a"});
  const auto rep = last_reply<proto::LoginReply>();
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.reason, "userid or device already bound");
}

TEST_F(ServerRig, LogoutRequiresMatchingBinding) {
  login("alice", 0xB1, "pw-a");
  send(proto::LogoutRequest{0xB1, "bob"});
  EXPECT_FALSE(last_reply<proto::LogoutReply>().ok);
  send(proto::LogoutRequest{0xB1, "alice"});
  EXPECT_TRUE(last_reply<proto::LogoutReply>().ok);
  EXPECT_FALSE(server.locations().logged_in("alice"));
}

TEST_F(ServerRig, PresenceUpdatesFeedTheDb) {
  send(proto::PresenceUpdate{3, 0xB1, true, 1000});
  EXPECT_EQ(server.locations().piconet_of(0xB1), 3u);
  send(proto::PresenceUpdate{3, 0xB1, false, 2000});
  EXPECT_FALSE(server.locations().piconet_of(0xB1).has_value());
  EXPECT_EQ(ctr("server.presence_received"), 2u);
}

TEST_F(ServerRig, WhereIsFullHappyPath) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lab = *building.find("lab-networks");
  send(proto::PresenceUpdate{lab, 0xB2, true, 1000});
  send(proto::WhereIsRequest{77, 0xB1, "Bob"});
  const auto rep = last_reply<proto::WhereIsReply>();
  EXPECT_EQ(rep.query_id, 77u);
  EXPECT_EQ(rep.status, QueryStatus::kOk);
  EXPECT_EQ(rep.room, "lab-networks");
  EXPECT_EQ(ctr("server.whereis_served"), 1u);
}

TEST_F(ServerRig, WhereIsUnknownTarget) {
  login("alice", 0xB1, "pw-a");
  send(proto::WhereIsRequest{1, 0xB1, "Charlie"});
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status,
            QueryStatus::kUnknownUser);
}

TEST_F(ServerRig, WhereIsTargetNotLoggedIn) {
  login("alice", 0xB1, "pw-a");
  send(proto::WhereIsRequest{1, 0xB1, "Bob"});
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status,
            QueryStatus::kNotLoggedIn);
}

TEST_F(ServerRig, WhereIsTargetLocationUnknown) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  send(proto::WhereIsRequest{1, 0xB1, "Bob"});
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status,
            QueryStatus::kLocationUnknown);
}

TEST_F(ServerRig, WhereIsRequesterNotLoggedInDenied) {
  login("bob", 0xB2, "pw-b");
  send(proto::WhereIsRequest{1, 0xB1, "Bob"});  // 0xB1 has no session
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status,
            QueryStatus::kAccessDenied);
}

TEST_F(ServerRig, WhereIsAccessRightsEnforced) {
  ASSERT_TRUE(server.registry().set_locatable_by_anyone("bob", false));
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lib = *building.find("library");
  send(proto::PresenceUpdate{lib, 0xB2, true, 1000});
  send(proto::WhereIsRequest{1, 0xB1, "Bob"});
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status,
            QueryStatus::kAccessDenied);
  ASSERT_TRUE(server.registry().allow_requester("bob", "alice"));
  send(proto::WhereIsRequest{2, 0xB1, "Bob"});
  EXPECT_EQ(last_reply<proto::WhereIsReply>().status, QueryStatus::kOk);
}

TEST_F(ServerRig, PathQueryReturnsShortestRoomSequence) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId seminar = *building.find("seminar-room");
  const StationId lobby = *building.find("lobby");
  send(proto::PresenceUpdate{seminar, 0xB2, true, 1000});
  send(proto::PathRequest{9, 0xB1, "Bob", lobby});
  const auto rep = last_reply<proto::PathReply>();
  EXPECT_EQ(rep.status, QueryStatus::kOk);
  ASSERT_GE(rep.rooms.size(), 2u);
  EXPECT_EQ(rep.rooms.front(), "lobby");
  EXPECT_EQ(rep.rooms.back(), "seminar-room");
  EXPECT_DOUBLE_EQ(rep.distance,
                   server.paths().distance(lobby, seminar));
  // The reported room sequence is a real path: consecutive rooms adjacent.
  for (std::size_t i = 0; i + 1 < rep.rooms.size(); ++i) {
    const auto a = *building.find(rep.rooms[i]);
    const auto b = *building.find(rep.rooms[i + 1]);
    bool adjacent = false;
    for (const auto& c : building.corridors()) {
      adjacent |= (c.a == a && c.b == b) || (c.a == b && c.b == a);
    }
    EXPECT_TRUE(adjacent) << rep.rooms[i] << " -> " << rep.rooms[i + 1];
  }
}

TEST_F(ServerRig, PathToSelfRoomIsSingleton) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lobby = *building.find("lobby");
  send(proto::PresenceUpdate{lobby, 0xB2, true, 1000});
  send(proto::PathRequest{9, 0xB1, "Bob", lobby});
  const auto rep = last_reply<proto::PathReply>();
  EXPECT_EQ(rep.status, QueryStatus::kOk);
  ASSERT_EQ(rep.rooms.size(), 1u);
  EXPECT_EQ(rep.rooms[0], "lobby");
  EXPECT_DOUBLE_EQ(rep.distance, 0.0);
}

TEST_F(ServerRig, PathFromInvalidRoomUnreachable) {
  login("alice", 0xB1, "pw-a");
  send(proto::PathRequest{9, 0xB1, "Bob", 999});
  EXPECT_EQ(last_reply<proto::PathReply>().status, QueryStatus::kUnreachable);
}

TEST_F(ServerRig, MalformedDatagramCounted) {
  ws.send(server.address(), {0xFF, 0x00, 0x01});
  sim.run();
  EXPECT_EQ(ctr("server.malformed"), 1u);
  EXPECT_TRUE(replies.empty());
}

TEST_F(ServerRig, ReplyTypeSentToServerIsMalformed) {
  send(proto::LoginReply{1, true, ""});
  EXPECT_EQ(ctr("server.malformed"), 1u);
}

TEST_F(ServerRig, LocalQueryApiOperatorBypassesRights) {
  ASSERT_TRUE(server.registry().set_locatable_by_anyone("bob", false));
  login("bob", 0xB2, "pw-b");
  const StationId lib = *building.find("library");
  send(proto::PresenceUpdate{lib, 0xB2, true, 1000});
  // Empty requester = operator console.
  const auto rep = server.query(BipsServer::Query::where_is("", "Bob"));
  EXPECT_EQ(rep.status, QueryStatus::kOk);
  EXPECT_EQ(rep.room, "library");
}

}  // namespace
}  // namespace bips::core

// ---- extended queries, subscriptions and the reliable presence stream -----

namespace bips::core {
namespace {

TEST_F(ServerRig, PresenceAckAndDedup) {
  proto::PresenceUpdate u;
  u.workstation = 2;
  u.bd_addr = 0xB1;
  u.present = true;
  u.timestamp_ns = 1000;
  u.seq = 1;
  send(u);
  // The server acked seq 1.
  const auto ack = last_reply<proto::PresenceAck>();
  EXPECT_EQ(ack.workstation, 2u);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(server.locations().piconet_of(0xB1), 2u);

  // A retransmission is deduplicated but still acked.
  send(u);
  EXPECT_EQ(last_reply<proto::PresenceAck>().seq, 1u);
  EXPECT_EQ(ctr("server.presence_duplicates"), 1u);
  EXPECT_EQ(server.locations().stats().redundant_updates, 0u);  // never re-applied
}

TEST_F(ServerRig, PresenceSeqIsPerWorkstation) {
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 5});
  send(proto::PresenceUpdate{2, 0xB2, true, 1000, 5});  // same seq, other ws
  EXPECT_EQ(ctr("server.presence_duplicates"), 0u);
  EXPECT_EQ(server.locations().piconet_of(0xB1), 1u);
  EXPECT_EQ(server.locations().piconet_of(0xB2), 2u);
}

TEST_F(ServerRig, WhoIsInListsOnlyLocatableUsers) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lib = *building.find("library");
  send(proto::PresenceUpdate{lib, 0xB1, true, 1000, 0});
  send(proto::PresenceUpdate{lib, 0xB2, true, 1001, 0});

  send(proto::WhoIsInRequest{11, 0xB1, "library"});
  auto rep = last_reply<proto::WhoIsInReply>();
  EXPECT_EQ(rep.status, proto::QueryStatus::kOk);
  EXPECT_EQ(rep.users, (std::vector<std::string>{"Alice", "Bob"}));

  // Hide bob: he disappears from alice's view of the room.
  ASSERT_TRUE(server.registry().set_locatable_by_anyone("bob", false));
  send(proto::WhoIsInRequest{12, 0xB1, "library"});
  rep = last_reply<proto::WhoIsInReply>();
  EXPECT_EQ(rep.users, (std::vector<std::string>{"Alice"}));
}

TEST_F(ServerRig, WhoIsInUnknownRoom) {
  login("alice", 0xB1, "pw-a");
  send(proto::WhoIsInRequest{13, 0xB1, "narnia"});
  EXPECT_EQ(last_reply<proto::WhoIsInReply>().status,
            proto::QueryStatus::kUnknownUser);
}

TEST_F(ServerRig, HistoryQueryOverTheWire) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lib = *building.find("library");
  const StationId sem = *building.find("seminar-room");
  send(proto::PresenceUpdate{lib, 0xB2, true, Duration::seconds(10).ns(), 0});
  send(proto::PresenceUpdate{sem, 0xB2, true, Duration::seconds(20).ns(), 0});

  send(proto::HistoryRequest{21, 0xB1, "Bob", Duration::seconds(15).ns()});
  auto rep = last_reply<proto::HistoryReply>();
  EXPECT_EQ(rep.status, proto::QueryStatus::kOk);
  EXPECT_TRUE(rep.was_present);
  EXPECT_EQ(rep.room, "library");
  EXPECT_EQ(rep.since_ns, Duration::seconds(10).ns());

  send(proto::HistoryRequest{22, 0xB1, "Bob", Duration::seconds(5).ns()});
  rep = last_reply<proto::HistoryReply>();
  EXPECT_EQ(rep.status, proto::QueryStatus::kOk);
  EXPECT_FALSE(rep.was_present);
}

TEST_F(ServerRig, SubscriptionPushesMovementEvents) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  // Alice must herself be somewhere so the server can route pushes to her.
  const StationId lobby = *building.find("lobby");
  send(proto::PresenceUpdate{lobby, 0xB1, true, 500, 0});

  send(proto::SubscribeRequest{31, 0xB1, "Bob", false});
  EXPECT_EQ(last_reply<proto::SubscribeReply>().status,
            proto::QueryStatus::kOk);
  EXPECT_EQ(server.subscription_count(), 1u);

  // Bob appears in the library: alice's workstation receives the push.
  const StationId lib = *building.find("library");
  replies.clear();
  send(proto::PresenceUpdate{lib, 0xB2, true, 1000, 0});
  ASSERT_FALSE(replies.empty());
  const auto ev = last_reply<proto::MovementEvent>();
  EXPECT_EQ(ev.subscriber_bd_addr, 0xB1u);
  EXPECT_EQ(ev.target_user, "Bob");
  EXPECT_TRUE(ev.entered);
  EXPECT_EQ(ev.room, "library");

  // Bob leaves.
  replies.clear();
  send(proto::PresenceUpdate{lib, 0xB2, false, 2000, 0});
  const auto ev2 = last_reply<proto::MovementEvent>();
  EXPECT_FALSE(ev2.entered);

  // Unsubscribe stops the stream.
  send(proto::SubscribeRequest{32, 0xB1, "Bob", true});
  EXPECT_EQ(server.subscription_count(), 0u);
  replies.clear();
  send(proto::PresenceUpdate{lib, 0xB2, true, 3000, 0});
  for (const auto& r : replies) {
    EXPECT_FALSE(std::holds_alternative<proto::MovementEvent>(r));
  }
}

TEST_F(ServerRig, SubscribeRequiresLocationRights) {
  ASSERT_TRUE(server.registry().set_locatable_by_anyone("bob", false));
  login("alice", 0xB1, "pw-a");
  send(proto::SubscribeRequest{41, 0xB1, "Bob", false});
  EXPECT_EQ(last_reply<proto::SubscribeReply>().status,
            proto::QueryStatus::kAccessDenied);
  EXPECT_EQ(server.subscription_count(), 0u);
}

TEST_F(ServerRig, LogoutNotifiesSubscribersAndDropsOwnSubscriptions) {
  login("alice", 0xB1, "pw-a");
  login("bob", 0xB2, "pw-b");
  const StationId lobby = *building.find("lobby");
  const StationId lib = *building.find("library");
  send(proto::PresenceUpdate{lobby, 0xB1, true, 500, 0});
  send(proto::PresenceUpdate{lib, 0xB2, true, 600, 0});
  send(proto::SubscribeRequest{51, 0xB1, "Bob", false});
  send(proto::SubscribeRequest{52, 0xB2, "Alice", false});
  EXPECT_EQ(server.subscription_count(), 2u);

  // Bob logs out: alice sees him "leave"; his own subscription dies too.
  replies.clear();
  send(proto::LogoutRequest{0xB2, "bob"});
  bool saw_leave = false;
  for (const auto& r : replies) {
    if (const auto* ev = std::get_if<proto::MovementEvent>(&r)) {
      EXPECT_FALSE(ev->entered);
      EXPECT_EQ(ev->target_user, "Bob");
      saw_leave = true;
    }
  }
  EXPECT_TRUE(saw_leave);
  EXPECT_EQ(server.subscription_count(), 1u);  // alice's watch remains
}

TEST_F(ServerRig, LocalWhoIsInOperatorView) {
  ASSERT_TRUE(server.registry().set_locatable_by_anyone("bob", false));
  login("bob", 0xB2, "pw-b");
  const StationId lib = *building.find("library");
  send(proto::PresenceUpdate{lib, 0xB2, true, 1000, 0});
  // The operator (empty requester) sees through privacy settings.
  const auto rep = server.query(BipsServer::Query::who_is_in("", "library"));
  EXPECT_EQ(rep.users, (std::vector<std::string>{"Bob"}));
}

}  // namespace
}  // namespace bips::core

// ---- failure detector (heartbeats + station expiry) -------------------------

namespace bips::core {
namespace {

struct FailureDetectorRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{19};
  net::Lan lan{sim, rng, net::Lan::Config{}};
  mobility::Building building = mobility::Building::corridor(3);
  BipsServer server{sim, lan, building, [] {
                      BipsServer::Config c;
                      c.station_timeout = Duration::seconds(6);
                      c.sweep_period = Duration::seconds(1);
                      return c;
                    }()};
  net::Endpoint& ws = lan.create_endpoint();

  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
  void send(const proto::Message& m) {
    ws.send(server.address(), proto::encode(m));
  }
  void heartbeat(StationId s) {
    send(proto::Heartbeat{s, sim.now().ns()});
  }
  std::uint64_t ctr(std::string_view name) const {
    return sim.obs().metrics.counter_value(name);
  }
};

TEST_F(FailureDetectorRig, SilentStationsRecordsExpire) {
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 0});
  send(proto::PresenceUpdate{1, 0xB2, true, 1000, 0});
  run_s(1);
  ASSERT_EQ(server.locations().piconet_of(0xB1), 1u);

  run_s(8);  // no heartbeats: past the 6 s timeout
  EXPECT_FALSE(server.locations().piconet_of(0xB1).has_value());
  EXPECT_FALSE(server.locations().piconet_of(0xB2).has_value());
  EXPECT_EQ(ctr("server.stations_expired"), 1u);
  EXPECT_EQ(ctr("server.presences_expired"), 2u);
}

TEST_F(FailureDetectorRig, HeartbeatsKeepRecordsAlive) {
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 0});
  for (int i = 0; i < 10; ++i) {
    run_s(2);
    heartbeat(1);
  }
  EXPECT_EQ(server.locations().piconet_of(0xB1), 1u);
  EXPECT_EQ(ctr("server.stations_expired"), 0u);
  EXPECT_GE(ctr("server.heartbeats"), 9u);
}

TEST_F(FailureDetectorRig, OnlyTheSilentStationExpires) {
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 0});
  send(proto::PresenceUpdate{2, 0xB2, true, 1000, 0});
  for (int i = 0; i < 6; ++i) {
    run_s(2);
    heartbeat(2);  // station 1 goes silent
  }
  EXPECT_FALSE(server.locations().piconet_of(0xB1).has_value());
  EXPECT_EQ(server.locations().piconet_of(0xB2), 2u);
  EXPECT_EQ(ctr("server.stations_expired"), 1u);
}

TEST_F(FailureDetectorRig, ExpiryPromotesOverlapRunnerUp) {
  // Station 2's weaker claim was suppressed; station 1's crash must hand
  // the device to station 2 instead of dropping it.
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 0});
  run_s(0.1);
  proto::PresenceUpdate weaker{2, 0xB1, true, Duration::millis(200).ns(), 0};
  weaker.rssi_dbm = -70.0;
  send(weaker);  // suppressed (0 dBm beats -70)
  run_s(1);
  ASSERT_EQ(server.locations().piconet_of(0xB1), 1u);

  for (int i = 0; i < 6; ++i) {
    run_s(2);
    heartbeat(2);  // only station 2 stays alive
  }
  EXPECT_EQ(server.locations().piconet_of(0xB1), 2u);  // promoted
}

TEST_F(FailureDetectorRig, RestartedStationStartsAFreshSeqStream) {
  send(proto::PresenceUpdate{1, 0xB1, true, 1000, 7});
  run_s(8);  // station 1 expires (seq state dropped)
  ASSERT_EQ(ctr("server.stations_expired"), 1u);
  // After a restart the station's sequence numbers begin at 1 again and
  // must not be treated as duplicates.
  send(proto::PresenceUpdate{1, 0xB1, true, sim.now().ns(), 1});
  run_s(1);
  EXPECT_EQ(server.locations().piconet_of(0xB1), 1u);
  EXPECT_EQ(ctr("server.presence_duplicates"), 0u);
}

}  // namespace
}  // namespace bips::core
