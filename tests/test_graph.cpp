// Unit tests for the topology graph, Dijkstra, and all-pairs paths.
#include <gtest/gtest.h>

#include "src/graph/all_pairs.hpp"
#include "src/graph/dijkstra.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace bips::graph {
namespace {

Graph diamond() {
  // a --1-- b --1-- d
  //  \--3-- c --1--/
  Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b"), c = g.add_node("c"),
             d = g.add_node("d");
  g.add_edge(a, b, 1);
  g.add_edge(b, d, 1);
  g.add_edge(a, c, 3);
  g.add_edge(c, d, 1);
  return g;
}

TEST(Graph, NodeLookupByName) {
  Graph g;
  const auto a = g.add_node("lobby");
  EXPECT_EQ(g.find("lobby"), a);
  EXPECT_FALSE(g.find("missing").has_value());
  EXPECT_EQ(g.name(a), "lobby");
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(Graph, DuplicateNameDies) {
  Graph g;
  g.add_node("x");
  EXPECT_DEATH(g.add_node("x"), "duplicate");
}

TEST(Graph, EdgesAreUndirected) {
  Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b");
  g.add_edge(a, b, 2.5);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  ASSERT_EQ(g.neighbors(b).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].to, b);
  EXPECT_EQ(g.neighbors(b)[0].to, a);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].weight, 2.5);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, AddEdgeByName) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  g.add_edge("a", "b", 4.0);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, SelfLoopDies) {
  Graph g;
  const auto a = g.add_node("a");
  EXPECT_DEATH(g.add_edge(a, a, 1), "self-loop");
}

TEST(Graph, NonPositiveWeightDies) {
  Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b");
  EXPECT_DEATH(g.add_edge(a, b, 0), "positive");
}

TEST(Graph, Connectivity) {
  Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b");
  g.add_node("c");  // isolated
  g.add_edge(a, b, 1);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  Graph g;
  EXPECT_TRUE(g.connected());
  g.add_node("only");
  EXPECT_TRUE(g.connected());
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);  // a-b-d, not a-c-d
  const auto path = tree.path_to(3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 3u);
}

TEST(Dijkstra, SourceDistanceZero) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 2);
  EXPECT_DOUBLE_EQ(tree.distance[2], 0.0);
  EXPECT_EQ(tree.path_to(2), std::vector<NodeId>{2});
}

TEST(Dijkstra, UnreachableNodes) {
  Graph g;
  const auto a = g.add_node("a");
  g.add_node("island");
  const auto tree = dijkstra(g, a);
  EXPECT_FALSE(tree.reachable(1));
  EXPECT_TRUE(tree.path_to(1).empty());
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b");
  g.add_edge(a, b, 5);
  g.add_edge(a, b, 2);
  EXPECT_DOUBLE_EQ(dijkstra(g, a).distance[b], 2.0);
}

TEST(Dijkstra, MatchesBruteForceOnRandomGraphs) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g;
    const int n = 2 + static_cast<int>(rng.uniform(15));
    for (int i = 0; i < n; ++i) g.add_node("n" + std::to_string(i));
    // Random connected graph: spanning chain + extra edges.
    for (int i = 1; i < n; ++i) {
      g.add_edge(static_cast<NodeId>(i - 1), static_cast<NodeId>(i),
                 1.0 + rng.uniform_double() * 9.0);
    }
    for (int e = 0; e < n; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform(n));
      const auto v = static_cast<NodeId>(rng.uniform(n));
      if (u != v) g.add_edge(u, v, 1.0 + rng.uniform_double() * 9.0);
    }
    // Bellman-Ford as the oracle.
    const auto src = static_cast<NodeId>(rng.uniform(n));
    std::vector<double> dist(n, 1e18);
    dist[src] = 0;
    for (int round = 0; round < n; ++round) {
      for (NodeId u = 0; u < g.node_count(); ++u) {
        for (const Edge& e : g.neighbors(u)) {
          dist[e.to] = std::min(dist[e.to], dist[u] + e.weight);
        }
      }
    }
    const auto tree = dijkstra(g, src);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(tree.distance[i], dist[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(AllPairs, DistancesSymmetricAndConsistent) {
  const Graph g = diamond();
  const AllPairsPaths ap(g);
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b = 0; b < g.node_count(); ++b) {
      EXPECT_DOUBLE_EQ(ap.distance(a, b), ap.distance(b, a));
      EXPECT_DOUBLE_EQ(ap.distance(a, b), dijkstra(g, a).distance[b]);
    }
  }
}

TEST(AllPairs, PathEndpointsAndWeightSum) {
  const Graph g = diamond();
  const AllPairsPaths ap(g);
  const auto p = ap.path(2, 1);  // c -> d -> b (cost 2) beats c -> a -> b (4)
  ASSERT_GE(p.size(), 2u);
  EXPECT_EQ(p.front(), 2u);
  EXPECT_EQ(p.back(), 1u);
  EXPECT_DOUBLE_EQ(ap.distance(2, 1), 2.0);
}

TEST(AllPairs, NextHopWalksTowardTarget) {
  const Graph g = diamond();
  const AllPairsPaths ap(g);
  // From a toward d the next hop is b.
  EXPECT_EQ(ap.next_hop(0, 3), 1u);
  // Following next hops terminates at the target.
  NodeId cur = 0;
  int hops = 0;
  while (cur != 3 && hops < 10) {
    cur = ap.next_hop(cur, 3);
    ++hops;
  }
  EXPECT_EQ(cur, 3u);
  EXPECT_EQ(hops, 2);
}

TEST(AllPairs, NextHopSelfIsInvalid) {
  const Graph g = diamond();
  const AllPairsPaths ap(g);
  EXPECT_EQ(ap.next_hop(1, 1), kInvalidNode);
}

}  // namespace
}  // namespace bips::graph
