// Tests for the ASCII map renderer.
#include <gtest/gtest.h>

#include "src/mobility/render.hpp"

namespace bips::mobility {
namespace {

TEST(Render, EmptyBuilding) {
  Building b;
  EXPECT_EQ(render_map(b, {}), "(empty map)\n");
}

TEST(Render, WorkstationsAndLabelsAppear) {
  Building b;
  b.add_room("lobby", {0, 0});
  b.add_room("lab", {20, 0});
  const std::string map = render_map(b, {});
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_NE(map.find("lobby"), std::string::npos);
  EXPECT_NE(map.find("lab"), std::string::npos);
}

TEST(Render, MarkersOverrideTerrain) {
  Building b;
  b.add_room("lobby", {0, 0});
  const std::string map = render_map(b, {{'a', Vec2{0, 0}}});
  EXPECT_NE(map.find('a'), std::string::npos);
  // The marker stands on the workstation cell: no '#' survives there.
  EXPECT_EQ(map.find('#'), std::string::npos);
}

TEST(Render, CoverageDotsToggle) {
  Building b;
  b.add_room("lobby", {0, 0});
  RenderOptions with;
  RenderOptions without;
  without.show_coverage = false;
  without.label_rooms = false;
  EXPECT_NE(render_map(b, {}, with).find('.'), std::string::npos);
  EXPECT_EQ(render_map(b, {}, without).find('.'), std::string::npos);
}

TEST(Render, TopRowIsNorth) {
  Building b;
  RenderOptions opts;
  opts.show_coverage = false;
  opts.label_rooms = false;
  b.add_room("south", {0, 0});
  b.add_room("north", {0, 40});
  const std::string map = render_map(b, {{'n', Vec2{0, 40}},
                                         {'s', Vec2{0, 0}}}, opts);
  EXPECT_LT(map.find('n'), map.find('s'));  // 'n' rendered first (top)
}

TEST(Render, MarkerOutsideBuildingGrowsCanvas) {
  Building b;
  b.add_room("lobby", {0, 0});
  const std::string map = render_map(b, {{'x', Vec2{60, 0}}});
  EXPECT_NE(map.find('x'), std::string::npos);
}

TEST(Render, DepartmentRendersAllRooms) {
  const Building b = Building::department();
  const std::string map = render_map(b, {});
  // All ten workstations (some labels may overlap, glyphs never vanish).
  EXPECT_GE(std::count(map.begin(), map.end(), '#'), 8);
}

}  // namespace
}  // namespace bips::mobility
