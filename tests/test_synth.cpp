// Tests for the generative scenario emitter (synth_scenario).
#include <gtest/gtest.h>

#include <sstream>

#include "src/scenario/scenario.hpp"
#include "src/scenario/synth.hpp"

namespace bips::core {
namespace {

TEST(SynthScenario, DeterministicTextPerSeed) {
  EXPECT_EQ(synth_scenario(1), synth_scenario(1));
  EXPECT_NE(synth_scenario(1), synth_scenario(2));
  SynthParams chaos;
  chaos.chaos_block = true;
  EXPECT_EQ(synth_scenario(1, chaos), synth_scenario(1, chaos));
  EXPECT_NE(synth_scenario(1), synth_scenario(1, chaos));
}

TEST(SynthScenario, EverySeedParsesWithActsAndAssertions) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SynthParams p;
    p.chaos_block = (seed % 3 == 0);
    ScenarioError err;
    const auto spec = parse_scenario(synth_scenario(seed, p), &err);
    ASSERT_TRUE(spec.has_value())
        << "seed " << seed << " line " << err.line << ": " << err.message;
    EXPECT_GE(spec->building.room_count(), 4u) << seed;
    EXPECT_FALSE(spec->users.empty()) << seed;
    EXPECT_FALSE(spec->acts.empty()) << seed;
    // At least one whereis witness and the two blanket assertions.
    EXPECT_GE(spec->assertions.size(), 3u) << seed;
    EXPECT_EQ(spec->assertions.back().kind,
              ScenarioAssertion::Kind::kNoInvariantViolations)
        << seed;
    EXPECT_FALSE(spec->fault_plan.empty()) << seed;
    // Every generated fault heals well before the end of the run.
    EXPECT_LT(spec->fault_plan.heal_time() + Duration::seconds(40),
              spec->run_time)
        << seed;
  }
}

TEST(SynthScenario, GeneratedScenarioPassesItsOwnAssertions) {
  ScenarioError err;
  const auto spec = parse_scenario(synth_scenario(42), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  run_scenario(*spec, {}, &report);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << " (" << c.what
                          << "): " << c.detail;
  }
  EXPECT_TRUE(report.passed());
}

TEST(SynthScenario, ChaosVariantPassesItsOwnAssertions) {
  SynthParams p;
  p.chaos_block = true;
  ScenarioError err;
  const auto spec = parse_scenario(synth_scenario(13, p), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  run_scenario(*spec, {}, &report);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << " (" << c.what
                          << "): " << c.detail;
  }
}

TEST(SynthScenario, ExactAndFastForwardHistoriesAreByteIdentical) {
  ScenarioError err;
  auto ff_spec = parse_scenario(synth_scenario(6), &err);
  ASSERT_TRUE(ff_spec.has_value()) << err.message;
  auto exact_spec = *ff_spec;
  exact_spec.config.channel.exact_slots = true;

  ScenarioReport ff_report, exact_report;
  auto ff = run_scenario(*ff_spec, {}, &ff_report);
  auto exact = run_scenario(exact_spec, {}, &exact_report);
  EXPECT_TRUE(ff_report.passed());
  EXPECT_TRUE(exact_report.passed());

  std::ostringstream ff_csv, exact_csv;
  ff->write_history_csv(ff_csv);
  exact->write_history_csv(exact_csv);
  EXPECT_EQ(ff_csv.str(), exact_csv.str());
  // Fast-forward elides idle slot work; it must not elide history.
  EXPECT_LT(ff->simulator().events_executed(),
            exact->simulator().events_executed());
}

}  // namespace
}  // namespace bips::core
