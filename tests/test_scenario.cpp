// Tests for the text scenario parser and runner.
#include <gtest/gtest.h>

#include "src/core/scenario.hpp"

namespace bips::core {
namespace {

constexpr const char* kValid = R"(
# a comment line
seed 9
radius 12.5
stagger on
inquiry 2.56
cycle 5.12
lan-loss 0.1
speed 0.8 1.2
pause 5 10
room a 0 0      # trailing comment
room b 14 0
edge a b
user Alice alice pw a
user Bob bob pw2 b
run 120
sample 2
)";

TEST(ScenarioParser, ParsesAValidScenario) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(kValid), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_EQ(spec->config.seed, 9u);
  EXPECT_DOUBLE_EQ(spec->config.coverage_radius_m, 12.5);
  EXPECT_TRUE(spec->config.stagger_inquiry);
  EXPECT_EQ(spec->config.workstation.scheduler.inquiry_length,
            Duration::from_seconds(2.56));
  EXPECT_EQ(spec->config.workstation.scheduler.cycle_length,
            Duration::from_seconds(5.12));
  EXPECT_DOUBLE_EQ(spec->config.lan.loss, 0.1);
  EXPECT_DOUBLE_EQ(spec->config.mobility.speed_min_mps, 0.8);
  EXPECT_DOUBLE_EQ(spec->config.mobility.speed_max_mps, 1.2);
  EXPECT_EQ(spec->building.room_count(), 2u);
  ASSERT_EQ(spec->users.size(), 2u);
  EXPECT_EQ(spec->users[0].name, "Alice");
  EXPECT_EQ(spec->users[1].room, *spec->building.find("b"));
  EXPECT_EQ(spec->run_time, Duration::seconds(120));
  EXPECT_EQ(spec->sample_period, Duration::seconds(2));
}

TEST(ScenarioParser, DefaultsApplyWhenOmitted) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string("room only 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.seed, SimulationConfig{}.seed);
  EXPECT_TRUE(spec->users.empty());
  EXPECT_EQ(spec->run_time, Duration::seconds(300));
}

struct BadCase {
  const char* text;
  int line;
  const char* fragment;
};

class ScenarioErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioErrors, ReportsLineAndMessage) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(GetParam().text), &err);
  EXPECT_FALSE(spec.has_value());
  EXPECT_EQ(err.line, GetParam().line);
  EXPECT_NE(err.message.find(GetParam().fragment), std::string::npos)
      << "got: " << err.message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioErrors,
    ::testing::Values(
        BadCase{"frobnicate 1\n", 1, "unknown directive"},
        BadCase{"seed\n", 1, "arguments"},
        BadCase{"seed banana\n", 1, "seed"},
        BadCase{"radius -3\nroom a 0 0\n", 1, "radius"},
        BadCase{"stagger maybe\nroom a 0 0\n", 1, "on"},
        BadCase{"room a 0 0\nroom a 1 1\n", 2, "duplicate room"},
        BadCase{"room a 0 0\nedge a b\n", 2, "unknown room"},
        BadCase{"room a 0 0\nedge a a\n", 2, "itself"},
        BadCase{"room a 0 0\nroom b 9 0\nedge a b -2\n", 3, "positive"},
        BadCase{"room a 0 0\nuser X x pw nowhere\n", 2, "unknown start room"},
        BadCase{"room a 0 0\nuser X x pw a\nuser X y pw a\n", 3,
                "duplicate name"},
        BadCase{"room a 0 0\nuser X x pw a\nuser Y x pw a\n", 3,
                "duplicate userid"},
        BadCase{"lan-loss 1.5\nroom a 0 0\n", 1, "probability"},
        BadCase{"speed 2 1\nroom a 0 0\n", 1, "min <= max"},
        BadCase{"pause 10 5\nroom a 0 0\n", 1, "min <= max"},
        BadCase{"run 0\nroom a 0 0\n", 1, "positive"},
        BadCase{"", 0, "no rooms"},
        BadCase{"room a 0 0\nroom b 50 0\n", 0, "not connected"},
        BadCase{"inquiry 20\ncycle 15\nroom a 0 0\n", 0, "shorter"}));

TEST(ScenarioRunner, RunsEndToEnd) {
  ScenarioError err;
  auto spec = parse_scenario(std::string(R"(
seed 4
inquiry 2.56
cycle 5.12
pause 1000 2000
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
run 60
sample 1
)"),
                             &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  auto sim = run_scenario(*spec);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->simulator().now(), SimTime(Duration::seconds(60).ns()));
  EXPECT_TRUE(sim->client("alice")->logged_in());
  EXPECT_EQ(sim->db_room("alice"), *spec->building.find("a"));
  EXPECT_GT(sim->tracking().samples, 0u);
}

TEST(ScenarioRunner, DeterministicAcrossRuns) {
  ScenarioError err;
  const std::string text = R"(
seed 31
inquiry 1.28
cycle 5.12
pause 5 20
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
user Bob bob pw b
run 90
sample 1
)";
  auto s1 = run_scenario(*parse_scenario(text, &err));
  auto s2 = run_scenario(*parse_scenario(text, &err));
  EXPECT_EQ(s1->simulator().events_executed(),
            s2->simulator().events_executed());
  EXPECT_EQ(s1->tracking().correct_room, s2->tracking().correct_room);
}

}  // namespace
}  // namespace bips::core

// ---- newer directives -------------------------------------------------------

namespace bips::core {
namespace {

TEST(ScenarioParser, InterlacedDirective) {
  ScenarioError err;
  auto spec = parse_scenario(
      std::string("interlaced on\nroom a 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_TRUE(spec->config.slave.inquiry_scan.interlaced);
  spec = parse_scenario(std::string("interlaced off\nroom a 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->config.slave.inquiry_scan.interlaced);
  EXPECT_FALSE(
      parse_scenario(std::string("interlaced sideways\nroom a 0 0\n"), &err)
          .has_value());
}

}  // namespace
}  // namespace bips::core

// ---- fault-injection directives ---------------------------------------------

namespace bips::core {
namespace {

TEST(ScenarioParser, CrashAndRestartDirectives) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
room a 0 0
station-timeout 8
crash a 60
restart a 120
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_EQ(spec->config.server.station_timeout, Duration::seconds(8));
  ASSERT_EQ(spec->faults.size(), 2u);
  EXPECT_FALSE(spec->faults[0].restart);
  EXPECT_EQ(spec->faults[0].at, SimTime(Duration::seconds(60).ns()));
  EXPECT_TRUE(spec->faults[1].restart);
}

TEST(ScenarioParser, CrashDirectiveErrors) {
  ScenarioError err;
  EXPECT_FALSE(parse_scenario(std::string("room a 0 0\ncrash b 60\n"), &err)
                   .has_value());
  EXPECT_NE(err.message.find("unknown room"), std::string::npos);
  EXPECT_FALSE(parse_scenario(std::string("room a 0 0\ncrash a -5\n"), &err)
                   .has_value());
  EXPECT_FALSE(
      parse_scenario(std::string("room a 0 0\nstation-timeout x\n"), &err)
          .has_value());
}

TEST(ScenarioRunner, ScriptedCrashAndRecovery) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 3
inquiry 2.56
cycle 5.12
pause 100000 200000
station-timeout 10
room a 0 0
user Alice alice pw a
crash a 80
restart a 110
run 200
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  auto sim = run_scenario(*spec);
  // The crash happened (station expired) and recovery completed (Alice is
  // tracked again by the end).
  EXPECT_GE(sim->server().stats().stations_expired, 1u);
  EXPECT_EQ(sim->db_room("alice"), 0u);
  EXPECT_TRUE(sim->client("alice")->logged_in());
  EXPECT_FALSE(sim->workstation(0).crashed());
}

}  // namespace
}  // namespace bips::core
