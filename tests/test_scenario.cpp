// Tests for the text scenario parser and self-checking runner.
#include <gtest/gtest.h>

#include "src/scenario/scenario.hpp"

namespace bips::core {
namespace {

constexpr const char* kValid = R"(
# a comment line
seed 9
radius 12.5
stagger on
inquiry 2.56
cycle 5.12
lan-loss 0.1
speed 0.8 1.2
pause 5 10
room a 0 0      # trailing comment
room b 14 0
edge a b
user Alice alice pw a
user Bob bob pw2 b
run 120
sample 2
)";

TEST(ScenarioParser, ParsesAValidScenario) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(kValid), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_EQ(spec->config.seed, 9u);
  EXPECT_DOUBLE_EQ(spec->config.coverage_radius_m, 12.5);
  EXPECT_TRUE(spec->config.stagger_inquiry);
  EXPECT_EQ(spec->config.workstation.scheduler.inquiry_length,
            Duration::from_seconds(2.56));
  EXPECT_EQ(spec->config.workstation.scheduler.cycle_length,
            Duration::from_seconds(5.12));
  EXPECT_DOUBLE_EQ(spec->config.lan.loss, 0.1);
  EXPECT_DOUBLE_EQ(spec->config.mobility.speed_min_mps, 0.8);
  EXPECT_DOUBLE_EQ(spec->config.mobility.speed_max_mps, 1.2);
  EXPECT_EQ(spec->building.room_count(), 2u);
  ASSERT_EQ(spec->users.size(), 2u);
  EXPECT_EQ(spec->users[0].name, "Alice");
  EXPECT_EQ(spec->users[1].room, *spec->building.find("b"));
  EXPECT_EQ(spec->run_time, Duration::seconds(120));
  EXPECT_EQ(spec->sample_period, Duration::seconds(2));
}

TEST(ScenarioParser, DefaultsApplyWhenOmitted) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string("room only 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.seed, SimulationConfig{}.seed);
  EXPECT_TRUE(spec->users.empty());
  EXPECT_EQ(spec->run_time, Duration::seconds(300));
  EXPECT_EQ(spec->config.server.zones, 1u);  // classic single database
}

TEST(ScenarioParser, ZonesDirectiveSetsServiceShards) {
  ScenarioError err;
  const auto spec =
      parse_scenario(std::string("zones 3\nroom only 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_EQ(spec->config.server.zones, 3u);

  EXPECT_FALSE(parse_scenario(std::string("zones 0\n"), &err).has_value());
  EXPECT_FALSE(parse_scenario(std::string("zones 2.5\n"), &err).has_value());
  EXPECT_FALSE(parse_scenario(std::string("zones x\n"), &err).has_value());
}

struct BadCase {
  const char* text;
  int line;
  const char* fragment;
};

class ScenarioErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioErrors, ReportsLineAndMessage) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(GetParam().text), &err);
  EXPECT_FALSE(spec.has_value());
  EXPECT_EQ(err.line, GetParam().line);
  EXPECT_NE(err.message.find(GetParam().fragment), std::string::npos)
      << "got: " << err.message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioErrors,
    ::testing::Values(
        BadCase{"frobnicate 1\n", 1, "unknown directive"},
        BadCase{"seed\n", 1, "arguments"},
        BadCase{"seed banana\n", 1, "seed"},
        BadCase{"radius -3\nroom a 0 0\n", 1, "radius"},
        BadCase{"stagger maybe\nroom a 0 0\n", 1, "on"},
        BadCase{"room a 0 0\nroom a 1 1\n", 2, "duplicate room"},
        BadCase{"room a 0 0\nedge a b\n", 2, "unknown room"},
        BadCase{"room a 0 0\nedge a a\n", 2, "itself"},
        BadCase{"room a 0 0\nroom b 9 0\nedge a b -2\n", 3, "positive"},
        BadCase{"room a 0 0\nuser X x pw nowhere\n", 2, "unknown start room"},
        BadCase{"room a 0 0\nuser X x pw a\nuser X y pw a\n", 3,
                "duplicate name"},
        BadCase{"room a 0 0\nuser X x pw a\nuser Y x pw a\n", 3,
                "duplicate userid"},
        BadCase{"lan-loss 1.5\nroom a 0 0\n", 1, "probability"},
        BadCase{"speed 2 1\nroom a 0 0\n", 1, "min <= max"},
        BadCase{"pause 10 5\nroom a 0 0\n", 1, "min <= max"},
        BadCase{"run 0\nroom a 0 0\n", 1, "positive"},
        BadCase{"", 0, "no rooms"},
        BadCase{"room a 0 0\nroom b 50 0\n", 0, "not connected"},
        BadCase{"inquiry 20\ncycle 15\nroom a 0 0\n", 0, "shorter"},
        // --- acts ---
        BadCase{"room a 0 0\nuser X x pw a\nact X walk-to a\n", 3,
                "arguments"},
        BadCase{"room a 0 0\nuser X x pw a\nact X teleport a 10\n", 3,
                "unknown verb"},
        BadCase{"room a 0 0\nact Ghost walk-to a 10\n", 2, "unknown user"},
        BadCase{"room a 0 0\nuser X x pw a\nact X walk-to nowhere 10\n", 3,
                "unknown room"},
        BadCase{"room a 0 0\nuser X x pw a\nact X walk-to a -5\n", 3,
                "positive"},
        BadCase{"room a 0 0\nuser X x pw a\nact X power-cycle 10 0\n", 3,
                "positive"},
        BadCase{"room a 0 0\nuser X x pw a\nact X login-flood 10 2.5\n", 3,
                "integer"},
        BadCase{"room a 0 0\nuser X x pw a\nrun 60\nact X walk-to a 100\n", 4,
                "beyond the end"},
        // --- assertions ---
        BadCase{"room a 0 0\nassert-at 10 whereis Ghost a\n", 2,
                "unknown user"},
        BadCase{"room a 0 0\nuser X x pw a\nassert-at 10 whereis X b\n", 3,
                "unknown room"},
        BadCase{"room a 0 0\nuser X x pw a\nassert-at 10 isnear X a\n", 3,
                "whereis"},
        BadCase{"room a 0 0\nuser X x pw a\nrun 60\n"
                "assert-at 90 whereis X a\n",
                4, "beyond the end"},
        BadCase{"room a 0 0\nassert-window 50 20 max-staleness 5\n", 2,
                "t0 < t1"},
        BadCase{"room a 0 0\nrun 60\nassert-window 10 90 max-staleness 5\n",
                3, "beyond the end"},
        BadCase{"room a 0 0\nassert-final everything-is-fine\n", 2,
                "no-invariant-violations"},
        BadCase{"room a 0 0\nassert-final min-counter svc.relogin -1\n", 2,
                "non-negative"},
        BadCase{"room a 0 0\nassert-final min-counter svc.relogin 1.5\n", 2,
                "integer"},
        // --- fault directives ---
        BadCase{"room a 0 0\nrestart a 60\n", 2, "no preceding crash"},
        BadCase{"room a 0 0\ncrash a 60\ncrash a 80\nrestart a 100\n", 3,
                "overlapping"},
        BadCase{"room a 0 0\ncrash a 60\nrestart a 60\n", 3,
                "strictly after"},
        BadCase{"room a 0 0\nserver-restart 60\n", 2, "no preceding crash"},
        BadCase{"room a 0 0\npartition 60 30 a a\n", 2, "duplicate room"},
        BadCase{"room a 0 0\npartition 60 30 b\n", 2, "unknown room"},
        BadCase{"room a 0 0\nloss-burst 60 30 1.5\n", 2, "probability"},
        BadCase{"room a 0 0\nlink-loss b 60 30 0.5\n", 2, "unknown room"},
        BadCase{"room a 0 0\nchaos 5 window\n", 2, "pairs"},
        BadCase{"room a 0 0\nchaos 5 blast-radius 3\n", 2,
                "unknown parameter"},
        BadCase{"room a 0 0\nchaos 5 burst-loss 2\n", 2, "burst-loss"},
        BadCase{"room a 0 0\nchaos 5 min-outage 30 max-outage 10\n", 2,
                "min-outage"}));

TEST(ScenarioRunner, RunsEndToEnd) {
  ScenarioError err;
  auto spec = parse_scenario(std::string(R"(
seed 4
inquiry 2.56
cycle 5.12
pause 1000 2000
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
run 60
sample 1
)"),
                             &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  auto sim = run_scenario(*spec);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->simulator().now(), SimTime(Duration::seconds(60).ns()));
  EXPECT_TRUE(sim->client("alice")->logged_in());
  EXPECT_EQ(sim->db_room("alice"), *spec->building.find("a"));
  EXPECT_GT(sim->tracking().samples, 0u);
}

TEST(ScenarioRunner, DeterministicAcrossRuns) {
  ScenarioError err;
  const std::string text = R"(
seed 31
inquiry 1.28
cycle 5.12
pause 5 20
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
user Bob bob pw b
run 90
sample 1
)";
  auto s1 = run_scenario(*parse_scenario(text, &err));
  auto s2 = run_scenario(*parse_scenario(text, &err));
  EXPECT_EQ(s1->simulator().events_executed(),
            s2->simulator().events_executed());
  EXPECT_EQ(s1->tracking().correct_room, s2->tracking().correct_room);
}

}  // namespace
}  // namespace bips::core

// ---- newer directives -------------------------------------------------------

namespace bips::core {
namespace {

TEST(ScenarioParser, InterlacedDirective) {
  ScenarioError err;
  auto spec = parse_scenario(
      std::string("interlaced on\nroom a 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_TRUE(spec->config.slave.inquiry_scan.interlaced);
  spec = parse_scenario(std::string("interlaced off\nroom a 0 0\n"), &err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->config.slave.inquiry_scan.interlaced);
  EXPECT_FALSE(
      parse_scenario(std::string("interlaced sideways\nroom a 0 0\n"), &err)
          .has_value());
}

}  // namespace
}  // namespace bips::core

// ---- fault-injection directives ---------------------------------------------

namespace bips::core {
namespace {

TEST(ScenarioParser, CrashAndRestartCompileIntoTheFaultPlan) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
room a 0 0
station-timeout 8
crash a 60
restart a 120
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  EXPECT_EQ(spec->config.server.station_timeout, Duration::seconds(8));
  const auto& events = spec->fault_plan.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, fault::FaultEvent::Kind::kStationCrash);
  EXPECT_EQ(events[0].at, Duration::seconds(60));
  EXPECT_EQ(events[0].station, 0u);
  EXPECT_EQ(events[1].kind, fault::FaultEvent::Kind::kStationRestart);
  EXPECT_EQ(spec->fault_plan.heal_time(), Duration::seconds(120));
}

TEST(ScenarioParser, AllFaultDirectivesShareOnePlan) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
room a 0 0
room b 12 0
edge a b
crash a 60
restart a 90
server-crash 100
server-restart 130
partition 140 20 b
loss-burst 170 10 0.4
link-loss a 190 15 0.6
chaos 5 start 60 window 60 min-outage 5 max-outage 10 station-faults 1 server-faults 0 partitions 0 loss-bursts 0
run 400
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  using K = fault::FaultEvent::Kind;
  std::size_t n_partition = 0, n_burst = 0, n_link = 0, n_server = 0,
              n_station = 0;
  for (const auto& e : spec->fault_plan.events()) {
    switch (e.kind) {
      case K::kPartition: ++n_partition; break;
      case K::kLossBurst: ++n_burst; break;
      case K::kLinkLoss: ++n_link; break;
      case K::kServerCrash:
      case K::kServerRestart: ++n_server; break;
      case K::kStationCrash:
      case K::kStationRestart: ++n_station; break;
    }
  }
  EXPECT_EQ(n_partition, 1u);
  EXPECT_EQ(n_burst, 1u);
  EXPECT_EQ(n_link, 1u);
  EXPECT_EQ(n_server, 2u);
  EXPECT_EQ(n_station, 4u);  // scripted pair + chaos block's pair
}

TEST(ScenarioParser, ChaosBlockMatchesDirectChaosCall) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
room a 0 0
room b 12 0
edge a b
chaos 77 start 50 window 80 min-outage 4 max-outage 12
run 400
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  fault::ChaosParams p;
  p.start = Duration::seconds(50);
  p.window = Duration::seconds(80);
  p.min_outage = Duration::seconds(4);
  p.max_outage = Duration::seconds(12);
  const auto direct = fault::FaultPlan::chaos(77, 2, p);
  const auto& got = spec->fault_plan.events();
  ASSERT_EQ(got.size(), direct.events().size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, direct.events()[i].kind) << i;
    EXPECT_EQ(got[i].at, direct.events()[i].at) << i;
    EXPECT_EQ(got[i].station, direct.events()[i].station) << i;
  }
}

TEST(ScenarioParser, ActsAndAssertionsCarrySourceLines) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
room a 0 0
room b 12 0
edge a b
user X x pw a
act X walk-to b 30
act X power-cycle 60 10
act X unreachable 80 5
act X login-flood 100 40
assert-at 110 whereis X b
assert-at 115 whereis X absent
assert-window 10 110 max-staleness 50
assert-final no-invariant-violations
run 120
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ASSERT_EQ(spec->acts.size(), 4u);
  EXPECT_EQ(spec->acts[0].kind, ScenarioAct::Kind::kWalkTo);
  EXPECT_EQ(spec->acts[0].room, *spec->building.find("b"));
  EXPECT_EQ(spec->acts[0].line, 6);
  EXPECT_EQ(spec->acts[1].kind, ScenarioAct::Kind::kPowerCycle);
  EXPECT_EQ(spec->acts[1].duration, Duration::seconds(10));
  EXPECT_EQ(spec->acts[2].kind, ScenarioAct::Kind::kUnreachable);
  EXPECT_EQ(spec->acts[3].kind, ScenarioAct::Kind::kLoginFlood);
  EXPECT_EQ(spec->acts[3].count, 40);
  ASSERT_EQ(spec->assertions.size(), 4u);
  EXPECT_EQ(spec->assertions[0].kind, ScenarioAssertion::Kind::kWhereIsAt);
  EXPECT_EQ(spec->assertions[0].line, 10);
  EXPECT_EQ(spec->assertions[1].room, mobility::kNoRoom);
  EXPECT_EQ(spec->assertions[2].kind,
            ScenarioAssertion::Kind::kMaxStalenessWindow);
  EXPECT_EQ(spec->assertions[2].staleness, Duration::seconds(50));
  EXPECT_EQ(spec->assertions[3].kind,
            ScenarioAssertion::Kind::kNoInvariantViolations);
}

TEST(ScenarioParser, CrashDirectiveErrors) {
  ScenarioError err;
  EXPECT_FALSE(parse_scenario(std::string("room a 0 0\ncrash b 60\n"), &err)
                   .has_value());
  EXPECT_NE(err.message.find("unknown room"), std::string::npos);
  EXPECT_FALSE(parse_scenario(std::string("room a 0 0\ncrash a -5\n"), &err)
                   .has_value());
  EXPECT_FALSE(
      parse_scenario(std::string("room a 0 0\nstation-timeout x\n"), &err)
          .has_value());
}

TEST(ScenarioRunner, WalkToActMovesTheUserAndWhereIsAssertSeesIt) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 11
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
act Alice walk-to b 60
assert-at 50 whereis Alice a
assert-at 150 whereis Alice b
assert-final no-invariant-violations
run 180
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  auto sim = run_scenario(*spec, {}, &report);
  ASSERT_EQ(report.checks.size(), 3u);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << ": " << c.detail;
  }
  EXPECT_TRUE(report.passed());
  EXPECT_FALSE(report.invariants_violated());
  EXPECT_EQ(sim->db_room("alice"), *spec->building.find("b"));
}

TEST(ScenarioRunner, MinCounterAssertGradesAgainstTheRegistry) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 12
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
user Alice alice pw a
assert-final min-counter server.logins_ok 1
assert-final min-counter server.logins_ok 1000000
run 60
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ASSERT_EQ(spec->assertions.size(), 2u);
  EXPECT_EQ(spec->assertions[0].kind, ScenarioAssertion::Kind::kMinCounter);
  EXPECT_EQ(spec->assertions[0].counter, "server.logins_ok");
  EXPECT_EQ(spec->assertions[0].min_count, 1u);

  ScenarioReport report;
  auto sim = run_scenario(*spec, {}, &report);
  ASSERT_EQ(report.checks.size(), 2u);
  EXPECT_TRUE(report.checks[0].passed) << report.checks[0].detail;
  EXPECT_FALSE(report.checks[1].passed);  // an absurd floor must fail loudly
  EXPECT_NE(report.checks[1].detail.find("need >= 1000000"),
            std::string::npos);

  // The same file grades identically on the sharded replay path (the
  // counter floor sums the cell across shards).
  ScenarioReport sharded;
  std::string serr;
  auto par = run_scenario_sharded(*spec, 2, 2, &sharded, &serr);
  ASSERT_NE(par, nullptr) << serr;
  ASSERT_EQ(sharded.checks.size(), 2u);
  EXPECT_TRUE(sharded.checks[0].passed) << sharded.checks[0].detail;
  EXPECT_FALSE(sharded.checks[1].passed);
}

TEST(ScenarioRunner, FailedWhereIsAssertReportsLineAndDetail) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 11
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
room b 14 0
edge a b
user Alice alice pw a
assert-at 50 whereis Alice b
run 60
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  run_scenario(*spec, {}, &report);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_FALSE(report.checks[0].passed);
  EXPECT_EQ(report.checks[0].line, 10);
  EXPECT_NE(report.checks[0].detail.find("expected b"), std::string::npos)
      << report.checks[0].detail;
  EXPECT_EQ(report.failed(), 1u);
  EXPECT_FALSE(report.invariants_violated());  // not the invariant check
}

TEST(ScenarioRunner, UnreachableActDropsThenRestoresTracking) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
station-timeout 10
room a 0 0
user Alice alice pw a
act Alice unreachable 60 30
assert-at 55 whereis Alice a
assert-at 85 whereis Alice absent
assert-at 160 whereis Alice a
run 170
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  auto sim = run_scenario(*spec, {}, &report);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << ": " << c.detail;
  }
  // The shadow ended: the client is reachable and logged in again.
  EXPECT_TRUE(sim->client("alice")->logged_in());
  EXPECT_FALSE(sim->radio_shadowed("alice"));
}

TEST(ScenarioRunner, PowerCycleActLogsOutAndBackIn) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
station-timeout 10
room a 0 0
user Alice alice pw a
act Alice power-cycle 60 30
assert-at 85 whereis Alice absent
assert-at 160 whereis Alice a
run 170
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  auto sim = run_scenario(*spec, {}, &report);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << ": " << c.detail;
  }
  EXPECT_TRUE(sim->client("alice")->logged_in());
  // The power cycle tore the session down and built a fresh one.
  EXPECT_GE(sim->client("alice")->stats().logins_sent, 2u);
}

TEST(ScenarioRunner, LoginFloodIsAbsorbedWithoutBreakingInvariants) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
user Alice alice pw a
act Alice login-flood 60 50
assert-at 100 whereis Alice a
assert-final no-invariant-violations
run 110
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  auto sim = run_scenario(*spec, {}, &report);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << "line " << c.line << ": " << c.detail;
  }
  EXPECT_GE(sim->client("alice")->stats().logins_sent, 50u);
  EXPECT_TRUE(sim->client("alice")->logged_in());
}

TEST(ScenarioRunner, StalenessWindowCatchesACrashThatNeverHeals) {
  // A crash with a restart only after the window closes: the location DB
  // keeps no record of Alice (the dead station cannot report, the sweeper
  // expires her), so truth != DB for longer than the bound.
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
station-timeout 10
room a 0 0
user Alice alice pw a
crash a 60
restart a 230
assert-window 20 220 max-staleness 60
run 240
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  run_scenario(*spec, {}, &report);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_FALSE(report.checks[0].passed);
  EXPECT_NE(report.checks[0].detail.find("stale"), std::string::npos)
      << report.checks[0].detail;
}

TEST(ScenarioRunner, StalenessWindowPassesOnAHealthyRun) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
user Alice alice pw a
assert-window 20 110 max-staleness 60
run 120
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  ScenarioReport report;
  run_scenario(*spec, {}, &report);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.checks[0].passed) << report.checks[0].detail;
}

TEST(ScenarioRunner, NullReportSkipsAssertionMachinery) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 5
inquiry 2.56
cycle 5.12
pause 100000 200000
room a 0 0
user Alice alice pw a
assert-at 50 whereis Alice a
run 60
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  auto sim = run_scenario(*spec);  // no report: plain workload run
  EXPECT_TRUE(sim->client("alice")->logged_in());
}

TEST(ScenarioRunner, ScriptedCrashAndRecovery) {
  ScenarioError err;
  const auto spec = parse_scenario(std::string(R"(
seed 3
inquiry 2.56
cycle 5.12
pause 100000 200000
station-timeout 10
room a 0 0
user Alice alice pw a
crash a 80
restart a 110
run 200
sample 1
)"),
                                   &err);
  ASSERT_TRUE(spec.has_value()) << err.message;
  auto sim = run_scenario(*spec);
  // The crash happened (station expired) and recovery completed (Alice is
  // tracked again by the end).
  EXPECT_GE(
      sim->simulator().obs().metrics.counter_value("server.stations_expired"),
      1u);
  EXPECT_EQ(sim->db_room("alice"), 0u);
  EXPECT_TRUE(sim->client("alice")->logged_in());
  EXPECT_FALSE(sim->workstation(0).crashed());
}

}  // namespace
}  // namespace bips::core
