// Unit tests for the pedestrian mobility models.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "src/graph/all_pairs.hpp"
#include "src/mobility/agents.hpp"

namespace bips::mobility {
namespace {

RandomWaypointAgent::Config fast_mobility() {
  RandomWaypointAgent::Config cfg;
  cfg.speed_min_mps = 1.0;
  cfg.speed_max_mps = 1.5;
  cfg.pause_min = Duration::seconds(1);
  cfg.pause_max = Duration::seconds(5);
  return cfg;
}

struct AgentRig : ::testing::Test {
  sim::Simulator sim;
  Building building = Building::department();
  graph::Graph g = building.to_graph();
  graph::AllPairsPaths paths{g};

  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
};

TEST_F(AgentRig, StartsAtStartRoomCenter) {
  RandomWaypointAgent a(sim, building, paths, Rng(1), 0, fast_mobility());
  EXPECT_EQ(a.position(), building.room(0).center);
  EXPECT_EQ(a.destination(), 0u);
}

TEST_F(AgentRig, EventuallyLeavesTheStartRoom) {
  RandomWaypointAgent a(sim, building, paths, Rng(2), 0, fast_mobility());
  a.start();
  run_s(60);
  EXPECT_GT(a.odometer(), 0.0);
}

TEST_F(AgentRig, StaysOnCorridorPaths) {
  // At every instant the agent lies on a segment between the centres of two
  // rooms connected in the graph (or at a centre).
  RandomWaypointAgent a(sim, building, paths, Rng(3), 0, fast_mobility());
  a.start();
  for (int i = 0; i < 600; ++i) {
    run_s(1.0);
    const Vec2 p = a.position();
    bool on_some_segment = false;
    for (const Room& r1 : building.rooms()) {
      if (distance(p, r1.center) < 1e-6) on_some_segment = true;
    }
    for (const Corridor& c : building.corridors()) {
      const Vec2 u = building.room(c.a).center;
      const Vec2 v = building.room(c.b).center;
      const double len = distance(u, v);
      // Distance from p to segment uv.
      const Vec2 d = (v - u) * (1.0 / len);
      const double t = std::clamp((p - u).x * d.x + (p - u).y * d.y, 0.0, len);
      const Vec2 proj = u + d * t;
      if (distance(p, proj) < 1e-6) on_some_segment = true;
    }
    ASSERT_TRUE(on_some_segment)
        << "agent off-graph at t=" << sim.now().to_seconds() << " p=(" << p.x
        << "," << p.y << ")";
  }
}

TEST_F(AgentRig, VisitsManyRoomsOverTime) {
  RandomWaypointAgent a(sim, building, paths, Rng(4), 0, fast_mobility());
  a.start();
  std::set<RoomId> visited;
  for (int i = 0; i < 1200; ++i) {
    run_s(1.0);
    const RoomId r = a.covering_room(10.0);
    if (r != kNoRoom) visited.insert(r);
  }
  EXPECT_GE(visited.size(), 5u);
}

TEST_F(AgentRig, SpeedStaysWithinConfiguredBand) {
  RandomWaypointAgent a(sim, building, paths, Rng(5), 0, fast_mobility());
  a.start();
  // Sample displacement over small dt while walking.
  for (int i = 0; i < 2000; ++i) {
    const Vec2 before = a.position();
    run_s(0.1);
    const Vec2 after = a.position();
    if (a.walking()) {
      const double v = distance(before, after) / 0.1;
      // A sample that straddles a pause/turn boundary reads low; never high.
      EXPECT_LT(v, 1.5 + 1e-6);
    }
  }
}

TEST_F(AgentRig, StopFreezesTheAgent) {
  RandomWaypointAgent a(sim, building, paths, Rng(6), 0, fast_mobility());
  a.start();
  run_s(30);
  a.stop();
  const Vec2 p = a.position();
  run_s(60);
  EXPECT_EQ(a.position(), p);
}

TEST_F(AgentRig, DeterministicForSameSeed) {
  RandomWaypointAgent a1(sim, building, paths, Rng(7), 0, fast_mobility());
  // A second simulator world replays identically.
  sim::Simulator sim2;
  RandomWaypointAgent a2(sim2, building, paths, Rng(7), 0, fast_mobility());
  a1.start();
  a2.start();
  for (int i = 0; i < 120; ++i) {
    sim.run_until(sim.now() + Duration::seconds(1));
    sim2.run_until(sim2.now() + Duration::seconds(1));
    EXPECT_EQ(a1.position(), a2.position()) << "diverged at step " << i;
  }
}

TEST_F(AgentRig, SingleRoomBuildingAgentDwellsForever) {
  Building one;
  one.add_room("only", {0, 0});
  graph::Graph g1 = one.to_graph();
  graph::AllPairsPaths p1(g1);
  RandomWaypointAgent a(sim, one, p1, Rng(8), 0, fast_mobility());
  a.start();
  run_s(120);
  EXPECT_EQ(a.position(), (Vec2{0, 0}));
  EXPECT_DOUBLE_EQ(a.odometer(), 0.0);
}

TEST(CorridorCrosser, CrossesTheFullDiameter) {
  sim::Simulator sim;
  bool exited = false;
  CorridorCrosser c(sim, {0, 0}, 10.0, 1.3, [&] { exited = true; });
  EXPECT_EQ(c.position(), (Vec2{-10, 0}));
  EXPECT_NEAR(c.crossing_time().to_seconds(), 15.3846, 1e-3);
  c.start();
  sim.run_until(SimTime(Duration::seconds(20).ns()));
  EXPECT_TRUE(exited);
  EXPECT_EQ(c.position(), (Vec2{10, 0}));
}

TEST(CorridorCrosser, PaperNumbersTwentyMetresAt1p3) {
  // Section 5: 20 m diameter / 1.3 m/s average -> 15.4 s crossing.
  sim::Simulator sim;
  CorridorCrosser c(sim, {0, 0}, 10.0, 1.3);
  EXPECT_NEAR(c.crossing_time().to_seconds(), 15.4, 0.1);
}

}  // namespace
}  // namespace bips::mobility

// ---- agenda-driven pedestrians ----------------------------------------------

namespace bips::mobility {
namespace {

SimTime ts(double s) { return SimTime(Duration::from_seconds(s).ns()); }

TEST_F(AgentRig, AgendaAgentKeepsItsAppointments) {
  const RoomId lobby = *building.find("lobby");
  const RoomId seminar = *building.find("seminar-room");
  const RoomId coffee = *building.find("coffee-corner");
  AgendaAgent a(sim, building, paths, Rng(9), lobby,
                {{ts(30), seminar}, {ts(120), coffee}});
  a.start();
  EXPECT_EQ(a.position(), building.room(lobby).center);

  run_s(29);
  EXPECT_EQ(a.position(), building.room(lobby).center);  // dwelling

  run_s(60);  // t = 89: walked the ~52 m at 1.3 m/s
  EXPECT_EQ(a.position(), building.room(seminar).center);
  EXPECT_EQ(a.appointments_kept(), 1u);

  run_s(120);  // t = 209: second appointment done
  EXPECT_EQ(a.position(), building.room(coffee).center);
  EXPECT_EQ(a.appointments_kept(), 2u);
}

TEST_F(AgentRig, AgendaAgentStaysOnTheCorridorGraph) {
  const RoomId lobby = *building.find("lobby");
  const RoomId seminar = *building.find("seminar-room");
  AgendaAgent a(sim, building, paths, Rng(10), lobby, {{ts(5), seminar}});
  a.start();
  // While walking, the agent passes through intermediate room centres of
  // the shortest path (never cuts across the void).
  bool seen_intermediate = false;
  for (int i = 0; i < 60; ++i) {
    run_s(1);
    const RoomId r = building.nearest_room(a.position());
    if (r != lobby && r != seminar) seen_intermediate = true;
  }
  EXPECT_TRUE(seen_intermediate);
  EXPECT_EQ(a.position(), building.room(seminar).center);
}

TEST_F(AgentRig, AgendaAgentAppointmentInCurrentRoomIsImmediate) {
  const RoomId lobby = *building.find("lobby");
  AgendaAgent a(sim, building, paths, Rng(11), lobby, {{ts(10), lobby}});
  a.start();
  run_s(15);
  EXPECT_EQ(a.position(), building.room(lobby).center);
  EXPECT_EQ(a.appointments_kept(), 1u);
}

TEST_F(AgentRig, AgendaAgentStopCancelsFutureAppointments) {
  const RoomId lobby = *building.find("lobby");
  const RoomId seminar = *building.find("seminar-room");
  AgendaAgent a(sim, building, paths, Rng(12), lobby, {{ts(50), seminar}});
  a.start();
  run_s(10);
  a.stop();
  run_s(200);
  EXPECT_EQ(a.position(), building.room(lobby).center);
  EXPECT_EQ(a.appointments_kept(), 0u);
}

TEST_F(AgentRig, UnsortedAgendaDies) {
  const RoomId lobby = *building.find("lobby");
  EXPECT_DEATH(AgendaAgent(sim, building, paths, Rng(13), lobby,
                           {{ts(100), lobby}, {ts(50), lobby}}),
               "sorted");
}

TEST_F(AgentRig, ConvergenceScenarioEveryoneReachesTheMeeting) {
  const RoomId seminar = *building.find("seminar-room");
  std::vector<std::unique_ptr<AgendaAgent>> crowd;
  for (std::size_t i = 0; i < building.room_count(); ++i) {
    crowd.push_back(std::make_unique<AgendaAgent>(
        sim, building, paths, Rng(100 + i), static_cast<RoomId>(i),
        std::vector<AgendaAgent::Appointment>{{ts(60), seminar}}));
    crowd.back()->start();
  }
  run_s(200);
  for (auto& a : crowd) {
    EXPECT_EQ(a->position(), building.room(seminar).center);
  }
}

}  // namespace
}  // namespace bips::mobility
