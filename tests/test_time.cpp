// Unit tests for the simulation time types and baseband constants.
#include <gtest/gtest.h>

#include "src/util/time.hpp"

namespace bips {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(7).ns(), 7);
  EXPECT_EQ(Duration::micros(3).ns(), 3'000);
  EXPECT_EQ(Duration::millis(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(5).ns(), 5'000'000'000);
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(0.0000000004).ns(), 0);
  EXPECT_EQ(Duration::from_seconds(0.0000000006).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(-1.5).ns(), -1'500'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(10), b = Duration::millis(4);
  EXPECT_EQ((a + b).ns(), 14'000'000);
  EXPECT_EQ((a - b).ns(), 6'000'000);
  EXPECT_EQ((a * 3).ns(), 30'000'000);
  EXPECT_EQ((3 * a).ns(), 30'000'000);
  EXPECT_EQ(a / b, 2);
  EXPECT_EQ((a % b).ns(), 2'000'000);
  EXPECT_EQ((-a).ns(), -10'000'000);
}

TEST(Duration, Comparison) {
  EXPECT_LT(Duration::micros(1), Duration::micros(2));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_GE(Duration::seconds(1), Duration::millis(1000));
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(SimTime, Arithmetic) {
  const SimTime t(1'000);
  EXPECT_EQ((t + Duration::nanos(500)).ns(), 1'500);
  EXPECT_EQ((t - Duration::nanos(500)).ns(), 500);
  EXPECT_EQ((SimTime(3'000) - t).ns(), 2'000);
  SimTime u = t;
  u += Duration::nanos(1);
  EXPECT_EQ(u.ns(), 1'001);
}

TEST(SimTime, Extremes) {
  EXPECT_EQ(SimTime::zero().ns(), 0);
  EXPECT_EQ(SimTime::max().ns(), INT64_MAX);
  EXPECT_LT(SimTime::zero(), SimTime::max());
}

// The constants the paper's measurements hinge on must be exact in the
// nanosecond time base.
TEST(BasebandConstants, ExactSpecValues) {
  EXPECT_EQ(kHalfSlot.ns(), 312'500);             // 312.5 us clock cycle
  EXPECT_EQ(kSlot.ns(), 625'000);                 // 625 us slot
  EXPECT_EQ(kTrain.ns(), 10'000'000);             // 10 ms train
  EXPECT_EQ(kNInquiry, 256);
  EXPECT_EQ(kTrainDwell.ns(), 2'560'000'000);     // 2.56 s per train
  EXPECT_EQ(kDefaultScanWindow.ns(), 11'250'000); // 11.25 ms
  EXPECT_EQ(kDefaultScanInterval.ns(), 1'280'000'000);  // 1.28 s
  EXPECT_EQ(kMaxInquiryLength.ns(), 10'240'000'000);    // 10.24 s
}

TEST(BasebandConstants, SlotStructure) {
  EXPECT_EQ(kSlot.ns(), 2 * kHalfSlot.ns());
  EXPECT_EQ(kTrain.ns(), 16 * kSlot.ns());
  EXPECT_EQ(kTrainDwell.ns(), kNInquiry * kTrain.ns());
  // The scan window must cover at least one full train sweep.
  EXPECT_GT(kDefaultScanWindow, kTrain);
}

TEST(TimeFormatting, HumanReadable) {
  EXPECT_EQ(to_string(Duration::from_seconds(1.6028)), "1.603 s");
  EXPECT_EQ(to_string(Duration::millis(11)), "11 ms");
  EXPECT_EQ(to_string(Duration::micros(68)), "68 us");
  EXPECT_EQ(to_string(SimTime(1'500'000'000)), "1.500 s");
}

}  // namespace
}  // namespace bips
