// Unit tests for the table/CSV renderer used by the bench harness.
#include <gtest/gtest.h>

#include "src/util/table.hpp"

namespace bips {
namespace {

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"Starting Train", "Case No.", "Taverage"});
  t.add_row({"Same", "236", "1.6028s"});
  t.add_row({"Different", "264", "4.1320s"});
  t.add_row({"Mixed", "500", "2.865s"});
  const std::string out = t.to_string();
  // Header present, one line per row + header + rule.
  EXPECT_NE(out.find("Starting Train"), std::string::npos);
  EXPECT_NE(out.find("Different"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
  // Columns align: "236" and "264" start at the same offset.
  const auto line_at = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = out.find('\n', pos) + 1;
    return out.substr(pos, out.find('\n', pos) - pos);
  };
  EXPECT_EQ(line_at(2).find("236"), line_at(3).find("264"));
}

TEST(TableWriter, RowWidthMismatchDies) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(TableWriter, AddRowValuesFormatsDoubles) {
  TableWriter t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
  EXPECT_NE(t.to_string().find("2.00"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quoted", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("name,note"), std::string::npos);
}

TEST(TableWriter, RowsCounted) {
  TableWriter t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FmtPct, RendersPercentage) {
  EXPECT_EQ(fmt_pct(0.948, 1), "94.8%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.0, 1), "0.0%");
}

}  // namespace
}  // namespace bips
