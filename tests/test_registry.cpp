// Unit tests for the user registry and access rights.
#include <gtest/gtest.h>

#include "src/core/registry.hpp"

namespace bips::core {
namespace {

struct RegistryRig : ::testing::Test {
  UserRegistry reg;
  void SetUp() override {
    ASSERT_TRUE(reg.register_user("alice", "Alice A.", "pw-a", 1));
    ASSERT_TRUE(reg.register_user("bob", "Bob B.", "pw-b", 2));
  }
};

TEST_F(RegistryRig, LookupByIdAndName) {
  const UserRecord* a = reg.by_userid("alice");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "Alice A.");
  const UserRecord* b = reg.by_name("Bob B.");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->userid, "bob");
  EXPECT_EQ(reg.by_userid("nobody"), nullptr);
  EXPECT_EQ(reg.by_name("Nobody"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST_F(RegistryRig, DuplicateUseridRejected) {
  EXPECT_FALSE(reg.register_user("alice", "Another Alice", "x", 3));
}

TEST_F(RegistryRig, DuplicateNameRejected) {
  EXPECT_FALSE(reg.register_user("alice2", "Alice A.", "x", 3));
}

TEST_F(RegistryRig, EmptyFieldsRejected) {
  EXPECT_FALSE(reg.register_user("", "Name", "x", 1));
  EXPECT_FALSE(reg.register_user("id", "", "x", 1));
}

TEST_F(RegistryRig, Authentication) {
  EXPECT_TRUE(reg.authenticate("alice", "pw-a"));
  EXPECT_FALSE(reg.authenticate("alice", "pw-b"));
  EXPECT_FALSE(reg.authenticate("ghost", "pw-a"));
}

TEST_F(RegistryRig, DefaultEveryoneMayLocateEveryone) {
  const auto* a = reg.by_userid("alice");
  const auto* b = reg.by_userid("bob");
  EXPECT_TRUE(reg.can_locate(*a, *b));
  EXPECT_TRUE(reg.can_locate(*b, *a));
}

TEST_F(RegistryRig, AllowListRestrictsLocation) {
  ASSERT_TRUE(reg.set_locatable_by_anyone("bob", false));
  const auto* a = reg.by_userid("alice");
  const auto* b = reg.by_userid("bob");
  EXPECT_FALSE(reg.can_locate(*a, *b));
  ASSERT_TRUE(reg.allow_requester("bob", "alice"));
  EXPECT_TRUE(reg.can_locate(*a, *b));
}

TEST_F(RegistryRig, SelfLookupAlwaysAllowed) {
  ASSERT_TRUE(reg.set_locatable_by_anyone("bob", false));
  const auto* b = reg.by_userid("bob");
  EXPECT_TRUE(reg.can_locate(*b, *b));
}

TEST_F(RegistryRig, MayQueryGate) {
  ASSERT_TRUE(reg.set_may_query("alice", false));
  const auto* a = reg.by_userid("alice");
  const auto* b = reg.by_userid("bob");
  EXPECT_FALSE(reg.can_locate(*a, *b));
  EXPECT_FALSE(reg.can_locate(*a, *a));  // the query right gates everything
  EXPECT_TRUE(reg.can_locate(*b, *a));
}

TEST_F(RegistryRig, RemoveUserFreesBothKeys) {
  EXPECT_TRUE(reg.remove_user("alice"));
  EXPECT_EQ(reg.by_userid("alice"), nullptr);
  EXPECT_EQ(reg.by_name("Alice A."), nullptr);
  EXPECT_FALSE(reg.remove_user("alice"));
  // Both userid and name become reusable.
  EXPECT_TRUE(reg.register_user("alice", "Alice A.", "new", 9));
}

TEST_F(RegistryRig, RightsAdministrationOnUnknownUserFails) {
  EXPECT_FALSE(reg.set_locatable_by_anyone("ghost", true));
  EXPECT_FALSE(reg.allow_requester("ghost", "alice"));
  EXPECT_FALSE(reg.set_may_query("ghost", false));
}

}  // namespace
}  // namespace bips::core
