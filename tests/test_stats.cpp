// Unit tests for statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace bips {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // interpolated
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(SampleSet, CdfIsEmpiricalFraction) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(5.0), 0.5);   // <= 5: five samples
  EXPECT_DOUBLE_EQ(s.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf(100.0), 1.0);
}

TEST(SampleSet, AddDurationConvertsToSeconds) {
  SampleSet s;
  s.add(Duration::millis(1500));
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(20.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 3.0);
}

TEST(Histogram, AsciiRendersOneRowPerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace bips

// ---- confidence intervals ---------------------------------------------------

namespace bips {
namespace {

TEST(ConfidenceInterval, ZeroBelowTwoSamples) {
  RunningStats r;
  EXPECT_DOUBLE_EQ(r.ci95_halfwidth(), 0.0);
  r.add(5.0);
  EXPECT_DOUBLE_EQ(r.ci95_halfwidth(), 0.0);
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(ConfidenceInterval, ShrinksWithSampleCount) {
  Rng rng(71);
  RunningStats small, large;
  for (int i = 0; i < 30; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 3000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // ~1.96/sqrt(n): 0.36 for n=30, 0.036 for n=3000.
  EXPECT_NEAR(small.ci95_halfwidth(), 1.96 / std::sqrt(30.0), 0.12);
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 / std::sqrt(3000.0), 0.01);
}

TEST(ConfidenceInterval, CoversTheTrueMeanMostOfTheTime) {
  // Property: across many replications, the 95% CI contains the true mean
  // in roughly 95% of cases.
  Rng rng(73);
  int covered = 0;
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.normal(10.0, 2.0));
    const double hw = s.ci95_halfwidth();
    if (std::abs(s.mean() - 10.0) <= hw) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kReps;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(ConfidenceInterval, SampleSetMatchesRunningStats) {
  Rng rng(79);
  RunningStats r;
  SampleSet s;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform_double() * 7;
    r.add(x);
    s.add(x);
  }
  EXPECT_NEAR(r.ci95_halfwidth(), s.ci95_halfwidth(), 1e-9);
}

}  // namespace
}  // namespace bips
