// Unit tests for the BIPS workstation: relay rewriting/routing, absence
// hysteresis, and the reliable presence stream -- driven against a scripted
// fake server on the LAN.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/slave.hpp"
#include "src/core/workstation.hpp"

namespace bips::core {
namespace {

struct WorkstationRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{41};
  baseband::RadioChannel radio{sim, rng, baseband::ChannelConfig{}};
  net::Lan lan{sim, rng, net::Lan::Config{}};
  net::Endpoint& server = lan.create_endpoint();  // scripted fake server
  std::vector<proto::Message> at_server;

  std::unique_ptr<BipsWorkstation> ws;

  void SetUp() override {
    WorkstationConfig cfg;
    cfg.scheduler.inquiry_length = Duration::from_seconds(1.0);
    cfg.scheduler.cycle_length = Duration::from_seconds(5.0);
    cfg.park_idle_links = false;  // keep link states simple here
    ws = std::make_unique<BipsWorkstation>(sim, radio, lan, server.address(),
                                           /*station=*/3, baseband::BdAddr(0xA1),
                                           rng.fork(), Vec2{}, cfg);
    server.set_handler([this](net::Address, const net::Payload& data) {
      auto m = proto::decode(data);
      ASSERT_TRUE(m.has_value());
      at_server.push_back(*m);
    });
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
  void server_sends(const proto::Message& m) {
    server.send(ws->lan_address(), proto::encode(m));
  }
  template <typename T>
  std::vector<T> server_got() {
    std::vector<T> out;
    for (const auto& m : at_server) {
      if (const T* v = std::get_if<T>(&m)) out.push_back(*v);
    }
    return out;
  }
};

struct FakeHandheld {
  std::unique_ptr<baseband::Device> dev;
  baseband::SlaveLink link;
  std::vector<proto::Message> received;
  std::unique_ptr<baseband::InquiryScanner> scanner;

  FakeHandheld(WorkstationRig& rig, std::uint64_t addr)
      : dev(std::make_unique<baseband::Device>(rig.sim, rig.radio,
                                               baseband::BdAddr(addr),
                                               rig.rng.fork())),
        link(*dev) {
    link.set_on_message([this](const baseband::AclPayload& p) {
      auto m = proto::decode(p);
      if (m) received.push_back(*m);
    });
  }

  /// Makes the handheld answer inquiries (so the workstation's tracker
  /// actually *sees* it, instead of only holding its link).
  void become_discoverable() {
    baseband::ScanConfig scan;
    scan.window = scan.interval = kDefaultScanInterval;  // continuous
    scan.channel_mode = baseband::ScanChannelMode::kFixed;
    scanner = std::make_unique<baseband::InquiryScanner>(
        *dev, scan, baseband::BackoffConfig{});
    scanner->set_initial_channel(4);  // train A
    scanner->start_with_phase(Duration(0));
  }
};

TEST_F(WorkstationRig, LoginRelayRewritesSpoofedAddress) {
  FakeHandheld h(*this, 0xB1);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h.link));
  proto::LoginRequest req{0xDEAD /* spoofed */, "alice", "pw"};
  h.link.send_to_master(proto::encode(req));
  run_ms(100);
  const auto got = server_got<proto::LoginRequest>();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bd_addr, 0xB1u);  // the link's real identity
  EXPECT_EQ(got[0].userid, "alice");
  EXPECT_EQ(ws->stats().relays_up, 1u);
}

TEST_F(WorkstationRig, QueryRelayIsolatesClashingQueryIds) {
  FakeHandheld h1(*this, 0xB1), h2(*this, 0xB2);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h1.link));
  ASSERT_TRUE(ws->scheduler().piconet().attach(h2.link));
  // Both handhelds use query id 7.
  h1.link.send_to_master(proto::encode(proto::WhereIsRequest{7, 0, "Bob"}));
  h2.link.send_to_master(proto::encode(proto::WhereIsRequest{7, 0, "Carol"}));
  run_ms(100);

  const auto reqs = server_got<proto::WhereIsRequest>();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_NE(reqs[0].query_id, reqs[1].query_id);  // relay ids distinct

  // Route each reply back: rooms tell us which is which.
  for (const auto& r : reqs) {
    proto::WhereIsReply rep;
    rep.query_id = r.query_id;
    rep.status = proto::QueryStatus::kOk;
    rep.room = r.target_user == "Bob" ? "bob-room" : "carol-room";
    server_sends(rep);
  }
  run_ms(100);
  ASSERT_EQ(h1.received.size(), 1u);
  ASSERT_EQ(h2.received.size(), 1u);
  const auto& rep1 = std::get<proto::WhereIsReply>(h1.received[0]);
  const auto& rep2 = std::get<proto::WhereIsReply>(h2.received[0]);
  EXPECT_EQ(rep1.query_id, 7u);  // original id restored
  EXPECT_EQ(rep2.query_id, 7u);
  EXPECT_EQ(rep1.room, "bob-room");
  EXPECT_EQ(rep2.room, "carol-room");
}

TEST_F(WorkstationRig, PathRequestGetsTheStationRoom) {
  FakeHandheld h(*this, 0xB1);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h.link));
  h.link.send_to_master(
      proto::encode(proto::PathRequest{1, 0, "Bob", 999 /* bogus */}));
  run_ms(100);
  const auto reqs = server_got<proto::PathRequest>();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].from_room, 3u);  // this workstation's station id
  EXPECT_EQ(reqs[0].requester_bd_addr, 0xB1u);
}

TEST_F(WorkstationRig, UnexpectedAclTypesIgnored) {
  FakeHandheld h(*this, 0xB1);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h.link));
  // A handheld must not inject presence updates or replies.
  h.link.send_to_master(
      proto::encode(proto::PresenceUpdate{9, 0xB9, true, 1, 1}));
  h.link.send_to_master(
      proto::encode(proto::WhereIsReply{1, proto::QueryStatus::kOk, "x"}));
  h.link.send_to_master({0xFF, 0xEE});  // garbage
  run_ms(100);
  EXPECT_TRUE(at_server.empty());
  EXPECT_EQ(ws->stats().relays_up, 0u);
}

TEST_F(WorkstationRig, MovementEventForwardedToSubscriber) {
  FakeHandheld h(*this, 0xB1);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h.link));
  server_sends(proto::MovementEvent{0xB1, "Bob", true, "lab", 123});
  run_ms(100);
  ASSERT_EQ(h.received.size(), 1u);
  const auto& ev = std::get<proto::MovementEvent>(h.received[0]);
  EXPECT_EQ(ev.room, "lab");
  EXPECT_EQ(ws->stats().relays_down, 1u);
}

TEST_F(WorkstationRig, MovementEventForUnknownDeviceDropped) {
  server_sends(proto::MovementEvent{0xB9, "Bob", true, "lab", 123});
  run_ms(100);
  EXPECT_EQ(ws->stats().relays_down, 0u);  // nothing crashed, nothing sent
}

TEST_F(WorkstationRig, PresenceRetransmitsUntilAcked) {
  // The fake server stays silent: the update is resent every 500 ms.
  FakeHandheld h(*this, 0xB1);
  h.become_discoverable();
  ws->start();
  run_ms(1100);  // one inquiry slot: the device is discovered and reported
  ASSERT_GE(server_got<proto::PresenceUpdate>().size(), 1u);
  EXPECT_EQ(ws->unacked_updates(), 1u);
  const auto before = ws->stats().retransmissions;
  run_ms(1600);
  EXPECT_GT(ws->stats().retransmissions, before);
  // All retransmissions carry the same seq.
  const auto ups = server_got<proto::PresenceUpdate>();
  for (const auto& u : ups) EXPECT_EQ(u.seq, ups[0].seq);

  // Ack arrives: the stream quiesces.
  server_sends(proto::PresenceAck{3, ups[0].seq});
  run_ms(100);
  EXPECT_EQ(ws->unacked_updates(), 0u);
  const auto after_ack = ws->stats().retransmissions;
  run_ms(2000);
  EXPECT_EQ(ws->stats().retransmissions, after_ack);
}

TEST_F(WorkstationRig, StaleAckDoesNotDropNewerUpdates) {
  FakeHandheld h(*this, 0xB1);
  h.become_discoverable();
  ws->start();
  run_ms(1100);
  ASSERT_EQ(ws->unacked_updates(), 1u);
  server_sends(proto::PresenceAck{3, 0});  // acks nothing
  run_ms(100);
  EXPECT_EQ(ws->unacked_updates(), 1u);
}

TEST_F(WorkstationRig, SupersededDeltasCoalesceInQueue) {
  // Server silent: a present + absent flap for the same device must collapse
  // to the newest delta instead of queueing both.
  FakeHandheld h(*this, 0xB1);
  h.become_discoverable();
  ws->start();
  run_ms(1100);  // discovered, present delta queued
  ASSERT_EQ(ws->unacked_updates(), 1u);
  h.scanner->stop();  // vanish: absence after the hysteresis rounds
  run_ms(16'000);     // three more inquiry rounds
  EXPECT_GE(ws->stats().absences_reported, 1u);
  EXPECT_EQ(ws->unacked_updates(), 1u);  // absent superseded present
  EXPECT_GE(ws->stats().updates_coalesced, 1u);
  const auto ups = server_got<proto::PresenceUpdate>();
  ASSERT_FALSE(ups.empty());
  EXPECT_FALSE(ups.back().present);  // what is still being retransmitted
}

TEST_F(WorkstationRig, UnackedQueueIsBounded) {
  WorkstationConfig cfg;
  cfg.scheduler.inquiry_length = Duration::from_seconds(1.0);
  cfg.scheduler.cycle_length = Duration::from_seconds(5.0);
  cfg.park_idle_links = false;
  cfg.max_unacked = 2;  // tiny cap; three distinct devices overflow it
  BipsWorkstation small(sim, radio, lan, server.address(), /*station=*/4,
                        baseband::BdAddr(0xA2), rng.fork(), Vec2{}, cfg);
  FakeHandheld h1(*this, 0xC1), h2(*this, 0xC2), h3(*this, 0xC3);
  h1.become_discoverable();
  h2.become_discoverable();
  h3.become_discoverable();
  small.start();
  run_ms(30'000);  // several inquiry rounds; the server never acks
  EXPECT_GE(small.stats().presences_reported, 3u);
  EXPECT_LE(small.unacked_updates(), 2u);
  EXPECT_GE(small.stats().updates_dropped, 1u);
}

TEST_F(WorkstationRig, SyncRequestYieldsSnapshotAndSupersedesDeltas) {
  FakeHandheld h(*this, 0xB1);
  h.become_discoverable();
  ws->start();
  run_ms(1100);  // tracked, present delta in flight
  ASSERT_EQ(ws->unacked_updates(), 1u);
  server_sends(proto::SyncRequest{2, 0});
  run_ms(100);
  const auto snaps = server_got<proto::SyncSnapshot>();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].workstation, 3u);
  EXPECT_EQ(snaps[0].server_epoch, 2u);
  ASSERT_EQ(snaps[0].present.size(), 1u);
  EXPECT_EQ(snaps[0].present[0].bd_addr, 0xB1u);
  EXPECT_EQ(ws->unacked_updates(), 0u);  // snapshot replaced the deltas
  EXPECT_EQ(ws->known_server_epoch(), 2u);
}

TEST_F(WorkstationRig, EpochBumpOnAckPushesUnpromptedSnapshot) {
  FakeHandheld h(*this, 0xB1);
  h.become_discoverable();
  ws->start();
  run_ms(1100);
  const auto ups = server_got<proto::PresenceUpdate>();
  ASSERT_GE(ups.size(), 1u);

  // First contact with epoch 1: nothing special.
  server_sends(proto::PresenceAck{3, ups[0].seq, 1});
  run_ms(100);
  EXPECT_EQ(ws->known_server_epoch(), 1u);
  EXPECT_EQ(ws->stats().snapshots_sent, 0u);

  // Epoch advanced: the server restarted empty and our SyncRequest may have
  // been lost, so the workstation pushes a snapshot on its own.
  server_sends(proto::PresenceAck{3, ups[0].seq, 2});
  run_ms(100);
  EXPECT_EQ(ws->known_server_epoch(), 2u);
  EXPECT_EQ(ws->stats().snapshots_sent, 1u);
}

TEST_F(WorkstationRig, SnapshotCarriesWitnessedSessionHints) {
  FakeHandheld h(*this, 0xB1);
  ASSERT_TRUE(ws->scheduler().piconet().attach(h.link));
  h.link.send_to_master(proto::encode(proto::LoginRequest{0xB1, "alice", "pw"}));
  run_ms(100);
  server_sends(proto::LoginReply{0xB1, true, ""});
  run_ms(100);
  // Make the device tracked so the snapshot includes it.
  h.become_discoverable();
  ws->start();
  run_ms(1100);
  ASSERT_TRUE(ws->tracks(baseband::BdAddr(0xB1)));

  server_sends(proto::SyncRequest{2, 0});
  run_ms(100);
  const auto snaps = server_got<proto::SyncSnapshot>();
  ASSERT_EQ(snaps.size(), 1u);
  ASSERT_EQ(snaps[0].sessions.size(), 1u);
  EXPECT_EQ(snaps[0].sessions[0].bd_addr, 0xB1u);
  EXPECT_EQ(snaps[0].sessions[0].userid, "alice");
}

}  // namespace
}  // namespace bips::core
