// Integration tests of the page procedure: Pager vs PageScanner.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/baseband/device.hpp"
#include "src/baseband/paging.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct PageRig {
  sim::Simulator sim;
  Rng rng;
  RadioChannel radio;

  explicit PageRig(std::uint64_t seed = 1)
      : rng(seed), radio(sim, rng, ChannelConfig{}) {}

  std::unique_ptr<Device> make_device(std::uint64_t addr) {
    return std::make_unique<Device>(sim, radio, BdAddr(addr), rng.fork());
  }
};

TEST(Paging, CompletesWithAccurateClockEstimate) {
  PageRig rig(31);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);

  std::optional<SimTime> master_done, slave_done;
  std::optional<BdAddr> slave_master;

  Pager pager(*master, PageConfig{});
  pager.set_on_success([&](BdAddr s, SimTime when) {
    EXPECT_EQ(s.raw(), 0xB1u);
    master_done = when;
  });
  PageScanner scanner(*slave, ScanConfig{});
  scanner.set_on_connected([&](BdAddr m, std::uint32_t, SimTime when) {
    slave_master = m;
    slave_done = when;
  });
  scanner.start();

  // Perfect clock estimate: sample the slave's clock right now.
  pager.page(slave->addr(), slave->clock().clkn(rig.sim.now()),
             rig.sim.now());
  rig.sim.run_until(SimTime(Duration::seconds(4).ns()));

  ASSERT_TRUE(master_done.has_value());
  ASSERT_TRUE(slave_done.has_value());
  EXPECT_EQ(slave_master->raw(), 0xA1u);
  // Contact at the slave's first page-scan window: at most one scan
  // interval plus the short exchange.
  EXPECT_LT(master_done->to_seconds(), 1.4);
  EXPECT_EQ(pager.stats().pages_succeeded, 1u);
  EXPECT_FALSE(pager.active());
  EXPECT_FALSE(scanner.running());  // entered connection state
}

TEST(Paging, LatencyBoundedByScanInterval) {
  // Across seeds, page latency with a good estimate is roughly uniform in
  // [0, 1.28 s]: always below interval + exchange slack.
  for (std::uint64_t seed = 40; seed < 52; ++seed) {
    PageRig rig(seed);
    auto master = rig.make_device(0xA1);
    auto slave = rig.make_device(0xB1);
    std::optional<SimTime> done;
    Pager pager(*master, PageConfig{});
    pager.set_on_success([&](BdAddr, SimTime when) { done = when; });
    PageScanner scanner(*slave, ScanConfig{});
    scanner.start();
    pager.page(slave->addr(), slave->clock().clkn(rig.sim.now()),
               rig.sim.now());
    rig.sim.run_until(SimTime(Duration::seconds(4).ns()));
    ASSERT_TRUE(done.has_value()) << "seed " << seed;
    EXPECT_LT(done->to_seconds(), 1.4) << "seed " << seed;
  }
}

TEST(Paging, FailsAfterTimeoutWhenTargetSilent) {
  PageRig rig(32);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);  // no scanner running

  bool failed = false;
  PageConfig cfg;
  cfg.timeout = Duration::from_seconds(2.0);
  Pager pager(*master, cfg);
  pager.set_on_failure([&](BdAddr s) {
    EXPECT_EQ(s.raw(), 0xB1u);
    failed = true;
  });
  pager.page(slave->addr(), 0, rig.sim.now());
  rig.sim.run_until(SimTime(Duration::seconds(3).ns()));
  EXPECT_TRUE(failed);
  EXPECT_FALSE(pager.active());
  EXPECT_EQ(pager.stats().pages_failed, 1u);
}

TEST(Paging, OutOfRangeTargetTimesOut) {
  PageRig rig(33);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  slave->set_position({100, 0});
  bool failed = false;
  PageConfig cfg;
  cfg.timeout = Duration::from_seconds(2.0);
  Pager pager(*master, cfg);
  pager.set_on_failure([&](BdAddr) { failed = true; });
  PageScanner scanner(*slave, ScanConfig{});
  scanner.start();
  pager.page(slave->addr(), slave->clock().clkn(rig.sim.now()),
             rig.sim.now());
  rig.sim.run_until(SimTime(Duration::seconds(3).ns()));
  EXPECT_TRUE(failed);
  EXPECT_EQ(scanner.stats().pages_heard, 0u);
}

TEST(Paging, WrongAddressIsIgnoredByScanner) {
  PageRig rig(34);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  bool connected = false;
  PageConfig cfg;
  cfg.timeout = Duration::from_seconds(1.5);
  Pager pager(*master, cfg);
  PageScanner scanner(*slave, ScanConfig{});
  scanner.set_on_connected(
      [&](BdAddr, std::uint32_t, SimTime) { connected = true; });
  scanner.start();
  pager.page(BdAddr(0xCC), 0, rig.sim.now());  // pages somebody else
  rig.sim.run_until(SimTime(Duration::seconds(2).ns()));
  EXPECT_FALSE(connected);
  EXPECT_EQ(scanner.stats().pages_heard, 0u);  // different page namespace
}

TEST(Paging, CancelStopsTheSweep) {
  PageRig rig(35);
  auto master = rig.make_device(0xA1);
  Pager pager(*master, PageConfig{});
  pager.page(BdAddr(0xB1), 0, rig.sim.now());
  rig.sim.run_until(SimTime(Duration::millis(100).ns()));
  EXPECT_TRUE(pager.active());
  const auto sent = pager.stats().ids_sent;
  EXPECT_GT(sent, 0u);
  pager.cancel();
  EXPECT_FALSE(pager.active());
  rig.sim.run_until(SimTime(Duration::millis(400).ns()));
  EXPECT_EQ(pager.stats().ids_sent, sent);
  EXPECT_EQ(rig.radio.listen_count(master.get()), 0u);
}

TEST(Paging, ColdPageStillSucceedsViaTrainSweep) {
  // A bogus clock estimate starts the sweep on the wrong train half;
  // switching trains (N_page repetitions) recovers it.
  PageRig rig(36);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  std::optional<SimTime> done;
  Pager pager(*master, PageConfig{});
  pager.set_on_success([&](BdAddr, SimTime when) { done = when; });
  PageScanner scanner(*slave, ScanConfig{});
  scanner.start();
  // Adversarial estimate: point at the opposite side of the channel wheel.
  const std::uint32_t real = slave->clock().clkn(rig.sim.now());
  pager.page(slave->addr(), real + (16u << 12), rig.sim.now());
  rig.sim.run_until(SimTime(Duration::seconds(5).ns()));
  ASSERT_TRUE(done.has_value());
}

TEST(Paging, PageOnePerPagerEnforced) {
  PageRig rig(37);
  auto master = rig.make_device(0xA1);
  Pager pager(*master, PageConfig{});
  pager.page(BdAddr(0xB1), 0, rig.sim.now());
  EXPECT_DEATH(pager.page(BdAddr(0xB2), 0, rig.sim.now()), "one page");
}

TEST(Paging, ScannerStopDuringExchangeIsClean) {
  PageRig rig(38);
  auto master = rig.make_device(0xA1);
  auto slave = rig.make_device(0xB1);
  Pager pager(*master, PageConfig{});
  PageScanner scanner(*slave, ScanConfig{});
  scanner.start_with_phase(Duration(0));
  pager.page(slave->addr(), slave->clock().clkn(rig.sim.now()),
             rig.sim.now());
  // Stop the scanner a few ms in, likely mid-exchange on some seeds.
  rig.sim.schedule(Duration::millis(5), [&] { scanner.stop(); });
  rig.sim.run_until(SimTime(Duration::seconds(1).ns()));
  EXPECT_FALSE(scanner.running());
  EXPECT_EQ(rig.radio.listen_count(slave.get()), 0u);
}

}  // namespace
}  // namespace bips::baseband
