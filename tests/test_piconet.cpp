// Unit tests for the piconet data plane (master link manager + slave link).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/baseband/device.hpp"
#include "src/baseband/piconet.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct PiconetRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{7};
  RadioChannel radio{sim, rng, ChannelConfig{}};
  std::unique_ptr<Device> master_dev =
      std::make_unique<Device>(sim, radio, BdAddr(0xA1), rng.fork());
  PiconetMaster master{*master_dev, PiconetMaster::Config{}};

  std::unique_ptr<Device> slave_dev(std::uint64_t a, Vec2 pos = {}) {
    return std::make_unique<Device>(sim, radio, BdAddr(a), rng.fork(), pos);
  }
  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
};

TEST_F(PiconetRig, AttachDetachLifecycle) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  EXPECT_FALSE(link.connected());
  EXPECT_TRUE(master.attach(link));
  EXPECT_TRUE(link.connected());
  EXPECT_EQ(link.master_addr().raw(), 0xA1u);
  EXPECT_TRUE(master.has_slave(BdAddr(0xB1)));
  EXPECT_EQ(master.slave_count(), 1u);
  master.detach(BdAddr(0xB1));
  EXPECT_FALSE(link.connected());
  EXPECT_EQ(master.slave_count(), 0u);
}

TEST_F(PiconetRig, DoubleAttachRejected) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  EXPECT_TRUE(master.attach(link));
  EXPECT_FALSE(master.attach(link));
}

TEST_F(PiconetRig, SevenSlaveLimit) {
  std::vector<std::unique_ptr<Device>> devs;
  std::vector<std::unique_ptr<SlaveLink>> links;
  for (int i = 0; i < 8; ++i) {
    devs.push_back(slave_dev(0xB0 + i));
    links.push_back(std::make_unique<SlaveLink>(*devs.back()));
  }
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(master.attach(*links[i]));
  EXPECT_FALSE(master.attach(*links[7]));  // AM_ADDR exhausted
  EXPECT_EQ(master.stats().attach_rejected_full, 1u);
  master.detach(BdAddr(0xB0));
  EXPECT_TRUE(master.attach(*links[7]));  // slot freed
}

TEST_F(PiconetRig, MasterToSlaveMessageRidesNextPoll) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  link.set_on_message([&](const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  EXPECT_TRUE(master.send(BdAddr(0xB1), AclPayload{1, 2, 3}));
  EXPECT_TRUE(got.empty());  // not yet polled
  run_ms(30);                // poll interval is 25 ms
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (AclPayload{1, 2, 3}));
}

TEST_F(PiconetRig, SlaveToMasterMessageRidesNextPoll) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<std::pair<std::uint64_t, AclPayload>> got;
  master.set_on_message([&](BdAddr from, const AclPayload& p) {
    got.emplace_back(from.raw(), p);
  });
  master.attach(link);
  EXPECT_TRUE(link.send_to_master(AclPayload{9}));
  run_ms(30);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 0xB1u);
  EXPECT_EQ(got[0].second, AclPayload{9});
}

TEST_F(PiconetRig, SendToUnattachedFails) {
  EXPECT_FALSE(master.send(BdAddr(0xB1), AclPayload{1}));
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  EXPECT_FALSE(link.send_to_master(AclPayload{1}));
}

TEST_F(PiconetRig, PauseHoldsTrafficResumeDelivers) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  int got = 0;
  link.set_on_message([&](const AclPayload&) { ++got; });
  master.attach(link);
  master.pause();
  master.send(BdAddr(0xB1), AclPayload{1});
  run_ms(200);
  EXPECT_EQ(got, 0);  // queued, radio devoted to inquiry
  master.resume();
  run_ms(30);
  EXPECT_EQ(got, 1);
}

TEST_F(PiconetRig, SupervisionTimeoutDropsOutOfRangeSlave) {
  auto d = slave_dev(0xB1, {0, 0});
  SlaveLink link(*d);
  bool slave_notified = false;
  std::uint64_t lost_addr = 0;
  link.set_on_disconnected([&] { slave_notified = true; });
  master.set_on_link_loss([&](BdAddr a) { lost_addr = a.raw(); });
  master.attach(link);
  run_ms(100);
  EXPECT_TRUE(link.connected());
  d->set_position({100, 0});  // walks away (supervision timeout 2 s)
  run_ms(1000);
  EXPECT_TRUE(link.connected());  // not yet
  run_ms(1500);
  EXPECT_FALSE(link.connected());
  EXPECT_TRUE(slave_notified);
  EXPECT_EQ(lost_addr, 0xB1u);
  EXPECT_EQ(master.stats().link_losses, 1u);
}

TEST_F(PiconetRig, ReturningSlaveSurvivesBriefFade) {
  auto d = slave_dev(0xB1, {0, 0});
  SlaveLink link(*d);
  master.attach(link);
  run_ms(100);
  d->set_position({100, 0});
  run_ms(1000);  // shorter than the 2 s supervision timeout
  d->set_position({1, 0});
  run_ms(3000);
  EXPECT_TRUE(link.connected());
  EXPECT_EQ(master.stats().link_losses, 0u);
}

TEST_F(PiconetRig, TrafficWaitsWhileUnreachable) {
  auto d = slave_dev(0xB1, {0, 0});
  SlaveLink link(*d);
  int got = 0;
  link.set_on_message([&](const AclPayload&) { ++got; });
  master.attach(link);
  d->set_position({100, 0});
  master.send(BdAddr(0xB1), AclPayload{1});
  run_ms(1000);
  EXPECT_EQ(got, 0);
  d->set_position({1, 0});  // back in range before supervision timeout
  run_ms(100);
  EXPECT_EQ(got, 1);
}

TEST_F(PiconetRig, DetachClearsQueuedTraffic) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  int got = 0;
  link.set_on_message([&](const AclPayload&) { ++got; });
  master.attach(link);
  master.pause();
  master.send(BdAddr(0xB1), AclPayload{1});
  master.detach(BdAddr(0xB1));
  master.resume();
  run_ms(100);
  EXPECT_EQ(got, 0);
}

TEST_F(PiconetRig, SlaveAddrsListsMembership) {
  auto d1 = slave_dev(0xB1);
  auto d2 = slave_dev(0xB2);
  SlaveLink l1(*d1), l2(*d2);
  master.attach(l1);
  master.attach(l2);
  auto addrs = master.slave_addrs();
  std::sort(addrs.begin(), addrs.end());
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0].raw(), 0xB1u);
  EXPECT_EQ(addrs[1].raw(), 0xB2u);
}

TEST_F(PiconetRig, MessageCallbackMayDetach) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  master.set_on_message([&](BdAddr from, const AclPayload&) {
    master.detach(from);  // e.g. a logout message
  });
  master.attach(link);
  link.send_to_master(AclPayload{1});
  link.send_to_master(AclPayload{2});  // dropped with the link
  run_ms(60);
  EXPECT_FALSE(link.connected());
  EXPECT_EQ(master.slave_count(), 0u);
}

}  // namespace
}  // namespace bips::baseband

// ---- park mode --------------------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(PiconetRig, ParkFreesAnActiveSlot) {
  std::vector<std::unique_ptr<Device>> devs;
  std::vector<std::unique_ptr<SlaveLink>> links;
  for (int i = 0; i < 8; ++i) {
    devs.push_back(slave_dev(0xB0 + i));
    links.push_back(std::make_unique<SlaveLink>(*devs.back()));
  }
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(master.attach(*links[i]));
  EXPECT_FALSE(master.attach(*links[7]));

  EXPECT_TRUE(master.park(BdAddr(0xB0)));
  EXPECT_TRUE(master.is_parked(BdAddr(0xB0)));
  EXPECT_TRUE(links[0]->parked());
  EXPECT_TRUE(links[0]->connected());  // still a member
  EXPECT_EQ(master.active_count(), 6u);
  EXPECT_EQ(master.parked_count(), 1u);
  EXPECT_EQ(master.slave_count(), 7u);

  EXPECT_TRUE(master.attach(*links[7]));  // freed AM_ADDR reused
  EXPECT_EQ(master.slave_count(), 8u);
}

TEST_F(PiconetRig, ParkUnparkStateChecks) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  EXPECT_FALSE(master.park(BdAddr(0xB1)));  // unknown
  master.attach(link);
  EXPECT_TRUE(master.park(BdAddr(0xB1)));
  EXPECT_FALSE(master.park(BdAddr(0xB1)));  // already parked
  EXPECT_TRUE(master.unpark(BdAddr(0xB1)));
  EXPECT_FALSE(master.unpark(BdAddr(0xB1)));  // already active
  EXPECT_FALSE(link.parked());
}

TEST_F(PiconetRig, UnparkRefusedWhenActiveSetFull) {
  std::vector<std::unique_ptr<Device>> devs;
  std::vector<std::unique_ptr<SlaveLink>> links;
  for (int i = 0; i < 8; ++i) {
    devs.push_back(slave_dev(0xB0 + i));
    links.push_back(std::make_unique<SlaveLink>(*devs.back()));
  }
  for (int i = 0; i < 7; ++i) master.attach(*links[i]);
  master.park(BdAddr(0xB0));
  master.attach(*links[7]);  // 7 active again
  EXPECT_FALSE(master.unpark(BdAddr(0xB0)));
  master.park(BdAddr(0xB1));
  EXPECT_TRUE(master.unpark(BdAddr(0xB0)));
}

TEST_F(PiconetRig, TrafficToParkedSlaveAutoUnparks) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  int got = 0;
  link.set_on_message([&](const AclPayload&) { ++got; });
  master.attach(link);
  master.park(BdAddr(0xB1));
  EXPECT_TRUE(master.send(BdAddr(0xB1), AclPayload{1}));
  run_ms(60);
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(master.is_parked(BdAddr(0xB1)));  // beacon unparked it
  EXPECT_EQ(master.stats().unparks, 1u);
}

TEST_F(PiconetRig, ParkedSlaveCanInitiateTraffic) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  master.set_on_message(
      [&](BdAddr, const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  master.park(BdAddr(0xB1));
  EXPECT_TRUE(link.send_to_master(AclPayload{7}));
  run_ms(60);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], AclPayload{7});
}

TEST_F(PiconetRig, ParkedSlaveStillSupervised) {
  auto d = slave_dev(0xB1, {0, 0});
  SlaveLink link(*d);
  bool lost = false;
  master.set_on_link_loss([&](BdAddr) { lost = true; });
  master.attach(link);
  master.park(BdAddr(0xB1));
  d->set_position({100, 0});
  run_ms(2600);
  EXPECT_TRUE(lost);
  EXPECT_FALSE(link.connected());
}

TEST_F(PiconetRig, ParkIdlestPicksTheQuietestSlave) {
  auto d1 = slave_dev(0xB1);
  auto d2 = slave_dev(0xB2);
  SlaveLink l1(*d1), l2(*d2);
  master.attach(l1);
  run_ms(100);
  master.attach(l2);  // l2 attached later -> more recent activity
  const BdAddr victim = master.park_idlest();
  EXPECT_EQ(victim.raw(), 0xB1u);
  EXPECT_TRUE(master.is_parked(BdAddr(0xB1)));
  EXPECT_FALSE(master.is_parked(BdAddr(0xB2)));
}

TEST_F(PiconetRig, ParkIdlestRespectsExceptAndTraffic) {
  auto d1 = slave_dev(0xB1);
  auto d2 = slave_dev(0xB2);
  SlaveLink l1(*d1), l2(*d2);
  master.attach(l1);
  run_ms(100);
  master.attach(l2);
  // l1 is oldest but exempted; l2 has traffic in flight: nobody parkable.
  l2.send_to_master(AclPayload{1});
  EXPECT_TRUE(master.park_idlest(BdAddr(0xB1)).is_null());
  // Drain l2's queue; now it is parkable.
  run_ms(60);
  EXPECT_EQ(master.park_idlest(BdAddr(0xB1)).raw(), 0xB2u);
}

TEST_F(PiconetRig, ManyParkedMembers) {
  // 7 active + 13 parked = 20 tracked devices on one master.
  std::vector<std::unique_ptr<Device>> devs;
  std::vector<std::unique_ptr<SlaveLink>> links;
  for (int i = 0; i < 20; ++i) {
    devs.push_back(slave_dev(0xB00 + i));
    links.push_back(std::make_unique<SlaveLink>(*devs.back()));
    if (!master.attach(*links.back())) {
      ASSERT_FALSE(master.park_idlest().is_null());
      ASSERT_TRUE(master.attach(*links.back()));
    }
  }
  EXPECT_EQ(master.slave_count(), 20u);
  EXPECT_EQ(master.active_count(), 7u);
  EXPECT_EQ(master.parked_count(), 13u);
  // Every member, parked or not, still reachable for traffic.
  int got = 0;
  for (auto& l : links) l->set_on_message([&](const AclPayload&) { ++got; });
  for (auto& d : devs) master.send(d->addr(), AclPayload{1});
  run_ms(500);
  EXPECT_EQ(got, 20);
}

}  // namespace
}  // namespace bips::baseband

// ---- quiescent fast-forward -------------------------------------------------

namespace bips::baseband {
namespace {

struct QuiesceTrial {
  std::uint64_t polls = 0;
  std::int64_t delivered_ns = -1;
  std::uint64_t parks = 0;
  std::uint64_t elided = 0;
};

// Master + one in-range slave; the poll loop quiesces after the first round
// (at 25 ms) and a send placed *exactly* on the elided round lattice wakes
// it. The wake must credit the round due at the wake instant exactly once
// (floor credit: run_until has executed events <= t, so the exact path's
// round at t has already drummed when the send lands) and re-arm the timer
// one interval later -- the round the exact path runs next.
QuiesceTrial boundary_trial(bool exact, Duration supervision,
                            std::int64_t send_at_ms) {
  sim::Simulator sim;
  Rng rng(7);
  ChannelConfig ch;
  ch.exact_slots = exact;
  RadioChannel radio(sim, rng, ch);
  Device mdev(sim, radio, BdAddr(0xA1), rng.fork());
  PiconetMaster::Config cfg;
  cfg.supervision_timeout = supervision;
  PiconetMaster master(mdev, cfg);
  Device sdev(sim, radio, BdAddr(0xB1), rng.fork());
  SlaveLink link(sdev);
  QuiesceTrial r;
  link.set_on_message(
      [&](const AclPayload&) { r.delivered_ns = sim.now().ns(); });
  master.attach(link);
  sim.run_until(SimTime(Duration::millis(send_at_ms).ns()));
  master.send(BdAddr(0xB1), AclPayload{42});
  sim.run_until(SimTime(Duration::millis(400).ns()));
  r.polls = master.stats().polls;
  r.parks = sim.obs().metrics.counter_value("piconet.quiesce_parks");
  r.elided = sim.obs().metrics.counter_value("piconet.elided_polls");
  return r;
}

TEST(PiconetQuiesce, WakeOnTheRoundLatticeCreditsTheBoundaryRoundOnce) {
  // Supervision off (indefinite park) and on (deadline-bounded park) share
  // the sync_poll_stat arithmetic; both must agree with exact drumming.
  for (const Duration sup : {Duration(0), Duration::seconds(2)}) {
    const QuiesceTrial ex = boundary_trial(true, sup, /*send_at_ms=*/125);
    const QuiesceTrial ff = boundary_trial(false, sup, /*send_at_ms=*/125);
    const std::string label =
        "supervision " + std::to_string(sup.ns()) + " ns";
    // Rounds by 400 ms: 25, 50, ..., 400 = 16 in both modes. An off-by-one
    // at the wake boundary (crediting the 125 ms round zero or two times)
    // shows up here.
    EXPECT_EQ(ex.polls, 16u) << label;
    EXPECT_EQ(ff.polls, ex.polls) << label;
    // The message rides the round after the wake instant in both modes.
    EXPECT_EQ(ex.delivered_ns, Duration::millis(150).ns()) << label;
    EXPECT_EQ(ff.delivered_ns, ex.delivered_ns) << label;
    // Mode bookkeeping: exact never parks; ff parked before the send and
    // again after the delivery round drained (4 + 10 rounds elided by the
    // 400 ms probe).
    EXPECT_EQ(ex.parks, 0u) << label;
    EXPECT_EQ(ex.elided, 0u) << label;
    EXPECT_GE(ff.parks, 2u) << label;
    EXPECT_EQ(ff.elided, 14u) << label;
  }
}

TEST(PiconetQuiesce, WakeAtTheParkInstantCreditsNothing) {
  // The degenerate boundary: the send lands at the very instant the park
  // began (= the last real round). k = 0 rounds elided; the next fire is
  // one full interval later, exactly as in exact mode.
  const QuiesceTrial ex =
      boundary_trial(true, Duration::seconds(2), /*send_at_ms=*/25);
  const QuiesceTrial ff =
      boundary_trial(false, Duration::seconds(2), /*send_at_ms=*/25);
  EXPECT_EQ(ex.delivered_ns, Duration::millis(50).ns());
  EXPECT_EQ(ff.delivered_ns, ex.delivered_ns);
  EXPECT_EQ(ff.polls, ex.polls);
}

TEST(PiconetQuiesce, SupervisedIdleMasterParksAndCreditsPollsLazily) {
  // No traffic at all: a supervised master re-parks after every speed-bound
  // horizon expires (deadline wake -> one real round -> park again), and a
  // mid-park stats() read off the round lattice sees the exact-path count.
  auto run = [](bool exact) {
    sim::Simulator sim;
    Rng rng(9);
    ChannelConfig ch;
    ch.exact_slots = exact;
    RadioChannel radio(sim, rng, ch);
    Device mdev(sim, radio, BdAddr(0xA1), rng.fork());
    PiconetMaster master(mdev, PiconetMaster::Config{});
    Device sdev(sim, radio, BdAddr(0xB1), rng.fork());
    SlaveLink link(sdev);
    master.attach(link);
    // Probe off the 25 ms lattice: in-event FIFO bookkeeping (a round due
    // exactly "now" has not fired) stays comparable across modes.
    sim.run_until(SimTime(Duration::micros(10'000'100).ns()));
    const std::uint64_t polls = master.stats().polls;
    const std::uint64_t parks =
        sim.obs().metrics.counter_value("piconet.quiesce_parks");
    const std::uint64_t elided =
        sim.obs().metrics.counter_value("piconet.elided_polls");
    return std::tuple(polls, parks, elided);
  };
  const auto [ex_polls, ex_parks, ex_elided] = run(true);
  const auto [ff_polls, ff_parks, ff_elided] = run(false);
  EXPECT_EQ(ex_polls, 400u);  // rounds at 25 ms .. 10 s
  EXPECT_EQ(ff_polls, ex_polls);
  EXPECT_EQ(ex_parks, 0u);
  EXPECT_EQ(ex_elided, 0u);
  EXPECT_GE(ff_parks, 2u);   // d = 0 horizon is ~2.5 s: several park cycles
  EXPECT_GT(ff_elided, 300u);
}

}  // namespace
}  // namespace bips::baseband

// ---- ACL fragmentation ------------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(PiconetRig, SmallMessageRidesOnePoll) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  link.set_on_message([&](const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  master.send(BdAddr(0xB1), AclPayload(200, 0x42));  // < 224: one fragment
  run_ms(30);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], AclPayload(200, 0x42));
  EXPECT_EQ(master.stats().fragments_delivered, 1u);
}

TEST_F(PiconetRig, LargeMessageTakesMultiplePolls) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  link.set_on_message([&](const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  // 2000 bytes = 9 DM5 fragments; at 4 per poll that is 3 poll rounds.
  AclPayload big(2000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  master.send(BdAddr(0xB1), big);
  run_ms(30);  // first poll: 4 fragments, incomplete
  EXPECT_TRUE(got.empty());
  run_ms(25);  // second poll: 8 fragments
  EXPECT_TRUE(got.empty());
  run_ms(25);  // third poll: all 9 delivered
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);  // byte-exact reassembly
  EXPECT_EQ(master.stats().fragments_delivered, 9u);
  EXPECT_EQ(master.stats().messages_delivered, 1u);
}

TEST_F(PiconetRig, LargeUplinkAlsoFragments) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  master.set_on_message(
      [&](BdAddr, const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  AclPayload big(500, 0x5A);  // 3 fragments
  link.send_to_master(big);
  run_ms(30);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
}

TEST_F(PiconetRig, InterleavedMessagesStayIntact) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  link.set_on_message([&](const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  master.send(BdAddr(0xB1), AclPayload(300, 0x01));  // 2 fragments
  master.send(BdAddr(0xB1), AclPayload(10, 0x02));   // 1 fragment
  run_ms(30);  // 3 fragments < 4/poll: both complete in one round
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], AclPayload(300, 0x01));
  EXPECT_EQ(got[1], AclPayload(10, 0x02));
}

TEST_F(PiconetRig, EmptyMessageSurvivesFraming) {
  auto d = slave_dev(0xB1);
  SlaveLink link(*d);
  std::vector<AclPayload> got;
  link.set_on_message([&](const AclPayload& p) { got.push_back(p); });
  master.attach(link);
  master.send(BdAddr(0xB1), AclPayload{});
  run_ms(30);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());
}

TEST_F(PiconetRig, FragmentBudgetSharedFairlyAcrossSlaves) {
  auto d1 = slave_dev(0xB1);
  auto d2 = slave_dev(0xB2);
  SlaveLink l1(*d1), l2(*d2);
  int got1 = 0, got2 = 0;
  l1.set_on_message([&](const AclPayload&) { ++got1; });
  l2.set_on_message([&](const AclPayload&) { ++got2; });
  master.attach(l1);
  master.attach(l2);
  // Each slave gets its own per-poll budget: both big messages complete in
  // the same number of rounds.
  master.send(BdAddr(0xB1), AclPayload(1500, 1));  // 7 fragments
  master.send(BdAddr(0xB2), AclPayload(1500, 2));  // 7 fragments
  run_ms(55);  // two polls: 8 fragments each
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
}

}  // namespace
}  // namespace bips::baseband
