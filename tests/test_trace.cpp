// Unit tests for the structured trace layer (src/obs/trace.hpp): sinks,
// JSONL encoding, determinism across runs, non-perturbation of the sim, and
// the flush-on-crash guarantee.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "src/core/simulation.hpp"
#include "src/obs/trace.hpp"
#include "src/util/log.hpp"

namespace bips::obs {
namespace {

std::size_t count_lines(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Trace, JsonlEncodingIsExactAndDeterministic) {
  TraceRecord r;
  r.at = SimTime(Duration::millis(1500).ns());
  r.kind = TraceKind::kLanDrop;
  r.id = 7;
  r.a = 3;
  r.b = 1;
  r.x = -42.5;
  EXPECT_EQ(to_jsonl(r),
            "{\"t_ns\":1500000000,\"kind\":\"lan.drop\",\"id\":7,\"a\":3,"
            "\"b\":1,\"x\":-42.500000}\n");
  EXPECT_EQ(to_jsonl(r), to_jsonl(r));
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceKind::kInquiryStart), "inquiry.start");
  EXPECT_STREQ(to_string(TraceKind::kPresence), "presence");
  EXPECT_STREQ(to_string(TraceKind::kServerCrash), "server.crash");
  EXPECT_STREQ(to_string(TraceKind::kKernelSample), "kernel.sample");
}

TEST(Trace, RingSinkKeepsNewestAndCountsDrops) {
  RingSink ring(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ring.write(TraceRecord{SimTime(), TraceKind::kPresence, i, 0, 0, 0.0});
  }
  EXPECT_EQ(ring.total_written(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  ASSERT_EQ(ring.records().size(), 4u);
  EXPECT_EQ(ring.records().front().id, 2u);
  EXPECT_EQ(ring.records().back().id, 5u);
  ring.clear();
  EXPECT_EQ(ring.total_written(), 0u);
  EXPECT_TRUE(ring.records().empty());
}

TEST(Trace, JsonlSinkFlushIsExactlyOnceAndIdempotent) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    for (int i = 0; i < 3; ++i) {
      sink.write(TraceRecord{SimTime(), TraceKind::kFault, 0, 0, 0, 0.0});
    }
    EXPECT_EQ(sink.buffered(), 3u);
    EXPECT_EQ(sink.records_written(), 0u);

    sink.flush();
    EXPECT_EQ(sink.buffered(), 0u);
    EXPECT_EQ(sink.records_written(), 3u);
    const std::string after_first = os.str();
    sink.flush();  // defensive re-flush must not re-emit
    EXPECT_EQ(os.str(), after_first);
    EXPECT_EQ(sink.records_written(), 3u);

    sink.write(TraceRecord{SimTime(), TraceKind::kFault, 9, 0, 0, 0.0});
    // The destructor flushes the remainder.
  }
  EXPECT_EQ(count_lines(os.str(), "\"kind\":\"fault\""), 4u);
}

TEST(Trace, JsonlSinkSelfFlushesWhenTheBufferFills) {
  std::ostringstream os;
  JsonlSink sink(os, 2);
  sink.write(TraceRecord{});
  EXPECT_EQ(sink.records_written(), 0u);
  sink.write(TraceRecord{});
  EXPECT_EQ(sink.records_written(), 2u);
  sink.write(TraceRecord{});
  EXPECT_EQ(sink.buffered(), 1u);
}

TEST(Trace, TracerGatesOnSinkAndReturnsThePreviousOne) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.emit(SimTime(), TraceKind::kPresence);  // no sink: must be a no-op

  RingSink first(8), second(8);
  EXPECT_EQ(tracer.set_sink(&first), nullptr);
  tracer.emit(SimTime(), TraceKind::kPresence, 1);
  // Presence records buffer for same-instant canonicalisation until the
  // batch closes; swapping sinks drains the batch to the *old* sink.
  EXPECT_EQ(tracer.set_sink(&second), &first);
  tracer.emit(SimTime(), TraceKind::kPresence, 2);
  EXPECT_EQ(first.total_written(), 1u);
  EXPECT_EQ(second.total_written(), 0u);  // still pending
  tracer.flush();
  EXPECT_EQ(second.total_written(), 1u);
  EXPECT_EQ(tracer.set_sink(nullptr), &second);
}

TEST(Trace, SameInstantPresenceRecordsAreCanonicalisedByDevice) {
  Tracer tracer;
  RingSink sink(16);
  tracer.set_sink(&sink);
  // Three same-instant deltas, devices out of order; one later record.
  tracer.emit(SimTime(1000), TraceKind::kPresence, 7, /*a=*/30);
  tracer.emit(SimTime(1000), TraceKind::kPresence, 7, /*a=*/10, /*b=*/1);
  tracer.emit(SimTime(1000), TraceKind::kPresence, 7, /*a=*/10, /*b=*/0);
  tracer.emit(SimTime(1000), TraceKind::kLanSend, 7);  // passes through
  tracer.emit(SimTime(2000), TraceKind::kPresence, 7, /*a=*/20);
  tracer.set_sink(nullptr);

  ASSERT_EQ(sink.records().size(), 5u);
  // The non-presence record reached the sink first (it is not reordered
  // relative to simulated time, only presence ties are canonicalised).
  EXPECT_EQ(sink.records()[0].kind, TraceKind::kLanSend);
  // The batch at t=1000 is sorted by device, stably (10/b=1 before 10/b=0).
  EXPECT_EQ(sink.records()[1].a, 10u);
  EXPECT_EQ(sink.records()[1].b, 1u);
  EXPECT_EQ(sink.records()[2].a, 10u);
  EXPECT_EQ(sink.records()[2].b, 0u);
  EXPECT_EQ(sink.records()[3].a, 30u);
  EXPECT_EQ(sink.records()[4].a, 20u);
}

TEST(LogCapture, ReturnsThePreviousSinkForNestedCaptures) {
  std::string outer, inner;
  std::string* orig = set_log_capture(&outer);
  std::string* prev = set_log_capture(&inner);
  EXPECT_EQ(prev, &outer);
  EXPECT_EQ(set_log_capture(prev), &inner);  // restore outer
  EXPECT_EQ(set_log_capture(orig), &outer);  // restore original state
}

// ---- whole-stack properties ---------------------------------------------

core::SimulationConfig small_cfg(std::uint64_t seed) {
  core::SimulationConfig cfg;
  cfg.seed = seed;
  cfg.stagger_inquiry = true;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  return cfg;
}

std::unique_ptr<core::BipsSimulation> small_sim(std::uint64_t seed) {
  auto sim = std::make_unique<core::BipsSimulation>(
      mobility::Building::grid(2, 2), small_cfg(seed));
  for (int i = 0; i < 6; ++i) {
    sim->add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                  static_cast<mobility::RoomId>(i % 4));
  }
  return sim;
}

std::string traced_run(std::uint64_t seed, double sim_seconds) {
  auto sim = small_sim(seed);
  std::ostringstream os;
  JsonlSink sink(os);
  sim->simulator().obs().tracer.set_sink(&sink);
  sim->run_for(Duration::from_seconds(sim_seconds));
  sim->simulator().obs().tracer.set_sink(nullptr);
  sink.flush();
  return os.str();
}

TEST(TraceDeterminism, SameSeedRunsProduceByteIdenticalTraces) {
  const std::string a = traced_run(/*seed=*/5, /*sim_seconds=*/30.0);
  const std::string b = traced_run(/*seed=*/5, /*sim_seconds=*/30.0);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The trace actually covers the stack: radio, presence, LAN and (in the
  // default virtual-slot mode) fast-forward records all appear.
  EXPECT_GT(count_lines(a, "\"kind\":\"inquiry.start\""), 0u);
  EXPECT_GT(count_lines(a, "\"kind\":\"presence\""), 0u);
  EXPECT_GT(count_lines(a, "\"kind\":\"lan.send\""), 0u);
  EXPECT_GT(count_lines(a, "\"kind\":\"radio.ff\""), 0u);
}

TEST(TraceDeterminism, KernelChurnSamplerFiresUnderExactSlots) {
  // The churn sampler triggers on executed-event count; only the exact
  // drumming generates enough kernel traffic in a short run to reach it
  // (fast-forward elides those events by design -- its kernel visibility is
  // the radio.ff stream above and the kernel.skipped_slots counter).
  auto cfg = small_cfg(5);
  cfg.channel.exact_slots = true;
  auto sim = std::make_unique<core::BipsSimulation>(
      mobility::Building::grid(2, 2), cfg);
  for (int i = 0; i < 6; ++i) {
    sim->add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                  static_cast<mobility::RoomId>(i % 4));
  }
  std::ostringstream os;
  JsonlSink sink(os);
  sim->simulator().obs().tracer.set_sink(&sink);
  sim->run_for(Duration::from_seconds(30));
  sim->simulator().obs().tracer.set_sink(nullptr);
  sink.flush();
  EXPECT_GT(count_lines(os.str(), "\"kind\":\"kernel.sample\""), 0u);
  EXPECT_EQ(count_lines(os.str(), "\"kind\":\"radio.ff\""), 0u);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheSimulation) {
  auto traced = small_sim(5);
  auto bare = small_sim(5);
  RingSink ring;
  traced->simulator().obs().tracer.set_sink(&ring);
  traced->run_for(Duration::from_seconds(30));
  bare->run_for(Duration::from_seconds(30));
  EXPECT_GT(ring.total_written(), 0u);

  // Same executed-event count and a byte-identical discovery history:
  // sinks observe, they never schedule.
  EXPECT_EQ(traced->simulator().events_executed(),
            bare->simulator().events_executed());
  std::ostringstream with_trace, without_trace;
  traced->write_history_csv(with_trace);
  bare->write_history_csv(without_trace);
  EXPECT_EQ(with_trace.str(), without_trace.str());
}

TEST(TraceCrashSafety, ServerCrashFlushesBufferedRecordsExactlyOnce) {
  auto sim = small_sim(9);
  std::ostringstream os;
  {
    JsonlSink sink(os);
    sim->simulator().obs().tracer.set_sink(&sink);
    sim->run_for(Duration::from_seconds(20));

    // Nothing forced a flush yet; the crash handler must persist the whole
    // buffer (records are lost exactly when they are most interesting).
    sim->server().crash();
    const std::string at_crash = os.str();
    EXPECT_GT(sink.records_written(), 0u);
    EXPECT_EQ(count_lines(at_crash, "\"kind\":\"server.crash\""), 1u);

    sim->server().restart();
    sim->run_for(Duration::from_seconds(5));
    sim->simulator().obs().tracer.set_sink(nullptr);
  }
  // Destructor re-flush emitted only the post-crash tail: the crash record
  // is still there exactly once, the restart exactly once.
  EXPECT_EQ(count_lines(os.str(), "\"kind\":\"server.crash\""), 1u);
  EXPECT_EQ(count_lines(os.str(), "\"kind\":\"server.restart\""), 1u);
}

}  // namespace
}  // namespace bips::obs
