// Sharded parallel kernel (DESIGN.md section 9): the conservative-lookahead
// horizon, ShardGroup mailbox determinism, and the end-to-end contract of
// the sharded full-stack harness -- thread count must not change one byte
// of the discovery history, the tracking grades, or the energy ledgers.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/baseband/radio.hpp"
#include "src/core/parallel.hpp"
#include "src/core/simulation.hpp"
#include "src/fault/plan.hpp"
#include "src/mobility/building.hpp"
#include "src/sim/shard.hpp"

namespace bips {
namespace {

using core::ShardedBipsSimulation;
using core::ShardedConfig;
using sim::LookaheadInputs;
using sim::ShardGroup;
using sim::conservative_lookahead;
using sim::kUnboundedLookahead;

// ---- conservative-lookahead horizon -------------------------------------

TEST(Lookahead, SingleShardDegeneratesToUnbounded) {
  LookaheadInputs in;
  in.shard_count = 1;
  // Even hostile inputs are fine: with nothing to synchronise against there
  // is no constraint to violate.
  in.lan_latency = Duration(0);
  in.max_speed_mps = 0.0;
  in.seam_margin_m = 0.0;
  const auto w = conservative_lookahead(in, nullptr);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, kUnboundedLookahead);
}

TEST(Lookahead, ZeroLatencyLanIsRejectedWithAClearError) {
  LookaheadInputs in;
  in.shard_count = 2;
  in.lan_latency = Duration(0);
  in.seam_margin_m = 20.0;
  in.max_speed_mps = 2.0;
  std::string err;
  const auto w = conservative_lookahead(in, &err);
  EXPECT_FALSE(w.has_value());
  // The error must say what is wrong and why it is fatal, not just "bad
  // config": a zero-latency LAN admits no conservative window at all.
  EXPECT_NE(err.find("zero-latency"), std::string::npos) << err;
}

TEST(Lookahead, ZeroShardsAndNonPositiveBoundsAreRejected) {
  LookaheadInputs in;
  in.shard_count = 0;
  std::string err;
  EXPECT_FALSE(conservative_lookahead(in, &err).has_value());

  in.shard_count = 2;
  in.lan_latency = Duration::millis(5);
  in.seam_margin_m = 20.0;
  in.max_speed_mps = 0.0;
  EXPECT_FALSE(conservative_lookahead(in, &err).has_value());

  in.max_speed_mps = 2.0;
  in.seam_margin_m = 0.0;
  EXPECT_FALSE(conservative_lookahead(in, &err).has_value());
}

TEST(Lookahead, HorizonShrinksAsTheSpeedBoundGrows) {
  LookaheadInputs in;
  in.shard_count = 4;
  in.lan_latency = Duration::seconds(1000);  // LAN leg never binds here
  in.seam_margin_m = 21.0;
  Duration prev = Duration(INT64_MAX);
  for (const double v : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    in.max_speed_mps = v;
    const auto w = conservative_lookahead(in, nullptr);
    ASSERT_TRUE(w.has_value());
    // Faster walkers close the seam margin sooner: strictly less lookahead.
    EXPECT_LT(*w, prev) << "speed " << v;
    EXPECT_EQ(*w, Duration::from_seconds(in.seam_margin_m / v));
    prev = *w;
  }
}

TEST(Lookahead, MinOfLanAndWalkLegsBinds) {
  LookaheadInputs in;
  in.shard_count = 2;
  in.lan_latency = Duration::millis(5);
  in.seam_margin_m = 20.0;
  in.max_speed_mps = 2.0;  // walk leg: 10 s >> LAN leg: 5 ms
  auto w = conservative_lookahead(in, nullptr);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Duration::millis(5));

  in.lan_latency = Duration::seconds(60);  // now the walk leg binds
  w = conservative_lookahead(in, nullptr);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Duration::from_seconds(10.0));
}

TEST(Lookahead, SeamMarginFollowsTheRadioOccupancyConvention) {
  // One invariant, two call sites: the seam margin a shard trusts must be
  // the same 2 * range + slack radius the radio's fast-forward occupancy
  // wakeups use. ff_radius_for is the shared definition.
  EXPECT_DOUBLE_EQ(baseband::RadioChannel::ff_radius_for(10.0, 1.0), 21.0);
  ShardedConfig cfg;
  cfg.base.coverage_radius_m = 10.0;
  cfg.base.channel.ff_slack_m = 1.0;
  cfg.base.lan.base_latency = Duration::seconds(60);  // LAN leg never binds
  cfg.uplink_extra = Duration(0);
  cfg.shards = 2;
  const double v = cfg.base.workstation.scheduler.piconet.ff_max_speed_mps;
  const auto w = ShardedBipsSimulation::derive_window(cfg, nullptr);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Duration::from_seconds(
                    baseband::RadioChannel::ff_radius_for(10.0, 1.0) / v));
}

TEST(Lookahead, DeriveWindowSurfacesTheZeroLatencyLanError) {
  ShardedConfig cfg;
  cfg.base.lan.base_latency = Duration(0);
  cfg.base.lan.jitter = Duration(0);
  cfg.uplink_extra = Duration(0);
  std::string err;
  EXPECT_FALSE(ShardedBipsSimulation::derive_window(cfg, &err).has_value());
  EXPECT_NE(err.find("zero-latency"), std::string::npos) << err;
}

// ---- ShardGroup mailbox determinism -------------------------------------

// A synthetic cross-shard workload: every shard runs a periodic event that
// appends to its own log and mails an append to the next shard one window
// ahead. The final logs must not depend on the worker count.
std::vector<std::string> run_ring(unsigned threads) {
  constexpr std::size_t kShards = 4;
  const Duration window = Duration::millis(10);
  ShardGroup group(kShards);
  std::vector<std::string> log(kShards);
  for (std::size_t k = 0; k < kShards; ++k) {
    for (int i = 0; i < 50; ++i) {
      group.shard(k).schedule_at(
          SimTime::zero() + Duration::millis(3 * i + 1),
          [&group, &log, window, k, i] {
            log[k] += "tick:" + std::to_string(i) + ";";
            const std::size_t dst = (k + 1) % kShards;
            group.post(k, dst, group.shard(k).now() + window,
                       [&log, dst, k, i] {
                         log[dst] += "mail-from:" + std::to_string(k) + ":" +
                                     std::to_string(i) + ";";
                       });
          });
    }
  }
  group.run_until(SimTime::zero() + Duration::millis(500), window, threads);
  EXPECT_GT(group.mail_delivered(), 0u);
  EXPECT_GT(group.windows_run(), 0u);
  return log;
}

TEST(ShardGroupDeterminism, MailboxDrainOrderIsThreadCountInvariant) {
  const auto one = run_ring(1);
  const auto two = run_ring(2);
  const auto four = run_ring(4);
  const auto eight = run_ring(8);  // more workers than shards: clamped
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

// ---- sharded full-stack equivalence -------------------------------------

struct ShardedRun {
  std::string history;
  std::string queries;  // canonical dump of every query kind's answers
  core::TrackingMetrics tracking;
  std::int64_t energy_tx_ns = 0;
  std::int64_t energy_listen_ns = 0;
  std::uint64_t mail = 0;
  std::size_t handoffs_seen = 0;
  std::size_t shard_count = 0;
};

/// Serialises a QueryResult canonically so answers can be diffed across
/// thread counts and service shard counts.
void dump_result(std::ostringstream& os, const proto::QueryResult& r) {
  os << static_cast<int>(r.status) << '|' << r.room << '|';
  for (const auto& u : r.users) os << u << ',';
  os << '|';
  for (const auto& room : r.rooms) os << room << ',';
  os << '|' << r.distance << '|' << r.was_present << '|' << r.since.ns()
     << '|';
  for (const auto& v : r.visits) {
    os << v.room << (v.entered ? '+' : '-') << v.at.ns() << ',';
  }
  os << '\n';
}

/// The end-of-run query battery: where-is and history-since for every
/// user, who-is-in for every room, where-was at a spread of instants.
std::string dump_queries(ShardedBipsSimulation& sim, double sim_seconds) {
  using Query = core::BipsServer::Query;
  core::BipsServer& server = sim.server();
  std::ostringstream os;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "User " + std::to_string(i);
    dump_result(os, server.query(Query::where_is("", name)));
    dump_result(os, server.query(Query::history_since("", name,
                                                      SimTime::zero())));
    for (double frac : {0.25, 0.5, 0.75}) {
      dump_result(os, server.query(Query::where_was(
                          "", name,
                          SimTime(Duration::from_seconds(sim_seconds * frac)
                                      .ns()))));
    }
  }
  for (const mobility::Room& room : sim.building().rooms()) {
    dump_result(os, server.query(Query::who_is_in("", room.name)));
  }
  return os.str();
}

ShardedRun run_sharded(unsigned threads, std::size_t shards,
                       double sim_seconds,
                       Duration pause_min = Duration::seconds(1),
                       Duration pause_max = Duration::seconds(4),
                       std::size_t service_zones = 0) {
  ShardedConfig cfg;
  cfg.base.seed = 0xB1B5'0001ull;
  cfg.base.stagger_inquiry = true;
  // Default: a restless population, so walks (and seam crossings) happen
  // within a short simulated horizon.
  cfg.base.mobility.pause_min = pause_min;
  cfg.base.mobility.pause_max = pause_max;
  cfg.shards = shards;
  cfg.service_zones = service_zones;
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  for (int i = 0; i < 12; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % 8));
  }
  sim.enable_tracking_metrics(Duration::seconds(2));
  sim.run_for(Duration::from_seconds(sim_seconds), threads);

  ShardedRun out;
  out.shard_count = sim.shard_count();
  std::ostringstream hist;
  sim.write_history_csv(hist);
  out.history = hist.str();
  out.queries = dump_queries(sim, sim_seconds);
  out.tracking = sim.tracking();
  for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
    auto& ws = sim.workstation(static_cast<core::StationId>(s));
    ws.scheduler().inquirer().stats();
    ws.scheduler().pager().stats();
    ws.scheduler().piconet().stats();
    out.energy_tx_ns += ws.device().energy().tx_time.ns();
    out.energy_listen_ns += ws.device().energy().listen_time.ns();
  }
  out.mail = sim.group().mail_delivered();
  for (int i = 0; i < 12; ++i) {
    const std::size_t start = sim.shard_of_station(
        static_cast<core::StationId>(i % 8));
    if (sim.owner_shard("u" + std::to_string(i)) != start) {
      ++out.handoffs_seen;
    }
  }
  return out;
}

TEST(ShardedSimulation, ByteIdenticalAcrossThreadCounts) {
  const ShardedRun one = run_sharded(1, 4, 120.0);
  const ShardedRun four = run_sharded(4, 4, 120.0);

  // The workload must actually exercise the parallel machinery, or the
  // equivalence below is vacuous: cross-shard LAN mail flows and at least
  // one user ends the run owned by a different zone than it started in.
  EXPECT_GT(one.shard_count, 1u);
  EXPECT_GT(one.mail, 0u);
  EXPECT_GT(one.handoffs_seen, 0u);
  EXPECT_FALSE(one.history.empty());
  EXPECT_NE(one.history.find("enter"), std::string::npos);

  EXPECT_EQ(one.history, four.history);
  // The unified Query API answers byte-identically at every thread count
  // (same partitioned service, same ingest order)...
  EXPECT_FALSE(one.queries.empty());
  EXPECT_EQ(one.queries, four.queries);
  // ... and with the location service collapsed to a single database under
  // the same sharded simulator: the partitioning is invisible to queries.
  const ShardedRun single_db =
      run_sharded(4, 4, 120.0, Duration::seconds(1), Duration::seconds(4),
                  /*service_zones=*/1);
  EXPECT_EQ(one.queries, single_db.queries);
  EXPECT_EQ(one.history, single_db.history);
  EXPECT_EQ(one.tracking.samples, four.tracking.samples);
  EXPECT_EQ(one.tracking.correct_room, four.tracking.correct_room);
  EXPECT_EQ(one.tracking.wrong_room, four.tracking.wrong_room);
  EXPECT_EQ(one.tracking.false_absent, four.tracking.false_absent);
  EXPECT_EQ(one.tracking.false_present, four.tracking.false_present);
  EXPECT_EQ(one.energy_tx_ns, four.energy_tx_ns);
  EXPECT_EQ(one.energy_listen_ns, four.energy_listen_ns);
  EXPECT_EQ(one.mail, four.mail);
  EXPECT_EQ(one.handoffs_seen, four.handoffs_seen);
}

TEST(ShardedSimulation, TracksUsersAcrossSeams) {
  // Handoffs must not break the service: after three minutes of office-pace
  // walking across four zones, the location database still grades well.
  // (The byte-identity test above uses near-constant walkers, where the
  // discovery lag rightly dominates; here the dwells are long enough for
  // the inquiry cycle to keep up, as in the monolithic accuracy tests.)
  // The exact numbers are deterministic; the floor just leaves room for
  // the usual discovery/absence hysteresis lag.
  const ShardedRun r = run_sharded(1, 4, 180.0, Duration::seconds(20),
                                   Duration::seconds(60));
  ASSERT_GT(r.tracking.samples, 0u);
  EXPECT_GT(r.tracking.accuracy(), 0.5)
      << "accuracy " << r.tracking.accuracy();
}

TEST(ShardedSimulation, SingleColumnBuildingClampsToOneShard) {
  // A 4x1 grid has one distinct room-centre x: nothing to slice. The
  // requested 4 shards clamp to 1 and the window degenerates to unbounded
  // (one run_until per run_for; no barriers, no mail).
  ShardedConfig cfg;
  cfg.shards = 4;
  ShardedBipsSimulation sim(mobility::Building::grid(4, 1), cfg);
  EXPECT_EQ(sim.shard_count(), 1u);
  EXPECT_EQ(sim.window(), kUnboundedLookahead);
  sim.add_user("Ada", "ada", "pw", 0);
  sim.run_for(Duration::seconds(30), 4);
  EXPECT_EQ(sim.group().mail_delivered(), 0u);
  EXPECT_GT(sim.group().events_executed(), 0u);
}

// ---- thread-owned presence ingest ---------------------------------------

TEST(ShardedSimulation, PresenceIngestIsThreadOwned) {
  // The PR 9 contract: in a multi-shard world every presence datagram is
  // decoded, deduplicated and acked by the owning zone's ZoneIngest agent
  // on that zone's worker thread; the shard-0 server only replays the
  // merged window logs. The server-side presence counters therefore stay
  // at zero while the per-shard ingest counters carry the whole stream.
  ShardedConfig cfg;
  cfg.base.seed = 0xB1B5'0002ull;
  cfg.base.stagger_inquiry = true;
  cfg.base.mobility.pause_min = Duration::seconds(1);
  cfg.base.mobility.pause_max = Duration::seconds(4);
  cfg.shards = 4;
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  for (int i = 0; i < 8; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i));
  }
  ASSERT_EQ(sim.shard_count(), 4u);
  sim.run_for(Duration::seconds(120), 2);

  // Not one presence datagram reached the server's LAN handler...
  EXPECT_EQ(sim.metric_sum("server.presence_received"), 0u);
  EXPECT_EQ(sim.metric_sum("server.batches_received"), 0u);
  // ... the zone agents ingested the lot, and more than one zone did work
  // (the split is real, not one agent doing everything).
  EXPECT_GT(sim.metric_sum("svc.ingest_ops"), 0u);
  std::size_t zones_with_ops = 0;
  std::uint64_t agent_ops = 0;
  for (std::size_t k = 0; k < sim.shard_count(); ++k) {
    ASSERT_NE(sim.zone_ingest(k), nullptr);
    const std::uint64_t ops =
        sim.group().shard(k).obs().metrics.counter_value("svc.ingest_ops");
    EXPECT_EQ(ops, sim.zone_ingest(k)->ops());
    agent_ops += ops;
    zones_with_ops += ops > 0 ? 1 : 0;
  }
  EXPECT_EQ(agent_ops, sim.metric_sum("svc.ingest_ops"));
  EXPECT_GE(zones_with_ops, 2u);
  // The merged deltas did land in the database.
  EXPECT_GT(sim.metric_sum("db.presence_updates"), 0u);
}

// ---- fault schedules on the sharded harness -----------------------------

ShardedRun run_sharded_faulted(unsigned threads) {
  ShardedConfig cfg;
  cfg.base.seed = 0xB1B5'0003ull;
  cfg.base.stagger_inquiry = true;
  cfg.base.mobility.pause_min = Duration::seconds(2);
  cfg.base.mobility.pause_max = Duration::seconds(8);
  cfg.base.server.station_timeout = Duration::seconds(10);
  cfg.shards = 4;
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  for (int i = 0; i < 8; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i));
  }
  sim.enable_tracking_metrics(Duration::seconds(2));

  // One of everything the taxonomy splits: a station fault (shard-local on
  // the owning worker), LAN-wide faults (mirrored per zone), a link fault
  // (owning zone + server zone), and the shard-0 barrier-class faults
  // (server crash/restart, location-shard crash/restart).
  fault::FaultPlan plan;
  plan.crash_station(Duration::seconds(20), 2)
      .restart_station(Duration::seconds(35), 2)
      .crash_server(Duration::seconds(45))
      .restart_server(Duration::seconds(55))
      .partition_stations(Duration::seconds(65), Duration::seconds(10),
                          {0, 4})
      .loss_burst(Duration::seconds(80), Duration::seconds(8), 0.4)
      .flaky_link(Duration::seconds(92), Duration::seconds(8), 6, 0.5)
      .crash_shard(Duration::seconds(100), 1)
      .restart_shard(Duration::seconds(108), 1);
  plan.apply_sharded(sim);
  sim.run_for(Duration::from_seconds(130.0), threads);

  ShardedRun out;
  out.shard_count = sim.shard_count();
  std::ostringstream hist;
  sim.write_history_csv(hist);
  out.history = hist.str();
  out.queries = dump_queries(sim, 130.0);
  out.tracking = sim.tracking();
  out.mail = sim.group().mail_delivered();
  return out;
}

TEST(ShardedSimulation, FaultScheduleReplaysByteIdentically) {
  const ShardedRun one = run_sharded_faulted(1);
  const ShardedRun two = run_sharded_faulted(2);
  const ShardedRun four = run_sharded_faulted(4);

  // The faults must have left visible scars, or the equivalence is vacuous.
  EXPECT_FALSE(one.history.empty());
  EXPECT_GT(one.mail, 0u);

  EXPECT_EQ(one.history, two.history);
  EXPECT_EQ(one.history, four.history);
  EXPECT_EQ(one.queries, two.queries);
  EXPECT_EQ(one.queries, four.queries);
  EXPECT_EQ(one.tracking.samples, four.tracking.samples);
  EXPECT_EQ(one.tracking.correct_room, four.tracking.correct_room);
  EXPECT_EQ(one.tracking.wrong_room, four.tracking.wrong_room);
  EXPECT_EQ(one.tracking.false_absent, four.tracking.false_absent);
  EXPECT_EQ(one.mail, four.mail);
}

ShardedRun run_sharded_powercycle(unsigned threads) {
  ShardedConfig cfg;
  cfg.base.seed = 0xB1B5'0004ull;
  cfg.base.stagger_inquiry = true;
  cfg.base.mobility.pause_min = Duration::seconds(2);
  cfg.base.mobility.pause_max = Duration::seconds(8);
  cfg.shards = 4;
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  for (int i = 0; i < 8; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i));
  }
  sim.enable_tracking_metrics(Duration::seconds(2));
  // Two cycles, one of them long enough to straddle several conservative
  // windows; u3 may be mid-walk when its handheld dies, so the powered_off
  // flag must survive a seam handoff.
  sim.schedule_power_cycle(SimTime::zero() + Duration::seconds(30), "u3",
                           Duration::seconds(25));
  sim.schedule_power_cycle(SimTime::zero() + Duration::seconds(70), "u6",
                           Duration::seconds(12));
  sim.run_for(Duration::from_seconds(120.0), threads);

  ShardedRun out;
  out.shard_count = sim.shard_count();
  std::ostringstream hist;
  sim.write_history_csv(hist);
  out.history = hist.str();
  out.queries = dump_queries(sim, 120.0);
  out.tracking = sim.tracking();
  out.mail = sim.group().mail_delivered();
  return out;
}

TEST(ShardedSimulation, PowerCycleReplaysByteIdentically) {
  const ShardedRun one = run_sharded_powercycle(1);
  const ShardedRun four = run_sharded_powercycle(4);
  EXPECT_FALSE(one.history.empty());
  EXPECT_EQ(one.history, four.history);
  EXPECT_EQ(one.queries, four.queries);
  EXPECT_EQ(one.tracking.samples, four.tracking.samples);
  EXPECT_EQ(one.tracking.correct_room, four.tracking.correct_room);
  EXPECT_EQ(one.mail, four.mail);
}

TEST(ShardedSimulation, ScriptedActsAndShadowFollowTheOwner) {
  ShardedConfig cfg;
  cfg.base.seed = 7;
  // Pin everyone in place: only the scripted walk below moves anyone, so
  // the final ownership and database assertions are exact.
  cfg.base.mobility.pause_min = Duration::seconds(100000);
  cfg.base.mobility.pause_max = Duration::seconds(100000);
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  sim.add_user("Ada", "ada", "pw", 0);      // zone 0
  sim.add_user("Grace", "grace", "pw", 7);  // zone 3 (2x4 grid, 4 shards)
  ASSERT_EQ(sim.shard_count(), 4u);

  // Walk Ada to the far corner: the act fires on her owning replica, and
  // the trip hands her across every seam on the way.
  sim.schedule_user_act(
      SimTime::zero() + Duration::seconds(5), "ada",
      [](core::BipsClient&, mobility::RandomWaypointAgent& agent) {
        agent.walk_to(7);
      });
  sim.schedule_radio_shadow(SimTime::zero() + Duration::seconds(10), "grace",
                            true);
  // Worst case the walk covers ~50 m at the 0.5 m/s floor: 180 s is ample.
  sim.run_for(Duration::seconds(180), 2);

  EXPECT_EQ(sim.owner_shard("ada"), 3u);
  EXPECT_EQ(sim.true_room("ada"), 7u);
  // Grace's handheld has been in an RF shadow since t=10: the serving
  // master dropped it via supervision timeout and the database shows no
  // current fix for it.
  EXPECT_FALSE(sim.db_room("grace").has_value());
}

// ---- server amnesia with a mid-walk user --------------------------------

struct AmnesiaRun {
  std::string history;
  std::uint64_t client_relogins = 0;
  std::uint64_t svc_relogins = 0;
};

/// A walker is between piconets (crossing zone seams, no attesting
/// station) for the whole server outage, so no resync snapshot can carry
/// her session: recovery must flow through the epoch relay -- restart
/// broadcast -> workstation EpochNotice -> client re-login -- and the
/// whole exchange must land identically at every thread count.
AmnesiaRun run_sharded_amnesia(unsigned threads) {
  ShardedConfig cfg;
  cfg.base.seed = 0xB1B5'000Aull;
  cfg.base.stagger_inquiry = true;
  // Pin everyone: only the scripted walk below moves anyone.
  cfg.base.mobility.pause_min = Duration::seconds(100000);
  cfg.base.mobility.pause_max = Duration::seconds(100000);
  cfg.base.server.station_timeout = Duration::seconds(10);
  cfg.shards = 4;
  ShardedBipsSimulation sim(mobility::Building::grid(2, 4), cfg);
  for (int i = 0; i < 4; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i));
  }
  sim.enable_tracking_metrics(Duration::seconds(2));

  // u0 departs room 0 for the far corner at t=40 and is mid-walk across
  // the whole 45..55 s outage window; the others sit still as controls.
  sim.schedule_user_act(
      SimTime::zero() + Duration::seconds(40), "u0",
      [](core::BipsClient&, mobility::RandomWaypointAgent& agent) {
        agent.walk_to(7);
      });
  fault::FaultPlan plan;
  plan.crash_server(Duration::seconds(45))
      .restart_server(Duration::seconds(55));
  plan.apply_sharded(sim);
  sim.run_for(Duration::from_seconds(220.0), threads);

  AmnesiaRun out;
  std::ostringstream hist;
  sim.write_history_csv(hist);
  out.history = hist.str();
  out.client_relogins = sim.metric_sum("client.relogin");
  out.svc_relogins = sim.metric_sum("svc.relogin");
  return out;
}

TEST(ShardedSimulation, AmnesiaReloginReplaysByteIdentically) {
  const AmnesiaRun one = run_sharded_amnesia(1);
  const AmnesiaRun two = run_sharded_amnesia(2);
  const AmnesiaRun four = run_sharded_amnesia(4);

  // The outage must actually have forced the re-login path, or the
  // equivalence below is vacuous.
  EXPECT_GE(one.client_relogins, 1u);
  EXPECT_GE(one.svc_relogins, 1u);

  EXPECT_EQ(one.history, two.history);
  EXPECT_EQ(one.history, four.history);
  EXPECT_EQ(one.client_relogins, two.client_relogins);
  EXPECT_EQ(one.client_relogins, four.client_relogins);
  EXPECT_EQ(one.svc_relogins, two.svc_relogins);
  EXPECT_EQ(one.svc_relogins, four.svc_relogins);
}

}  // namespace
}  // namespace bips
