// Unit tests for the radio channel: delivery, range, and the BlueHoc-style
// collision rule.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct TestDevice : RadioDevice {
  BdAddr a;
  Vec2 pos;
  double range = 10.0;
  std::vector<Packet> received;

  explicit TestDevice(std::uint64_t raw, Vec2 p = {}) : a(raw), pos(p) {}
  BdAddr addr() const override { return a; }
  Vec2 position() const override { return pos; }
  double range_m() const override { return range; }
  void on_packet(const Packet& p, RfChannel, SimTime) override {
    received.push_back(p);
  }
};

Packet id_packet(std::uint64_t sender) {
  Packet p;
  p.type = PacketType::kId;
  p.sender = BdAddr(sender);
  return p;
}

constexpr RfChannel kCh{0, 5};
constexpr RfChannel kOtherCh{0, 6};

struct RadioTest : ::testing::Test {
  sim::Simulator sim;
  Rng rng{1};
  ChannelConfig cfg;
};

TEST_F(RadioTest, DeliversToListenerOnSameChannel) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.deliveries"), 1u);
}

TEST_F(RadioTest, NoDeliveryOnDifferentChannel) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kOtherCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, NamespaceDistinguishesChannels) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, RfChannel{7, 5});
  ch.transmit(&tx, RfChannel{8, 5}, id_packet(1));  // same index, other ns
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, ListenerTunedMidPacketMissesIt) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.transmit(&tx, kCh, id_packet(1));  // starts at t=0, 68 us long
  sim.schedule(Duration::micros(10), [&] { ch.start_listen(&rx, kCh); });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, ListenerRegisteredAtExactPacketStartReceives) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));  // same instant: listen first
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, StoppedListenerMissesPacket) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  const ListenId l = ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.schedule(Duration::micros(10), [&] { ch.stop_listen(l); });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, SenderDoesNotHearItself) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1);
  ch.start_listen(&tx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(tx.received.empty());
}

TEST_F(RadioTest, OutOfRangeIsNotDelivered) {
  // Brute-force mode: every on-channel listener reaches the exact range
  // check, so the miss shows up in the out_of_range stat.
  cfg.spatial_grid = false;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {30, 0});  // 30 m apart, range 10 m
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.out_of_range"), 1u);
}

TEST_F(RadioTest, GridSkipsFarListenerWithoutDelivery) {
  // With the spatial grid on, a listener far outside the coverage disc is
  // never even visited: no delivery, and no out_of_range count either.
  // Threshold 0 forces the channel into grid mode from the first listen
  // (below the threshold a flat channel scans every listener and the miss
  // would land in out_of_range, as the brute-force test above shows).
  cfg.grid_threshold = 0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {200, 0});
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.out_of_range"), 0u);
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.deliveries"), 0u);
}

TEST_F(RadioTest, RangeBoundaryIsInclusive) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {10, 0});  // exactly at range
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, ZeroDeviceRangeFallsBackToChannelDefault) {
  cfg.default_range_m = 50.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {30, 0});
  tx.range = 0.0;  // "use default"
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, OverlappingSameChannelTransmissionsCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, kCh, id_packet(2));  // same instant, same channel
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.collisions"), 2u);  // both (listener, packet) pairs died
}

TEST_F(RadioTest, PartialOverlapAlsoCollides) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));  // [0, 68us)
  sim.schedule(Duration::micros(30), [&] {
    ch.transmit(&tx2, kCh, id_packet(2));  // [30, 98us): overlaps
  });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, BackToBackTransmissionsDoNotCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));  // [0, 68)
  sim.schedule(Duration::micros(68), [&] {
    ch.transmit(&tx2, kCh, id_packet(2));  // [68, 136): touching, no overlap
  });
  sim.run();
  EXPECT_EQ(rx.received.size(), 2u);
}

TEST_F(RadioTest, SimultaneousDifferentChannelsBothDeliver) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx1(3), rx2(4);
  ch.start_listen(&rx1, kCh);
  ch.start_listen(&rx2, kOtherCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, kOtherCh, id_packet(2));
  sim.run();
  EXPECT_EQ(rx1.received.size(), 1u);
  EXPECT_EQ(rx2.received.size(), 1u);
}

TEST_F(RadioTest, InterfererOutOfListenerRangeDoesNotCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), far(2, {100, 0}), rx(3, {5, 0});
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  ch.transmit(&far, kCh, id_packet(2));  // 95 m from rx: no interference
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
}

TEST_F(RadioTest, CaptureLetsTheMuchCloserSenderWin) {
  cfg.capture = true;
  cfg.capture_ratio = 2.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice near(1, {1, 0}), far(2, {9, 0}), rx(3, {0, 0});
  ch.start_listen(&rx, kCh);
  ch.transmit(&near, kCh, id_packet(1));
  ch.transmit(&far, kCh, id_packet(2));
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);  // near one captured
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
}

TEST_F(RadioTest, PacketErrorRateDropsEverythingAtOne) {
  cfg.packet_error_rate = 1.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.dropped_per"), 10u);
}

TEST_F(RadioTest, PerListenHandlerOverridesDeviceCallback) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  int handler_hits = 0;
  ch.start_listen(&rx, kCh,
                  [&](const Packet&, RfChannel, SimTime) { ++handler_hits; });
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(handler_hits, 1);
  EXPECT_TRUE(rx.received.empty());  // device callback bypassed
}

TEST_F(RadioTest, StopAllListensAndCounting) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice rx(2);
  ch.start_listen(&rx, kCh);
  ch.start_listen(&rx, kOtherCh);
  EXPECT_EQ(ch.listen_count(&rx), 2u);
  ch.stop_all_listens(&rx);
  EXPECT_EQ(ch.listen_count(&rx), 0u);
}

TEST_F(RadioTest, MultipleListenersAllReceive) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx1(2), rx2(3), rx3(4);
  ch.start_listen(&rx1, kCh);
  ch.start_listen(&rx2, kCh);
  ch.start_listen(&rx3, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx1.received.size(), 1u);
  EXPECT_EQ(rx2.received.size(), 1u);
  EXPECT_EQ(rx3.received.size(), 1u);
  EXPECT_EQ(sim.obs().metrics.counter_value("radio.deliveries"), 3u);
}

TEST_F(RadioTest, GridAndFlatDeliverIdentically) {
  // The spatial grid is a pure cull: the same scenario run in brute-force
  // mode and in grid mode must produce byte-identical delivery sequences
  // (receivers, order, and RSSI draws, since RNG consumption tracks the
  // delivery order).
  auto run_mode = [](bool use_grid) {
    sim::Simulator s;
    Rng r{42};
    ChannelConfig c;
    if (use_grid) {
      c.grid_threshold = 0;  // grid from the first listen
    } else {
      c.spatial_grid = false;  // brute force
    }
    RadioChannel ch(s, r, c);
    std::vector<std::unique_ptr<TestDevice>> devs;
    // Deterministic scatter over a 40x40 m area: some in range of the
    // transmitters (range 10 m), most not.
    for (std::uint64_t i = 0; i < 24; ++i) {
      const double x = static_cast<double>((i * 7) % 40);
      const double y = static_cast<double>((i * 13) % 40);
      devs.push_back(std::make_unique<TestDevice>(100 + i, Vec2{x, y}));
      ch.start_listen(devs.back().get(), kCh);
    }
    TestDevice tx1(1, {10, 10}), tx2(2, {30, 30});
    std::vector<std::pair<std::uint64_t, double>> log;
    for (auto& d : devs) {
      TestDevice* dp = d.get();
      // Per-listen handler on a second channel records order + RSSI.
      ch.start_listen(dp, kOtherCh,
                      [&log, dp](const Packet& p, RfChannel, SimTime) {
                        log.emplace_back(dp->a.raw(), p.rssi_dbm);
                      });
    }
    for (int i = 0; i < 8; ++i) {
      s.schedule(Duration::millis(i), [&] {
        ch.transmit(&tx1, kCh, id_packet(1));
        ch.transmit(&tx2, kOtherCh, id_packet(2));
      });
    }
    s.run();
    std::vector<std::uint64_t> order;
    for (auto& d : devs) {
      for (const auto& p : d->received) order.push_back(p.sender.raw());
      order.push_back(d->a.raw());
      order.push_back(d->received.size());
    }
    return std::make_pair(order, log);
  };
  const auto flat = run_mode(false);
  const auto grid = run_mode(true);
  EXPECT_EQ(flat.first, grid.first);
  EXPECT_EQ(flat.second, grid.second);
  EXPECT_FALSE(flat.second.empty());
}

TEST_F(RadioTest, FlatChannelMigratesToGridAndKeepsListeners) {
  // Crossing grid_threshold mid-run migrates a flat channel to cells; the
  // pre-migration listens must keep delivering and remain stoppable.
  cfg.grid_threshold = 4;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0});
  std::vector<std::unique_ptr<TestDevice>> devs;
  std::vector<ListenId> ids;
  for (std::uint64_t i = 0; i < 3; ++i) {
    devs.push_back(std::make_unique<TestDevice>(10 + i, Vec2{1.0 * i, 0}));
    ids.push_back(ch.start_listen(devs.back().get(), kCh));
  }
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  for (auto& d : devs) EXPECT_EQ(d->received.size(), 1u);

  // Three more listens push the count past the threshold -> migration.
  for (std::uint64_t i = 3; i < 6; ++i) {
    devs.push_back(std::make_unique<TestDevice>(10 + i, Vec2{1.0 * i, 0}));
    ids.push_back(ch.start_listen(devs.back().get(), kCh));
  }
  sim.schedule(Duration::millis(1), [&] { ch.transmit(&tx, kCh, id_packet(1)); });
  sim.run();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    EXPECT_EQ(devs[i]->received.size(), i < 3 ? 2u : 1u);
  }

  // Stopping a pre-migration listen must find it in its (migrated) cell.
  ch.stop_listen(ids[0]);
  EXPECT_EQ(ch.listen_count(devs[0].get()), 0u);
  sim.schedule(Duration::millis(2), [&] { ch.transmit(&tx, kCh, id_packet(1)); });
  sim.run();
  EXPECT_EQ(devs[0]->received.size(), 2u);  // no third delivery
  EXPECT_EQ(devs[5]->received.size(), 2u);
}

TEST_F(RadioTest, StopAndStartListensFromHandlerMidDelivery) {
  // A handler may stop another candidate's listen and start new ones while
  // a delivery is in flight. The delivery snapshot must hold: every
  // candidate gathered at packet-end still receives this packet, the
  // stopped listen is gone afterwards, and the freshly started listen's
  // arena slot must not alias a slot the snapshot still references.
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx1(2), rx2(3), rx3(4);
  ListenId id2 = kNoListen;
  int rx1_hits = 0;
  // rx1 registers first, so its handler runs before rx2's delivery.
  ch.start_listen(&rx1, kCh, [&](const Packet&, RfChannel, SimTime) {
    ++rx1_hits;
    ch.stop_listen(id2);         // rx2 is a later candidate of this delivery
    ch.start_listen(&rx3, kCh);  // may reuse rx2's slot -- not mid-delivery
  });
  id2 = ch.start_listen(&rx2, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx1_hits, 1);
  EXPECT_EQ(rx2.received.size(), 1u);  // snapshot: still delivered this packet
  EXPECT_EQ(ch.listen_count(&rx2), 0u);
  EXPECT_TRUE(rx3.received.empty());  // tuned in mid-packet at the earliest
  // The next packet reaches rx1 and rx3 but not the stopped rx2.
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx1_hits, 2);
  EXPECT_EQ(rx2.received.size(), 1u);
  EXPECT_EQ(rx3.received.size(), 1u);
}

}  // namespace
}  // namespace bips::baseband

// ---- soft coverage edge (distance-dependent packet error) -----------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, SoftEdgeLosesMoreAtTheRim) {
  cfg.per_at_edge = 0.9;
  cfg.per_exponent = 4.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0});
  TestDevice near(2, {1, 0});   // (1/10)^4 ~ 0: nearly lossless
  TestDevice rim(3, {9.5, 0});  // (9.5/10)^4 ~ 0.81 -> ~73% loss
  ch.start_listen(&near, kCh);
  ch.start_listen(&rim, kCh);
  constexpr int kN = 400;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_GT(near.received.size(), 0.97 * kN);
  const double rim_rate = static_cast<double>(rim.received.size()) / kN;
  EXPECT_GT(rim_rate, 0.10);
  EXPECT_LT(rim_rate, 0.45);  // expected ~1 - 0.9*0.81 = 0.27
}

TEST_F(RadioTest, SoftEdgeDisabledByDefault) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rim(2, {9.9, 0});
  ch.start_listen(&rim, kCh);
  for (int i = 0; i < 50; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_EQ(rim.received.size(), 50u);  // hard disc: in range = delivered
}

}  // namespace
}  // namespace bips::baseband

// ---- RSSI model -------------------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, RssiDecreasesWithDistance) {
  cfg.rssi_sigma_db = 0.0;  // no shadowing: strict monotonicity
  RadioChannel ch(sim, rng, cfg);
  EXPECT_GT(ch.rssi_dbm(1.0), ch.rssi_dbm(5.0));
  EXPECT_GT(ch.rssi_dbm(5.0), ch.rssi_dbm(10.0));
  // 10x the distance costs 25 dB under the exponent-2.5 model.
  EXPECT_NEAR(ch.rssi_dbm(1.0) - ch.rssi_dbm(10.0), 25.0, 1e-9);
}

TEST_F(RadioTest, DeliveredPacketsCarryPlausibleRssi) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), near(2, {1, 0}), far(3, {9, 0});
  ch.start_listen(&near, kCh);
  ch.start_listen(&far, kCh);
  for (int i = 0; i < 20; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  ASSERT_EQ(near.received.size(), 20u);
  ASSERT_EQ(far.received.size(), 20u);
  double near_sum = 0, far_sum = 0;
  for (const auto& p : near.received) near_sum += p.rssi_dbm;
  for (const auto& p : far.received) far_sum += p.rssi_dbm;
  EXPECT_GT(near_sum / 20, far_sum / 20);  // nearer is louder on average
}

}  // namespace
}  // namespace bips::baseband

// ---- cross-set interference -------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, DisjointSetsNeverClashByDefault) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  for (int i = 0; i < 200; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx1, kCh, id_packet(1));
      ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));  // other set
    });
  }
  sim.run();
  EXPECT_EQ(rx.received.size(), 200u);  // no cross-set losses
}

TEST_F(RadioTest, CrossSetInterferenceClashesProbabilistically) {
  cfg.cross_set_interference = 1.0 / 79.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx1, kCh, id_packet(1));
      ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));
    });
  }
  sim.run();
  const double loss =
      1.0 - static_cast<double>(rx.received.size()) / kN;
  EXPECT_NEAR(loss, 1.0 / 79.0, 0.007);
}

TEST_F(RadioTest, CrossSetAtFullRateKillsEverything) {
  cfg.cross_set_interference = 1.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

}  // namespace
}  // namespace bips::baseband
