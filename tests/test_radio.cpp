// Unit tests for the radio channel: delivery, range, and the BlueHoc-style
// collision rule.
#include <gtest/gtest.h>

#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

struct TestDevice : RadioDevice {
  BdAddr a;
  Vec2 pos;
  double range = 10.0;
  std::vector<Packet> received;

  explicit TestDevice(std::uint64_t raw, Vec2 p = {}) : a(raw), pos(p) {}
  BdAddr addr() const override { return a; }
  Vec2 position() const override { return pos; }
  double range_m() const override { return range; }
  void on_packet(const Packet& p, RfChannel, SimTime) override {
    received.push_back(p);
  }
};

Packet id_packet(std::uint64_t sender) {
  Packet p;
  p.type = PacketType::kId;
  p.sender = BdAddr(sender);
  return p;
}

constexpr RfChannel kCh{0, 5};
constexpr RfChannel kOtherCh{0, 6};

struct RadioTest : ::testing::Test {
  sim::Simulator sim;
  Rng rng{1};
  ChannelConfig cfg;
};

TEST_F(RadioTest, DeliversToListenerOnSameChannel) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
  EXPECT_EQ(ch.stats().deliveries, 1u);
}

TEST_F(RadioTest, NoDeliveryOnDifferentChannel) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kOtherCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, NamespaceDistinguishesChannels) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, RfChannel{7, 5});
  ch.transmit(&tx, RfChannel{8, 5}, id_packet(1));  // same index, other ns
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, ListenerTunedMidPacketMissesIt) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.transmit(&tx, kCh, id_packet(1));  // starts at t=0, 68 us long
  sim.schedule(Duration::micros(10), [&] { ch.start_listen(&rx, kCh); });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, ListenerRegisteredAtExactPacketStartReceives) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));  // same instant: listen first
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, StoppedListenerMissesPacket) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  const ListenId l = ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.schedule(Duration::micros(10), [&] { ch.stop_listen(l); });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, SenderDoesNotHearItself) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1);
  ch.start_listen(&tx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(tx.received.empty());
}

TEST_F(RadioTest, OutOfRangeIsNotDelivered) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {30, 0});  // 30 m apart, range 10 m
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(ch.stats().out_of_range, 1u);
}

TEST_F(RadioTest, RangeBoundaryIsInclusive) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {10, 0});  // exactly at range
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, ZeroDeviceRangeFallsBackToChannelDefault) {
  cfg.default_range_m = 50.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rx(2, {30, 0});
  tx.range = 0.0;  // "use default"
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(RadioTest, OverlappingSameChannelTransmissionsCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, kCh, id_packet(2));  // same instant, same channel
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(ch.stats().collisions, 2u);  // both (listener, packet) pairs died
}

TEST_F(RadioTest, PartialOverlapAlsoCollides) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));  // [0, 68us)
  sim.schedule(Duration::micros(30), [&] {
    ch.transmit(&tx2, kCh, id_packet(2));  // [30, 98us): overlaps
  });
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

TEST_F(RadioTest, BackToBackTransmissionsDoNotCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));  // [0, 68)
  sim.schedule(Duration::micros(68), [&] {
    ch.transmit(&tx2, kCh, id_packet(2));  // [68, 136): touching, no overlap
  });
  sim.run();
  EXPECT_EQ(rx.received.size(), 2u);
}

TEST_F(RadioTest, SimultaneousDifferentChannelsBothDeliver) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx1(3), rx2(4);
  ch.start_listen(&rx1, kCh);
  ch.start_listen(&rx2, kOtherCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, kOtherCh, id_packet(2));
  sim.run();
  EXPECT_EQ(rx1.received.size(), 1u);
  EXPECT_EQ(rx2.received.size(), 1u);
}

TEST_F(RadioTest, InterfererOutOfListenerRangeDoesNotCollide) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), far(2, {100, 0}), rx(3, {5, 0});
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  ch.transmit(&far, kCh, id_packet(2));  // 95 m from rx: no interference
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
}

TEST_F(RadioTest, CaptureLetsTheMuchCloserSenderWin) {
  cfg.capture = true;
  cfg.capture_ratio = 2.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice near(1, {1, 0}), far(2, {9, 0}), rx(3, {0, 0});
  ch.start_listen(&rx, kCh);
  ch.transmit(&near, kCh, id_packet(1));
  ch.transmit(&far, kCh, id_packet(2));
  sim.run();
  ASSERT_EQ(rx.received.size(), 1u);  // near one captured
  EXPECT_EQ(rx.received[0].sender.raw(), 1u);
}

TEST_F(RadioTest, PacketErrorRateDropsEverythingAtOne) {
  cfg.packet_error_rate = 1.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  ch.start_listen(&rx, kCh);
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(ch.stats().dropped_per, 10u);
}

TEST_F(RadioTest, PerListenHandlerOverridesDeviceCallback) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx(2);
  int handler_hits = 0;
  ch.start_listen(&rx, kCh,
                  [&](const Packet&, RfChannel, SimTime) { ++handler_hits; });
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(handler_hits, 1);
  EXPECT_TRUE(rx.received.empty());  // device callback bypassed
}

TEST_F(RadioTest, StopAllListensAndCounting) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice rx(2);
  ch.start_listen(&rx, kCh);
  ch.start_listen(&rx, kOtherCh);
  EXPECT_EQ(ch.listen_count(&rx), 2u);
  ch.stop_all_listens(&rx);
  EXPECT_EQ(ch.listen_count(&rx), 0u);
}

TEST_F(RadioTest, MultipleListenersAllReceive) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1), rx1(2), rx2(3), rx3(4);
  ch.start_listen(&rx1, kCh);
  ch.start_listen(&rx2, kCh);
  ch.start_listen(&rx3, kCh);
  ch.transmit(&tx, kCh, id_packet(1));
  sim.run();
  EXPECT_EQ(rx1.received.size(), 1u);
  EXPECT_EQ(rx2.received.size(), 1u);
  EXPECT_EQ(rx3.received.size(), 1u);
  EXPECT_EQ(ch.stats().deliveries, 3u);
}

}  // namespace
}  // namespace bips::baseband

// ---- soft coverage edge (distance-dependent packet error) -----------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, SoftEdgeLosesMoreAtTheRim) {
  cfg.per_at_edge = 0.9;
  cfg.per_exponent = 4.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0});
  TestDevice near(2, {1, 0});   // (1/10)^4 ~ 0: nearly lossless
  TestDevice rim(3, {9.5, 0});  // (9.5/10)^4 ~ 0.81 -> ~73% loss
  ch.start_listen(&near, kCh);
  ch.start_listen(&rim, kCh);
  constexpr int kN = 400;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_GT(near.received.size(), 0.97 * kN);
  const double rim_rate = static_cast<double>(rim.received.size()) / kN;
  EXPECT_GT(rim_rate, 0.10);
  EXPECT_LT(rim_rate, 0.45);  // expected ~1 - 0.9*0.81 = 0.27
}

TEST_F(RadioTest, SoftEdgeDisabledByDefault) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), rim(2, {9.9, 0});
  ch.start_listen(&rim, kCh);
  for (int i = 0; i < 50; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  EXPECT_EQ(rim.received.size(), 50u);  // hard disc: in range = delivered
}

}  // namespace
}  // namespace bips::baseband

// ---- RSSI model -------------------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, RssiDecreasesWithDistance) {
  cfg.rssi_sigma_db = 0.0;  // no shadowing: strict monotonicity
  RadioChannel ch(sim, rng, cfg);
  EXPECT_GT(ch.rssi_dbm(1.0), ch.rssi_dbm(5.0));
  EXPECT_GT(ch.rssi_dbm(5.0), ch.rssi_dbm(10.0));
  // 10x the distance costs 25 dB under the exponent-2.5 model.
  EXPECT_NEAR(ch.rssi_dbm(1.0) - ch.rssi_dbm(10.0), 25.0, 1e-9);
}

TEST_F(RadioTest, DeliveredPacketsCarryPlausibleRssi) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx(1, {0, 0}), near(2, {1, 0}), far(3, {9, 0});
  ch.start_listen(&near, kCh);
  ch.start_listen(&far, kCh);
  for (int i = 0; i < 20; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx, kCh, id_packet(1));
    });
  }
  sim.run();
  ASSERT_EQ(near.received.size(), 20u);
  ASSERT_EQ(far.received.size(), 20u);
  double near_sum = 0, far_sum = 0;
  for (const auto& p : near.received) near_sum += p.rssi_dbm;
  for (const auto& p : far.received) far_sum += p.rssi_dbm;
  EXPECT_GT(near_sum / 20, far_sum / 20);  // nearer is louder on average
}

}  // namespace
}  // namespace bips::baseband

// ---- cross-set interference -------------------------------------------------

namespace bips::baseband {
namespace {

TEST_F(RadioTest, DisjointSetsNeverClashByDefault) {
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  for (int i = 0; i < 200; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx1, kCh, id_packet(1));
      ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));  // other set
    });
  }
  sim.run();
  EXPECT_EQ(rx.received.size(), 200u);  // no cross-set losses
}

TEST_F(RadioTest, CrossSetInterferenceClashesProbabilistically) {
  cfg.cross_set_interference = 1.0 / 79.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      ch.transmit(&tx1, kCh, id_packet(1));
      ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));
    });
  }
  sim.run();
  const double loss =
      1.0 - static_cast<double>(rx.received.size()) / kN;
  EXPECT_NEAR(loss, 1.0 / 79.0, 0.007);
}

TEST_F(RadioTest, CrossSetAtFullRateKillsEverything) {
  cfg.cross_set_interference = 1.0;
  RadioChannel ch(sim, rng, cfg);
  TestDevice tx1(1), tx2(2), rx(3);
  ch.start_listen(&rx, kCh);
  ch.transmit(&tx1, kCh, id_packet(1));
  ch.transmit(&tx2, RfChannel{9, 5}, id_packet(2));
  sim.run();
  EXPECT_TRUE(rx.received.empty());
}

}  // namespace
}  // namespace bips::baseband
