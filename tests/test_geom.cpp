// Unit tests for the 2-D geometry primitives.
#include <gtest/gtest.h>

#include "src/util/geom.hpp"

namespace bips {
namespace {

TEST(Vec2, Arithmetic) {
  constexpr Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ((Vec2{}).norm(), 0.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, Normalized) {
  const Vec2 n = Vec2{3, 4}.normalized();
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  EXPECT_DOUBLE_EQ(n.y, 0.8);
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  // The zero vector stays zero instead of dividing by zero.
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{}));
}

TEST(Vec2, Lerp) {
  constexpr Vec2 a{0, 0}, b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5, 10}));
  EXPECT_EQ(lerp(a, b, 0.25), (Vec2{2.5, 5}));
}

TEST(Vec2, EqualityIsExact) {
  EXPECT_EQ((Vec2{1, 2}), (Vec2{1, 2}));
  EXPECT_FALSE((Vec2{1, 2}) == (Vec2{1, 2.000001}));
}

}  // namespace
}  // namespace bips
