// Unit tests for the Bluetooth native clock.
#include <gtest/gtest.h>

#include "src/baseband/clock.hpp"

namespace bips::baseband {
namespace {

TEST(NativeClock, TicksEvery312point5us) {
  NativeClock c(0);
  EXPECT_EQ(c.clkn(SimTime::zero()), 0u);
  EXPECT_EQ(c.clkn(SimTime(312'499)), 0u);
  EXPECT_EQ(c.clkn(SimTime(312'500)), 1u);
  EXPECT_EQ(c.clkn(SimTime(625'000)), 2u);
  EXPECT_EQ(c.clkn(SimTime(Duration::seconds(1).ns())), 3200u);  // 3.2 kHz
}

TEST(NativeClock, PhaseOffsetApplies) {
  NativeClock c(5);
  EXPECT_EQ(c.clkn(SimTime::zero()), 5u);
  EXPECT_EQ(c.clkn(SimTime(312'500)), 6u);
  EXPECT_EQ(c.phase_ticks(), 5u);
}

TEST(NativeClock, WrapsAt28Bits) {
  NativeClock c((1u << 28) - 1);
  EXPECT_EQ(c.clkn(SimTime::zero()), (1u << 28) - 1);
  EXPECT_EQ(c.clkn(SimTime(312'500)), 0u);
}

TEST(NativeClock, PhaseMaskedTo28Bits) {
  NativeClock c(0xFFFFFFFFu);
  EXPECT_EQ(c.phase_ticks(), (1u << 28) - 1);
}

TEST(NativeClock, EvenSlotParity) {
  NativeClock c(0);
  // CLKN bit 1 == 0 -> even (master TX) slot: ticks 0,1 even; 2,3 odd.
  EXPECT_TRUE(c.in_even_slot(SimTime::zero()));
  EXPECT_TRUE(c.in_even_slot(SimTime(312'500)));
  EXPECT_FALSE(c.in_even_slot(SimTime(625'000)));
  EXPECT_FALSE(c.in_even_slot(SimTime(937'500)));
  EXPECT_TRUE(c.in_even_slot(SimTime(1'250'000)));
}

TEST(NativeClock, NextEvenSlotFromAlignedBoundary) {
  NativeClock c(0);
  // Exactly at an even-slot boundary: that instant qualifies.
  EXPECT_EQ(c.next_even_slot(SimTime::zero()).ns(), 0);
  EXPECT_EQ(c.next_even_slot(SimTime(1'250'000)).ns(), 1'250'000);
}

TEST(NativeClock, NextEvenSlotMidSlot) {
  NativeClock c(0);
  // 100 us into the even slot -> next boundary is 1.25 ms.
  EXPECT_EQ(c.next_even_slot(SimTime(100'000)).ns(), 1'250'000);
  // Inside the odd slot -> same boundary.
  EXPECT_EQ(c.next_even_slot(SimTime(700'000)).ns(), 1'250'000);
  EXPECT_EQ(c.next_even_slot(SimTime(1'249'999)).ns(), 1'250'000);
}

TEST(NativeClock, NextEvenSlotHonoursPhase) {
  // Phase 1: device boundary (clkn % 4 == 0) occurs when wall ticks = 3 mod 4.
  NativeClock c(1);
  const SimTime t = c.next_even_slot(SimTime::zero());
  EXPECT_EQ(c.clkn(t) & 0b11u, 0u);
  EXPECT_EQ(t.ns(), 3 * 312'500);
}

TEST(NativeClock, NextEvenSlotIsAlwaysAlignedAndFuture) {
  for (std::uint32_t phase : {0u, 1u, 2u, 3u, 12345u}) {
    NativeClock c(phase);
    for (std::int64_t ns : {0ll, 1ll, 312'500ll, 312'501ll, 999'999ll,
                            1'250'000ll, 5'777'123ll}) {
      const SimTime t(ns);
      const SimTime b = c.next_even_slot(t);
      EXPECT_GE(b, t);
      EXPECT_EQ(c.clkn(b) & 0b11u, 0u) << "phase " << phase << " ns " << ns;
      EXPECT_LE((b - t).ns(), 4 * 312'500);
    }
  }
}

TEST(NativeClock, ScanPhaseAdvancesEvery128s) {
  NativeClock c(0);
  EXPECT_EQ(c.scan_phase(SimTime::zero()), 0u);
  EXPECT_EQ(c.scan_phase(SimTime(Duration::millis(1279).ns())), 0u);
  EXPECT_EQ(c.scan_phase(SimTime(Duration::millis(1280).ns())), 1u);
  EXPECT_EQ(c.scan_phase(SimTime(Duration::millis(2 * 1280).ns())), 2u);
}

TEST(NativeClock, ScanPhaseWrapsAt32) {
  NativeClock c(0);
  const SimTime t(32 * Duration::millis(1280).ns());
  EXPECT_EQ(c.scan_phase(t), 0u);
}

}  // namespace
}  // namespace bips::baseband
