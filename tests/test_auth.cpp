// Unit tests for password hashing.
#include <gtest/gtest.h>

#include "src/core/auth.hpp"

namespace bips::core {
namespace {

TEST(Auth, VerifyAcceptsCorrectPassword) {
  const PasswordHash h = hash_password("s3cret", 0x1234);
  EXPECT_TRUE(verify_password("s3cret", h));
}

TEST(Auth, VerifyRejectsWrongPassword) {
  const PasswordHash h = hash_password("s3cret", 0x1234);
  EXPECT_FALSE(verify_password("S3cret", h));
  EXPECT_FALSE(verify_password("s3cret ", h));
  EXPECT_FALSE(verify_password("", h));
}

TEST(Auth, SaltChangesDigest) {
  const PasswordHash a = hash_password("pw", 1);
  const PasswordHash b = hash_password("pw", 2);
  EXPECT_NE(a.digest, b.digest);
  // Each verifies only under its own salt record.
  EXPECT_TRUE(verify_password("pw", a));
  EXPECT_TRUE(verify_password("pw", b));
}

TEST(Auth, DeterministicForSameInputs) {
  EXPECT_EQ(hash_password("pw", 7), hash_password("pw", 7));
}

TEST(Auth, EmptyPasswordIsHashable) {
  const PasswordHash h = hash_password("", 9);
  EXPECT_TRUE(verify_password("", h));
  EXPECT_FALSE(verify_password("x", h));
}

TEST(Auth, SimilarPasswordsDiverge) {
  const PasswordHash h = hash_password("password1", 5);
  EXPECT_FALSE(verify_password("password2", h));
  const PasswordHash h2 = hash_password("password2", 5);
  EXPECT_NE(h.digest, h2.digest);
}

TEST(Auth, LongPasswords) {
  const std::string longpw(10'000, 'a');
  const PasswordHash h = hash_password(longpw, 3);
  EXPECT_TRUE(verify_password(longpw, h));
  EXPECT_FALSE(verify_password(longpw + "b", h));
}

}  // namespace
}  // namespace bips::core
