// Unit tests for the partitioned location service: byte-equivalence of the
// sharded service against a single LocationDatabase fed the same op stream,
// seam re-homing, global FIFO history eviction and per-zone crash
// isolation.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/core/location_service.hpp"
#include "src/mobility/building.hpp"
#include "src/util/rng.hpp"

namespace bips::core {
namespace {

// corridor(6): room centres at x = 0..50, so columns(building, 3) yields
// zone 0 = {0,1}, zone 1 = {2,3}, zone 2 = {4,5}.
mobility::Building six_rooms() { return mobility::Building::corridor(6); }

std::uint64_t dev(int i) { return 0xC0FF'EE00'0000ull + i; }

TEST(ZonePartitionMap, ColumnsSplitTheCorridorEvenly) {
  const auto b = six_rooms();
  const ZonePartition zones = ZonePartition::columns(b, 3);
  ASSERT_EQ(zones.zone_count(), 3u);
  EXPECT_EQ(zones.zone_of(0), 0u);
  EXPECT_EQ(zones.zone_of(1), 0u);
  EXPECT_EQ(zones.zone_of(2), 1u);
  EXPECT_EQ(zones.zone_of(3), 1u);
  EXPECT_EQ(zones.zone_of(4), 2u);
  EXPECT_EQ(zones.zone_of(5), 2u);
}

TEST(ZonePartitionMap, ZoneCountClampsToDistinctColumns) {
  // Asking for more zones than there are distinct room-centre columns
  // degenerates to one zone per column, never an empty band.
  const auto b = six_rooms();
  const ZonePartition zones = ZonePartition::columns(b, 10);
  ASSERT_EQ(zones.zone_count(), 6u);
  ASSERT_EQ(zones.seams().size(), 5u);
  for (StationId s = 0; s < 6; ++s) {
    EXPECT_EQ(zones.zone_of(s), static_cast<std::size_t>(s));
  }
}

TEST(ZonePartitionMap, SingleColumnBuildingCannotBeSplit) {
  // grid(4, 1): four rooms stacked in one column -- one distinct x, so any
  // requested zone count collapses to the degenerate single-zone map.
  const auto b = mobility::Building::grid(4, 1);
  const ZonePartition zones = ZonePartition::columns(b, 4);
  EXPECT_EQ(zones.zone_count(), 1u);
  EXPECT_TRUE(zones.seams().empty());
  for (StationId s = 0; s < 4; ++s) EXPECT_EQ(zones.zone_of(s), 0u);
  EXPECT_EQ(zones.zone_of_x(-1e9), 0u);
  EXPECT_EQ(zones.zone_of_x(1e9), 0u);
}

TEST(ZonePartitionMap, ZoneZeroOwnsTheServerAndOutOfMapIds) {
  // The central server is not a room: its station id is outside the map
  // and its LAN endpoint sits at the origin. Both conventions resolve to
  // zone 0 -- the zone whose worker hosts the server in the sharded
  // harness -- and everything left of the first seam does too.
  const ZonePartition zones = ZonePartition::columns(six_rooms(), 3);
  EXPECT_EQ(zones.zone_of(static_cast<StationId>(99)), 0u);
  EXPECT_EQ(zones.zone_of_x(-100.0), 0u);
  EXPECT_EQ(zones.zone_of_x(0.0), 0u);
  // A seam belongs to the band on its right (upper_bound semantics).
  ASSERT_EQ(zones.seams().size(), 2u);
  EXPECT_EQ(zones.zone_of_x(zones.seams()[0]), 1u);
  EXPECT_EQ(zones.zone_of_x(zones.seams()[1]), 2u);
}

// The tentpole invariant in miniature: an arbitrary interleaved op stream
// (logins, logouts, presence/absence deltas with conflicting RSSI claims,
// duplicates) produces bit-identical observable state on one database and
// on three shards -- merged history rows (including seq), every counter,
// every lookup, and the FIFO eviction order under a tight history bound.
TEST(PartitionedLocationService, OpStreamMatchesSingleDatabaseExactly) {
  const auto building = six_rooms();
  constexpr std::size_t kHistoryLimit = 16;  // tight: forces evictions

  LocationDatabase single(kHistoryLimit);
  PartitionedLocationService svc(kHistoryLimit, nullptr,
                                 ZonePartition::columns(building, 3));
  ASSERT_EQ(svc.shard_count(), 3u);

  constexpr int kDevices = 5;
  // Half the devices get sessions; logins must agree too.
  for (int i = 0; i < kDevices; i += 2) {
    const std::string uid = "u" + std::to_string(i);
    EXPECT_EQ(single.login(uid, dev(i), SimTime(i)),
              svc.login(uid, dev(i), SimTime(i)));
  }

  Rng rng(2003);
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t addr = dev(static_cast<int>(rng.next_u64() % kDevices));
    const StationId station = static_cast<StationId>(rng.next_u64() % 6);
    const SimTime at(static_cast<std::int64_t>(op) * 1'000'000'000 +
                     static_cast<std::int64_t>(rng.next_u64() % 1'000));
    const double rssi = -40.0 - static_cast<double>(rng.next_u64() % 40);
    const std::uint64_t coin = rng.next_u64() % 10;
    if (coin < 7) {
      const bool a = single.set_present(addr, station, at, rssi);
      const auto b = svc.apply_present(addr, station, at, rssi);
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a, *b) << "op " << op;
    } else {
      const bool a = single.set_absent(addr, station, at);
      const auto b = svc.apply_absent(addr, station, at);
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a, *b) << "op " << op;
    }

    // Lookups agree after every op.
    EXPECT_EQ(single.piconet_of(addr), svc.piconet_of(addr));
    EXPECT_EQ(single.present_since(addr), svc.present_since(addr));
  }

  // Whole-history equivalence: the k-way seq merge reproduces the single
  // database's surviving rows bit for bit.
  const auto merged = svc.history();
  ASSERT_EQ(merged.size(), single.history().size());
  EXPECT_LE(merged.size(), kHistoryLimit);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, single.history()[i].seq);
    EXPECT_EQ(merged[i].bd_addr, single.history()[i].bd_addr);
    EXPECT_EQ(merged[i].station, single.history()[i].station);
    EXPECT_EQ(merged[i].present, single.history()[i].present);
    EXPECT_EQ(merged[i].at, single.history()[i].at);
  }

  // Aggregate counters are the single-DB counters.
  const auto a = single.stats();
  const auto b = svc.stats();
  EXPECT_EQ(a.presence_updates, b.presence_updates);
  EXPECT_EQ(a.redundant_updates, b.redundant_updates);
  EXPECT_EQ(a.conflicts_suppressed, b.conflicts_suppressed);
  EXPECT_EQ(a.logins, b.logins);

  // Temporal lookups agree at instants across the whole run (including
  // ones whose answers were evicted -- both sides must say "don't know").
  for (int s = 0; s < 400; s += 17) {
    const SimTime at(static_cast<std::int64_t>(s) * 1'000'000'000);
    for (int i = 0; i < kDevices; ++i) {
      const auto fa = single.where_was(dev(i), at);
      const auto fb = svc.where_was(dev(i), at);
      ASSERT_EQ(fa.has_value(), fb.has_value());
      if (fa) {
        EXPECT_EQ(fa->station, fb->station);
        EXPECT_EQ(fa->since, fb->since);
      }
    }
  }
}

TEST(PartitionedLocationService, SeamCrossingRehomesSessionAndPresence) {
  const auto building = six_rooms();
  obs::MetricsRegistry reg;
  PartitionedLocationService svc(64, &reg,
                                 ZonePartition::columns(building, 3));

  ASSERT_TRUE(svc.login("alice", dev(1), SimTime(0)));
  ASSERT_TRUE(svc.apply_present(dev(1), 0, SimTime(1)).value());
  // Record (session + presence) homed on zone 0.
  EXPECT_EQ(svc.shard_db(0).session_count(), 1u);
  EXPECT_EQ(svc.shard_db(0).piconet_of(dev(1)), 0u);
  EXPECT_FALSE(svc.shard_db(2).piconet_of(dev(1)).has_value());

  // The walker reappears across the far seam: the whole record moves.
  ASSERT_TRUE(
      svc.apply_present(dev(1), 5, SimTime(10'000'000'000)).value());
  EXPECT_EQ(svc.shard_db(0).session_count(), 0u);
  EXPECT_FALSE(svc.shard_db(0).piconet_of(dev(1)).has_value());
  EXPECT_EQ(svc.shard_db(2).session_count(), 1u);
  EXPECT_EQ(svc.shard_db(2).piconet_of(dev(1)), 5u);
  EXPECT_GE(reg.counter_value("svc.shard_handoffs"), 1u);

  // The service-level view never noticed the move.
  EXPECT_TRUE(svc.logged_in("alice"));
  EXPECT_EQ(svc.piconet_of(dev(1)), 5u);
  // Re-homing writes no history row beyond the two genuine transitions.
  EXPECT_EQ(svc.history_size(), 2u);
}

TEST(PartitionedLocationService, SeamStraddlingPingPongRehomesEachTime) {
  // A device camped right on a seam flaps between the border stations of
  // zones 0 and 1. Every flap must move the whole record (session included)
  // to the new owner -- no stale copy left behind, no double-count -- and
  // each genuine transition still lands exactly one history row.
  const auto building = six_rooms();
  obs::MetricsRegistry reg;
  PartitionedLocationService svc(64, &reg,
                                 ZonePartition::columns(building, 3));
  ASSERT_TRUE(svc.login("flapper", dev(3), SimTime(0)));

  std::int64_t t = 1;
  for (int flip = 0; flip < 6; ++flip) {
    const StationId s = (flip % 2 == 0) ? 1 : 2;  // zone 0 <-> zone 1
    ASSERT_TRUE(
        svc.apply_present(dev(3), s, SimTime(t++ * 1'000'000'000)).value())
        << "flip " << flip;
    const std::size_t owner = (flip % 2 == 0) ? 0u : 1u;
    const std::size_t other = 1u - owner;
    EXPECT_EQ(svc.shard_db(owner).session_count(), 1u) << "flip " << flip;
    EXPECT_EQ(svc.shard_db(other).session_count(), 0u) << "flip " << flip;
    EXPECT_EQ(svc.shard_db(owner).piconet_of(dev(3)), s) << "flip " << flip;
    EXPECT_FALSE(svc.shard_db(other).piconet_of(dev(3)).has_value());
    EXPECT_TRUE(svc.logged_in("flapper"));
    EXPECT_EQ(svc.piconet_of(dev(3)), s);
  }
  // Five of the six flips crossed the seam (the first one homed the
  // record); every flip was a genuine station change, so six rows.
  EXPECT_EQ(reg.counter_value("svc.shard_handoffs"), 5u);
  EXPECT_EQ(svc.history_size(), 6u);
}

TEST(PartitionedLocationService, CrashDegradesOnlyItsOwnZone) {
  const auto building = six_rooms();
  PartitionedLocationService svc(64, nullptr,
                                 ZonePartition::columns(building, 3));

  ASSERT_TRUE(svc.login("a", dev(0), SimTime(0)));
  ASSERT_TRUE(svc.login("b", dev(1), SimTime(0)));
  ASSERT_TRUE(svc.login("c", dev(2), SimTime(0)));
  ASSERT_TRUE(svc.apply_present(dev(0), 0, SimTime(1)).value());  // zone 0
  ASSERT_TRUE(svc.apply_present(dev(1), 2, SimTime(1)).value());  // zone 1
  ASSERT_TRUE(svc.apply_present(dev(2), 4, SimTime(1)).value());  // zone 2

  svc.crash_shard(1);
  EXPECT_TRUE(svc.shard_crashed(1));
  EXPECT_FALSE(svc.zone_available(2));
  EXPECT_TRUE(svc.zone_available(0));

  // Zone 1's slice is gone; the neighbours are untouched.
  EXPECT_EQ(svc.piconet_of(dev(0)), 0u);
  EXPECT_FALSE(svc.piconet_of(dev(1)).has_value());
  EXPECT_FALSE(svc.logged_in("b"));
  EXPECT_EQ(svc.piconet_of(dev(2)), 4u);
  EXPECT_TRUE(svc.logged_in("a"));
  EXPECT_TRUE(svc.logged_in("c"));

  // Deltas *reported by* the dead zone's stations are refused (nullopt: the
  // caller must not ack), while healthy-zone ingest keeps flowing.
  EXPECT_FALSE(svc.apply_present(dev(1), 3, SimTime(2)).has_value());
  EXPECT_TRUE(svc.apply_present(dev(0), 1, SimTime(2)).has_value());

  // Restart brings the zone back empty with a bumped epoch.
  svc.restart_shard(1);
  EXPECT_FALSE(svc.shard_crashed(1));
  EXPECT_EQ(svc.shard_epoch(1), 2u);
  EXPECT_TRUE(svc.apply_present(dev(1), 2, SimTime(3)).value());
  EXPECT_EQ(svc.piconet_of(dev(1)), 2u);
}

// A runner-up claim naming a crashed zone's station must never be promoted
// -- that would resurrect presence into a dead shard.
TEST(PartitionedLocationService, CrashRetiresRunnerUpClaimsEverywhere) {
  const auto building = six_rooms();
  PartitionedLocationService svc(64, nullptr,
                                 ZonePartition::columns(building, 3));

  // Station 1 (zone 0) wins the overlap arbitration against station 2
  // (zone 1): the losing claim is remembered as the runner-up on a record
  // homed in zone 0.
  ASSERT_TRUE(svc.apply_present(dev(7), 1, SimTime(0), -40.0).value());
  EXPECT_FALSE(svc.apply_present(dev(7), 2, SimTime(1), -60.0).value());
  EXPECT_EQ(svc.piconet_of(dev(7)), 1u);

  svc.crash_shard(1);

  // The winner reports absence. Without cross-shard claim retirement the
  // runner-up (station 2, zone 1) would be promoted into the dead shard;
  // instead the device simply goes absent.
  svc.apply_absent(dev(7), 1, SimTime(2));
  EXPECT_FALSE(svc.piconet_of(dev(7)).has_value());
  EXPECT_FALSE(svc.shard_db(1).piconet_of(dev(7)).has_value());
}

// clear() is the whole-server crash: every zone's slice dies at once, every
// epoch bumps, and the service keeps working afterwards.
TEST(PartitionedLocationService, ClearWipesEveryShard) {
  const auto building = six_rooms();
  PartitionedLocationService svc(64, nullptr,
                                 ZonePartition::columns(building, 3));
  ASSERT_TRUE(svc.login("a", dev(0), SimTime(0)));
  ASSERT_TRUE(svc.apply_present(dev(0), 4, SimTime(1)).value());

  svc.clear();
  EXPECT_EQ(svc.session_count(), 0u);
  EXPECT_FALSE(svc.piconet_of(dev(0)).has_value());
  EXPECT_EQ(svc.history_size(), 0u);
  for (std::size_t k = 0; k < svc.shard_count(); ++k) {
    EXPECT_FALSE(svc.shard_crashed(k));
    EXPECT_EQ(svc.shard_epoch(k), 2u);
  }
  EXPECT_TRUE(svc.login("a", dev(0), SimTime(2)));
}

}  // namespace
}  // namespace bips::core
