// Fault-injection tests: server crash-recovery with epoch resync, seeded
// chaos runs graded by the InvariantChecker, and partition healing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fault/invariants.hpp"
#include "src/fault/plan.hpp"

namespace bips::fault {
namespace {

using core::BipsSimulation;
using core::SimulationConfig;
using core::StationId;

/// Deployment tuned for fault drills: fast inquiry cycles, users standing
/// still, and the server's failure detector armed.
SimulationConfig drill_config() {
  SimulationConfig cfg;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(100'000);
  cfg.mobility.pause_max = Duration::seconds(200'000);
  cfg.server.station_timeout = Duration::seconds(8);
  cfg.server.sweep_period = Duration::seconds(2);
  return cfg;
}

std::size_t located_count(BipsSimulation& sim) {
  std::size_t n = 0;
  for (const std::string& u : sim.userids()) {
    if (sim.db_room(u)) ++n;
  }
  return n;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) out += "  " + s + "\n";
  return out;
}

TEST(FaultPlan, ChaosIsDeterministicAndHeals) {
  const FaultPlan a = FaultPlan::chaos(7, 4);
  const FaultPlan b = FaultPlan::chaos(7, 4);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), FaultPlan::chaos(8, 4).describe());

  // Every crash has a matching restart and every window ends by heal_time.
  int crashes = 0, restarts = 0;
  for (const FaultEvent& e : a.events()) {
    EXPECT_LE(e.at, a.heal_time());
    if (e.kind == FaultEvent::Kind::kStationCrash ||
        e.kind == FaultEvent::Kind::kServerCrash) {
      ++crashes;
    }
    if (e.kind == FaultEvent::Kind::kStationRestart ||
        e.kind == FaultEvent::Kind::kServerRestart) {
      ++restarts;
    }
  }
  EXPECT_EQ(crashes, restarts);
}

TEST(FaultPlan, ShardFaultsAreFirstClassEvents) {
  // crash_shard / restart_shard ride the same plan machinery as the other
  // kinds: ordered by time, described for humans, and replayable on the
  // monolithic harness (the sharded split is exercised in test_parallel).
  FaultPlan plan;
  plan.crash_shard(Duration::seconds(40), 2)
      .restart_shard(Duration::seconds(55), 2);
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::kShardCrash);
  EXPECT_EQ(plan.events()[0].zone, 2u);
  EXPECT_EQ(plan.events()[1].kind, FaultEvent::Kind::kShardRestart);
  EXPECT_EQ(plan.heal_time(), Duration::seconds(55));
  const std::string text = plan.describe();
  EXPECT_NE(text.find("location shard 2 crashes"), std::string::npos) << text;
  EXPECT_NE(text.find("location shard 2 restarts"), std::string::npos)
      << text;
}

// The ISSUE acceptance drill: crash the server mid-run under 5% LAN loss,
// leave it down for 30 s, restart -- the located-user count must reconverge
// within 10 simulated seconds via the SyncSnapshot round, not via hours of
// organic re-sightings, and the sessions must survive through the
// workstations' attested hints (the handhelds never notice the outage).
TEST(FaultRecovery, ServerCrashResyncUnderLoss) {
  SimulationConfig cfg = drill_config();
  cfg.lan.loss = 0.05;
  BipsSimulation sim(mobility::Building::corridor(3), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  sim.add_user("Bob", "bob", "pw", 1);
  sim.add_user("Carol", "carol", "pw", 2);

  sim.run_for(Duration::seconds(80));
  ASSERT_EQ(located_count(sim), 3u) << "deployment failed to enroll everyone";
  ASSERT_TRUE(sim.client("alice")->logged_in());
  ASSERT_EQ(sim.server().epoch(), 1u);

  sim.server().crash();
  sim.run_for(Duration::seconds(30));
  EXPECT_EQ(located_count(sim), 0u);  // the DB died with the server

  sim.server().restart();
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(sim.server().epoch(), 2u);
  EXPECT_EQ(located_count(sim), 3u) << "resync did not reconverge in 10 s";
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.syncs_received"),
            3u);
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.presences_restored"),
            3u);

  // Sessions came back from the snapshots' hints: a name query works again
  // even though no handheld re-logged-in.
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.sessions_restored"),
            3u);
  EXPECT_EQ(sim.server()
                .query(core::BipsServer::Query::where_is("", "Alice"))
                .status,
            proto::QueryStatus::kOk);
}

// Partition one workstation from everything else: the failure detector must
// expire its users (a dead-to-us station cannot send absences), and the
// heal must relocate them via the unicast resync round.
TEST(FaultRecovery, PartitionAndHealRelocatesUsers) {
  BipsSimulation sim(mobility::Building::corridor(2), drill_config());
  sim.add_user("Alice", "alice", "pw", 1);  // served by station 1

  FaultPlan plan;
  plan.partition_stations(Duration::seconds(60), Duration::seconds(30), {1});
  plan.apply(sim);

  sim.run_for(Duration::seconds(60));
  ASSERT_EQ(sim.db_room("alice"), 1u);

  // Inside the partition, past the detector bound: alice is expired.
  sim.run_for(Duration::seconds(20));
  EXPECT_EQ(sim.db_room("alice"), std::nullopt);
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.stations_expired"),
            1u);

  // Heal at t=90; the station's next heartbeat triggers a unicast
  // SyncRequest because nothing else would ever repopulate the records
  // (alice never moved, so station 1 has no new delta to send).
  sim.run_for(Duration::seconds(20));
  EXPECT_EQ(sim.db_room("alice"), 1u);
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.resyncs_requested"),
            1u);
  EXPECT_GE(sim.simulator().obs().metrics.counter_value(
                "server.syncs_received"),
            1u);
}

// Seeded chaos: random station/server crashes, a partition and a loss burst
// per run. After the plan heals, every invariant must hold -- across five
// different seeds.
TEST(FaultRecovery, ChaosSeedsKeepInvariants) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimulationConfig cfg = drill_config();
    cfg.seed = seed;
    cfg.lan.loss = 0.01;  // a little background loss on top of the faults
    BipsSimulation sim(mobility::Building::corridor(3), cfg);
    sim.add_user("Alice", "alice", "pw", 0);
    sim.add_user("Bob", "bob", "pw", 1);
    sim.add_user("Carol", "carol", "pw", 2);

    const FaultPlan plan = FaultPlan::chaos(seed, sim.workstation_count());
    plan.apply(sim);

    InvariantChecker checker(sim);
    checker.start();

    // Boot + faulted window + recovery bound past the last heal.
    sim.run_for(plan.heal_time() + Duration::seconds(40));
    checker.check_converged();

    EXPECT_TRUE(checker.ok())
        << "seed " << seed << " violated:\n"
        << join(checker.violations()) << "plan:\n"
        << plan.describe();
    EXPECT_GT(checker.samples(), 0u);
  }
}

// ---- partitioned location service under faults ----------------------------

// Crash one location shard of a three-zone service: only its own zone
// degrades. The neighbours' whereis answers stay correct through the whole
// crash/resync cycle, per-zone InvariantCheckers on the healthy zones stay
// green, and the zone-scoped unicast SyncRequest repairs the crashed slice
// after restart without touching the others.
TEST(ShardFault, CrashedShardDegradesOnlyItsZone) {
  SimulationConfig cfg = drill_config();
  cfg.server.zones = 3;  // one location shard per corridor room
  BipsSimulation sim(mobility::Building::corridor(3), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  sim.add_user("Bob", "bob", "pw", 1);
  sim.add_user("Carol", "carol", "pw", 2);

  auto& server = sim.server();
  const auto& svc = server.locations();
  ASSERT_EQ(svc.shard_count(), 3u);

  // Per-zone graders for the zones that must stay healthy throughout.
  auto zone_checker = [&](std::size_t zone) {
    InvariantChecker::Config icfg;
    icfg.station_filter = [&svc, zone](StationId s) {
      return svc.zone_of(s) == zone;
    };
    return std::make_unique<InvariantChecker>(sim, std::move(icfg));
  };
  auto check0 = zone_checker(0);
  auto check2 = zone_checker(2);
  check0->start();
  check2->start();

  sim.run_for(Duration::seconds(80));
  ASSERT_EQ(located_count(sim), 3u) << "deployment failed to enroll everyone";

  using Query = core::BipsServer::Query;
  auto where = [&](const char* name) {
    return server.query(Query::where_is("", name));
  };
  ASSERT_EQ(where("Bob").status, proto::QueryStatus::kOk);

  // Zone 1's shard dies. Its slice is gone; its stations' deltas are
  // refused (unacked -- they sit in the workstation's retransmit queue).
  server.crash_shard(1);
  sim.run_for(Duration::seconds(10));

  // Bob's session died with the shard slice (exactly what a whole-server
  // crash does to everyone), so the lookup fails at session resolution.
  EXPECT_EQ(where("Bob").status, proto::QueryStatus::kNotLoggedIn);
  EXPECT_EQ(server.query(Query::who_is_in("", "room-1")).status,
            proto::QueryStatus::kZoneUnavailable);
  // The neighbours never noticed.
  const auto alice = where("Alice");
  ASSERT_EQ(alice.status, proto::QueryStatus::kOk);
  EXPECT_EQ(alice.room, "room-0");
  const auto carol = where("Carol");
  ASSERT_EQ(carol.status, proto::QueryStatus::kOk);
  EXPECT_EQ(carol.room, "room-2");
  EXPECT_EQ(server.query(Query::who_is_in("", "room-0")).status,
            proto::QueryStatus::kOk);

  // Restart: the server unicasts SyncRequest to zone 1's stations only;
  // the snapshot (plus the retransmit queue) repairs the slice.
  server.restart_shard(1);
  sim.run_for(Duration::seconds(20));
  const auto bob = where("Bob");
  ASSERT_EQ(bob.status, proto::QueryStatus::kOk);
  EXPECT_EQ(bob.room, "room-1");
  EXPECT_EQ(located_count(sim), 3u);

  // The healthy zones' graders sampled through the whole drill and stayed
  // green; the end-of-run convergence check passes for them too.
  check0->check_converged();
  check2->check_converged();
  EXPECT_TRUE(check0->ok()) << join(check0->violations());
  EXPECT_TRUE(check2->ok()) << join(check2->violations());
  EXPECT_GT(check0->samples(), 0u);
}

// Seeded chaos against the partitioned service (three location shards),
// graded per zone: every zone's InvariantChecker must be green once the
// plan heals -- shard routing, seam re-homing and batched retransmits must
// not weaken any recovery invariant.
TEST(ShardFault, ChaosStaysGreenPerZoneWithShardedService) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    SimulationConfig cfg = drill_config();
    cfg.seed = seed;
    cfg.lan.loss = 0.01;
    cfg.server.zones = 3;
    BipsSimulation sim(mobility::Building::corridor(3), cfg);
    sim.add_user("Alice", "alice", "pw", 0);
    sim.add_user("Bob", "bob", "pw", 1);
    sim.add_user("Carol", "carol", "pw", 2);

    const FaultPlan plan = FaultPlan::chaos(seed, sim.workstation_count());
    plan.apply(sim);

    const auto& svc = sim.server().locations();
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    for (std::size_t zone = 0; zone < svc.shard_count(); ++zone) {
      InvariantChecker::Config icfg;
      icfg.station_filter = [&svc, zone](StationId s) {
        return svc.zone_of(s) == zone;
      };
      checkers.push_back(
          std::make_unique<InvariantChecker>(sim, std::move(icfg)));
      checkers.back()->start();
    }

    sim.run_for(plan.heal_time() + Duration::seconds(40));
    for (std::size_t zone = 0; zone < checkers.size(); ++zone) {
      checkers[zone]->check_converged();
      EXPECT_TRUE(checkers[zone]->ok())
          << "seed " << seed << " zone " << zone << " violated:\n"
          << join(checkers[zone]->violations()) << "plan:\n"
          << plan.describe();
      EXPECT_GT(checkers[zone]->samples(), 0u);
    }
  }
}

}  // namespace
}  // namespace bips::fault
