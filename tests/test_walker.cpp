// Unit tests for the waypoint walker.
#include <gtest/gtest.h>

#include "src/mobility/walker.hpp"

namespace bips::mobility {
namespace {

struct WalkerRig : ::testing::Test {
  sim::Simulator sim;
  void run_to(double s) { sim.run_until(SimTime(Duration::from_seconds(s).ns())); }
};

TEST_F(WalkerRig, StationaryUntilWalked) {
  Walker w(sim, {5, 5});
  EXPECT_EQ(w.position(), (Vec2{5, 5}));
  EXPECT_FALSE(w.moving());
  run_to(10);
  EXPECT_EQ(w.position(), (Vec2{5, 5}));
}

TEST_F(WalkerRig, InterpolatesAlongSegment) {
  Walker w(sim, {0, 0});
  w.walk({{10, 0}}, 1.0);  // 10 m at 1 m/s
  EXPECT_TRUE(w.moving());
  run_to(4);
  EXPECT_NEAR(w.position().x, 4.0, 1e-9);
  EXPECT_NEAR(w.position().y, 0.0, 1e-9);
  run_to(10);
  EXPECT_NEAR(w.position().x, 10.0, 1e-9);
  EXPECT_FALSE(w.moving());
}

TEST_F(WalkerRig, MultiSegmentRoute) {
  Walker w(sim, {0, 0});
  w.walk({{3, 0}, {3, 4}}, 1.0);  // 3 m + 4 m
  run_to(3.0);
  EXPECT_NEAR(w.position().x, 3.0, 1e-9);
  run_to(5.0);
  EXPECT_NEAR(w.position().x, 3.0, 1e-9);
  EXPECT_NEAR(w.position().y, 2.0, 1e-9);
  run_to(7.0);
  EXPECT_NEAR(w.position().y, 4.0, 1e-9);
  EXPECT_FALSE(w.moving());
}

TEST_F(WalkerRig, ArrivalCallbackFiresOnceAtDestination) {
  Walker w(sim, {0, 0});
  int arrivals = 0;
  std::int64_t at_ns = 0;
  w.walk({{5, 0}}, 2.0, [&] {
    ++arrivals;
    at_ns = sim.now().ns();
  });
  run_to(10);
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(at_ns, Duration::from_seconds(2.5).ns());
}

TEST_F(WalkerRig, ArrivalCallbackMayStartNextWalk) {
  Walker w(sim, {0, 0});
  bool second_done = false;
  w.walk({{1, 0}}, 1.0, [&] {
    w.walk({{1, 1}}, 1.0, [&] { second_done = true; });
  });
  run_to(5);
  EXPECT_TRUE(second_done);
  EXPECT_NEAR(w.position().y, 1.0, 1e-9);
}

TEST_F(WalkerRig, StopFreezesMidSegment) {
  Walker w(sim, {0, 0});
  w.walk({{10, 0}}, 1.0);
  run_to(4);
  w.stop();
  EXPECT_FALSE(w.moving());
  const Vec2 frozen = w.position();
  EXPECT_NEAR(frozen.x, 4.0, 1e-9);
  run_to(20);
  EXPECT_EQ(w.position(), frozen);
}

TEST_F(WalkerRig, WalkReplacesWalkFromCurrentPosition) {
  Walker w(sim, {0, 0});
  w.walk({{10, 0}}, 1.0);
  run_to(4);
  w.walk({{4, 3}}, 1.0);  // retarget from (4, 0): 3 m away
  int arrivals = 0;
  run_to(6.9);
  EXPECT_TRUE(w.moving());
  run_to(7.1);
  EXPECT_FALSE(w.moving());
  EXPECT_NEAR(w.position().y, 3.0, 1e-9);
  (void)arrivals;
}

TEST_F(WalkerRig, EmptyRouteArrivesImmediately) {
  Walker w(sim, {1, 1});
  bool arrived = false;
  w.walk({}, 1.0, [&] { arrived = true; });
  EXPECT_TRUE(arrived);
  EXPECT_FALSE(w.moving());
}

TEST_F(WalkerRig, ZeroLengthSegmentHandled) {
  Walker w(sim, {2, 2});
  bool arrived = false;
  w.walk({{2, 2}}, 1.0, [&] { arrived = true; });
  run_to(1);
  EXPECT_TRUE(arrived);
}

TEST_F(WalkerRig, OdometerAccumulatesAcrossWalks) {
  Walker w(sim, {0, 0});
  w.walk({{3, 0}}, 1.0);
  run_to(3);
  EXPECT_NEAR(w.odometer(), 3.0, 1e-9);
  w.walk({{3, 4}}, 2.0);
  run_to(5);  // the 4 m leg takes 2 s at 2 m/s
  EXPECT_NEAR(w.odometer(), 7.0, 1e-9);
  // Mid-segment odometer also counts partial distance.
  w.walk({{13, 4}}, 1.0);
  run_to(7);
  EXPECT_NEAR(w.odometer(), 9.0, 1e-9);
}

TEST_F(WalkerRig, NonPositiveSpeedDies) {
  Walker w(sim, {0, 0});
  EXPECT_DEATH(w.walk({{1, 0}}, 0.0), "speed");
}

}  // namespace
}  // namespace bips::mobility
