// Tests for registry persistence (the off-line registration artifact).
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/registry_io.hpp"

namespace bips::core {
namespace {

UserRegistry sample() {
  UserRegistry reg;
  EXPECT_TRUE(reg.register_user("alice", "Alice A.", "pw-a", 0xAAA));
  EXPECT_TRUE(reg.register_user("bob", "Prof. Bob Rossi", "pw-b", 0xBBB));
  EXPECT_TRUE(reg.register_user("carol", "Carol", "pw-c", 0xCCC));
  reg.set_locatable_by_anyone("bob", false);
  reg.allow_requester("bob", "alice");
  reg.allow_requester("bob", "carol");
  reg.set_may_query("carol", false);
  return reg;
}

std::string saved(const UserRegistry& reg) {
  std::ostringstream os;
  save_registry(reg, os);
  return os.str();
}

TEST(RegistryIo, RoundTripPreservesEverything) {
  const UserRegistry original = sample();
  std::istringstream in(saved(original));
  std::string error;
  const auto loaded = load_registry(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->size(), 3u);
  // Credentials still verify (hashes survived, not plaintext).
  EXPECT_TRUE(loaded->authenticate("alice", "pw-a"));
  EXPECT_TRUE(loaded->authenticate("bob", "pw-b"));
  EXPECT_FALSE(loaded->authenticate("bob", "pw-a"));
  // Names with spaces survive the tab-separated format.
  ASSERT_NE(loaded->by_name("Prof. Bob Rossi"), nullptr);
  // Access rights survive.
  const auto* alice = loaded->by_userid("alice");
  const auto* bob = loaded->by_userid("bob");
  const auto* carol = loaded->by_userid("carol");
  EXPECT_TRUE(loaded->can_locate(*alice, *bob));    // allow-listed
  EXPECT_FALSE(loaded->can_locate(*carol, *bob));   // may_query off
  EXPECT_FALSE(bob->locatable_by_anyone);
  EXPECT_FALSE(carol->may_query);
}

TEST(RegistryIo, OutputIsByteStable) {
  // Deterministic serialization: same registry -> identical bytes, and a
  // reloaded registry re-saves to the same bytes.
  const std::string a = saved(sample());
  const std::string b = saved(sample());
  EXPECT_EQ(a, b);
  std::istringstream in(a);
  const auto loaded = load_registry(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(saved(*loaded), a);
}

TEST(RegistryIo, PlaintextNeverStored) {
  const std::string text = saved(sample());
  EXPECT_EQ(text.find("pw-a"), std::string::npos);
  EXPECT_EQ(text.find("pw-b"), std::string::npos);
}

TEST(RegistryIo, EmptyRegistryRoundTrips) {
  UserRegistry reg;
  std::istringstream in(saved(reg));
  const auto loaded = load_registry(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(RegistryIo, RejectsMissingHeader) {
  std::istringstream in("user\talice\tAlice\t0\t0\t1\t1\t\n");
  std::string error;
  EXPECT_FALSE(load_registry(in, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(RegistryIo, RejectsMalformedRecords) {
  const char* bad[] = {
      "bips-registry v1\nuser\talice\n",                // too few fields
      "bips-registry v1\nuser\ta\tA\tzz\t00\t1\t1\t\n", // bad hex
      "bips-registry v1\nnope\ta\tA\t"
      "0000000000000000\t0000000000000000\t1\t1\t\n",   // wrong tag
      "bips-registry v1\nuser\ta\tA\t"
      "0000000000000000\t0000000000000000\t2\t1\t\n",   // bad flag
      "bips-registry v1\nuser\ta\tA\t"
      "0000000000000000\t0000000000000000\t1\t1\t,\n",  // empty requester
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(load_registry(in, &error).has_value()) << text;
    EXPECT_NE(error.find("line"), std::string::npos);
  }
}

TEST(RegistryIo, RejectsDuplicateUsers) {
  UserRegistry reg;
  reg.register_user("alice", "Alice", "pw", 1);
  std::string text = saved(reg);
  text += text.substr(text.find("user\t"));  // duplicate the record
  std::istringstream in(text);
  std::string error;
  EXPECT_FALSE(load_registry(in, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(RegistryIo, BlankLinesTolerated) {
  std::string text = saved(sample());
  text += "\n\n";
  std::istringstream in(text);
  EXPECT_TRUE(load_registry(in).has_value());
}

}  // namespace
}  // namespace bips::core
