// Unit tests for the BipsSimulation harness API itself (the deployment
// builder): wiring, accessors, custom mobility, and guard rails.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "src/core/simulation.hpp"

namespace bips::core {
namespace {

SimulationConfig still_config() {
  SimulationConfig cfg;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(100'000);
  cfg.mobility.pause_max = Duration::seconds(200'000);
  return cfg;
}

TEST(Simulation, BuildsOneWorkstationPerRoom) {
  BipsSimulation sim(mobility::Building::department(), still_config());
  EXPECT_EQ(sim.workstation_count(), 10u);
  EXPECT_EQ(sim.user_count(), 0u);
  for (StationId s = 0; s < 10; ++s) {
    EXPECT_EQ(sim.workstation(s).station(), s);
  }
}

TEST(Simulation, AccessorsForUnknownUsersAreNull) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  EXPECT_EQ(sim.client("ghost"), nullptr);
  EXPECT_EQ(sim.agent("ghost"), nullptr);
}

TEST(Simulation, DuplicateUserDies) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  sim.add_user("Alice", "alice", "pw", 0);
  EXPECT_DEATH(sim.add_user("Alice", "alice2", "pw", 0), "duplicate");
  EXPECT_DEATH(sim.add_user("Alice2", "alice", "pw", 0), "duplicate");
}

TEST(Simulation, AddUserAfterStartDies) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  sim.run_for(Duration::seconds(1));
  EXPECT_DEATH(sim.add_user("Late", "late", "pw", 0), "before starting");
}

TEST(Simulation, DisconnectedBuildingDies) {
  mobility::Building b;
  b.add_room("a", {0, 0});
  b.add_room("island", {100, 0});
  EXPECT_DEATH(BipsSimulation(std::move(b), still_config()), "connected");
}

TEST(Simulation, UsersKeepStableAddressesAsMoreAreAdded) {
  // Regression guard: position-provider closures hold pointers into the
  // user container; adding users must not invalidate them.
  BipsSimulation sim(mobility::Building::corridor(2), still_config());
  sim.add_user("U0", "u0", "pw", 0);
  Vec2 fixed{3, 0};
  sim.set_position_provider("u0", [&fixed] { return fixed; });
  const Vec2 before = sim.client("u0")->device().position();
  for (int i = 1; i < 40; ++i) {
    sim.add_user("U" + std::to_string(i), "u" + std::to_string(i), "pw", 1);
  }
  EXPECT_EQ(sim.client("u0")->device().position(), before);
  fixed = Vec2{7, 0};
  EXPECT_EQ(sim.client("u0")->device().position(), (Vec2{7, 0}));
}

TEST(Simulation, CustomProviderDrivesTruthAndMetrics) {
  BipsSimulation sim(mobility::Building::corridor(2), still_config());
  sim.add_user("Alice", "alice", "pw", 0);
  Vec2 pos = sim.building().room(1).center;  // contradicts the start room
  sim.set_position_provider("alice", [&pos] { return pos; });
  EXPECT_EQ(sim.true_room("alice"), 1u);
  sim.run_for(Duration::seconds(40));
  // The handheld is physically in room 1, so that is where it enrolls.
  EXPECT_EQ(sim.db_room("alice"), 1u);
}

TEST(Simulation, RunForAdvancesExactly) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::from_seconds(12.5));
  EXPECT_EQ(sim.simulator().now().ns(), Duration::from_seconds(12.5).ns());
  sim.run_for(Duration::from_seconds(0.5));
  EXPECT_EQ(sim.simulator().now().ns(), Duration::seconds(13).ns());
}

TEST(Simulation, TrackingSamplerCountsOnlyLoggedInUsers) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.enable_tracking_metrics(Duration::seconds(1));
  sim.run_for(Duration::seconds(5));
  // Too early for the login to have completed; no samples yet.
  const auto early = sim.tracking().samples;
  sim.run_for(Duration::seconds(60));
  EXPECT_GT(sim.tracking().samples, early);
  EXPECT_LT(early, 5u);
}

TEST(Simulation, FixedSeedDiscoveryOrderIsDeterministic) {
  // Two fresh full-stack runs under the same seed must produce the same
  // location-history audit trail (every enter/leave, in order, with exact
  // timestamps) and execute the same number of events. This pins the
  // kernel's FIFO tie-break and the radio's registration-order delivery:
  // any hidden dependence on hash iteration order, arena slot reuse, or
  // pointer values shows up here as a diff.
  auto run_once = [] {
    SimulationConfig cfg;
    cfg.seed = 7;
    cfg.stagger_inquiry = true;
    BipsSimulation sim(mobility::Building::corridor(3), cfg);
    sim.add_user("Alice", "alice", "pw", 0);
    sim.add_user("Bob", "bob", "pw", 2);
    sim.add_user("Carol", "carol", "pw", 1);
    sim.run_for(Duration::seconds(90));
    std::ostringstream os;
    sim.write_history_csv(os);
    return std::make_pair(os.str(), sim.simulator().events_executed());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // And the run did something: at least one user got discovered and entered.
  EXPECT_NE(first.first.find("enter"), std::string::npos);
}

TEST(Simulation, RadioAndServerAccessorsShareState) {
  BipsSimulation sim(mobility::Building::corridor(1), still_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(30));
  EXPECT_GT(sim.simulator().obs().metrics.counter_value("radio.transmissions"),
            0u);
  EXPECT_GT(sim.simulator().obs().metrics.counter_value(
                "server.presence_received"),
            0u);
}

}  // namespace
}  // namespace bips::core
