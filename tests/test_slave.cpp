// Unit tests for the SlaveController facade (the handheld's Bluetooth
// stack): alternating scan schedules, connection state transitions, and
// re-enrollment behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "src/baseband/scheduler.hpp"
#include "src/baseband/slave.hpp"

namespace bips::baseband {
namespace {

struct SlaveRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{61};
  RadioChannel radio{sim, rng, ChannelConfig{}};

  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
};

TEST_F(SlaveRig, StartIsIdempotent) {
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), SlaveConfig{});
  slave.start();
  slave.start();  // second start must not double-schedule
  run_s(10);
  EXPECT_TRUE(slave.inquiry_scanner().running());
  EXPECT_TRUE(slave.page_scanner().running());
  // Window cadence matches a single schedule: ~7-8 windows in 10 s.
  EXPECT_LE(slave.inquiry_scanner().stats().windows_opened, 9u);
}

TEST_F(SlaveRig, BothScannersAlternate) {
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), SlaveConfig{});
  slave.start();
  run_s(13);
  // Roughly one window each per 1.28 s interval.
  EXPECT_GE(slave.inquiry_scanner().stats().windows_opened, 9u);
  EXPECT_GE(slave.page_scanner().stats().windows_opened, 9u);
}

TEST_F(SlaveRig, StopSilencesEverything) {
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), SlaveConfig{});
  slave.start();
  run_s(5);
  slave.stop();
  const auto inquiry_windows = slave.inquiry_scanner().stats().windows_opened;
  run_s(10);
  EXPECT_EQ(slave.inquiry_scanner().stats().windows_opened, inquiry_windows);
  EXPECT_FALSE(slave.inquiry_scanner().running());
}

TEST_F(SlaveRig, ScanWhileConnectedKeepsInquiryScanAlive) {
  // With the option on, a connected device stays discoverable (some 1.2-era
  // parts supported this).
  auto master_dev = std::make_unique<Device>(sim, radio, BdAddr(0xA1),
                                             rng.fork());
  SchedulerConfig mcfg;
  mcfg.inquiry_length = Duration::from_seconds(2.56);
  mcfg.cycle_length = Duration::from_seconds(5.12);
  MasterScheduler sched(*master_dev, mcfg);

  SlaveConfig scfg;
  scfg.scan_while_connected = true;
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), scfg);
  slave.inquiry_scanner().set_initial_channel(2);
  sched.set_on_connected([&](BdAddr, SimTime) {
    sched.piconet().attach(slave.link());
  });
  slave.start();
  sched.start();
  run_s(40);
  ASSERT_TRUE(slave.connected());
  EXPECT_TRUE(slave.inquiry_scanner().running());  // still discoverable
}

TEST_F(SlaveRig, DefaultStopsScanningWhenConnected) {
  auto master_dev = std::make_unique<Device>(sim, radio, BdAddr(0xA1),
                                             rng.fork());
  SchedulerConfig mcfg;
  mcfg.inquiry_length = Duration::from_seconds(2.56);
  mcfg.cycle_length = Duration::from_seconds(5.12);
  MasterScheduler sched(*master_dev, mcfg);
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), SlaveConfig{});
  slave.inquiry_scanner().set_initial_channel(2);
  sched.set_on_connected([&](BdAddr, SimTime) {
    sched.piconet().attach(slave.link());
  });
  slave.start();
  sched.start();
  run_s(40);
  ASSERT_TRUE(slave.connected());
  EXPECT_FALSE(slave.inquiry_scanner().running());
  EXPECT_FALSE(slave.page_scanner().running());
}

TEST_F(SlaveRig, CallbacksFireOnConnectAndDisconnect) {
  auto master_dev = std::make_unique<Device>(sim, radio, BdAddr(0xA1),
                                             rng.fork());
  SchedulerConfig mcfg;
  mcfg.inquiry_length = Duration::from_seconds(2.56);
  mcfg.cycle_length = Duration::from_seconds(5.12);
  MasterScheduler sched(*master_dev, mcfg);
  SlaveController slave(sim, radio, BdAddr(0xB1), rng.fork(), SlaveConfig{});
  slave.inquiry_scanner().set_initial_channel(2);

  int connected = 0, disconnected = 0;
  slave.set_on_connected(
      [&](BdAddr, std::uint32_t, SimTime) { ++connected; });
  slave.set_on_disconnected([&] { ++disconnected; });
  sched.set_on_connected([&](BdAddr, SimTime) {
    if (!slave.connected()) sched.piconet().attach(slave.link());
  });
  slave.start();
  sched.start();
  run_s(40);
  ASSERT_GE(connected, 1);
  EXPECT_EQ(disconnected, 0);

  slave.device().set_position({100, 0});  // walk away -> supervision loss
  run_s(10);
  EXPECT_GE(disconnected, 1);
  EXPECT_TRUE(slave.inquiry_scanner().running());  // discoverable again
}

}  // namespace
}  // namespace bips::baseband
