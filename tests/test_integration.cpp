// Full-stack integration tests: building + workstations + server + clients,
// end to end through the radio, the piconets and the LAN.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>

#include "src/core/simulation.hpp"

namespace bips::core {
namespace {

SimulationConfig fast_config() {
  SimulationConfig cfg;
  // Generous inquiry slots so enrollment converges in little simulated
  // time: 2.56 s covers a full train-A dwell, and a 50% duty cycle puts
  // every other scan window inside an inquiry slot.
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  // Pin users in place by default; movement tests override providers.
  cfg.mobility.pause_min = Duration::seconds(100'000);
  cfg.mobility.pause_max = Duration::seconds(200'000);
  return cfg;
}

TEST(Integration, SingleUserEnrollsLogsInAndIsLocated) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(60));

  BipsClient* alice = sim.client("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_TRUE(alice->connected());
  EXPECT_TRUE(alice->logged_in());
  EXPECT_EQ(sim.db_room("alice"), 0u);
  EXPECT_TRUE(sim.workstation(0).tracks(alice->addr()));
  EXPECT_GE(sim.simulator().obs().metrics.counter_value("server.logins_ok"),
            1u);
  EXPECT_GE(sim.workstation(0).stats().presences_reported, 1u);
}

TEST(Integration, WrongPasswordNeverLogsIn) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  // Corrupt the stored credentials by registering through the simulation
  // but logging in with a different password: craft via a second user whose
  // password mismatches what the client sends is not reachable through the
  // public API, so exercise the failure through the server directly.
  sim.run_for(Duration::seconds(1));
  EXPECT_FALSE(sim.server().registry().authenticate("alice", "nope"));
}

TEST(Integration, TwoUsersWhereIsEndToEnd) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 1);
  sim.run_for(Duration::seconds(60));

  ASSERT_TRUE(sim.client("alice")->logged_in());
  ASSERT_TRUE(sim.client("bob")->logged_in());
  ASSERT_EQ(sim.db_room("bob"), 1u);

  std::optional<proto::WhereIsReply> reply;
  ASSERT_TRUE(sim.client("alice")->where_is(
      "Bob", [&](const proto::WhereIsReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kOk);
  EXPECT_EQ(reply->room, "room-1");
}

TEST(Integration, PathQueryEndToEnd) {
  BipsSimulation sim(mobility::Building::corridor(4), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 3);
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.client("alice")->logged_in());
  ASSERT_TRUE(sim.client("bob")->logged_in());
  ASSERT_EQ(sim.db_room("bob"), 3u);

  std::optional<proto::PathReply> reply;
  ASSERT_TRUE(sim.client("alice")->find_path_to(
      "Bob", [&](const proto::PathReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kOk);
  const std::vector<std::string> want{"room-0", "room-1", "room-2", "room-3"};
  EXPECT_EQ(reply->rooms, want);
  EXPECT_DOUBLE_EQ(reply->distance, 36.0);
}

TEST(Integration, QueryForOfflineUserReportsNotLoggedIn) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  // Bob is registered at the server but his handheld never starts.
  ASSERT_TRUE(
      sim.server().registry().register_user("bob", "Bob", "pw-b", 99));
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.client("alice")->logged_in());

  std::optional<proto::WhereIsReply> reply;
  ASSERT_TRUE(sim.client("alice")->where_is(
      "Bob", [&](const proto::WhereIsReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kNotLoggedIn);
}

TEST(Integration, MovingDeviceIsReattributedToTheNewRoom) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  // Take manual control of the handheld's position.
  Vec2 pos = sim.building().room(0).center;
  sim.client("alice")->device().set_position_provider([&pos] { return pos; });

  sim.run_for(Duration::seconds(60));
  ASSERT_EQ(sim.db_room("alice"), 0u);

  pos = sim.building().room(1).center;  // teleport to the next room
  sim.run_for(Duration::seconds(90));
  EXPECT_EQ(sim.db_room("alice"), 1u);
  EXPECT_FALSE(sim.workstation(0).tracks(sim.client("alice")->addr()));
  EXPECT_TRUE(sim.workstation(1).tracks(sim.client("alice")->addr()));
}

TEST(Integration, DeviceLeavingTheBuildingBecomesAbsent) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  Vec2 pos = sim.building().room(0).center;
  sim.client("alice")->device().set_position_provider([&pos] { return pos; });
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.db_room("alice").has_value());

  pos = Vec2{500, 500};  // outside
  sim.run_for(Duration::seconds(60));
  EXPECT_FALSE(sim.db_room("alice").has_value());
  EXPECT_GE(sim.workstation(0).stats().absences_reported, 1u);
}

TEST(Integration, TrackingAccuracyWithWalkingUsers) {
  SimulationConfig cfg = fast_config();
  cfg.mobility.pause_min = Duration::seconds(20);
  cfg.mobility.pause_max = Duration::seconds(60);
  BipsSimulation sim(mobility::Building::department(), cfg);
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 3);
  sim.add_user("Carol", "carol", "pw-c", 5);
  sim.enable_tracking_metrics(Duration::seconds(1));
  sim.run_for(Duration::seconds(300));

  const TrackingMetrics& m = sim.tracking();
  ASSERT_GT(m.samples, 0u);
  // Walking users are found, followed across rooms and expired when they
  // leave coverage; the DB should be right most of the time.
  EXPECT_GT(m.accuracy(), 0.55) << "correct=" << m.correct_room
                                << " absent=" << m.agree_absent
                                << " wrong=" << m.wrong_room
                                << " false_absent=" << m.false_absent
                                << " false_present=" << m.false_present;
}

TEST(Integration, PresenceTrafficIsDeltaOnly) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(120));
  // A stationary user generates the discovery presence plus the
  // connection-upgrade re-report (deduplicated at the server) and no other
  // churn -- nothing proportional to the 24 cycles that elapsed.
  EXPECT_LE(sim.workstation(0).stats().presences_reported, 3u);
  EXPECT_LE(sim.server().locations().stats().redundant_updates, 2u);
}

TEST(Integration, DeterministicUnderSameSeed) {
  auto run_one = [](std::uint64_t seed) {
    SimulationConfig cfg = fast_config();
    cfg.seed = seed;
    cfg.mobility.pause_min = Duration::seconds(10);
    cfg.mobility.pause_max = Duration::seconds(30);
    BipsSimulation sim(mobility::Building::department(), cfg);
    sim.add_user("Alice", "alice", "pw-a", 0);
    sim.add_user("Bob", "bob", "pw-b", 4);
    sim.enable_tracking_metrics(Duration::seconds(1));
    sim.run_for(Duration::seconds(120));
    return std::tuple{sim.tracking().samples, sim.tracking().correct_room,
                      sim.server().locations().stats().presence_updates,
                      sim.simulator().events_executed()};
  };
  EXPECT_EQ(run_one(1234), run_one(1234));
  EXPECT_NE(run_one(1234), run_one(4321));
}

}  // namespace
}  // namespace bips::core

// ---- extended services end-to-end ------------------------------------------

namespace bips::core {
namespace {

TEST(IntegrationExt, WhoIsInEndToEnd) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 0);    // same room as alice
  sim.add_user("Carol", "carol", "pw-c", 1);
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.client("alice")->logged_in());
  ASSERT_TRUE(sim.client("bob")->logged_in());

  std::optional<proto::WhoIsInReply> reply;
  ASSERT_TRUE(sim.client("alice")->who_is_in(
      "room-0", [&](const proto::WhoIsInReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kOk);
  EXPECT_EQ(reply->users, (std::vector<std::string>{"Alice", "Bob"}));
}

TEST(IntegrationExt, HistoryQueryEndToEnd) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 0);
  Vec2 bob_pos = sim.building().room(0).center;
  sim.client("bob")->device().set_position_provider([&] { return bob_pos; });

  sim.run_for(Duration::seconds(60));
  ASSERT_EQ(sim.db_room("bob"), 0u);
  const SimTime was_here = sim.simulator().now();

  bob_pos = sim.building().room(1).center;
  sim.run_for(Duration::seconds(60));
  ASSERT_EQ(sim.db_room("bob"), 1u);

  // "Where was Bob a minute ago?"
  std::optional<proto::HistoryReply> reply;
  ASSERT_TRUE(sim.client("alice")->where_was(
      "Bob", was_here, [&](const proto::HistoryReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kOk);
  EXPECT_TRUE(reply->was_present);
  EXPECT_EQ(reply->room, "room-0");
}

TEST(IntegrationExt, MovementSubscriptionEndToEnd) {
  BipsSimulation sim(mobility::Building::corridor(2), fast_config());
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 0);
  Vec2 bob_pos = sim.building().room(0).center;
  sim.client("bob")->device().set_position_provider([&] { return bob_pos; });
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.client("alice")->logged_in());

  std::vector<proto::MovementEvent> events;
  std::optional<proto::SubscribeReply> sub_result;
  ASSERT_TRUE(sim.client("alice")->subscribe(
      "Bob", [&](const proto::MovementEvent& ev) { events.push_back(ev); },
      [&](const proto::SubscribeReply& r) { sub_result = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(sub_result.has_value());
  EXPECT_EQ(sub_result->status, proto::QueryStatus::kOk);

  // Bob moves next door; alice's handheld hears about it.
  bob_pos = sim.building().room(1).center;
  sim.run_for(Duration::seconds(90));
  ASSERT_FALSE(events.empty());
  bool entered_room1 = false;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.target_user, "Bob");
    if (ev.entered && ev.room == "room-1") entered_room1 = true;
  }
  EXPECT_TRUE(entered_room1);

  // After unsubscribing the stream stops.
  ASSERT_TRUE(sim.client("alice")->unsubscribe("Bob"));
  sim.run_for(Duration::seconds(2));
  const auto count = events.size();
  bob_pos = sim.building().room(0).center;
  sim.run_for(Duration::seconds(90));
  EXPECT_EQ(events.size(), count);
}

TEST(IntegrationExt, PresenceStreamSurvivesLossyLan) {
  SimulationConfig cfg = fast_config();
  cfg.lan.loss = 0.4;  // drop 40% of every datagram, both directions
  BipsSimulation sim(mobility::Building::corridor(2), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  Vec2 pos = sim.building().room(0).center;
  sim.client("alice")->device().set_position_provider([&pos] { return pos; });

  sim.run_for(Duration::seconds(90));
  ASSERT_EQ(sim.db_room("alice"), 0u);

  pos = sim.building().room(1).center;
  sim.run_for(Duration::seconds(120));
  EXPECT_EQ(sim.db_room("alice"), 1u);
  // Retransmissions actually happened (the loss was real) and were
  // deduplicated at the server.
  const auto retx = sim.workstation(0).stats().retransmissions +
                    sim.workstation(1).stats().retransmissions;
  EXPECT_GT(retx, 0u);
  // Everything eventually acked.
  EXPECT_EQ(sim.workstation(0).unacked_updates(), 0u);
  EXPECT_EQ(sim.workstation(1).unacked_updates(), 0u);
}

TEST(IntegrationExt, PresenceStreamQuiescesOnReliableLan) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(120));
  EXPECT_EQ(sim.workstation(0).stats().retransmissions, 0u);
  EXPECT_EQ(sim.workstation(0).unacked_updates(), 0u);
}

}  // namespace
}  // namespace bips::core

// ---- deployment features: staggered inquiry, CSV audit trail ---------------

namespace bips::core {
namespace {

TEST(IntegrationExt, StaggeredInquirySlotsNeverOverlap) {
  SimulationConfig cfg = fast_config();
  cfg.stagger_inquiry = true;  // 2 stations, cycle 5.12, inquiry 2.56:
                               // offsets 0 and 2.56 -> complementary slots
  BipsSimulation sim(mobility::Building::corridor(2), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  sim.start();
  int samples_both = 0, samples_any = 0;
  for (int i = 0; i < 400; ++i) {
    sim.run_for(Duration::millis(100));
    const bool a = sim.workstation(0).scheduler().in_inquiry_phase();
    const bool b = sim.workstation(1).scheduler().in_inquiry_phase();
    if (a && b) ++samples_both;
    if (a || b) ++samples_any;
  }
  EXPECT_EQ(samples_both, 0);
  EXPECT_GT(samples_any, 300);  // 50% duty each, complementary -> ~always
}

TEST(IntegrationExt, SynchronizedInquirySlotsDoOverlap) {
  SimulationConfig cfg = fast_config();
  cfg.stagger_inquiry = false;
  BipsSimulation sim(mobility::Building::corridor(2), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  sim.start();
  int samples_both = 0;
  for (int i = 0; i < 100; ++i) {
    sim.run_for(Duration::millis(100));
    if (sim.workstation(0).scheduler().in_inquiry_phase() &&
        sim.workstation(1).scheduler().in_inquiry_phase()) {
      ++samples_both;
    }
  }
  EXPECT_GT(samples_both, 30);
}

TEST(IntegrationExt, HistoryCsvExport) {
  BipsSimulation sim(mobility::Building::corridor(1), fast_config());
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.db_room("alice").has_value());

  std::ostringstream os;
  sim.write_history_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_s,user,device,room,event"), std::string::npos);
  EXPECT_NE(csv.find("alice"), std::string::npos);
  EXPECT_NE(csv.find("room-0"), std::string::npos);
  EXPECT_NE(csv.find("enter"), std::string::npos);
  // One line per history entry + header.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            sim.server().locations().history().size() + 1);
}

}  // namespace
}  // namespace bips::core

// ---- park mode at deployment scale -----------------------------------------

namespace bips::core {
namespace {

TEST(IntegrationExt, TwentyUsersInOneRoomAllTracked) {
  // More users than AM_ADDRs: park mode must carry the overflow.
  SimulationConfig cfg = fast_config();
  BipsSimulation sim(mobility::Building::corridor(1), cfg);
  for (int i = 0; i < 20; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 0);
  }
  sim.run_for(Duration::seconds(240));

  int logged_in = 0, tracked = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string id = "u" + std::to_string(i);
    if (sim.client(id)->logged_in()) ++logged_in;
    if (sim.db_room(id) == 0u) ++tracked;
  }
  EXPECT_GE(logged_in, 18);  // allow a couple of slow enrollments
  EXPECT_GE(tracked, 18);
  // The AM_ADDR limit was respected throughout.
  EXPECT_LE(sim.workstation(0).scheduler().piconet().active_count(), 7u);
  EXPECT_GT(sim.workstation(0).scheduler().piconet().parked_count(), 5u);
  EXPECT_GT(sim.workstation(0).scheduler().piconet().stats().parks, 0u);
}

TEST(IntegrationExt, ParkedClientCanStillQuery) {
  SimulationConfig cfg = fast_config();
  BipsSimulation sim(mobility::Building::corridor(2), cfg);
  sim.add_user("Alice", "alice", "pw-a", 0);
  sim.add_user("Bob", "bob", "pw-b", 1);
  sim.run_for(Duration::seconds(60));
  ASSERT_TRUE(sim.client("alice")->logged_in());
  // Alice has been parked after login (the default policy).
  ASSERT_TRUE(sim.client("alice")->link().parked());

  std::optional<proto::WhereIsReply> reply;
  ASSERT_TRUE(sim.client("alice")->where_is(
      "Bob", [&](const proto::WhereIsReply& r) { reply = r; }));
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, proto::QueryStatus::kOk);
  EXPECT_EQ(reply->room, "room-1");
}

}  // namespace
}  // namespace bips::core

// ---- interlaced handhelds at deployment scale -------------------------------

namespace bips::core {
namespace {

TEST(IntegrationExt, InterlacedHandheldsEnrollFromEitherTrain) {
  // With classic scanning, a short inquiry slot restarting on train A keeps
  // missing devices whose scan channel sits in train B; interlaced
  // handhelds are reachable from both trains in every window.
  SimulationConfig cfg = fast_config();
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.slave.inquiry_scan.interlaced = true;
  BipsSimulation sim(mobility::Building::corridor(1), cfg);
  for (int i = 0; i < 6; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 0);
  }
  sim.run_for(Duration::seconds(90));
  int logged_in = 0;
  for (int i = 0; i < 6; ++i) {
    if (sim.client("u" + std::to_string(i))->logged_in()) ++logged_in;
  }
  EXPECT_EQ(logged_in, 6);
}

}  // namespace
}  // namespace bips::core

// ---- workstation crash and recovery -----------------------------------------

namespace bips::core {
namespace {

TEST(IntegrationExt, CrashedWorkstationExpiresAndRecoversOnRestart) {
  SimulationConfig cfg = fast_config();
  cfg.server.station_timeout = Duration::seconds(10);
  cfg.server.sweep_period = Duration::seconds(2);
  BipsSimulation sim(mobility::Building::corridor(1), cfg);
  sim.add_user("Alice", "alice", "pw", 0);
  sim.run_for(Duration::seconds(60));
  ASSERT_EQ(sim.db_room("alice"), 0u);
  ASSERT_TRUE(sim.client("alice")->connected());

  // The room's workstation dies.
  sim.workstation(0).crash();
  sim.run_for(Duration::seconds(20));
  // The handheld saw its link drop and is scanning again; the server's
  // failure detector expired the stale presence record.
  EXPECT_FALSE(sim.client("alice")->connected());
  EXPECT_FALSE(sim.db_room("alice").has_value());
  EXPECT_GE(
      sim.simulator().obs().metrics.counter_value("server.stations_expired"),
      1u);

  // Power restored: the device is re-discovered, re-enrolled, re-tracked.
  sim.workstation(0).restart();
  sim.run_for(Duration::seconds(60));
  EXPECT_TRUE(sim.client("alice")->connected());
  EXPECT_EQ(sim.db_room("alice"), 0u);
  EXPECT_TRUE(sim.client("alice")->logged_in());  // session survived
}

TEST(IntegrationExt, NeighbourCoversForACrashedStation) {
  // Two overlapping rooms; the device sits in the overlap. When its
  // serving workstation dies, the neighbour's suppressed claim (or fresh
  // rediscovery) takes over.
  SimulationConfig cfg = fast_config();
  cfg.server.station_timeout = Duration::seconds(10);
  cfg.server.sweep_period = Duration::seconds(2);
  cfg.stagger_inquiry = true;  // overlapping piconets must not collide
  mobility::Building b;
  const auto left = b.add_room("left", {0, 0});
  const auto right = b.add_room("right", {8, 0});
  b.connect(left, right);
  BipsSimulation sim(std::move(b), cfg);
  sim.add_user("Alice", "alice", "pw", left);
  sim.set_position_provider("alice", [] { return Vec2{4, 0}; });
  sim.run_for(Duration::seconds(60));
  const auto before = sim.db_room("alice");
  ASSERT_TRUE(before.has_value());

  sim.workstation(*before).crash();
  sim.run_for(Duration::seconds(60));
  const auto after = sim.db_room("alice");
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);  // the surviving neighbour owns her now
}

}  // namespace
}  // namespace bips::core
