// Tests for the master operational-cycle scheduler and the slave controller
// facade (discovery -> page -> attach pipeline).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/baseband/scheduler.hpp"
#include "src/baseband/slave.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {
namespace {

SchedulerConfig fast_cycle() {
  SchedulerConfig cfg;
  cfg.inquiry_length = Duration::from_seconds(1.0);
  cfg.cycle_length = Duration::from_seconds(5.0);
  return cfg;
}

struct SchedulerRig : ::testing::Test {
  sim::Simulator sim;
  Rng rng{5};
  RadioChannel radio{sim, rng, ChannelConfig{}};

  std::unique_ptr<Device> master_dev =
      std::make_unique<Device>(sim, radio, BdAddr(0xA1), rng.fork());

  std::unique_ptr<SlaveController> make_slave(std::uint64_t addr) {
    SlaveConfig cfg;
    auto slave = std::make_unique<SlaveController>(sim, radio, BdAddr(addr),
                                                   rng.fork(), cfg);
    // Pin the first scan channel inside train A so a 1 s inquiry slot (which
    // restarts on train A each cycle) reaches the slave in the first cycles;
    // random channels would add up to 16 windows of rotation latency.
    slave->inquiry_scanner().set_initial_channel(
        static_cast<std::uint32_t>(addr % kTrainSize));
    return slave;
  }
  void run_s(double s) {
    sim.run_until(sim.now() + Duration::from_seconds(s));
  }
};

TEST_F(SchedulerRig, AlternatesInquiryAndServicePhases) {
  MasterScheduler sched(*master_dev, fast_cycle());
  std::vector<double> inquiry_done_at;
  sched.set_on_inquiry_done(
      [&](SimTime t) { inquiry_done_at.push_back(t.to_seconds()); });
  sched.start();
  EXPECT_TRUE(sched.in_inquiry_phase());
  run_s(12.0);
  // Inquiry ends at ~1, ~6, ~11 seconds.
  ASSERT_EQ(inquiry_done_at.size(), 3u);
  EXPECT_NEAR(inquiry_done_at[0], 1.0, 1e-6);
  EXPECT_NEAR(inquiry_done_at[1], 6.0, 1e-6);
  EXPECT_NEAR(inquiry_done_at[2], 11.0, 1e-6);
  EXPECT_EQ(sched.cycles(), 2u);
}

TEST_F(SchedulerRig, InquirerOnlyActiveDuringInquiryPhase) {
  MasterScheduler sched(*master_dev, fast_cycle());
  sched.start();
  run_s(0.5);
  EXPECT_TRUE(sched.inquirer().active());
  run_s(1.0);  // t = 1.5: service phase
  EXPECT_FALSE(sched.inquirer().active());
  run_s(4.0);  // t = 5.5: second cycle's inquiry slot
  EXPECT_TRUE(sched.inquirer().active());
}

TEST_F(SchedulerRig, DiscoversPagesAndAttachesASlave) {
  MasterScheduler sched(*master_dev, fast_cycle());
  auto slave = make_slave(0xB1);

  std::set<std::uint64_t> discovered;
  std::set<std::uint64_t> connected;
  sched.set_on_discovered(
      [&](const InquiryResponse& r) { discovered.insert(r.addr.raw()); });
  sched.set_on_connected([&](BdAddr a, SimTime) {
    connected.insert(a.raw());
    sched.piconet().attach(slave->link());
  });

  slave->start();
  sched.start();
  run_s(15.0);

  EXPECT_TRUE(discovered.count(0xB1));
  EXPECT_TRUE(connected.count(0xB1));
  EXPECT_TRUE(slave->connected());
  EXPECT_TRUE(sched.piconet().has_slave(BdAddr(0xB1)));
}

TEST_F(SchedulerRig, ConnectedSlaveStopsAnsweringInquiries) {
  MasterScheduler sched(*master_dev, fast_cycle());
  auto slave = make_slave(0xB1);
  sched.set_on_connected([&](BdAddr, SimTime) {
    sched.piconet().attach(slave->link());
  });
  slave->start();
  sched.start();
  run_s(20.0);
  ASSERT_TRUE(slave->connected());
  EXPECT_FALSE(slave->inquiry_scanner().running());
  EXPECT_FALSE(slave->page_scanner().running());
}

TEST_F(SchedulerRig, PageDiscoveredFalseLeavesSlavesUnconnected) {
  SchedulerConfig cfg = fast_cycle();
  cfg.page_discovered = false;  // Figure 2 mode: measure discovery only
  MasterScheduler sched(*master_dev, cfg);
  auto slave = make_slave(0xB1);
  int discovered = 0;
  sched.set_on_discovered([&](const InquiryResponse&) { ++discovered; });
  slave->start();
  sched.start();
  run_s(12.0);
  EXPECT_GT(discovered, 0);
  EXPECT_FALSE(slave->connected());
}

TEST_F(SchedulerRig, RediscoveryEachCycleForUnconnectedSlaves) {
  SchedulerConfig cfg = fast_cycle();
  cfg.page_discovered = false;
  MasterScheduler sched(*master_dev, cfg);
  auto slave = make_slave(0xB1);
  int discovered = 0;
  sched.set_on_discovered([&](const InquiryResponse&) { ++discovered; });
  slave->start();
  sched.start();
  run_s(40.0);  // ~8 cycles
  // With an 11.25 ms / 1.28 s scan schedule against a 1 s inquiry slot, the
  // slave only answers when a window lands inside the slot on a train-A
  // channel -- a slow beat pattern, so expect a handful, not one per cycle.
  EXPECT_GE(discovered, 2);
}

TEST_F(SchedulerRig, StopFreezesEverything) {
  MasterScheduler sched(*master_dev, fast_cycle());
  sched.start();
  run_s(0.5);
  sched.stop();
  EXPECT_FALSE(sched.running());
  EXPECT_FALSE(sched.inquirer().active());
  const auto executed = sim.events_executed();
  run_s(5.0);
  // Nothing master-driven should run (a handful of stale events may drain).
  EXPECT_LT(sim.events_executed() - executed, 10u);
}

TEST_F(SchedulerRig, MultipleSlavesAllServedOverTime) {
  MasterScheduler sched(*master_dev, fast_cycle());
  std::vector<std::unique_ptr<SlaveController>> slaves;
  for (int i = 0; i < 5; ++i) slaves.push_back(make_slave(0xB0 + i));
  sched.set_on_connected([&](BdAddr a, SimTime) {
    for (auto& s : slaves) {
      if (s->device().addr() == a) sched.piconet().attach(s->link());
    }
  });
  for (auto& s : slaves) s->start();
  sched.start();
  // Worst-case enrollment is slow under a 20% inquiry duty cycle (window /
  // slot phase beats); give the full population time to trickle in.
  run_s(120.0);
  EXPECT_EQ(sched.piconet().slave_count(), 5u);
  for (auto& s : slaves) EXPECT_TRUE(s->connected());
}

TEST_F(SchedulerRig, SlaveReenrollsAfterLinkLoss) {
  MasterScheduler sched(*master_dev, fast_cycle());
  auto slave = make_slave(0xB1);
  sched.set_on_connected([&](BdAddr, SimTime) {
    if (!slave->connected()) sched.piconet().attach(slave->link());
  });
  slave->start();
  sched.start();
  run_s(40.0);
  ASSERT_TRUE(slave->connected());

  // Walk away until the link drops...
  slave->device().set_position({100, 0});
  run_s(5.0);
  EXPECT_FALSE(slave->connected());
  EXPECT_TRUE(slave->inquiry_scanner().running());  // discoverable again

  // ...and return: the next cycles re-discover, re-page, re-attach.
  slave->device().set_position({0, 0});
  run_s(60.0);
  EXPECT_TRUE(slave->connected());
}

}  // namespace
}  // namespace bips::baseband
