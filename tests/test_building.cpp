// Unit tests for the building model.
#include <gtest/gtest.h>

#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"

namespace bips::mobility {
namespace {

TEST(Building, AddRoomAndLookup) {
  Building b;
  const RoomId r = b.add_room("lab", {3, 4});
  EXPECT_EQ(b.room_count(), 1u);
  EXPECT_EQ(b.room(r).name, "lab");
  EXPECT_EQ(b.room(r).center, (Vec2{3, 4}));
  EXPECT_EQ(b.find("lab"), r);
  EXPECT_FALSE(b.find("nope").has_value());
}

TEST(Building, DuplicateRoomNameDies) {
  Building b;
  b.add_room("x", {0, 0});
  EXPECT_DEATH(b.add_room("x", {1, 1}), "duplicate");
}

TEST(Building, ConnectDefaultsToEuclideanDistance) {
  Building b;
  const RoomId a = b.add_room("a", {0, 0});
  const RoomId c = b.add_room("c", {3, 4});
  b.connect(a, c);
  ASSERT_EQ(b.corridors().size(), 1u);
  EXPECT_DOUBLE_EQ(b.corridors()[0].distance, 5.0);
}

TEST(Building, ConnectWithExplicitWalkingDistance) {
  Building b;
  const RoomId a = b.add_room("a", {0, 0});
  const RoomId c = b.add_room("c", {3, 4});
  b.connect(a, c, 12.0);  // around a corner, longer than the crow flies
  EXPECT_DOUBLE_EQ(b.corridors()[0].distance, 12.0);
}

TEST(Building, ToGraphPreservesIdsNamesAndWeights) {
  Building b;
  const RoomId a = b.add_room("a", {0, 0});
  const RoomId c = b.add_room("c", {10, 0});
  b.connect(a, c, 11.0);
  const graph::Graph g = b.to_graph();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.name(a), "a");
  EXPECT_EQ(g.name(c), "c");
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].weight, 11.0);
}

TEST(Building, NearestRoom) {
  Building b;
  b.add_room("a", {0, 0});
  const RoomId c = b.add_room("c", {20, 0});
  EXPECT_EQ(b.nearest_room({14, 0}), c);
  EXPECT_EQ(b.nearest_room({2, 1}), 0u);
}

TEST(Building, NearestRoomWithinRadius) {
  Building b;
  b.add_room("a", {0, 0});
  EXPECT_EQ(b.nearest_room_within({5, 0}, 10.0), 0u);
  EXPECT_EQ(b.nearest_room_within({10, 0}, 10.0), 0u);  // boundary inclusive
  EXPECT_EQ(b.nearest_room_within({15, 0}, 10.0), kNoRoom);
}

TEST(Building, EmptyBuildingNearestIsNoRoom) {
  Building b;
  EXPECT_EQ(b.nearest_room({0, 0}), kNoRoom);
  EXPECT_EQ(b.nearest_room_within({0, 0}, 10.0), kNoRoom);
}

TEST(Building, CorridorFactoryIsAChain) {
  const Building b = Building::corridor(5, 12.0);
  EXPECT_EQ(b.room_count(), 5u);
  EXPECT_EQ(b.corridors().size(), 4u);
  const graph::Graph g = b.to_graph();
  EXPECT_TRUE(g.connected());
  // End-to-end distance is 4 hops * 12 m.
  const graph::AllPairsPaths ap(g);
  EXPECT_DOUBLE_EQ(ap.distance(0, 4), 48.0);
}

TEST(Building, GridFactoryConnectivityAndManhattanPaths) {
  const Building b = Building::grid(3, 4, 10.0);
  EXPECT_EQ(b.room_count(), 12u);
  const graph::Graph g = b.to_graph();
  EXPECT_TRUE(g.connected());
  const graph::AllPairsPaths ap(g);
  // Corner to corner: (3-1)+(4-1) = 5 hops of 10 m.
  EXPECT_DOUBLE_EQ(ap.distance(0, 11), 50.0);
}

TEST(Building, DepartmentFloorPlanIsConnectedAndNonTrivial) {
  const Building b = Building::department();
  EXPECT_EQ(b.room_count(), 10u);
  const graph::Graph g = b.to_graph();
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(b.find("lobby").has_value());
  EXPECT_TRUE(b.find("seminar-room").has_value());
  // The shortcut makes some indirect path cheaper than the corridor loop.
  const graph::AllPairsPaths ap(g);
  const auto lobby = *b.find("lobby");
  const auto seminar = *b.find("seminar-room");
  EXPECT_GT(ap.distance(lobby, seminar), 0.0);
  EXPECT_LT(ap.distance(lobby, seminar), 60.0);
}

TEST(Building, RoomSpacingExceedsCoverageOverlapInFactories) {
  // Piconets are 10 m; factory plans space workstations 12 m so rooms do
  // not fully overlap (a device can be in at most a small overlap region).
  const Building b = Building::corridor(3, 12.0);
  EXPECT_GT(distance(b.room(0).center, b.room(1).center), 10.0);
}

}  // namespace
}  // namespace bips::mobility
