// Scale sweep -- building-sized deployments: events/sec of the whole stack.
//
// The paper simulates one master and up to 20 slaves; the north star is a
// whole building of piconets under load. This bench sweeps rooms x users
// (grid floor plans, walking populations, full server/LAN stack) and
// measures raw simulation throughput: executed events per wall-clock
// second. It is the regression guard for the event-kernel and radio-channel
// architecture -- the numbers in BENCH_scale.json (repo root) record the
// pre-refactor baseline and the current kernel side by side.
//
// Usage:
//   bench_scale_building [--smoke] [-o out.json]
//
// --smoke runs the smallest configuration only (CI); the JSON report lands
// in BENCH_scale.json in the working directory unless -o says otherwise.
#include <ctime>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/simulation.hpp"
#include "src/util/table.hpp"

namespace bips::bench {
namespace {

struct SweepPoint {
  int rows = 0, cols = 0, users = 0;
  double sim_seconds = 0;
};

struct Result {
  SweepPoint p;
  std::uint64_t events = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t discoveries = 0;
  double cpu_s = 0;   // process CPU time: robust on a shared machine
  double wall_s = 0;
  double events_per_sec = 0;  // events / cpu_s
  double sim_ratio = 0;       // simulated seconds per CPU second
};

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

Result run_point(const SweepPoint& p) {
  core::SimulationConfig cfg;
  cfg.seed = 0x5CA1E'0000ull + static_cast<std::uint64_t>(p.rows * p.cols);
  cfg.stagger_inquiry = true;
  // The Figure 2 cadence: short cycles keep every master inquiring often,
  // which is the radio-heavy regime the bench is meant to stress.
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);

  core::BipsSimulation sim(mobility::Building::grid(p.rows, p.cols), cfg);
  const int rooms = p.rows * p.cols;
  for (int i = 0; i < p.users; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % rooms));
  }
  sim.start();

  const double c0 = process_cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_for(Duration::from_seconds(p.sim_seconds));
  const auto t1 = std::chrono::steady_clock::now();
  const double c1 = process_cpu_seconds();

  Result r;
  r.p = p;
  r.events = sim.simulator().events_executed();
  r.transmissions = sim.radio().stats().transmissions;
  r.deliveries = sim.radio().stats().deliveries;
  for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
    r.discoveries +=
        sim.workstation(static_cast<core::StationId>(s)).stats().discoveries;
  }
  r.cpu_s = c1 - c0;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.cpu_s > 0 ? static_cast<double>(r.events) / r.cpu_s : 0;
  r.sim_ratio = r.cpu_s > 0 ? p.sim_seconds / r.cpu_s : 0;
  return r;
}

void write_json(const std::vector<Result>& results, const std::string& path,
                bool smoke) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"scale_building\",\n  \"mode\": \""
     << (smoke ? "smoke" : "full") << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"rooms\": %d, \"users\": %d, \"sim_s\": %.1f, "
        "\"events\": %llu, \"transmissions\": %llu, \"deliveries\": %llu, "
        "\"discoveries\": %llu, \"cpu_s\": %.3f, \"wall_s\": %.3f, "
        "\"events_per_sec\": %.0f, \"sim_ratio\": %.1f}%s\n",
        r.p.rows * r.p.cols, r.p.users, r.p.sim_seconds,
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.transmissions),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.discoveries), r.cpu_s, r.wall_s,
        r.events_per_sec, r.sim_ratio,
        i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

int run(bool smoke, const std::string& out_path) {
  print_header("SCALE", "Building-scale sweep: whole-stack events/sec");

  std::vector<SweepPoint> sweep;
  if (smoke) {
    sweep = {{2, 2, 8, 10.0}};
  } else {
    sweep = {{2, 2, 8, 30.0},
             {2, 4, 32, 30.0},
             {4, 4, 64, 30.0},
             {4, 8, 192, 20.0},
             {8, 8, 512, 20.0}};
  }

  TableWriter table({"rooms", "users", "sim s", "events", "cpu s",
                     "events/s", "sim x realtime"});
  std::vector<Result> results;
  for (const SweepPoint& p : sweep) {
    const Result r = run_point(p);
    results.push_back(r);
    table.add_row({std::to_string(p.rows * p.cols), std::to_string(p.users),
                   fmt(p.sim_seconds, 0), std::to_string(r.events),
                   fmt(r.cpu_s, 2), fmt(r.events_per_sec, 0),
                   fmt(r.sim_ratio, 1)});
    std::printf("done: %d rooms / %d users -> %.0f events/s (%.2f s cpu)\n",
                p.rows * p.cols, p.users, r.events_per_sec, r.cpu_s);
  }
  std::printf("%s\n", table.to_string().c_str());

  write_json(results, out_path, smoke);
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [-o out.json]\n", argv[0]);
      return 2;
    }
  }
  return bips::bench::run(smoke, out);
}
