// Scale sweep -- building-sized deployments: events/sec of the whole stack.
//
// The paper simulates one master and up to 20 slaves; the north star is a
// whole building of piconets under load. This bench sweeps rooms x users
// (grid floor plans, walking populations, full server/LAN stack) and
// measures raw simulation throughput: executed events per wall-clock
// second. It is the regression guard for the event-kernel and radio-channel
// architecture -- the numbers in BENCH_scale.json (repo root) record the
// pre-refactor baseline and the current kernel side by side -- and, since
// the observability layer landed, for the metrics/trace hot-path cost
// (BENCH_obs.json holds the A/B numbers).
//
// Usage:
//   bench_scale_building [--smoke] [-o out.json] [--no-metrics]
//                        [--trace trace.jsonl] [--ab] [--max-overhead PCT]
//                        [--exact-slots] [--history FILE] [--ff-ab]
//                        [--energy-check] [--min-speedup X] [--reps N]
//                        [--point RxCxUxS]
//
// --smoke runs the smallest configuration only (CI). --no-metrics runs with
// the registry gated off (the "disabled path" whose cost must stay ~zero).
// --trace streams the structured JSONL trace of the first sweep point.
// --ab runs every point twice -- registry disabled then enabled -- and
// reports the enabled-path overhead; --max-overhead PCT makes the process
// exit nonzero if any point's overhead exceeds PCT (the CI gate).
//
// --exact-slots forces the per-slot drumming baseband (the default is the
// virtual-slot fast-forward path). --history FILE dumps the first point's
// discovery-history CSV. --ff-ab runs every point in BOTH modes, byte-diffs
// the two discovery histories (any difference fails the process: the two
// modes are contractually equivalent), and reports the fast-forward speedup
// in events-retired-per-second equivalents: byte-identical histories mean
// both modes retire the same semantic slot stream, so the equivalent
// throughput of the fast-forward run is the exact run's event count over the
// fast-forward run's CPU time, and the speedup reduces to the CPU-time
// ratio. --min-speedup X fails the process if any point lands below X;
// --reps N takes the best of N interleaved passes per mode (throughput
// only -- histories are deterministic, so they are captured once).
// --point RxCxUxS replaces the sweep with a single rows x cols x users x
// sim-seconds configuration, e.g. --point 8x8x512x10. --energy-check (with
// --ff-ab) additionally sums every master's energy ledger (TX + listen
// time, probed just past the end of the run so both modes see the same set
// of completed intervals) and fails the process if the exact and
// fast-forward totals differ by a nanosecond.
//
// Sharded-kernel modes (DESIGN.md section 9):
//   --threads N   run every point on the sharded harness with N worker
//                 threads (N >= 1; without this flag the monolithic
//                 single-simulator harness runs, as before);
//   --shards N    zone count for the sharded harness (default 4);
//   --par-ab      run every point on the sharded harness twice -- 1 thread
//                 then --threads N -- byte-diff the discovery histories,
//                 the presence trace streams, the energy ledgers and the
//                 Query-API answers (any difference fails the process:
//                 thread count must not change one byte), plus a third pass
//                 with the location service pinned to a single database
//                 (service_zones=1) whose query answers must also match --
//                 partitioning the service must be invisible to queries;
//                 reports the wall-clock speedup; --min-speedup gates it.
//   --faults      inject a seeded chaos fault schedule (station crashes,
//                 a partition, a loss burst, one server crash/restart)
//                 scaled to the point's sim length into every sharded run.
//                 With --par-ab this makes the byte-diff subjects -- the
//                 history, presence stream and Query answers -- cover the
//                 fault taxonomy's shard-local and barrier classes too.
//   --append      append this run's rows to an existing report instead of
//                 overwriting it; refuses if the file's schema version
//                 differs (rows carry "threads" and "commit" since v2).
#include <ctime>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/parallel.hpp"
#include "src/core/simulation.hpp"
#include "src/fault/plan.hpp"
#include "src/obs/obs.hpp"
#include "src/util/table.hpp"

namespace bips::bench {
namespace {

struct SweepPoint {
  int rows = 0, cols = 0, users = 0;
  double sim_seconds = 0;
};

struct Result {
  SweepPoint p;
  bool metrics_on = true;
  bool exact_slots = false;
  bool sharded = false;
  int threads = 1;  // worker threads (always 1 on the monolithic harness)
  std::uint64_t events = 0;
  std::uint64_t skipped = 0;  // kernel.skipped_slots (0 under --exact-slots)
  std::uint64_t elided_polls = 0;  // piconet.elided_polls (supervised quiesce)
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t discoveries = 0;
  double cpu_s = 0;   // process CPU time: robust on a shared machine
  double wall_s = 0;
  double events_per_sec = 0;   // events / cpu_s
  double retired_per_sec = 0;  // (events + skipped) / cpu_s
  double sim_ratio = 0;        // simulated seconds per CPU second
  double overhead_pct = 0;     // --ab only, on the enabled row
  double speedup = 0;          // --ff-ab only, on the fast-forward row
};

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// Summed master-side energy ledgers, for the --energy-check equivalence
// gate (exact vs fast-forward totals must agree to the nanosecond).
struct EnergyTotals {
  std::int64_t tx_ns = 0;
  std::int64_t listen_ns = 0;
  bool operator==(const EnergyTotals& o) const {
    return tx_ns == o.tx_ns && listen_ns == o.listen_ns;
  }
};

Result run_point(const SweepPoint& p, bool metrics_on,
                 const std::string& trace_path, bool exact_slots,
                 std::string* history_out = nullptr,
                 EnergyTotals* energy_out = nullptr) {
  core::SimulationConfig cfg;
  cfg.seed = 0x5CA1E'0000ull + static_cast<std::uint64_t>(p.rows * p.cols);
  cfg.stagger_inquiry = true;
  cfg.channel.exact_slots = exact_slots;
  // The Figure 2 cadence: short cycles keep every master inquiring often,
  // which is the radio-heavy regime the bench is meant to stress.
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);

  core::BipsSimulation sim(mobility::Building::grid(p.rows, p.cols), cfg);
  sim.simulator().obs().metrics.set_enabled(metrics_on);

  std::ofstream trace_os;
  std::unique_ptr<obs::JsonlSink> trace_sink;
  if (!trace_path.empty()) {
    trace_os.open(trace_path);
    trace_sink = std::make_unique<obs::JsonlSink>(trace_os);
    sim.simulator().obs().tracer.set_sink(trace_sink.get());
  }

  const int rooms = p.rows * p.cols;
  for (int i = 0; i < p.users; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % rooms));
  }
  sim.start();

  const double c0 = process_cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_for(Duration::from_seconds(p.sim_seconds));
  const auto t1 = std::chrono::steady_clock::now();
  const double c1 = process_cpu_seconds();

  if (trace_sink) {
    sim.simulator().obs().tracer.set_sink(nullptr);
    trace_sink->flush();
  }

  if (energy_out != nullptr) {
    // Probe off the 312.5 us slot lattice: integer-second instants land on
    // every device's slot grid, where exact mode has events due exactly
    // "now" that the in-event FIFO convention counts as not-yet-fired.
    // Nudging past the end keeps the two modes' completed-interval sets
    // identical. A stats() read settles each master's lazily-credited park
    // energy into its device meter before we sum.
    sim.run_for(Duration::nanos(100));
    for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
      auto& ws = sim.workstation(static_cast<core::StationId>(s));
      ws.scheduler().inquirer().stats();
      ws.scheduler().pager().stats();
      ws.scheduler().piconet().stats();
      energy_out->tx_ns += ws.device().energy().tx_time.ns();
      energy_out->listen_ns += ws.device().energy().listen_time.ns();
    }
  }

  Result r;
  r.p = p;
  r.metrics_on = metrics_on;
  r.exact_slots = exact_slots;
  r.events = sim.simulator().events_executed();
  // The traffic counters now come off the registry snapshot -- with the
  // registry gated off they read zero, which is exactly the disabled path
  // the A/B mode measures.
  const auto& m = sim.simulator().obs().metrics;
  r.skipped = m.counter_value("kernel.skipped_slots");
  r.elided_polls = m.counter_value("piconet.elided_polls");
  r.transmissions = m.counter_value("radio.transmissions");
  r.deliveries = m.counter_value("radio.deliveries");
  r.discoveries = m.counter_value("ws.discoveries");
  r.cpu_s = c1 - c0;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.cpu_s > 0 ? static_cast<double>(r.events) / r.cpu_s : 0;
  // Retired-equivalent throughput: every slot the fast-forward path elides
  // is a slot the exact drum would have paid kernel events for, so the fair
  // cross-mode unit is executed events plus skipped slots.
  r.retired_per_sec =
      r.cpu_s > 0 ? static_cast<double>(r.events + r.skipped) / r.cpu_s : 0;
  r.sim_ratio = r.cpu_s > 0 ? p.sim_seconds / r.cpu_s : 0;
  if (history_out != nullptr) {
    std::ostringstream hist;
    sim.write_history_csv(hist);
    *history_out = hist.str();
  }
  return r;
}

/// Canonical dump of the unified Query API's answers after a run: where-is
/// and history-since for every user, who-is-in for every room, where-was at
/// a spread of instants. A --par-ab subject alongside the history CSV: the
/// answers must be byte-identical across thread counts AND across location-
/// service shard counts (the partitioning must be invisible to queries).
std::string dump_queries(core::ShardedBipsSimulation& sim, int users,
                         double sim_seconds) {
  using Query = core::BipsServer::Query;
  core::BipsServer& server = sim.server();
  std::ostringstream os;
  auto put = [&os](const proto::QueryResult& r) {
    os << static_cast<int>(r.status) << '|' << r.room << '|';
    for (const auto& u : r.users) os << u << ',';
    os << '|' << r.distance << '|' << r.was_present << '|' << r.since.ns()
       << '|';
    for (const auto& v : r.visits) {
      os << v.room << (v.entered ? '+' : '-') << v.at.ns() << ',';
    }
    os << '\n';
  };
  for (int i = 0; i < users; ++i) {
    const std::string name = "User " + std::to_string(i);
    put(server.query(Query::where_is("", name)));
    put(server.query(Query::history_since("", name, SimTime::zero())));
    for (double frac : {0.5, 1.0}) {
      put(server.query(Query::where_was(
          "", name, SimTime(Duration::from_seconds(sim_seconds * frac).ns()))));
    }
  }
  for (const mobility::Room& room : sim.building().rooms()) {
    put(server.query(Query::who_is_in("", room.name)));
  }
  return os.str();
}

/// One sweep point on the sharded harness (DESIGN.md section 9): the same
/// deployment cut into `shards` zones and run on `threads` workers. The
/// captured history, presence stream, energy totals and query answers are
/// the --par-ab equivalence subjects: every one of them must be
/// byte-identical across thread counts. `service_zones` overrides the
/// location-service shard count (0 = aligned with the simulator zones).
Result run_point_sharded(const SweepPoint& p, int threads,
                         std::size_t shards, bool exact_slots,
                         std::string* history_out = nullptr,
                         std::string* presence_out = nullptr,
                         EnergyTotals* energy_out = nullptr,
                         std::string* queries_out = nullptr,
                         std::size_t service_zones = 0,
                         bool faults = false) {
  core::ShardedConfig scfg;
  scfg.base.seed = 0x5CA1E'0000ull + static_cast<std::uint64_t>(p.rows * p.cols);
  scfg.base.stagger_inquiry = true;
  scfg.base.channel.exact_slots = exact_slots;
  scfg.base.workstation.scheduler.inquiry_length = Duration::from_seconds(1.28);
  scfg.base.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  // The fault drill needs the failure detector armed: expirations and the
  // zone agents' dedup resets are part of what the byte-diff must cover.
  if (faults) scfg.base.server.station_timeout = Duration::seconds(10);
  scfg.shards = shards;
  scfg.service_zones = service_zones;

  core::ShardedBipsSimulation sim(mobility::Building::grid(p.rows, p.cols),
                                  scfg);

  // Presence capture: one sink per shard (each written only by its own
  // worker), concatenated in shard order after the run -- a deterministic
  // canonical stream for the byte-diff.
  std::vector<std::ostringstream> pstreams;
  std::vector<std::unique_ptr<obs::JsonlSink>> psinks;
  if (presence_out != nullptr) {
    pstreams.resize(sim.shard_count());
    for (std::size_t k = 0; k < sim.shard_count(); ++k) {
      psinks.push_back(std::make_unique<obs::JsonlSink>(pstreams[k]));
      sim.shard_simulator(k).obs().tracer.set_sink(psinks[k].get());
    }
  }

  const int rooms = p.rows * p.cols;
  for (int i = 0; i < p.users; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % rooms));
  }

  if (faults) {
    // Seeded chaos scaled to the point's horizon: boot for the first fifth,
    // inject across the middle three fifths, heal before the end. Short
    // outages keep the drill dense even on 10 s smoke points.
    fault::ChaosParams cp;
    cp.start = Duration::from_seconds(p.sim_seconds * 0.2);
    cp.window = Duration::from_seconds(p.sim_seconds * 0.6);
    cp.min_outage = Duration::seconds(1);
    cp.max_outage = Duration::seconds(3);
    const fault::FaultPlan plan = fault::FaultPlan::chaos(
        scfg.base.seed ^ 0xFA17ull, static_cast<std::size_t>(rooms), cp);
    plan.apply_sharded(sim);
  }
  sim.start();

  const double c0 = process_cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_for(Duration::from_seconds(p.sim_seconds),
              static_cast<unsigned>(threads));
  const auto t1 = std::chrono::steady_clock::now();
  const double c1 = process_cpu_seconds();

  if (queries_out != nullptr) {
    // Probe the Query API before the energy nudge so the answers are taken
    // at the same instant whether or not energy capture is on.
    *queries_out = dump_queries(sim, p.users, p.sim_seconds);
  }

  if (energy_out != nullptr) {
    // Same probe convention as the monolithic path: nudge past the slot
    // lattice, settle the lazily-credited park energy, sum in station-id
    // order.
    sim.run_for(Duration::nanos(100), static_cast<unsigned>(threads));
    for (std::size_t s = 0; s < sim.workstation_count(); ++s) {
      auto& ws = sim.workstation(static_cast<core::StationId>(s));
      ws.scheduler().inquirer().stats();
      ws.scheduler().pager().stats();
      ws.scheduler().piconet().stats();
      energy_out->tx_ns += ws.device().energy().tx_time.ns();
      energy_out->listen_ns += ws.device().energy().listen_time.ns();
    }
  }

  if (presence_out != nullptr) {
    std::string stream;
    for (std::size_t k = 0; k < sim.shard_count(); ++k) {
      sim.shard_simulator(k).obs().tracer.set_sink(nullptr);
      psinks[k]->flush();
      // Keep only the presence records: the canonical stream of what each
      // zone reported, free of kernel-sample noise.
      std::istringstream lines(pstreams[k].str());
      std::string line;
      while (std::getline(lines, line)) {
        if (line.find("\"kind\":\"presence\"") != std::string::npos) {
          stream += line;
          stream += '\n';
        }
      }
    }
    *presence_out = std::move(stream);
  }

  Result r;
  r.p = p;
  r.metrics_on = true;
  r.exact_slots = exact_slots;
  r.sharded = true;
  r.threads = threads;
  r.events = sim.group().events_executed();
  r.skipped = sim.metric_sum("kernel.skipped_slots");
  r.elided_polls = sim.metric_sum("piconet.elided_polls");
  r.transmissions = sim.metric_sum("radio.transmissions");
  r.deliveries = sim.metric_sum("radio.deliveries");
  r.discoveries = sim.metric_sum("ws.discoveries");
  r.cpu_s = c1 - c0;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  r.retired_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.events + r.skipped) / r.wall_s : 0;
  r.sim_ratio = r.wall_s > 0 ? p.sim_seconds / r.wall_s : 0;
  if (history_out != nullptr) {
    std::ostringstream hist;
    sim.write_history_csv(hist);
    *history_out = hist.str();
  }
  return r;
}

// Report schema version. v2 added per-row "threads" and "commit" (the
// sharded-kernel sweep needs both to make rows comparable across runs);
// --append refuses to mix rows across schema versions.
constexpr int kSchemaVersion = 2;

std::string git_commit() {
  FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {0};
  const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
  ::pclose(p);
  if (!got) return "unknown";
  std::string s(buf);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s.empty() ? "unknown" : s;
}

std::string render_row(const Result& r, const std::string& commit,
                       bool last) {
  char buf[896];
  std::snprintf(
      buf, sizeof buf,
      "    {\"rooms\": %d, \"users\": %d, \"sim_s\": %.1f, "
      "\"metrics\": %s, \"exact_slots\": %s, \"threads\": %d, "
      "\"commit\": \"%s\", \"events\": %llu, "
      "\"skipped_slots\": %llu, \"elided_polls\": %llu, "
      "\"transmissions\": %llu, "
      "\"deliveries\": %llu, \"discoveries\": %llu, \"cpu_s\": %.3f, "
      "\"wall_s\": %.3f, \"events_per_sec\": %.0f, "
      "\"retired_per_sec\": %.0f, \"sim_ratio\": %.1f, "
      "\"overhead_pct\": %.2f, \"speedup\": %.2f}%s\n",
      r.p.rows * r.p.cols, r.p.users, r.p.sim_seconds,
      r.metrics_on ? "true" : "false", r.exact_slots ? "true" : "false",
      r.sharded ? r.threads : 1, commit.c_str(),
      static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.skipped),
      static_cast<unsigned long long>(r.elided_polls),
      static_cast<unsigned long long>(r.transmissions),
      static_cast<unsigned long long>(r.deliveries),
      static_cast<unsigned long long>(r.discoveries), r.cpu_s, r.wall_s,
      r.events_per_sec, r.retired_per_sec, r.sim_ratio, r.overhead_pct,
      r.speedup, last ? "" : ",");
  return buf;
}

/// Writes (or, with `append`, extends) the JSON report. Appending validates
/// the existing file's schema marker first: rows from different schema
/// versions must never mix in one report. Returns false on refusal.
bool write_json(const std::vector<Result>& results, const std::string& path,
                bool smoke, bool ab, bool append) {
  const std::string commit = git_commit();
  if (append) {
    std::ifstream is(path);
    if (is) {
      std::ostringstream all;
      all << is.rdbuf();
      std::string text = all.str();
      char want[32];
      std::snprintf(want, sizeof want, "\"schema\": %d", kSchemaVersion);
      if (text.find(want) == std::string::npos) {
        std::fprintf(stderr,
                     "error: %s is not schema v%d; refusing to append "
                     "mismatched-schema rows (rewrite without --append)\n",
                     path.c_str(), kSchemaVersion);
        return false;
      }
      const std::string tail = "  ]\n}\n";
      const std::size_t pos = text.rfind(tail);
      if (pos == std::string::npos) {
        std::fprintf(stderr, "error: %s is malformed; cannot append\n",
                     path.c_str());
        return false;
      }
      std::string rows;
      for (std::size_t i = 0; i < results.size(); ++i) {
        rows += render_row(results[i], commit, i + 1 == results.size());
      }
      // The previous last row needs a trailing comma before the new block.
      std::string body = text.substr(0, pos);
      const std::size_t brace = body.rfind('}');
      if (brace != std::string::npos && body.find('{', 1) != std::string::npos) {
        body.insert(brace + 1, ",");
      }
      std::ofstream os(path);
      os << body << rows << tail;
      return true;
    }
    // No existing file: fall through to a fresh write.
  }
  std::ofstream os(path);
  os << "{\n  \"bench\": \"scale_building\",\n  \"schema\": "
     << kSchemaVersion << ",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
     << (ab ? "-ab" : "") << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << render_row(results[i], commit, i + 1 == results.size());
  }
  os << "  ]\n}\n";
  return true;
}

struct Options {
  bool smoke = false;
  bool metrics = true;
  bool ab = false;
  bool exact_slots = false;
  bool ffab = false;
  bool parab = false;         // sharded 1-thread vs N-thread byte equivalence
  bool append = false;        // extend the report instead of overwriting
  bool energy_check = false;  // --ff-ab: also byte-diff the energy ledgers
  bool faults = false;        // sharded runs: inject a seeded chaos plan
  int threads = 0;           // >0: run the sharded harness with N workers
  int shards = 4;            // sharded harness zone count
  int reps = 1;              // --ff-ab / --par-ab: best-of-N passes per mode
  double max_overhead = -1;  // <0: no gate
  double min_speedup = -1;   // <0: no gate
  std::string out = "BENCH_scale.json";
  std::string trace_path;
  std::string history_path;
  bool has_point = false;
  SweepPoint point{};
};

int run(const Options& opt) {
  print_header("SCALE", "Building-scale sweep: whole-stack events/sec");

  std::vector<SweepPoint> sweep;
  if (opt.has_point) {
    sweep = {opt.point};
  } else if (opt.smoke) {
    sweep = {{2, 2, 8, 10.0}};
  } else {
    sweep = {{2, 2, 8, 30.0},
             {2, 4, 32, 30.0},
             {4, 4, 64, 30.0},
             {4, 8, 192, 20.0},
             {8, 8, 512, 20.0},
             {8, 16, 1024, 20.0}};
  }

  TableWriter table({"rooms", "users", "sim s", "mode", "obs", "events",
                     "skipped", "cpu s", "retired/s", "sim x realtime"});
  auto add_row = [&table](const Result& r) {
    const std::string mode = r.sharded
                                 ? "par" + std::to_string(r.threads)
                                 : (r.exact_slots ? "exact" : "ff");
    table.add_row({std::to_string(r.p.rows * r.p.cols),
                   std::to_string(r.p.users), fmt(r.p.sim_seconds, 0), mode,
                   r.metrics_on ? "on" : "off", std::to_string(r.events),
                   std::to_string(r.skipped), fmt(r.cpu_s, 2),
                   fmt(r.retired_per_sec, 0), fmt(r.sim_ratio, 1)});
  };

  std::vector<Result> results;
  double worst_overhead = 0;
  double worst_speedup = 1e300;
  bool history_mismatch = false;
  bool presence_mismatch = false;
  bool energy_mismatch = false;
  bool query_mismatch = false;
  std::string first_history;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    // The trace (if requested) rides the first point's enabled run.
    const std::string trace = i == 0 ? opt.trace_path : std::string();
    if (opt.parab) {
      // Sharded-kernel thread-count equivalence: the 1-thread sequential
      // reference vs N workers, identical shard layout. Histories, presence
      // streams, energy ledgers and Query-API answers must match byte for
      // byte; wall-clock (not CPU time: workers burn CPU in parallel) gives
      // the speedup. A third pass pins the location service to ONE shard
      // (service_zones=1, the single-database reference) and byte-diffs its
      // query answers too: partitioning the service must not change an
      // answer any more than the thread count does.
      const int nthreads = opt.threads > 0 ? opt.threads : 4;
      const std::size_t shards = static_cast<std::size_t>(opt.shards);
      std::string hist1, histn, pres1, presn, q1, qn, qsingle;
      EnergyTotals energy1, energyn;
      Result r1 = run_point_sharded(p, 1, shards, opt.exact_slots, &hist1,
                                    &pres1, &energy1, &q1,
                                    /*service_zones=*/0, opt.faults);
      Result rn = run_point_sharded(p, nthreads, shards, opt.exact_slots,
                                    &histn, &presn, &energyn, &qn,
                                    /*service_zones=*/0, opt.faults);
      run_point_sharded(p, nthreads, shards, opt.exact_slots, nullptr,
                        nullptr, nullptr, &qsingle, /*service_zones=*/1,
                        opt.faults);
      for (int rep = 1; rep < opt.reps; ++rep) {
        const Result a =
            run_point_sharded(p, 1, shards, opt.exact_slots, nullptr, nullptr,
                              nullptr, nullptr, /*service_zones=*/0,
                              opt.faults);
        if (a.wall_s < r1.wall_s) r1 = a;
        const Result b =
            run_point_sharded(p, nthreads, shards, opt.exact_slots, nullptr,
                              nullptr, nullptr, nullptr, /*service_zones=*/0,
                              opt.faults);
        if (b.wall_s < rn.wall_s) rn = b;
      }
      const bool hist_ok = hist1 == histn;
      const bool pres_ok = pres1 == presn;
      const bool energy_ok = energy1 == energyn;
      const bool query_ok = q1 == qn && q1 == qsingle;
      if (!hist_ok) history_mismatch = true;
      if (!pres_ok) presence_mismatch = true;
      if (!energy_ok) energy_mismatch = true;
      if (!query_ok) query_mismatch = true;
      rn.speedup = rn.wall_s > 0 ? r1.wall_s / rn.wall_s : 0.0;
      worst_speedup = std::min(worst_speedup, rn.speedup);
      if (i == 0) first_history = hist1;
      results.push_back(r1);
      results.push_back(rn);
      add_row(r1);
      add_row(rn);
      std::printf("done: %d rooms / %d users -> 1 thread %.2f s wall, "
                  "%d threads %.2f s wall (%.2fx; history %s, presence %s, "
                  "energy %s, queries %s)\n",
                  p.rows * p.cols, p.users, r1.wall_s, nthreads, rn.wall_s,
                  rn.speedup, hist_ok ? "identical" : "DIFFERS",
                  pres_ok ? "identical" : "DIFFERS",
                  energy_ok ? "identical" : "DIFFERS",
                  query_ok ? "identical" : "DIFFERS");
    } else if (opt.threads > 0) {
      // Plain sharded run at a fixed worker count (the BENCH_scale sweep
      // rows; the equivalence gate lives in --par-ab).
      std::string* hist =
          i == 0 && !opt.history_path.empty() ? &first_history : nullptr;
      const Result r =
          run_point_sharded(p, opt.threads,
                            static_cast<std::size_t>(opt.shards),
                            opt.exact_slots, hist, nullptr, nullptr, nullptr,
                            /*service_zones=*/0, opt.faults);
      results.push_back(r);
      add_row(r);
      std::printf("done: %d rooms / %d users -> %.0f events/s wall "
                  "(%d threads, %.2f s wall, %.2f s cpu)\n",
                  p.rows * p.cols, p.users, r.events_per_sec, r.threads,
                  r.wall_s, r.cpu_s);
    } else if (opt.ffab) {
      // Exact-vs-virtual equivalence and speedup: one history-capturing
      // pass per mode (the sim is deterministic, so one capture suffices),
      // then best-of-reps interleaved passes for throughput. Noise only
      // ever slows a run down, so the per-mode max converges on the true
      // figure.
      std::string hist_exact, hist_ff;
      EnergyTotals energy_exact, energy_ff;
      EnergyTotals* e_ex = opt.energy_check ? &energy_exact : nullptr;
      EnergyTotals* e_ff = opt.energy_check ? &energy_ff : nullptr;
      Result ex = run_point(p, true, "", true, &hist_exact, e_ex);
      Result ff = run_point(p, true, trace, false, &hist_ff, e_ff);
      for (int rep = 1; rep < opt.reps; ++rep) {
        const Result ex2 = run_point(p, true, "", true);
        if (ex2.retired_per_sec > ex.retired_per_sec) ex = ex2;
        const Result ff2 = run_point(p, true, "", false);
        if (ff2.retired_per_sec > ff.retired_per_sec) ff = ff2;
      }
      const bool identical = hist_exact == hist_ff;
      if (!identical) history_mismatch = true;
      if (opt.energy_check && !(energy_exact == energy_ff)) {
        energy_mismatch = true;
        std::printf("energy DIFFERS at %d rooms / %d users: exact tx %lld ns "
                    "listen %lld ns vs ff tx %lld ns listen %lld ns\n",
                    p.rows * p.cols, p.users,
                    static_cast<long long>(energy_exact.tx_ns),
                    static_cast<long long>(energy_exact.listen_ns),
                    static_cast<long long>(energy_ff.tx_ns),
                    static_cast<long long>(energy_ff.listen_ns));
      }
      // Byte-identical histories: both modes retired the same semantic
      // slot stream, so equivalent throughput is exact-events over each
      // mode's CPU time and the speedup is the CPU-time ratio.
      ff.speedup = ff.cpu_s > 0 ? ex.cpu_s / ff.cpu_s : 0.0;
      worst_speedup = std::min(worst_speedup, ff.speedup);
      if (i == 0) first_history = hist_ff;
      results.push_back(ex);
      results.push_back(ff);
      add_row(ex);
      add_row(ff);
      const double ff_equiv =
          ff.cpu_s > 0 ? static_cast<double>(ex.events) / ff.cpu_s : 0.0;
      std::printf("done: %d rooms / %d users -> exact %.0f ev/s, "
                  "ff %.0f equiv-ev/s (%.2fx, histories %s)\n",
                  p.rows * p.cols, p.users, ex.events_per_sec, ff_equiv,
                  ff.speedup, identical ? "identical" : "DIFFER");
    } else if (opt.ab) {
      // Best-of-N per mode, interleaved, where N grows until each mode has
      // accumulated enough CPU time to measure: single passes of the small
      // points run in milliseconds, where scheduler noise dwarfs the
      // instrumentation cost the gate below is after. Noise only ever makes
      // a run slower, so the per-mode max converges on the true throughput.
      Result off = run_point(p, false, "", opt.exact_slots);
      Result on = run_point(p, true, trace, opt.exact_slots);
      double cpu_spent = off.cpu_s + on.cpu_s;
      for (int rep = 1; rep < 25 && (rep < 3 || cpu_spent < 0.5); ++rep) {
        const Result off2 = run_point(p, false, "", opt.exact_slots);
        if (off2.events_per_sec > off.events_per_sec) off = off2;
        const Result on2 = run_point(p, true, "", opt.exact_slots);
        if (on2.events_per_sec > on.events_per_sec) on = on2;
        cpu_spent += off2.cpu_s + on2.cpu_s;
      }
      on.overhead_pct = on.events_per_sec > 0
                            ? (off.events_per_sec / on.events_per_sec - 1.0) *
                                  100.0
                            : 0.0;
      worst_overhead = std::max(worst_overhead, on.overhead_pct);
      results.push_back(off);
      results.push_back(on);
      add_row(off);
      add_row(on);
      std::printf("done: %d rooms / %d users -> off %.0f ev/s, on %.0f ev/s "
                  "(overhead %+.2f%%)\n",
                  p.rows * p.cols, p.users, off.events_per_sec,
                  on.events_per_sec, on.overhead_pct);
    } else {
      std::string* hist =
          i == 0 && !opt.history_path.empty() ? &first_history : nullptr;
      const Result r = run_point(p, opt.metrics, trace, opt.exact_slots, hist);
      results.push_back(r);
      add_row(r);
      std::printf("done: %d rooms / %d users -> %.0f events/s (%.2f s cpu)\n",
                  p.rows * p.cols, p.users, r.events_per_sec, r.cpu_s);
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!write_json(results, opt.out, opt.smoke, opt.ab || opt.ffab || opt.parab,
                  opt.append)) {
    return 1;
  }
  std::printf("report written to %s\n", opt.out.c_str());
  if (!opt.trace_path.empty()) {
    std::printf("trace written to %s\n", opt.trace_path.c_str());
  }
  if (!opt.history_path.empty()) {
    std::ofstream hist_os(opt.history_path);
    if (!hist_os) {
      std::fprintf(stderr, "error: cannot open history sink %s\n",
                   opt.history_path.c_str());
      return 1;
    }
    hist_os << first_history;
    std::printf("discovery history written to %s\n", opt.history_path.c_str());
  }

  if (opt.parab) {
    if (history_mismatch || presence_mismatch || energy_mismatch ||
        query_mismatch) {
      std::printf("FAIL: sharded outputs differ across thread or shard "
                  "counts (history %s, presence %s, energy %s, queries %s) "
                  "-- neither thread count nor service partitioning may "
                  "change one byte\n",
                  history_mismatch ? "DIFFERS" : "ok",
                  presence_mismatch ? "DIFFERS" : "ok",
                  energy_mismatch ? "DIFFERS" : "ok",
                  query_mismatch ? "DIFFERS" : "ok");
      return 1;
    }
    std::printf("OK: sharded history, presence stream, energy ledgers and "
                "query answers are byte-identical across thread counts (and "
                "vs the single-database service) at every point\n");
    if (opt.min_speedup >= 0) {
      if (worst_speedup < opt.min_speedup) {
        std::printf("FAIL: parallel wall-clock speedup %.2fx is below the "
                    "%.2fx floor\n",
                    worst_speedup, opt.min_speedup);
        return 1;
      }
      std::printf("OK: worst parallel wall-clock speedup %.2fx clears the "
                  "%.2fx floor\n",
                  worst_speedup, opt.min_speedup);
    }
  }

  if (opt.ffab) {
    if (history_mismatch) {
      std::printf("FAIL: exact-slot and fast-forward discovery histories "
                  "differ -- the modes must be byte-equivalent\n");
      return 1;
    }
    std::printf("OK: exact-slot and fast-forward discovery histories are "
                "byte-identical at every point\n");
    if (opt.energy_check) {
      if (energy_mismatch) {
        std::printf("FAIL: master energy ledgers differ across modes -- the "
                    "lazily-credited park energy must be exact\n");
        return 1;
      }
      std::printf("OK: master energy ledgers (TX + listen time) are "
                  "identical across modes at every point\n");
    }
    if (opt.min_speedup >= 0) {
      if (worst_speedup < opt.min_speedup) {
        std::printf("FAIL: fast-forward speedup %.2fx is below the %.2fx "
                    "floor\n",
                    worst_speedup, opt.min_speedup);
        return 1;
      }
      std::printf("OK: worst fast-forward speedup %.2fx clears the %.2fx "
                  "floor\n",
                  worst_speedup, opt.min_speedup);
    }
  }

  if (opt.ab && opt.max_overhead >= 0) {
    if (worst_overhead > opt.max_overhead) {
      std::printf("FAIL: enabled-metrics overhead %.2f%% exceeds the %.2f%% "
                  "budget\n",
                  worst_overhead, opt.max_overhead);
      return 1;
    }
    std::printf("OK: worst enabled-metrics overhead %.2f%% within the "
                "%.2f%% budget\n",
                worst_overhead, opt.max_overhead);
  }
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main(int argc, char** argv) {
  bips::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      opt.metrics = false;
    } else if (std::strcmp(argv[i], "--ab") == 0) {
      opt.ab = true;
    } else if (std::strcmp(argv[i], "--ff-ab") == 0) {
      opt.ffab = true;
    } else if (std::strcmp(argv[i], "--par-ab") == 0) {
      opt.parab = true;
    } else if (std::strcmp(argv[i], "--append") == 0) {
      opt.append = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
      if (opt.threads < 1) opt.threads = 1;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = std::atoi(argv[++i]);
      if (opt.shards < 1) opt.shards = 1;
    } else if (std::strcmp(argv[i], "--energy-check") == 0) {
      opt.energy_check = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      opt.faults = true;
    } else if (std::strcmp(argv[i], "--exact-slots") == 0) {
      opt.exact_slots = true;
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      opt.max_overhead = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      opt.min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
      if (opt.reps < 1) opt.reps = 1;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      opt.history_path = argv[++i];
    } else if (std::strcmp(argv[i], "--point") == 0 && i + 1 < argc) {
      bips::bench::SweepPoint p{};
      if (std::sscanf(argv[++i], "%dx%dx%dx%lf", &p.rows, &p.cols, &p.users,
                      &p.sim_seconds) != 4 ||
          p.rows < 1 || p.cols < 1 || p.users < 1 || p.sim_seconds <= 0) {
        std::fprintf(stderr, "bad --point (want RxCxUxS, e.g. 8x8x512x10)\n");
        return 2;
      }
      opt.point = p;
      opt.has_point = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [-o out.json] [--no-metrics] "
                   "[--trace trace.jsonl] [--ab] [--max-overhead PCT] "
                   "[--exact-slots] [--history FILE] [--ff-ab] [--par-ab] "
                   "[--threads N] [--shards N] [--append] [--faults] "
                   "[--energy-check] [--min-speedup X] [--reps N] "
                   "[--point RxCxUxS]\n",
                   argv[0]);
      return 2;
    }
  }
  return bips::bench::run(opt);
}
