// Ablation A4 -- coordinated inquiry schedules for overlapping piconets.
//
// The paper places one workstation per room and sizes each master's cycle
// independently; it never asks what happens where coverage circles overlap.
// There, two masters inquiring *simultaneously* interfere: their ID packets
// collide at devices in the overlap region, and simultaneous FHS responses
// to different masters collide too. Because all workstations hang off one
// LAN, a deployment can trivially stagger their operational cycles. This
// bench measures what that buys.
//
// Setup: two workstations only 8 m apart (10 m radius -> a large overlap
// lens), six handhelds standing in the middle of the overlap, full BIPS
// stack. Metric: how quickly each device first appears in the location
// database, and the radio collision count.
#include "bench/harness.hpp"

#include "src/core/simulation.hpp"

namespace bips::bench {
namespace {

constexpr int kUsers = 6;
constexpr int kRuns = 15;
constexpr double kHorizon = 120.0;

struct Outcome {
  SampleSet first_seen;    // seconds until a device first hits the DB
  RunningStats collisions; // radio collisions per run
  std::size_t never_seen = 0;
};

Outcome run_mode(bool staggered) {
  Outcome o;
  for (int r = 0; r < kRuns; ++r) {
    mobility::Building b;
    const auto left = b.add_room("left", {0, 0});
    const auto right = b.add_room("right", {8, 0});
    b.connect(left, right);

    core::SimulationConfig cfg;
    cfg.seed = 0xA4'0000 + static_cast<std::uint64_t>(r) * 7 +
               (staggered ? 1 : 0) * 1000;
    cfg.stagger_inquiry = staggered;
    cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
    cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
    cfg.mobility.pause_min = Duration::seconds(100'000);
    cfg.mobility.pause_max = Duration::seconds(200'000);

    core::BipsSimulation sim(std::move(b), cfg);
    std::vector<std::string> ids;
    for (int i = 0; i < kUsers; ++i) {
      const std::string id = "u" + std::to_string(i);
      sim.add_user("User " + std::to_string(i), id, "pw", left);
      ids.push_back(id);
    }
    // Everyone stands in the middle of the overlap lens.
    for (const auto& id : ids) {
      sim.client(id)->device().set_position_provider(
          [] { return Vec2{4, 0}; });
    }
    sim.run_for(Duration::from_seconds(kHorizon));

    for (const auto& id : ids) {
      const std::uint64_t addr = sim.client(id)->addr().raw();
      double first = -1;
      for (const auto& t : sim.server().locations().history()) {
        if (t.bd_addr == addr && t.present) {
          first = t.at.to_seconds();
          break;
        }
      }
      if (first < 0) {
        ++o.never_seen;
      } else {
        o.first_seen.add(first);
      }
    }
    o.collisions.add(static_cast<double>(
        sim.simulator().obs().metrics.counter_value("radio.collisions")));
  }
  return o;
}

int run() {
  print_header("A4",
               "Ablation: staggered vs synchronized inquiry in a coverage "
               "overlap (2 masters 8 m apart, 6 devices in the lens)");
  TableWriter table({"schedule", "mean first-seen (s)", "p95 first-seen (s)",
                     "never seen", "radio collisions/run"});
  for (const bool staggered : {false, true}) {
    const Outcome o = run_mode(staggered);
    table.add_row({staggered ? "staggered (cycle/2 offset)" : "synchronized",
                   fmt(o.first_seen.mean(), 2),
                   fmt(o.first_seen.percentile(95), 2),
                   std::to_string(o.never_seen),
                   fmt(o.collisions.mean(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: synchronized inquiry slots collide in the overlap lens\n"
      "(ID/ID and FHS/FHS interference) and slow first contact; a cycle/2\n"
      "offset removes the contention for free over the shared LAN.\n");
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
