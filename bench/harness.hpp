// Shared helpers for the experiment benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/time.hpp"

namespace bips::bench {

/// One self-contained radio world per trial: simulator + RNG + channel.
struct World {
  sim::Simulator sim;
  Rng rng;
  baseband::RadioChannel radio;

  explicit World(std::uint64_t seed,
                 baseband::ChannelConfig ccfg = baseband::ChannelConfig{})
      : rng(seed), radio(sim, rng, ccfg) {}

  std::unique_ptr<baseband::Device> device(std::uint64_t addr) {
    return std::make_unique<baseband::Device>(sim, radio,
                                              baseband::BdAddr(addr),
                                              rng.fork());
  }

  void run_for(Duration d) { sim.run_until(sim.now() + d); }

  /// The trial's metrics/trace namespace (per-simulator, so every World is
  /// an isolated measurement).
  obs::Observability& obs() { return sim.obs(); }
};

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", id, title);
  std::printf("================================================================\n");
}

}  // namespace bips::bench
