// Ablation A1 -- inquiry-response backoff window vs discovery performance.
//
// The spec's uniform[0, 1023]-slot backoff (0..0.64 s) is the design knob
// that trades discovery latency against response collisions. A small window
// answers faster but lets simultaneous slaves collide repeatedly; a large
// window wastes time when the piconet is sparse. This sweep quantifies the
// trade-off the paper's collision extension to BlueHoc was built to study.
#include "bench/harness.hpp"

#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"

namespace bips::bench {
namespace {

constexpr int kRuns = 30;
constexpr double kHorizon = 12.0;

struct Outcome {
  double mean_discovery = 0.0;  // seconds, discovered slaves only
  double within_1s = 0.0;       // fraction discovered in the first second
  double discovered = 0.0;      // fraction discovered at all
  double collisions = 0.0;      // channel collisions per run
};

Outcome sweep_point(int backoff_slots, int n_slaves) {
  SampleSet times;
  RunningStats collisions;
  std::size_t found_total = 0, within = 0;
  for (int r = 0; r < kRuns; ++r) {
    World w(0xAB'0000 + static_cast<std::uint64_t>(backoff_slots) * 131 +
            static_cast<std::uint64_t>(n_slaves) * 17 +
            static_cast<std::uint64_t>(r));
    auto master = w.device(0xA1);
    std::unordered_map<std::uint64_t, double> first;
    baseband::Inquirer inq(*master, baseband::InquiryConfig{},
                           [&](const baseband::InquiryResponse& resp) {
                             first.try_emplace(resp.addr.raw(),
                                               resp.received_at.to_seconds());
                           });
    std::vector<std::unique_ptr<baseband::Device>> devices;
    std::vector<std::unique_ptr<baseband::InquiryScanner>> scanners;
    for (int i = 0; i < n_slaves; ++i) {
      devices.push_back(w.device(0xB00 + static_cast<std::uint64_t>(i)));
      baseband::ScanConfig scan;
      scan.window = scan.interval = kDefaultScanInterval;
      scan.channel_mode = baseband::ScanChannelMode::kFixed;
      baseband::BackoffConfig bo;
      bo.max_slots = backoff_slots;
      auto sc = std::make_unique<baseband::InquiryScanner>(*devices.back(),
                                                           scan, bo);
      sc->set_initial_channel(
          static_cast<std::uint32_t>(w.rng.uniform(baseband::kTrainSize)));
      sc->start_with_phase(Duration(0));
      scanners.push_back(std::move(sc));
    }
    inq.start();
    w.run_for(Duration::from_seconds(kHorizon));
    for (const auto& [addr, t] : first) {
      times.add(t);
      ++found_total;
      if (t <= 1.0) ++within;
    }
    collisions.add(static_cast<double>(
        w.obs().metrics.counter_value("radio.collisions")));
  }
  Outcome o;
  o.mean_discovery = times.mean();
  o.within_1s = static_cast<double>(within) /
                static_cast<double>(kRuns * n_slaves);
  o.discovered = static_cast<double>(found_total) /
                 static_cast<double>(kRuns * n_slaves);
  o.collisions = collisions.mean();
  return o;
}

int run() {
  print_header("A1", "Ablation: response-backoff window (spec: 1023 slots)");
  for (int n_slaves : {5, 10, 20}) {
    std::printf("--- %d slaves, dedicated master, train A channels ---\n",
                n_slaves);
    TableWriter table({"backoff max (slots)", "mean discovery (s)",
                       "discovered <= 1 s", "discovered (total)",
                       "collisions/run"});
    for (int slots : {63, 127, 255, 511, 1023, 2047}) {
      const Outcome o = sweep_point(slots, n_slaves);
      table.add_row({std::to_string(slots), fmt(o.mean_discovery, 3),
                     fmt_pct(o.within_1s, 1), fmt_pct(o.discovered, 1),
                     fmt(o.collisions, 1)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "reading: small windows answer fast but collide when the room is\n"
      "crowded; the spec's 1023 keeps collisions negligible at 20 slaves\n"
      "while still fitting discovery into a ~1 s inquiry slot most of the\n"
      "time -- the balance Figure 2 relies on.\n");
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
