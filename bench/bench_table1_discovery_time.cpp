// Experiment T1 -- reproduces the table in section 4.1 of the paper.
//
// Setup (as in the paper's hardware experiment):
//  * the master is completely dedicated to the inquiry procedure;
//  * one slave alternates inquiry-scan and page-scan windows, each with the
//    default T_w = 11.25 ms inside the default T = 1.28 s interval;
//  * 500 trials; each measures the interval from the instant the master
//    enters the inquiry state until it receives the slave's FHS response;
//  * trials are classified by whether the slave's starting scan channel
//    belongs to the master's starting train (train A).
//
// Paper's measured values:   Same 236 trials 1.6028 s
//                            Different 264 trials 4.1320 s
//                            Mixed 500 trials 2.865 s
#include "bench/harness.hpp"

#include "src/baseband/slave.hpp"

namespace bips::bench {
namespace {

struct Trial {
  bool same_train = false;
  double seconds = 0.0;
};

Trial run_trial(std::uint64_t seed) {
  World w(seed);
  auto master = w.device(0xA1);

  baseband::SlaveConfig scfg;
  // The Table 1 classification needs the train alignment to persist for the
  // few seconds a trial lasts.
  scfg.inquiry_scan.channel_mode = baseband::ScanChannelMode::kStickyTrain;
  // "The slave alternates the periods of inquiry scan and page scan": each
  // scan type gets every other 1.28 s period, so a given type recurs every
  // 2.56 s (SlaveController offsets the page-scan phase by half).
  scfg.inquiry_scan.interval = Duration::millis(2560);
  scfg.page_scan.interval = Duration::millis(2560);
  baseband::SlaveController slave(w.sim, w.radio, baseband::BdAddr(0xB1),
                                  w.rng.fork(), scfg);

  std::optional<SimTime> discovered;
  baseband::InquiryConfig icfg;  // defaults: start train A, switch at 2.56 s
  baseband::Inquirer inq(*master, icfg, [&](const baseband::InquiryResponse& r) {
    if (!discovered) discovered = r.received_at;
  });

  slave.start();
  const bool same =
      slave.inquiry_scanner().current_train() == baseband::Train::kA;

  inq.start();  // t = 0: the measured interval starts here
  const Duration cap = Duration::seconds(30);
  while (!discovered && w.sim.now() < SimTime(cap.ns())) {
    w.run_for(Duration::millis(100));
  }
  Trial t;
  t.same_train = same;
  t.seconds = discovered ? discovered->to_seconds() : cap.to_seconds();
  return t;
}

int run() {
  print_header("T1", "Average device-discovery time (section 4.1 table)");
  constexpr int kTrials = 500;

  SampleSet same, diff, mixed;
  Histogram hist(0.0, 8.0, 16);
  for (int i = 0; i < kTrials; ++i) {
    const Trial t = run_trial(0x7A11'0000 + static_cast<std::uint64_t>(i));
    (t.same_train ? same : diff).add(t.seconds);
    mixed.add(t.seconds);
    hist.add(t.seconds);
  }

  TableWriter table({"Starting Train", "Case No.", "Taverage (measured)",
                     "Paper Case No.", "Paper Taverage"});
  table.add_row({"Same", std::to_string(same.count()),
                 fmt(same.mean(), 4) + " +- " + fmt(same.ci95_halfwidth(), 3) +
                     " s",
                 "236", "1.6028 s"});
  table.add_row({"Different", std::to_string(diff.count()),
                 fmt(diff.mean(), 4) + " +- " + fmt(diff.ci95_halfwidth(), 3) +
                     " s",
                 "264", "4.1320 s"});
  table.add_row({"Mixed", std::to_string(mixed.count()),
                 fmt(mixed.mean(), 4) + " +- " +
                     fmt(mixed.ci95_halfwidth(), 3) + " s",
                 "500", "2.865 s"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("detail (measured):\n");
  std::printf("  same:      stddev %.3f s, median %.3f s, p95 %.3f s\n",
              same.stddev(), same.median(), same.percentile(95));
  std::printf("  different: stddev %.3f s, median %.3f s, p95 %.3f s\n",
              diff.stddev(), diff.median(), diff.percentile(95));
  std::printf("  train split: %.1f%% same / %.1f%% different "
              "(paper: ~50/50)\n\n",
              100.0 * static_cast<double>(same.count()) / kTrials,
              100.0 * static_cast<double>(diff.count()) / kTrials);
  std::printf("discovery-time distribution, all %d trials:\n%s\n", kTrials,
              hist.ascii(48).c_str());
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
