// Ablation A3 -- full-stack tracking quality vs the master's inquiry slot.
//
// The paper picks a 3.84 s inquiry slot inside a 15.4 s operational cycle
// (the mean piconet crossing time) and estimates a ~24% tracking load. This
// bench runs the complete BIPS deployment -- department building, walking
// users, piconets, LAN, location database -- and measures what the choice
// buys: location-database accuracy against mobility ground truth, and the
// presence-update traffic it costs.
#include "bench/harness.hpp"

#include "src/core/simulation.hpp"

namespace bips::bench {
namespace {

constexpr int kUsers = 6;
constexpr double kSimSeconds = 600;

struct Outcome {
  core::TrackingMetrics tracking;
  std::uint64_t presence_updates = 0;
  std::uint64_t logins = 0;
  double duty = 0.0;
};

Outcome run_once(double inquiry_s, double cycle_s) {
  core::SimulationConfig cfg;
  cfg.seed = 0xA3'0000 + static_cast<std::uint64_t>(inquiry_s * 100);
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(inquiry_s);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(cycle_s);
  cfg.mobility.pause_min = Duration::seconds(15);
  cfg.mobility.pause_max = Duration::seconds(90);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  const char* names[] = {"Alice", "Bob", "Carol", "Dave", "Erin", "Frank"};
  for (int i = 0; i < kUsers; ++i) {
    sim.add_user(names[i], std::string("user") + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(
                     i % sim.building().room_count()));
  }
  sim.enable_tracking_metrics(Duration::seconds(1));
  sim.run_for(Duration::from_seconds(kSimSeconds));

  Outcome o;
  o.tracking = sim.tracking();
  o.presence_updates = sim.server().locations().stats().presence_updates;
  o.logins = sim.simulator().obs().metrics.counter_value("server.logins_ok");
  o.duty = inquiry_s / cycle_s;
  return o;
}

int run() {
  print_header("A3",
               "Ablation: inquiry slot vs tracking quality (full BIPS stack, "
               "6 walking users, 10-room department, 600 s)");
  TableWriter table({"inquiry slot (s)", "cycle (s)", "duty", "DB accuracy",
                     "correct", "agree-absent", "wrong", "false-absent",
                     "false-present", "presence updates"});
  const struct {
    double inquiry, cycle;
  } points[] = {
      {1.0, 15.4}, {2.0, 15.4}, {3.84, 15.4},  // the paper's pick
      {5.12, 15.4}, {3.84, 7.7},               // double duty
  };
  for (const auto& p : points) {
    const Outcome o = run_once(p.inquiry, p.cycle);
    table.add_row({fmt(p.inquiry, 2), fmt(p.cycle, 1), fmt_pct(o.duty, 1),
                   fmt_pct(o.tracking.accuracy(), 1),
                   std::to_string(o.tracking.correct_room),
                   std::to_string(o.tracking.agree_absent),
                   std::to_string(o.tracking.wrong_room),
                   std::to_string(o.tracking.false_absent),
                   std::to_string(o.tracking.false_present),
                   std::to_string(o.presence_updates)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: short slots miss walkers (false absences); the paper's\n"
      "3.84 s at ~25%% duty tracks nearly as well as doubled duty, which is\n"
      "exactly the section 5 argument.\n");
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
