// Experiment C1 -- reproduces the section 5 sizing analysis.
//
// The paper's argument:
//  * if the master spends a continuous 3.84 s slot on device discovery
//    (2.56 s to exhaust the starting train + 1.28 s on the other train) and
//    there are up to 20 slaves with ~50/50 train alignment, then on average
//    ~95% of the slaves are discovered within the slot
//    (100% of the same-train half + ~90% of the other half);
//  * a user crossing a ~20 m piconet at the average walking speed of
//    1.3 m/s stays for 20/1.3 = 15.4 s, which sizes the operational cycle;
//  * discovery therefore loads the master for 3.84/15.4 = ~24% of the time.
//
// We measure the first claim directly and recompute the other two.
#include "bench/harness.hpp"

#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/mobility/agents.hpp"

namespace bips::bench {
namespace {

constexpr int kSlaves = 20;
constexpr int kRuns = 60;
constexpr double kInquirySlot = 3.84;

/// Fraction of the population discovered within the inquiry slot.
double run_once(std::uint64_t seed) {
  World w(seed);
  auto master = w.device(0xA1);

  std::size_t found = 0;
  baseband::InquiryConfig icfg;  // train A first, switches at 2.56 s
  baseband::Inquirer inq(*master, icfg,
                         [&](const baseband::InquiryResponse&) { ++found; });

  std::vector<std::unique_ptr<baseband::Device>> devices;
  std::vector<std::unique_ptr<baseband::InquiryScanner>> scanners;
  for (int i = 0; i < kSlaves; ++i) {
    devices.push_back(w.device(0xB00 + static_cast<std::uint64_t>(i)));
    baseband::ScanConfig scan;
    scan.window = scan.interval = kDefaultScanInterval;  // enrolling mode
    scan.channel_mode = baseband::ScanChannelMode::kFixed;
    auto sc = std::make_unique<baseband::InquiryScanner>(
        *devices.back(), scan, baseband::BackoffConfig{});
    // 50/50 train alignment (the paper's premise), with the GIAC-derived
    // shared scan channel per train that gives the Figure 2 collision
    // regime the paper's "90% of the remaining half" estimate comes from.
    sc->set_initial_channel(w.rng.chance(0.5) ? 3 : 19);
    sc->start_with_phase(Duration(0));
    scanners.push_back(std::move(sc));
  }

  inq.start();
  w.run_for(Duration::from_seconds(kInquirySlot));
  inq.stop();
  return static_cast<double>(found) / kSlaves;
}

int run() {
  print_header("C1", "Master duty-cycle sizing (section 5)");

  RunningStats frac;
  for (int r = 0; r < kRuns; ++r) {
    frac.add(run_once(0xC1'0000 + static_cast<std::uint64_t>(r)));
  }

  TableWriter table({"Quantity", "Paper", "Measured / recomputed"});
  table.add_row({"slaves discovered in one 3.84 s slot (20 slaves)",
                 "~95%", fmt_pct(frac.mean(), 1) + " +- " +
                             fmt_pct(frac.ci95_halfwidth(), 1) + " (min " +
                             fmt_pct(frac.min(), 1) + ")"});

  // Crossing time: 20 m coverage diameter at the 1.3 m/s average of the
  // paper's [0, 1.5]-with-walkers range (they use 1.3).
  sim::Simulator s;
  mobility::CorridorCrosser crosser(s, {0, 0}, 10.0, 1.3);
  table.add_row({"piconet crossing time (20 m at 1.3 m/s)", "15.4 s",
                 fmt(crosser.crossing_time().to_seconds(), 1) + " s"});

  const double load =
      kInquirySlot / crosser.crossing_time().to_seconds();
  table.add_row({"tracking load of the operational cycle", "~24%",
                 fmt_pct(load, 1)});
  std::printf("%s\n", table.to_string().c_str());

  // Crossing times across the paper's walking-speed range.
  TableWriter speeds({"walking speed (m/s)", "crossing time (s)",
                      "cycles while in piconet (3.84 s inquiry slot)"});
  for (double v : {0.5, 0.8, 1.0, 1.3, 1.5}) {
    sim::Simulator s2;
    mobility::CorridorCrosser c2(s2, {0, 0}, 10.0, v);
    const double cross = c2.crossing_time().to_seconds();
    speeds.add_row({fmt(v, 1), fmt(cross, 1), fmt(cross / 15.4, 2)});
  }
  std::printf("%s\n", speeds.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
