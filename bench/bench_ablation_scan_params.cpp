// Ablation A2 -- slave scan schedule (T_w, T_inquiry_scan) vs discovery time.
//
// The paper's client alternates inquiry scan and page scan (effective
// inquiry-scan cycle 2.56 s), giving the ~1.6 s same-train average: mean
// first-window wait (cycle/2 = 1.28 s) + mean response backoff (0.32 s).
// This sweep shows the decomposition holds across schedules -- the knob a
// deployment would turn if handheld battery budgets allowed more
// aggressive scanning.
#include "bench/harness.hpp"

#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"

namespace bips::bench {
namespace {

constexpr int kTrials = 120;

struct Point {
  double mean_discovery = 0.0;
  double mean_radio_duty = 0.0;  // slave radio-on fraction (energy cost)
};

Point measure(Duration window, Duration interval) {
  SampleSet times;
  RunningStats duty;
  for (int r = 0; r < kTrials; ++r) {
    World w(0xA2'0000 + static_cast<std::uint64_t>(interval.ns() / 1000) +
            static_cast<std::uint64_t>(window.ns() / 100) * 7 +
            static_cast<std::uint64_t>(r) * 1009);
    auto master = w.device(0xA1);
    std::optional<double> found;
    baseband::Inquirer inq(*master, baseband::InquiryConfig{},
                           [&](const baseband::InquiryResponse& resp) {
                             if (!found) found = resp.received_at.to_seconds();
                           });
    auto slave = w.device(0xB1);
    baseband::ScanConfig scan;
    scan.window = window;
    scan.interval = interval;
    scan.channel_mode = baseband::ScanChannelMode::kStickyTrain;
    baseband::InquiryScanner sc(*slave, scan, baseband::BackoffConfig{});
    sc.set_initial_channel(
        static_cast<std::uint32_t>(w.rng.uniform(baseband::kTrainSize)));
    sc.start();
    inq.start();
    while (!found && w.sim.now() < SimTime(Duration::seconds(25).ns())) {
      w.run_for(Duration::millis(100));
    }
    times.add(found.value_or(25.0));
    sc.stop();  // credit open listens before reading the meter
    duty.add(slave->energy().duty(w.sim.now() - SimTime::zero()));
  }
  return Point{times.mean(), duty.mean()};
}

int run() {
  print_header("A2", "Ablation: slave scan schedule (same-train slave)");
  TableWriter table({"T_w (ms)", "T_interval (s)", "schedule duty",
                     "measured mean (s)", "interval/2 + 0.32 model (s)",
                     "measured radio duty"});
  const struct {
    Duration window;
    Duration interval;
  } points[] = {
      {Duration::micros(11'250), Duration::millis(2560)},
      {Duration::micros(11'250), Duration::millis(1280)},  // spec default
      {Duration::micros(11'250), Duration::millis(640)},
      {Duration::micros(11'250), Duration::millis(320)},
      {Duration::micros(22'500), Duration::millis(1280)},
      {Duration::micros(45'000), Duration::millis(1280)},
      {Duration::millis(1280), Duration::millis(1280)},  // continuous scan
  };
  for (const auto& p : points) {
    const Point m = measure(p.window, p.interval);
    // First-window wait (the schedule starts at a random phase, so
    // interval/2 on average -- also for continuous scanning) + mean
    // backoff; the slave listens continuously after its backoff, so there
    // is no third wait. Intervals beyond ~1.9 s pick up an extra tail from
    // backoffs straddling the master's 2.56 s train switch.
    const double iv = p.interval.to_seconds();
    const double model = iv / 2 + 0.32;
    table.add_row({fmt(p.window.to_millis(), 2), fmt(iv, 2),
                   fmt_pct(p.window.to_seconds() / iv, 1),
                   fmt(m.mean_discovery, 3), fmt(model, 3),
                   fmt_pct(m.mean_radio_duty, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: the spec default (0.9%% duty) lands at the paper's ~1.6 s;\n"
      "halving the interval halves discovery time at double the radio-on\n"
      "cost. The window length barely matters once it covers one 10 ms\n"
      "train sweep.\n\n");

  // A2b: interlaced scan (the Bluetooth 1.2 fix) vs the classic scan, by
  // train alignment. Interlacing adds a back-to-back window on the other
  // train, so even a misaligned slave answers before the 2.56 s switch.
  TableWriter il({"scan", "slave train", "mean discovery (s)"});
  for (const bool interlaced : {false, true}) {
    for (const bool same_train : {true, false}) {
      SampleSet times;
      for (int r = 0; r < 60; ++r) {
        World w(0xA2B'000 + r * 31 + (interlaced ? 1 : 0) * 7 +
                (same_train ? 1 : 0) * 3);
        auto master = w.device(0xA1);
        std::optional<double> found;
        baseband::Inquirer inq(*master, baseband::InquiryConfig{},
                               [&](const baseband::InquiryResponse& resp) {
                                 if (!found) {
                                   found = resp.received_at.to_seconds();
                                 }
                               });
        auto slave = w.device(0xB1);
        baseband::ScanConfig scan;
        scan.channel_mode = baseband::ScanChannelMode::kStickyTrain;
        scan.interlaced = interlaced;
        baseband::InquiryScanner sc(*slave, scan, baseband::BackoffConfig{});
        sc.set_initial_channel(same_train ? 4 : 20);
        sc.start();
        inq.start();
        while (!found &&
               w.sim.now() < SimTime(Duration::seconds(20).ns())) {
          w.run_for(Duration::millis(100));
        }
        times.add(found.value_or(20.0));
      }
      il.add_row({interlaced ? "interlaced (BT 1.2)" : "classic (BT 1.1)",
                  same_train ? "same" : "different", fmt(times.mean(), 3)});
    }
  }
  std::printf("A2b -- interlaced scan ablation (paper future-work: the\n"
              "successor spec's answer to Table 1's 4.1 s worst case):\n%s\n",
              il.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
