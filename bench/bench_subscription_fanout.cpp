// Experiment S5 -- subscription fan-out vs per-watcher polling.
//
// The paper's office-watch clients poll: every watcher asks where-is once
// per sweep, so the server pays watchers x sweeps queries whether anyone
// moved or not. The subscription API inverts that: the server fans each
// presence DELTA out to the watchers interested in that one user, and a
// sweep in which nobody moved costs nothing. This bench registers 10,000
// watchers, runs busy and quiet populations (and a double-length quiet
// run), and checks the accounting identity behind the cost model:
//
//     deliveries == sum over users of (deltas[u] * watchers[u])
//
// i.e. fan-out work has NO term in sweeps or wall time -- it is driven
// entirely by how much the population actually moves. The quiet runs make
// the contrast concrete: poll-equivalent work (watchers x sweeps) doubles
// when the run doubles, while deliveries stay flat at the handful of
// arrival deltas. The process exits nonzero if the identity is violated in
// any run or if a quiet run fails to undercut the busy run's deliveries.
#include <ctime>

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/simulation.hpp"

namespace bips::bench {
namespace {

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

constexpr int kUsers = 50;
constexpr int kWatchers = 10000;
constexpr double kSweepSeconds = 5.12;  // one inquiry cycle = one poll sweep

struct Outcome {
  std::uint64_t deltas = 0;        // presence deltas published by the hub
  std::uint64_t deliveries = 0;    // watcher callbacks actually invoked
  std::uint64_t expected = 0;      // sum_u deltas[u] * watchers[u]
  std::uint64_t poll_equiv = 0;    // watchers x sweeps (the old cost)
  double cpu_s = 0;
};

Outcome run_once(bool busy, double sim_seconds, int watchers) {
  core::SimulationConfig cfg;
  cfg.seed = 0x5AB5'0000 + (busy ? 1 : 0);
  if (!busy) {
    // A population that settles down after arriving: the poll model keeps
    // paying per sweep, the subscription model goes idle with the users.
    cfg.mobility.pause_min = Duration::seconds(100000);
    cfg.mobility.pause_max = Duration::seconds(200000);
  }

  core::BipsSimulation sim(mobility::Building::grid(4, 4), cfg);
  for (int i = 0; i < kUsers; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(i % 16));
  }

  Outcome o;
  // Meters: one per user, counting that user's published deltas. These are
  // instrumentation, not watchers -- they are excluded from `deliveries`.
  std::vector<std::uint64_t> deltas_per_user(kUsers, 0);
  for (int i = 0; i < kUsers; ++i) {
    sim.server().subscriptions().subscribe_user(
        "u" + std::to_string(i),
        [&deltas_per_user, i](const core::SubscriptionHub::Event&) {
          ++deltas_per_user[static_cast<std::size_t>(i)];
        });
  }
  // The watcher fleet, round-robin over the population: watcher i follows
  // user i mod kUsers. Every callback is one unit of fan-out work.
  std::vector<std::uint64_t> watchers_per_user(kUsers, 0);
  for (int i = 0; i < watchers; ++i) {
    ++watchers_per_user[static_cast<std::size_t>(i % kUsers)];
    sim.server().subscriptions().subscribe_user(
        "u" + std::to_string(i % kUsers),
        [&o](const core::SubscriptionHub::Event&) { ++o.deliveries; });
  }

  const double c0 = process_cpu_seconds();
  sim.run_for(Duration::from_seconds(sim_seconds));
  o.cpu_s = process_cpu_seconds() - c0;

  for (int i = 0; i < kUsers; ++i) {
    o.deltas += deltas_per_user[static_cast<std::size_t>(i)];
    o.expected += deltas_per_user[static_cast<std::size_t>(i)] *
                  watchers_per_user[static_cast<std::size_t>(i)];
  }
  o.poll_equiv = static_cast<std::uint64_t>(watchers) *
                 static_cast<std::uint64_t>(sim_seconds / kSweepSeconds);
  return o;
}

int run() {
  print_header("S5",
               "Subscription fan-out cost: 10k watchers, deliveries driven "
               "by deltas, not watchers x sweeps");

  struct RunSpec {
    const char* label;
    bool busy;
    double sim_seconds;
    int watchers;
  };
  const RunSpec specs[] = {
      {"busy,   600 s, 10k watchers", true, 600, kWatchers},
      {"quiet,  600 s, 10k watchers", false, 600, kWatchers},
      {"quiet, 1200 s, 10k watchers", false, 1200, kWatchers},
  };

  TableWriter table({"scenario", "deltas", "deliveries", "poll-equiv",
                     "delivery/poll", "cpu s"});
  bool ok = true;
  std::uint64_t busy_deliveries = 0;
  std::vector<Outcome> outs;
  for (const RunSpec& s : specs) {
    const Outcome o = run_once(s.busy, s.sim_seconds, s.watchers);
    outs.push_back(o);
    if (o.deliveries != o.expected) {
      std::printf("FAIL (%s): %llu deliveries but the delta accounting "
                  "predicts %llu -- fan-out did work not attributable to a "
                  "delta\n",
                  s.label, static_cast<unsigned long long>(o.deliveries),
                  static_cast<unsigned long long>(o.expected));
      ok = false;
    }
    if (s.busy) busy_deliveries = o.deliveries;
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.4f",
                  o.poll_equiv > 0 ? static_cast<double>(o.deliveries) /
                                         static_cast<double>(o.poll_equiv)
                                   : 0.0);
    char cpu[32];
    std::snprintf(cpu, sizeof cpu, "%.2f", o.cpu_s);
    table.add_row({s.label, std::to_string(o.deltas),
                   std::to_string(o.deliveries), std::to_string(o.poll_equiv),
                   ratio, cpu});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The cost-model gates. (1) Deliveries are exactly deltas weighted by
  // interested watchers -- proved per run above. (2) An idle population
  // must cost less than a busy one under identical watcher load. (3)
  // Doubling the quiet run's duration doubles the poll-equivalent work but
  // must NOT double the deliveries: the settled population publishes
  // (almost) nothing new, so the extra sweeps are free.
  if (outs[1].deliveries >= busy_deliveries) {
    std::printf("FAIL: quiet run delivered %llu >= busy run's %llu -- "
                "deliveries should track movement\n",
                static_cast<unsigned long long>(outs[1].deliveries),
                static_cast<unsigned long long>(busy_deliveries));
    ok = false;
  }
  if (outs[2].deliveries >= 2 * outs[1].deliveries &&
      outs[2].deliveries > outs[1].deliveries + 100) {
    std::printf("FAIL: doubling the quiet run's duration scaled deliveries "
                "%llu -> %llu -- fan-out cost is tracking time, not "
                "deltas\n",
                static_cast<unsigned long long>(outs[1].deliveries),
                static_cast<unsigned long long>(outs[2].deliveries));
    ok = false;
  }
  if (ok) {
    std::printf("OK: every delivery is accounted to a presence delta; a "
                "settled population costs ~nothing regardless of watcher "
                "count or run length\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
