// Experiment A5 -- BIPS's connection-oriented tracking vs the inquiry-only
// baseline.
//
// BIPS enrolls discovered devices (page -> connect -> login -> park), so a
// tracked handheld stops answering inquiries and is followed through its
// link. The obvious simpler design -- never connect, track purely by
// periodic inquiry sightings -- is the baseline a designer would try first.
// Both run on the identical full stack (same building, same walkers, same
// seeds); only the workstation policy differs.
//
// What the connection buys: instant link-loss departure signals, service
// access (queries need a link), and quieter handhelds (a connected/parked
// slave stops scanning). What it costs: the paging traffic and the piconet
// machinery. The baseline cannot serve queries at all -- its handhelds are
// never attached to anything.
#include "bench/harness.hpp"

#include "src/core/simulation.hpp"

namespace bips::bench {
namespace {

constexpr int kUsers = 6;
constexpr double kSimSeconds = 600;

struct Outcome {
  core::TrackingMetrics tracking;
  double logged_in = 0;       // fraction of users with a session at the end
  double handheld_duty = 0;   // mean handheld radio-on fraction
  std::uint64_t presence_updates = 0;
};

Outcome run_once(bool connect) {
  core::SimulationConfig cfg;
  cfg.seed = 0xA5'0000 + (connect ? 1 : 0);
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(3.84);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(15.4);
  cfg.workstation.scheduler.page_discovered = connect;
  cfg.mobility.pause_min = Duration::seconds(15);
  cfg.mobility.pause_max = Duration::seconds(90);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  for (int i = 0; i < kUsers; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 static_cast<mobility::RoomId>(
                     i % sim.building().room_count()));
  }
  sim.enable_tracking_metrics(Duration::seconds(1));
  sim.run_for(Duration::from_seconds(kSimSeconds));

  Outcome o;
  o.tracking = sim.tracking();
  o.presence_updates = sim.server().locations().stats().presence_updates;
  int sessions = 0;
  double duty = 0;
  for (int i = 0; i < kUsers; ++i) {
    auto* c = sim.client("u" + std::to_string(i));
    if (c->logged_in()) ++sessions;
    duty += c->device().energy().duty(Duration::from_seconds(kSimSeconds));
  }
  o.logged_in = static_cast<double>(sessions) / kUsers;
  o.handheld_duty = duty / kUsers;
  return o;
}

int run() {
  print_header("A5",
               "Baseline comparison: BIPS connection-oriented tracking vs "
               "inquiry-only (6 walking users, 10 rooms, 600 s)");
  TableWriter table({"policy", "logged in", "presence-tracking accuracy*",
                     "handheld radio duty", "presence updates"});
  for (const bool connect : {true, false}) {
    const Outcome o = run_once(connect);
    // The sampler only grades logged-in users; the baseline never logs
    // anyone in, so grade its raw DB-vs-truth agreement instead.
    double acc;
    std::uint64_t samples = o.tracking.samples;
    if (samples > 0) {
      acc = o.tracking.accuracy();
    } else {
      acc = 0.0;
    }
    table.add_row({connect ? "BIPS (discover+page+connect+park)"
                           : "baseline (inquiry-only)",
                   fmt_pct(o.logged_in, 0),
                   samples > 0 ? fmt_pct(acc, 1) : "n/a (nobody logged in)",
                   fmt_pct(o.handheld_duty, 2),
                   std::to_string(o.presence_updates)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "* graded for logged-in users only; the inquiry-only baseline never\n"
      "  establishes links, so its users cannot log in or issue queries at\n"
      "  all -- the positioning *service* of the paper fundamentally needs\n"
      "  the connection. Note also the handheld energy: an enrolled (parked)\n"
      "  BIPS device stops scanning, while the baseline's devices answer\n"
      "  inquiries forever.\n");
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
