// M1 -- google-benchmark microbenchmarks of the substrates: the
// discrete-event engine, the radio channel, Dijkstra/all-pairs, the LAN and
// the wire codec. These bound how much simulated time the experiment
// benches can chew through per wall-clock second.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/baseband/device.hpp"
#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"
#include "src/net/lan.hpp"
#include "src/proto/messages.hpp"
#include "src/sim/simulator.hpp"

namespace bips {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      s.schedule(Duration::nanos(static_cast<std::int64_t>(
                     rng.uniform(1'000'000'000))),
                 [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EventCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<sim::EventHandle> hs;
    hs.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      hs.push_back(s.schedule(Duration::millis(i + 1), [] {}));
    }
    for (auto& h : hs) h.cancel();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventCancel);

void BM_PeriodicTimerTick(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int ticks = 0;
    sim::PeriodicTimer t(s, Duration::millis(1), [&] { ++ticks; });
    t.start();
    s.run_until(SimTime(Duration::seconds(10).ns()));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PeriodicTimerTick);

void BM_InquirySimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of a dedicated master + N scanning slaves.
  const auto n_slaves = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    Rng rng(7);
    baseband::RadioChannel radio(s, rng, baseband::ChannelConfig{});
    baseband::Device master(s, radio, baseband::BdAddr(0xA1), rng.fork());
    baseband::Inquirer inq(master, baseband::InquiryConfig{}, nullptr);
    std::vector<std::unique_ptr<baseband::Device>> devs;
    std::vector<std::unique_ptr<baseband::InquiryScanner>> scans;
    for (int i = 0; i < n_slaves; ++i) {
      devs.push_back(std::make_unique<baseband::Device>(
          s, radio, baseband::BdAddr(0xB00 + i), rng.fork()));
      baseband::ScanConfig scan;
      scan.window = scan.interval = kDefaultScanInterval;
      scans.push_back(std::make_unique<baseband::InquiryScanner>(
          *devs.back(), scan, baseband::BackoffConfig{}));
      scans.back()->start();
    }
    inq.start();
    s.run_until(SimTime(Duration::seconds(1).ns()));
    benchmark::DoNotOptimize(s.events_executed());
  }
}
BENCHMARK(BM_InquirySimulatedSecond)->Arg(1)->Arg(10)->Arg(20);

void BM_Dijkstra(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto b = mobility::Building::grid(side, side, 10.0);
  const graph::Graph g = b.to_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
  state.SetLabel(std::to_string(g.node_count()) + " rooms");
}
BENCHMARK(BM_Dijkstra)->Arg(4)->Arg(10)->Arg(32);

void BM_AllPairsPrecompute(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto b = mobility::Building::grid(side, side, 10.0);
  const graph::Graph g = b.to_graph();
  for (auto _ : state) {
    graph::AllPairsPaths ap(g);
    benchmark::DoNotOptimize(ap.distance(0, static_cast<graph::NodeId>(
                                                g.node_count() - 1)));
  }
  state.SetLabel(std::to_string(g.node_count()) + " rooms, offline step");
}
BENCHMARK(BM_AllPairsPrecompute)->Arg(4)->Arg(10)->Arg(16);

void BM_NextHopQuery(benchmark::State& state) {
  const auto b = mobility::Building::grid(16, 16, 10.0);
  const graph::Graph g = b.to_graph();
  const graph::AllPairsPaths ap(g);
  Rng rng(3);
  for (auto _ : state) {
    const auto a = static_cast<graph::NodeId>(rng.uniform(g.node_count()));
    const auto c = static_cast<graph::NodeId>(rng.uniform(g.node_count()));
    benchmark::DoNotOptimize(ap.next_hop(a, c));
  }
}
BENCHMARK(BM_NextHopQuery);

void BM_LanMessages(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    Rng rng(5);
    net::Lan lan(s, rng, net::Lan::Config{});
    net::Endpoint& a = lan.create_endpoint();
    net::Endpoint& b = lan.create_endpoint();
    int got = 0;
    b.set_handler([&](net::Address, const net::Payload&) { ++got; });
    for (int i = 0; i < 1'000; ++i) a.send(b.address(), {1, 2, 3, 4});
    s.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_LanMessages);

void BM_WireEncodeDecode(benchmark::State& state) {
  proto::PathReply m;
  m.query_id = 7;
  m.status = proto::QueryStatus::kOk;
  m.rooms = {"lobby", "office-a", "office-b", "seminar-room"};
  m.distance = 38.0;
  for (auto _ : state) {
    const proto::Bytes b = proto::encode(proto::Message(m));
    benchmark::DoNotOptimize(proto::decode(b));
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_RadioBroadcast(benchmark::State& state) {
  // One transmission fanned out to N listeners on the same channel.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator s;
    Rng rng(9);
    baseband::RadioChannel radio(s, rng, baseband::ChannelConfig{});
    std::vector<std::unique_ptr<baseband::Device>> devs;
    for (int i = 0; i <= n; ++i) {
      devs.push_back(std::make_unique<baseband::Device>(
          s, radio, baseband::BdAddr(1 + i), rng.fork()));
    }
    for (int i = 1; i <= n; ++i) {
      radio.start_listen(devs[i].get(), baseband::RfChannel{0, 3});
    }
    state.ResumeTiming();
    for (int k = 0; k < 100; ++k) {
      baseband::Packet p;
      p.type = baseband::PacketType::kId;
      radio.transmit(devs[0].get(), baseband::RfChannel{0, 3}, p);
      s.run();
    }
  }
  state.SetItemsProcessed(state.iterations() * 100 * n);
}
BENCHMARK(BM_RadioBroadcast)->Arg(1)->Arg(7)->Arg(20);

}  // namespace
}  // namespace bips

// ---- additional micro benches: piconet data plane and scenario parsing ----

#include "src/baseband/piconet.hpp"
#include "src/scenario/scenario.hpp"

namespace bips {
namespace {

void BM_PiconetParkUnpark(benchmark::State& state) {
  sim::Simulator s;
  Rng rng(11);
  baseband::RadioChannel radio(s, rng, baseband::ChannelConfig{});
  baseband::Device master_dev(s, radio, baseband::BdAddr(0xA1), rng.fork());
  baseband::PiconetMaster master(master_dev,
                                 baseband::PiconetMaster::Config{});
  std::vector<std::unique_ptr<baseband::Device>> devs;
  std::vector<std::unique_ptr<baseband::SlaveLink>> links;
  for (int i = 0; i < 7; ++i) {
    devs.push_back(std::make_unique<baseband::Device>(
        s, radio, baseband::BdAddr(0xB0 + i), rng.fork()));
    links.push_back(std::make_unique<baseband::SlaveLink>(*devs.back()));
    master.attach(*links.back());
  }
  for (auto _ : state) {
    master.park(baseband::BdAddr(0xB0));
    master.unpark(baseband::BdAddr(0xB0));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PiconetParkUnpark);

void BM_AclFragmentationRoundTrip(benchmark::State& state) {
  // Cost of moving a payload of `range` bytes through fragment + polls +
  // reassembly.
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator s;
    Rng rng(13);
    baseband::RadioChannel radio(s, rng, baseband::ChannelConfig{});
    baseband::Device master_dev(s, radio, baseband::BdAddr(0xA1), rng.fork());
    baseband::PiconetMaster master(master_dev,
                                   baseband::PiconetMaster::Config{});
    baseband::Device slave_dev(s, radio, baseband::BdAddr(0xB1), rng.fork());
    baseband::SlaveLink link(slave_dev);
    int got = 0;
    link.set_on_message([&](const baseband::AclPayload&) { ++got; });
    master.attach(link);
    state.ResumeTiming();
    master.send(baseband::BdAddr(0xB1), baseband::AclPayload(bytes, 7));
    while (got == 0) s.step();
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AclFragmentationRoundTrip)->Arg(100)->Arg(2'000)->Arg(50'000);

void BM_ScenarioParse(benchmark::State& state) {
  const std::string text = R"(
seed 7
stagger on
inquiry 3.84
cycle 15.4
room lobby 0 0
room lab 14 0
room office 28 0
edge lobby lab
edge lab office
user Alice alice pw-a lobby
user Bob bob pw-b lab
run 300
)";
  for (auto _ : state) {
    core::ScenarioError err;
    benchmark::DoNotOptimize(core::parse_scenario(text, &err));
  }
}
BENCHMARK(BM_ScenarioParse);

}  // namespace
}  // namespace bips
