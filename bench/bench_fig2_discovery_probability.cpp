// Experiment F2 -- reproduces Figure 2 of the paper ("Inquiry and
// connection management").
//
// Setup (the paper's BlueHoc simulation, section 4.2):
//  * one master alternates device discovery and connection management:
//    inquiry slot of 1 s at the start of every 5 s operational cycle;
//  * the master transmits inquiry messages using train A only;
//  * slaves are always in inquiry-scan mode and start listening on train A
//    frequencies;
//  * the collision mechanism is active: two slaves answering the same ID
//    destroy both FHS packets at the master;
//  * N in {2, 4, 6, 8, 10, 15, 20}; the plotted series is the probability
//    that a slave has been discovered by time t (0..14 s).
//
// Paper's reading of the figure: with 10 slaves ~90% are discovered within
// the first 1 s inquiry slot and 100% within the second cycle; with 15-20
// slaves all are discovered in 2 cycles.
#include "bench/harness.hpp"

#include "src/baseband/scheduler.hpp"

namespace bips::bench {
namespace {

constexpr int kRuns = 40;               // replications per population size
constexpr double kHorizon = 14.0;       // the figure's x-axis
constexpr double kStep = 0.5;           // sampling grid

/// Returns per-slave first-discovery times (capped at horizon+1 if never).
std::vector<double> run_once(int n_slaves, std::uint64_t seed) {
  World w(seed);
  auto master_dev = w.device(0xA1);

  baseband::SchedulerConfig cfg;
  cfg.inquiry_length = Duration::from_seconds(1.0);
  cfg.cycle_length = Duration::from_seconds(5.0);
  cfg.inquiry.switch_trains = false;  // train A only
  cfg.page_discovered = false;        // measure pure discovery
  baseband::MasterScheduler sched(*master_dev, cfg);

  std::unordered_map<std::uint64_t, double> first_seen;
  sched.set_on_discovered([&](const baseband::InquiryResponse& r) {
    first_seen.try_emplace(r.addr.raw(), r.received_at.to_seconds());
  });

  std::vector<std::unique_ptr<baseband::Device>> devices;
  std::vector<std::unique_ptr<baseband::InquiryScanner>> scanners;
  for (int i = 0; i < n_slaves; ++i) {
    devices.push_back(w.device(0xB00 + static_cast<std::uint64_t>(i)));
    baseband::ScanConfig scan;
    scan.window = scan.interval = kDefaultScanInterval;  // always scanning
    scan.channel_mode = baseband::ScanChannelMode::kFixed;
    auto sc = std::make_unique<baseband::InquiryScanner>(
        *devices.back(), scan, baseband::BackoffConfig{});
    // "they start listening on frequencies of train A". BlueHoc derives the
    // inquiry-scan frequency from the GIAC, so every slave listens on the
    // *same* train-A channel -- which is precisely what makes simultaneous
    // FHS responses collide and caps the first-cycle discovery fraction.
    sc->set_initial_channel(3);
    sc->start_with_phase(Duration(0));
    scanners.push_back(std::move(sc));
  }

  sched.start();
  w.run_for(Duration::from_seconds(kHorizon));

  std::vector<double> times;
  times.reserve(n_slaves);
  for (const auto& d : devices) {
    const auto it = first_seen.find(d->addr().raw());
    times.push_back(it == first_seen.end() ? kHorizon + 1.0 : it->second);
  }
  return times;
}

int run(bool csv) {
  print_header("F2",
               "Discovery probability vs time, 1 s inquiry / 5 s cycle "
               "(Figure 2)");

  const std::vector<int> populations{2, 4, 6, 8, 10, 15, 20};
  std::vector<std::vector<double>> all_times(populations.size());

  for (std::size_t pi = 0; pi < populations.size(); ++pi) {
    for (int r = 0; r < kRuns; ++r) {
      auto times = run_once(populations[pi],
                            0xF160'0000 + pi * 1000 + static_cast<std::uint64_t>(r));
      all_times[pi].insert(all_times[pi].end(), times.begin(), times.end());
    }
  }

  // The figure: one column per population, one row per time step.
  std::vector<std::string> headers{"time (s)"};
  for (int n : populations) headers.push_back(std::to_string(n) + " slaves");
  TableWriter table(std::move(headers));
  for (double t = kStep; t <= kHorizon + 1e-9; t += kStep) {
    std::vector<std::string> row{fmt(t, 1)};
    for (std::size_t pi = 0; pi < populations.size(); ++pi) {
      const auto& v = all_times[pi];
      const auto found = static_cast<double>(
          std::count_if(v.begin(), v.end(), [&](double x) { return x <= t; }));
      row.push_back(fmt(found / static_cast<double>(v.size()), 3));
    }
    table.add_row(std::move(row));
  }
  // --csv emits a machine-readable series for re-plotting the figure.
  std::printf("%s\n", csv ? table.to_csv().c_str() : table.to_string().c_str());

  // The checkpoints the paper calls out.
  auto prob_at = [&](std::size_t pi, double t) {
    const auto& v = all_times[pi];
    return static_cast<double>(std::count_if(
               v.begin(), v.end(), [&](double x) { return x <= t; })) /
           static_cast<double>(v.size());
  };
  std::printf("paper checkpoints vs measured:\n");
  std::printf("  10 slaves, end of first 1 s inquiry slot: paper ~0.90, "
              "measured %.3f\n", prob_at(4, 1.0));
  std::printf("  10 slaves, end of second cycle (t=6 s):   paper 1.00, "
              "measured %.3f\n", prob_at(4, 6.0));
  std::printf("  15 slaves, end of second cycle (t=6 s):   paper 1.00, "
              "measured %.3f\n", prob_at(5, 6.0));
  std::printf("  20 slaves, end of second cycle (t=6 s):   paper 1.00, "
              "measured %.3f\n", prob_at(6, 6.0));
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  return bips::bench::run(csv);
}
