// Experiment A6 -- room capacity: enrollment at populations far beyond the
// AM_ADDR limit.
//
// A piconet holds 7 active slaves; the paper sizes discovery for "up to 20
// slaves" in one room but never says how a master *serves* them. Park mode
// is the answer: enrolled links give up their AM_ADDR and the poll loop
// rotates waiters through the active set. This bench loads one room with
// N handhelds and measures how long full enrollment takes and what the
// piconet membership looks like.
#include "bench/harness.hpp"

#include "src/core/simulation.hpp"

namespace bips::bench {
namespace {

struct Outcome {
  double all_logged_in_s = -1;  // time until every user has a session
  std::size_t active = 0, parked = 0;
  std::uint64_t parks = 0, unparks = 0;
  double mean_login_s = 0;
};

Outcome run_once(int n_users) {
  core::SimulationConfig cfg;
  cfg.seed = 0xA6'0000 + static_cast<std::uint64_t>(n_users);
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(100'000);
  cfg.mobility.pause_max = Duration::seconds(200'000);

  core::BipsSimulation sim(mobility::Building::corridor(1), cfg);
  for (int i = 0; i < n_users; ++i) {
    sim.add_user("User " + std::to_string(i), "u" + std::to_string(i), "pw",
                 0);
  }

  Outcome o;
  RunningStats login_times;
  std::vector<bool> counted(static_cast<std::size_t>(n_users), false);
  const double horizon = 600;
  for (double t = 1; t <= horizon; t += 1) {
    sim.run_for(Duration::seconds(1));
    int logged = 0;
    for (int i = 0; i < n_users; ++i) {
      if (sim.client("u" + std::to_string(i))->logged_in()) {
        ++logged;
        if (!counted[static_cast<std::size_t>(i)]) {
          counted[static_cast<std::size_t>(i)] = true;
          login_times.add(t);
        }
      }
    }
    if (logged == n_users) {
      o.all_logged_in_s = t;
      break;
    }
  }
  auto& pico = sim.workstation(0).scheduler().piconet();
  o.active = pico.active_count();
  o.parked = pico.parked_count();
  o.parks = pico.stats().parks;
  o.unparks = pico.stats().unparks;
  o.mean_login_s = login_times.mean();
  return o;
}

int run() {
  print_header("A6",
               "Room capacity with park mode: one piconet, N enrolling "
               "users (AM_ADDR limit: 7 active)");
  TableWriter table({"users", "all enrolled by", "mean login time",
                     "active", "parked", "park ops"});
  for (int n : {3, 7, 10, 20, 40}) {
    const Outcome o = run_once(n);
    table.add_row({std::to_string(n),
                   o.all_logged_in_s < 0 ? "(>600 s)"
                                         : fmt(o.all_logged_in_s, 0) + " s",
                   fmt(o.mean_login_s, 1) + " s", std::to_string(o.active),
                   std::to_string(o.parked),
                   std::to_string(o.parks) + "/" + std::to_string(o.unparks)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: beyond 7 users the active set saturates and park mode\n"
      "carries the overflow; enrollment time grows with population (the\n"
      "pager serves one page at a time per service phase) but the room\n"
      "never stops admitting members.\n");
  return 0;
}

}  // namespace
}  // namespace bips::bench

int main() { return bips::bench::run(); }
