// The central location database.
//
// Two tables, exactly as the paper describes:
//  * sessions  -- the one-to-one userid <-> BD_ADDR binding created at login
//  * presence  -- BD_ADDR -> current piconet (workstation/room id), driven
//                 by the delta updates workstations send
//
// Plus a bounded transition history for diagnostics and the evaluation
// harness (it is how tracking latency is measured).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/util/time.hpp"

namespace bips::core {

/// Workstation / room identifier (== graph node id of the topology graph).
using StationId = std::uint32_t;
inline constexpr StationId kNoStation = UINT32_MAX;

class LocationDatabase {
 public:
  struct Session {
    std::string userid;
    std::uint64_t bd_addr = 0;
    SimTime login_at;
  };

  struct Transition {
    std::uint64_t bd_addr = 0;
    StationId station = kNoStation;
    bool present = false;
    SimTime at;
    /// Global ingest sequence number (monotonic per sequence source). In a
    /// partitioned service every shard stamps from one shared source, so a
    /// k-way merge of the shard histories by `seq` reproduces the exact
    /// insertion order a single database would have had.
    std::uint64_t seq = 0;
  };

  /// A presence claim from one workstation.
  struct Claim {
    StationId station = kNoStation;
    SimTime since;
    double rssi_dbm = 0.0;
  };

  struct PresenceRecord {
    StationId station = kNoStation;
    SimTime since;
    double rssi_dbm = 0.0;
    /// The losing claim of an overlap arbitration (its workstation went
    /// silent after its delta); promoted if the winner reports absence.
    std::optional<Claim> runner_up;
  };

  /// Deprecated accessor shape kept for existing call sites; the counters
  /// live in a MetricsRegistry under "db.*" and stats() materialises this
  /// struct from them on demand.
  struct Stats {
    std::uint64_t presence_updates = 0;  // state-changing updates applied
    std::uint64_t redundant_updates = 0; // duplicates / stale, ignored
    std::uint64_t conflicts_suppressed = 0;  // weaker overlapping claims
    std::uint64_t logins = 0;
    std::uint64_t logouts = 0;
  };

  /// `registry` is where the "db.*" cells are interned -- normally the
  /// owning simulator's (`sim.obs().metrics`). Standalone construction
  /// (tools, unit tests) may pass nullptr; the database then owns a private
  /// registry so the counters still work.
  explicit LocationDatabase(std::size_t history_limit = 1024,
                            obs::MetricsRegistry* registry = nullptr);

  /// Server crash: everything here lives in memory, so sessions, presence
  /// and history are all lost. Stats survive (they are the operator's
  /// counters, not the database's state).
  void clear();

  /// Drops every runner-up claim referencing `station` (the failure
  /// detector declared it dead; its fallback claims must not be promoted
  /// later and resurrect an attribution to a dead station).
  void retire_station_claims(StationId station);

  /// Generalisation: drops every runner-up claim whose station satisfies
  /// `pred`. The partitioned service retires a whole crashed zone's claims
  /// with this so no promotion can resurrect state into a dead shard.
  void retire_claims_if(const std::function<bool(StationId)>& pred);

  // ---- sessions --------------------------------------------------------

  /// Binds userid <-> bd_addr. Fails if either side is already bound (the
  /// correspondence is one-to-one).
  bool login(std::string userid, std::uint64_t bd_addr, SimTime at);
  /// Unbinds by device address; false if not logged in.
  bool logout(std::uint64_t bd_addr);

  bool logged_in(std::string_view userid) const;
  std::optional<std::uint64_t> addr_of(std::string_view userid) const;
  std::optional<std::string> userid_of(std::uint64_t bd_addr) const;
  std::size_t session_count() const { return by_addr_.size(); }

  // ---- presence --------------------------------------------------------

  /// Applies a presence delta from `station`. Returns true if the database
  /// state changed (new presence, or a move between stations).
  ///
  /// `rssi_dbm` arbitrates overlapping piconets: when a *different* station
  /// claims a device within `conflict_window` of the current attribution,
  /// the claim only wins if its signal is at least as strong -- the closer
  /// workstation keeps the device. Older attributions always yield (the
  /// user genuinely moved).
  bool set_present(std::uint64_t bd_addr, StationId station, SimTime at,
                   double rssi_dbm = 0.0);

  /// Window within which conflicting presence claims are arbitrated by
  /// signal strength (default 5 s).
  void set_conflict_window(Duration w) { conflict_window_ = w; }

  /// Applies an absence delta. Only clears the record if the device is
  /// currently attributed to `station`: a stale absence from the previous
  /// room must not wipe a fresher presence from the next room.
  bool set_absent(std::uint64_t bd_addr, StationId station, SimTime at);

  /// The paper's spatio-temporal lookup: current piconet of a device.
  std::optional<StationId> piconet_of(std::uint64_t bd_addr) const;
  /// When the device became attributed to its current piconet.
  std::optional<SimTime> present_since(std::uint64_t bd_addr) const;

  /// Devices currently attributed to a station.
  std::size_t population_of(StationId station) const;
  /// The device addresses currently attributed to a station.
  std::vector<std::uint64_t> devices_at(StationId station) const;

  /// Temporal lookup from the transition history: where was the device at
  /// instant `at`? nullopt if it was absent, or if the answer has been
  /// evicted from the bounded history.
  struct HistoricalFix {
    StationId station = kNoStation;
    SimTime since;
  };
  std::optional<HistoricalFix> where_was(std::uint64_t bd_addr,
                                         SimTime at) const;

  /// The newest (max-seq) recorded transition of `bd_addr` with
  /// t.at <= `at`; nullptr if none survives in the bounded history. This is
  /// the primitive behind where_was; a partitioned service compares the
  /// per-shard candidates by seq to reproduce the single-database answer.
  const Transition* last_transition_at(std::uint64_t bd_addr,
                                       SimTime at) const;

  // ---- partitioned-service hooks ----------------------------------------

  /// Makes this database stamp Transition::seq from a shared counter (the
  /// service passes the same pointer to every shard). Must outlive the
  /// database; nullptr restores the private per-instance counter.
  void set_sequence_source(std::uint64_t* source) {
    seq_source_ = source != nullptr ? source : &own_seq_;
  }

  /// Everything the database holds about one device, detachable as a value:
  /// the shard handoff moves a walker's state wholesale when its winning
  /// attribution crosses a zone seam. Extraction/adoption is a re-homing,
  /// not a state change: no counters move and no history row is written.
  struct DeviceState {
    std::optional<Session> session;
    std::optional<PresenceRecord> presence;
  };
  DeviceState extract_device(std::uint64_t bd_addr);
  void adopt_device(std::uint64_t bd_addr, DeviceState st);

  std::size_t history_size() const { return history_.size(); }
  /// seq of the oldest surviving history row (history must be non-empty).
  std::uint64_t oldest_history_seq() const { return history_.front().seq; }
  /// Drops the oldest history row (global FIFO eviction is enforced by the
  /// service across shards; per-shard limits stay for standalone use).
  void pop_oldest_history() { history_.pop_front(); }

  // ---- history & stats --------------------------------------------------

  const std::deque<Transition>& history() const { return history_; }
  Stats stats() const {
    return Stats{c_presence_updates_->value(), c_redundant_updates_->value(),
                 c_conflicts_suppressed_->value(), c_logins_->value(),
                 c_logouts_->value()};
  }

 private:
  void record(std::uint64_t bd_addr, StationId station, bool present,
              SimTime at);

  std::size_t history_limit_;
  std::uint64_t own_seq_ = 0;
  std::uint64_t* seq_source_ = &own_seq_;
  Duration conflict_window_ = Duration::seconds(5);
  std::unordered_map<std::string, Session> by_userid_;
  std::unordered_map<std::uint64_t, std::string> by_addr_;
  std::unordered_map<std::uint64_t, PresenceRecord> presence_;
  std::deque<Transition> history_;
  // Fallback registry for standalone construction; cells point into either
  // this or the caller-provided registry ("db.*" names).
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* c_presence_updates_;
  obs::Counter* c_redundant_updates_;
  obs::Counter* c_conflicts_suppressed_;
  obs::Counter* c_logins_;
  obs::Counter* c_logouts_;
};

}  // namespace bips::core
