// User registry: the paper's off-line registration procedure.
//
// "An off-line procedure has been implemented for registering new BIPS
// users. The procedure associates the name of a user with a user identifier
// (userid). In this phase, a password and a set of access rights are
// defined for enforcing security and privacy issues."
//
// Access model: a user may be located by anyone (default), or only by an
// explicit allow-list of requester userids. A user may also be barred from
// formulating queries at all.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/auth.hpp"

namespace bips::core {

struct UserRecord {
  std::string userid;  // unique login identifier
  std::string name;    // display name, the key of spatio-temporal queries
  PasswordHash password;
  /// When false, only `allowed_requesters` may locate this user.
  bool locatable_by_anyone = true;
  std::unordered_set<std::string> allowed_requesters;
  /// Right to formulate queries (the paper checks "that the querying user
  /// has the right to formulate this question").
  bool may_query = true;
};

class UserRegistry {
 public:
  /// Registers a user; fails (returns false) on duplicate userid or name.
  bool register_user(std::string userid, std::string name,
                     std::string_view password, std::uint64_t salt);

  /// Registers a user whose password hash already exists (loading a saved
  /// registry); same duplicate rules as register_user.
  bool register_user_prehashed(std::string userid, std::string name,
                               PasswordHash password);

  /// All records, sorted by userid (deterministic iteration for
  /// persistence and reporting).
  std::vector<const UserRecord*> all_users() const;

  /// Removes a user; false if unknown.
  bool remove_user(std::string_view userid);

  const UserRecord* by_userid(std::string_view userid) const;
  const UserRecord* by_name(std::string_view name) const;
  std::size_t size() const { return users_.size(); }

  bool authenticate(std::string_view userid, std::string_view password) const;

  /// May `requester` locate `target`? Self-lookup is always allowed.
  bool can_locate(const UserRecord& requester, const UserRecord& target) const;

  // --- access-rights administration (off-line) -------------------------
  bool set_locatable_by_anyone(std::string_view userid, bool v);
  bool allow_requester(std::string_view target_userid,
                       std::string_view requester_userid);
  bool set_may_query(std::string_view userid, bool v);

 private:
  UserRecord* mutable_by_userid(std::string_view userid);

  std::unordered_map<std::string, UserRecord> users_;  // by userid
  std::unordered_map<std::string, std::string> name_to_userid_;
};

}  // namespace bips::core
