#include "src/core/registry.hpp"

#include <algorithm>

namespace bips::core {

bool UserRegistry::register_user(std::string userid, std::string name,
                                 std::string_view password,
                                 std::uint64_t salt) {
  return register_user_prehashed(std::move(userid), std::move(name),
                                 hash_password(password, salt));
}

bool UserRegistry::register_user_prehashed(std::string userid,
                                           std::string name,
                                           PasswordHash password) {
  if (userid.empty() || name.empty()) return false;
  if (users_.count(userid) != 0) return false;
  if (name_to_userid_.count(name) != 0) return false;
  UserRecord rec;
  rec.userid = userid;
  rec.name = name;
  rec.password = password;
  name_to_userid_.emplace(name, userid);
  users_.emplace(std::move(userid), std::move(rec));
  return true;
}

std::vector<const UserRecord*> UserRegistry::all_users() const {
  std::vector<const UserRecord*> out;
  out.reserve(users_.size());
  for (const auto& [id, rec] : users_) out.push_back(&rec);
  std::sort(out.begin(), out.end(),
            [](const UserRecord* a, const UserRecord* b) {
              return a->userid < b->userid;
            });
  return out;
}

bool UserRegistry::remove_user(std::string_view userid) {
  const auto it = users_.find(std::string(userid));
  if (it == users_.end()) return false;
  name_to_userid_.erase(it->second.name);
  users_.erase(it);
  return true;
}

const UserRecord* UserRegistry::by_userid(std::string_view userid) const {
  const auto it = users_.find(std::string(userid));
  return it == users_.end() ? nullptr : &it->second;
}

const UserRecord* UserRegistry::by_name(std::string_view name) const {
  const auto it = name_to_userid_.find(std::string(name));
  if (it == name_to_userid_.end()) return nullptr;
  return by_userid(it->second);
}

UserRecord* UserRegistry::mutable_by_userid(std::string_view userid) {
  const auto it = users_.find(std::string(userid));
  return it == users_.end() ? nullptr : &it->second;
}

bool UserRegistry::authenticate(std::string_view userid,
                                std::string_view password) const {
  const UserRecord* rec = by_userid(userid);
  if (rec == nullptr) return false;
  return verify_password(password, rec->password);
}

bool UserRegistry::can_locate(const UserRecord& requester,
                              const UserRecord& target) const {
  if (!requester.may_query) return false;
  if (requester.userid == target.userid) return true;
  if (target.locatable_by_anyone) return true;
  return target.allowed_requesters.count(requester.userid) != 0;
}

bool UserRegistry::set_locatable_by_anyone(std::string_view userid, bool v) {
  UserRecord* rec = mutable_by_userid(userid);
  if (rec == nullptr) return false;
  rec->locatable_by_anyone = v;
  return true;
}

bool UserRegistry::allow_requester(std::string_view target_userid,
                                   std::string_view requester_userid) {
  UserRecord* rec = mutable_by_userid(target_userid);
  if (rec == nullptr) return false;
  rec->allowed_requesters.insert(std::string(requester_userid));
  return true;
}

bool UserRegistry::set_may_query(std::string_view userid, bool v) {
  UserRecord* rec = mutable_by_userid(userid);
  if (rec == nullptr) return false;
  rec->may_query = v;
  return true;
}

}  // namespace bips::core
