// Building-zone partition shared by the sharded simulator and the
// partitioned location service.
//
// Both layers cut the building into the same contiguous column bands
// (vertical zones of room-centre x coordinates): the simulator runs one
// sim::Simulator per zone (src/core/parallel.*), the server runs one
// LocationShard per zone (src/core/location_service.*). Computing the seams
// in exactly one place is what makes the workstation -> shard assignment
// *consistent*: a presence delta ingested by simulator shard k is owned by
// location shard k, so the service's shards align with the simulator's and
// cross-layer routing is a single integer comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/location_db.hpp"
#include "src/mobility/building.hpp"

namespace bips::core {

class ZonePartition {
 public:
  /// Degenerate single-zone partition (everything maps to zone 0).
  ZonePartition() = default;

  /// Cuts `building` into at most `zones` contiguous column bands: the
  /// distinct room-centre x coordinates are split into as-equal-as-possible
  /// shares and each seam sits on the midpoint between its bands' border
  /// columns. `zones` is clamped to the distinct-column count (a
  /// single-column building cannot be split).
  static ZonePartition columns(const mobility::Building& building,
                               std::size_t zones);

  std::size_t zone_count() const { return seams_.size() + 1; }

  /// Zone owning x coordinate `x` (seams belong to the right band,
  /// matching std::upper_bound semantics).
  std::size_t zone_of_x(double x) const;

  /// Zone owning station / room `s` (precomputed; O(1)).
  std::size_t zone_of(StationId s) const {
    return s < station_zone_.size() ? station_zone_[s] : 0;
  }

  /// Seam x coordinates between adjacent zones, ascending
  /// (size zone_count() - 1).
  const std::vector<double>& seams() const { return seams_; }

 private:
  std::vector<double> seams_;
  std::vector<std::size_t> station_zone_;  // room id -> zone
};

}  // namespace bips::core
