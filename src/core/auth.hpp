// Password storage for the off-line registration procedure.
//
// The paper only states that "a password and a set of access rights are
// defined for enforcing security and privacy issues". We store salted,
// iterated FNV-1a digests: enough to exercise the authentication paths
// without a crypto dependency. NOT cryptographically secure -- a real
// deployment would swap in argon2/bcrypt behind the same two functions
// (documented substitution, see DESIGN.md).
#pragma once

#include <cstdint>
#include <string_view>

namespace bips::core {

struct PasswordHash {
  std::uint64_t salt = 0;
  std::uint64_t digest = 0;

  bool operator==(const PasswordHash&) const = default;
};

/// Hashes `password` under `salt` (pick the salt at random per user).
PasswordHash hash_password(std::string_view password, std::uint64_t salt);

/// Constant-shape verification (always runs the full hash).
bool verify_password(std::string_view password, const PasswordHash& stored);

}  // namespace bips::core
