#include "src/core/subscriptions.hpp"

#include <algorithm>

namespace bips::core {

void SubscriptionHub::unwatch(std::string_view userid,
                              std::uint64_t subscriber) {
  const auto it = watchers_.find(std::string(userid));
  if (it == watchers_.end()) return;
  it->second.erase(subscriber);
  if (it->second.empty()) watchers_.erase(it);
}

void SubscriptionHub::drop_subscriber(std::uint64_t subscriber) {
  for (auto it = watchers_.begin(); it != watchers_.end();) {
    it->second.erase(subscriber);
    it = it->second.empty() ? watchers_.erase(it) : std::next(it);
  }
}

std::uint64_t SubscriptionHub::subscribe_user(std::string userid,
                                              Callback cb) {
  const std::uint64_t id = next_id_++;
  user_subs_[std::move(userid)].push_back(LocalSub{id, std::move(cb)});
  return id;
}

std::uint64_t SubscriptionHub::subscribe_room(StationId station,
                                              Callback cb) {
  const std::uint64_t id = next_id_++;
  room_subs_[station].push_back(LocalSub{id, std::move(cb)});
  return id;
}

void SubscriptionHub::unsubscribe(std::uint64_t id) {
  const auto scrub = [id](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      auto& subs = it->second;
      subs.erase(std::remove_if(subs.begin(), subs.end(),
                                [id](const LocalSub& s) { return s.id == id; }),
                 subs.end());
      it = subs.empty() ? map.erase(it) : std::next(it);
    }
  };
  scrub(user_subs_);
  scrub(room_subs_);
}

void SubscriptionHub::publish(const std::string& userid, const Event& ev,
                              const DevicePush& push) const {
  const auto w = watchers_.find(userid);
  if (w != watchers_.end()) {
    for (const std::uint64_t subscriber : w->second) push(subscriber, ev);
  }
  const auto u = user_subs_.find(userid);
  if (u != user_subs_.end()) {
    for (const LocalSub& s : u->second) s.cb(ev);
  }
  const auto r = room_subs_.find(ev.station);
  if (r != room_subs_.end()) {
    for (const LocalSub& s : r->second) s.cb(ev);
  }
}

std::size_t SubscriptionHub::remote_watch_count() const {
  std::size_t n = 0;
  for (const auto& [userid, subs] : watchers_) n += subs.size();
  return n;
}

std::size_t SubscriptionHub::local_count() const {
  std::size_t n = 0;
  for (const auto& [userid, subs] : user_subs_) n += subs.size();
  for (const auto& [station, subs] : room_subs_) n += subs.size();
  return n;
}

}  // namespace bips::core
