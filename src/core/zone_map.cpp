#include "src/core/zone_map.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace bips::core {

ZonePartition ZonePartition::columns(const mobility::Building& building,
                                     std::size_t zones) {
  BIPS_ASSERT(zones >= 1);
  // The distinct room-centre x coordinates, ascending: the "columns" the
  // partition slices between.
  std::vector<double> xs;
  xs.reserve(building.room_count());
  for (const auto& room : building.rooms()) xs.push_back(room.center.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  ZonePartition p;
  const std::size_t s = std::min(zones, xs.size());
  p.seams_.reserve(s - 1);
  for (std::size_t k = 1; k < s; ++k) {
    const std::size_t first_of_k = k * xs.size() / s;
    p.seams_.push_back((xs[first_of_k - 1] + xs[first_of_k]) / 2.0);
  }
  p.station_zone_.reserve(building.room_count());
  for (const auto& room : building.rooms()) {
    p.station_zone_.push_back(p.zone_of_x(room.center.x));
  }
  return p;
}

std::size_t ZonePartition::zone_of_x(double x) const {
  return static_cast<std::size_t>(
      std::upper_bound(seams_.begin(), seams_.end(), x) - seams_.begin());
}

}  // namespace bips::core
