#include "src/core/simulation.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "src/util/log.hpp"

namespace bips::core {

namespace {
/// Stable, readable device addresses: workstations aa:00:..., handhelds
/// c0:ff:ee:...; raw 0 (the null address) is never produced.
baseband::BdAddr station_addr(StationId s) {
  return baseband::BdAddr(0xAA00'0000'0000ull + s + 1);
}
baseband::BdAddr handheld_addr(std::size_t i) {
  return baseband::BdAddr(0xC0FF'EE00'0000ull + i + 1);
}
}  // namespace

BipsSimulation::BipsSimulation(mobility::Building building,
                               SimulationConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      building_(std::move(building)),
      radio_(sim_, rng_,
             [&cfg] {
               baseband::ChannelConfig c = cfg.channel;
               c.default_range_m = cfg.coverage_radius_m;
               return c;
             }()),
      lan_(sim_, rng_, cfg.lan) {
  server_ = std::make_unique<BipsServer>(sim_, lan_, building_, cfg_.server);
  stations_.reserve(building_.room_count());
  for (const mobility::Room& room : building_.rooms()) {
    auto ws = std::make_unique<BipsWorkstation>(
        sim_, radio_, lan_, server_->address(), room.id,
        station_addr(room.id), rng_.fork(), room.center, cfg_.workstation);
    ws->set_link_resolver([this](baseband::BdAddr a) -> baseband::SlaveLink* {
      const auto it = clients_by_addr_.find(a.raw());
      return it == clients_by_addr_.end() ? nullptr : &it->second->link();
    });
    stations_.push_back(std::move(ws));
  }
}

void BipsSimulation::add_user(const std::string& name,
                              const std::string& userid,
                              const std::string& password,
                              mobility::RoomId start_room) {
  BIPS_ASSERT_MSG(!started_, "add users before starting the simulation");
  BIPS_ASSERT(start_room < building_.room_count());
  const bool registered = server_->registry().register_user(
      userid, name, password, rng_.next_u64());
  BIPS_ASSERT_MSG(registered, "duplicate userid or name");

  User u;
  u.userid = userid;
  u.name = name;

  ClientConfig ccfg;
  ccfg.userid = userid;
  ccfg.password = password;
  ccfg.slave = cfg_.slave;
  u.client = std::make_unique<BipsClient>(sim_, radio_,
                                          handheld_addr(users_.size()),
                                          rng_.fork(), std::move(ccfg));
  u.agent = std::make_unique<mobility::RandomWaypointAgent>(
      sim_, building_, server_->paths(), rng_.fork(), start_room,
      cfg_.mobility);
  // The handheld rides in its owner's pocket.
  mobility::RandomWaypointAgent* agent = u.agent.get();
  u.client->device().set_position_provider(
      [agent] { return agent->position(); });

  clients_by_addr_.emplace(u.client->addr().raw(), u.client.get());
  users_.push_back(std::move(u));
}

void BipsSimulation::start() {
  if (started_) return;
  started_ = true;
  const Duration cycle = cfg_.workstation.scheduler.cycle_length;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (cfg_.stagger_inquiry && stations_.size() > 1) {
      const Duration offset = Duration::nanos(
          cycle.ns() * static_cast<std::int64_t>(i) /
          static_cast<std::int64_t>(stations_.size()));
      stations_[i]->start_after(offset);
    } else {
      stations_[i]->start();
    }
  }
  for (auto& u : users_) {
    u.client->start();
    if (!u.provider) u.agent->start();  // custom providers drive themselves
  }
}

void BipsSimulation::run_for(Duration d) {
  start();
  sim_.run_until(sim_.now() + d);
}

const BipsSimulation::User* BipsSimulation::find_user(
    std::string_view userid) const {
  for (const auto& u : users_) {
    if (u.userid == userid) return &u;
  }
  return nullptr;
}

BipsSimulation::User* BipsSimulation::find_user(std::string_view userid) {
  for (auto& u : users_) {
    if (u.userid == userid) return &u;
  }
  return nullptr;
}

void BipsSimulation::set_position_provider(std::string_view userid,
                                           std::function<Vec2()> provider) {
  User* u = find_user(userid);
  BIPS_ASSERT(u != nullptr);
  u->provider = std::move(provider);
  u->agent->stop();
  const User* cu = u;
  u->client->device().set_position_provider([cu] { return cu->position(); });
}

void BipsSimulation::set_radio_shadowed(std::string_view userid,
                                        bool shadowed) {
  User* u = find_user(userid);
  BIPS_ASSERT(u != nullptr);
  if (u->shadowed == shadowed) return;
  u->shadowed = shadowed;
  // Re-installing the provider is what fires the device's position
  // listeners: the "teleport" both into and out of the shadow must wake a
  // quiesced master whose park proved this slave's range with a speed
  // bound.
  const User* cu = u;
  if (shadowed) {
    // 1 km off the floor plan: outside every coverage circle and any radio
    // range a scenario can configure, while keeping grid-cell keys tame.
    u->client->device().set_position_provider(
        [cu] { return cu->position() + Vec2{1000.0, 1000.0}; });
  } else {
    u->client->device().set_position_provider([cu] { return cu->position(); });
  }
}

bool BipsSimulation::radio_shadowed(std::string_view userid) const {
  const User* u = find_user(userid);
  BIPS_ASSERT(u != nullptr);
  return u->shadowed;
}

std::vector<std::string> BipsSimulation::userids() const {
  std::vector<std::string> ids;
  ids.reserve(users_.size());
  for (const User& u : users_) ids.push_back(u.userid);
  return ids;
}

BipsClient* BipsSimulation::client(std::string_view userid) {
  const User* u = find_user(userid);
  return u == nullptr ? nullptr : u->client.get();
}

mobility::RandomWaypointAgent* BipsSimulation::agent(std::string_view userid) {
  const User* u = find_user(userid);
  return u == nullptr ? nullptr : u->agent.get();
}

mobility::RoomId BipsSimulation::true_room(std::string_view userid) const {
  const User* u = find_user(userid);
  BIPS_ASSERT(u != nullptr);
  return building_.nearest_room_within(u->position(), cfg_.coverage_radius_m);
}

std::optional<StationId> BipsSimulation::db_room(
    std::string_view userid) const {
  const User* u = find_user(userid);
  BIPS_ASSERT(u != nullptr);
  return server_->locations().piconet_of(u->client->addr().raw());
}

void BipsSimulation::enable_tracking_metrics(Duration period) {
  BIPS_ASSERT(period > Duration(0));
  sampler_ = std::make_unique<sim::PeriodicTimer>(
      sim_, period, [this] { sample_tracking(); });
  sampler_->start();
}

void write_history_csv(std::ostream& os, const BipsServer& server,
                       const mobility::Building& building) {
  os << "time_s,user,device,room,event\n";
  // Same-instant transitions of *different* devices have no causal order:
  // independent piconets can retire discoveries on the same slot boundary,
  // and their kernel interleaving there is a scheduling artifact that the
  // virtual-slot fast-forward path legitimately perturbs (a woken master's
  // delivery chain carries later sequence numbers than a drumming one).
  // Canonicalise the report on (time, device); the stable sort preserves
  // the causal leave->enter order of a same-device handover.
  // The merged shard history comes back in global seq order -- the exact
  // order a single database would have recorded -- so the CSV is identical
  // at any shard count.
  std::vector<LocationDatabase::Transition> rows =
      server.locations().history();
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.at != b.at ? a.at < b.at : a.bd_addr < b.bd_addr;
  });
  for (const auto& t : rows) {
    const auto userid = server.locations().userid_of(t.bd_addr);
    char dev[16];
    std::snprintf(dev, sizeof dev, "%012llx",
                  static_cast<unsigned long long>(t.bd_addr));
    os << t.at.to_seconds() << ',' << (userid ? *userid : "") << ',' << dev
       << ',' << building.room(t.station).name << ','
       << (t.present ? "enter" : "leave") << '\n';
  }
}

void BipsSimulation::write_history_csv(std::ostream& os) const {
  core::write_history_csv(os, *server_, building_);
}

void BipsSimulation::sample_tracking() {
  for (const auto& u : users_) {
    if (!u.client->logged_in()) continue;  // BIPS only tracks logged-in users
    const mobility::RoomId truth =
        building_.nearest_room_within(u.position(), cfg_.coverage_radius_m);
    const auto believed =
        server_->locations().piconet_of(u.client->addr().raw());
    ++tracking_.samples;
    if (truth == mobility::kNoRoom) {
      believed ? ++tracking_.false_present : ++tracking_.agree_absent;
    } else if (!believed) {
      ++tracking_.false_absent;
    } else if (*believed == truth) {
      ++tracking_.correct_room;
    } else {
      ++tracking_.wrong_room;
    }
  }
}

}  // namespace bips::core
