// Full-stack BIPS simulation harness.
//
// Builds the complete deployment of the paper's Figure 1 inside one
// discrete-event simulation: a building with one workstation (piconet
// master) per room, the central server on a simulated LAN, and a population
// of registered users whose handhelds scan, get discovered, log in, are
// tracked, and can query each other's positions -- while their owners walk
// around the building.
//
// The harness also grades the service: a periodic sampler compares the
// location database against the mobility ground truth (which coverage
// circle each user actually stands in).
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/client.hpp"
#include "src/core/server.hpp"
#include "src/core/workstation.hpp"
#include "src/mobility/agents.hpp"
#include "src/mobility/building.hpp"

namespace bips::core {

struct SimulationConfig {
  std::uint64_t seed = 42;
  /// Piconet coverage radius (paper: ~10 m).
  double coverage_radius_m = 10.0;
  /// Stagger the workstations' operational cycles across the cycle length
  /// so adjacent piconets do not run their inquiry slots simultaneously
  /// (their ID/FHS traffic would collide in coverage-overlap regions).
  bool stagger_inquiry = false;
  baseband::ChannelConfig channel;
  net::Lan::Config lan;
  WorkstationConfig workstation;
  baseband::SlaveConfig slave;
  mobility::RandomWaypointAgent::Config mobility;
  BipsServer::Config server;
};

/// How well the location database matches physical reality, sampled
/// periodically per logged-in user.
struct TrackingMetrics {
  std::uint64_t samples = 0;
  std::uint64_t correct_room = 0;  // DB room == covering room
  std::uint64_t agree_absent = 0;  // DB absent & outside every piconet
  std::uint64_t wrong_room = 0;    // DB names a different room
  std::uint64_t false_absent = 0;  // in a piconet but DB has nothing yet
  std::uint64_t false_present = 0; // outside coverage but DB still has a room

  /// Fraction of samples where the DB tells the truth.
  double accuracy() const {
    return samples == 0
               ? 0.0
               : static_cast<double>(correct_room + agree_absent) /
                     static_cast<double>(samples);
  }
};

/// Dumps a server's location-transition history as the canonical CSV
/// (time_s,user,device,room,event): rows sorted on (time, device) so that
/// kernel interleavings of same-instant independent retirements -- which
/// both the virtual-slot fast-forward and the sharded parallel kernel
/// legitimately perturb -- never show in the bytes. Shared by the
/// monolithic and the sharded harness so their outputs are directly
/// diffable.
void write_history_csv(std::ostream& os, const BipsServer& server,
                       const mobility::Building& building);

class BipsSimulation {
 public:
  BipsSimulation(mobility::Building building, SimulationConfig cfg);
  BipsSimulation(const BipsSimulation&) = delete;
  BipsSimulation& operator=(const BipsSimulation&) = delete;

  /// Registers a user, creates their handheld + walking agent starting in
  /// `start_room`. Call before start().
  void add_user(const std::string& name, const std::string& userid,
                const std::string& password, mobility::RoomId start_room);

  /// Starts every workstation, handheld and agent (idempotent).
  void start();
  /// Advances simulated time by `d` (starts the system first if needed).
  void run_for(Duration d);

  sim::Simulator& simulator() { return sim_; }
  baseband::RadioChannel& radio() { return radio_; }
  net::Lan& lan() { return lan_; }
  BipsServer& server() { return *server_; }
  const mobility::Building& building() const { return building_; }

  std::size_t workstation_count() const { return stations_.size(); }
  BipsWorkstation& workstation(StationId s) { return *stations_.at(s); }

  std::size_t user_count() const { return users_.size(); }
  /// All registered userids, in registration order.
  std::vector<std::string> userids() const;
  BipsClient* client(std::string_view userid);
  mobility::RandomWaypointAgent* agent(std::string_view userid);

  /// Replaces a user's mobility with a custom position source (e.g. an
  /// AgendaAgent or a scripted path). The handheld, the ground truth
  /// (true_room) and the tracking metrics all follow it; the default
  /// random-waypoint agent is stopped. Call after add_user.
  void set_position_provider(std::string_view userid,
                             std::function<Vec2()> provider);

  /// Fault injection: puts the user's handheld radio in (or out of) an RF
  /// shadow. The owner keeps walking -- ground truth and the tracking
  /// sampler still follow the agent -- but the *device* teleports out of
  /// every coverage circle, so it stops answering inquiries and an attached
  /// master drops it via the supervision timeout. The discrete position
  /// write fires the device's position listeners, which is what wakes any
  /// fast-forwarded (quiesced) piconet that was counting on a speed bound.
  void set_radio_shadowed(std::string_view userid, bool shadowed);
  bool radio_shadowed(std::string_view userid) const;

  /// Ground truth: the piconet physically covering the user right now.
  mobility::RoomId true_room(std::string_view userid) const;
  /// What the location database believes.
  std::optional<StationId> db_room(std::string_view userid) const;

  /// Starts periodic ground-truth sampling into tracking().
  void enable_tracking_metrics(Duration period);
  const TrackingMetrics& tracking() const { return tracking_; }

  /// Dumps the location database's transition history as CSV
  /// (time_s,user,device,room,event) -- the audit trail a deployment would
  /// archive, and a convenient hand-off to plotting tools.
  void write_history_csv(std::ostream& os) const;

 private:
  struct User {
    std::string userid;
    std::string name;
    std::unique_ptr<BipsClient> client;
    std::unique_ptr<mobility::RandomWaypointAgent> agent;
    /// When set, overrides the agent as the source of truth and motion.
    std::function<Vec2()> provider;
    /// Radio shadow (see set_radio_shadowed): the device is parked far
    /// outside the building while the owner keeps moving normally.
    bool shadowed = false;

    Vec2 position() const { return provider ? provider() : agent->position(); }
  };

  const User* find_user(std::string_view userid) const;
  User* find_user(std::string_view userid);
  void sample_tracking();

  SimulationConfig cfg_;
  sim::Simulator sim_;
  Rng rng_;
  mobility::Building building_;
  baseband::RadioChannel radio_;
  net::Lan lan_;
  std::unique_ptr<BipsServer> server_;
  std::vector<std::unique_ptr<BipsWorkstation>> stations_;
  // deque: user references stay valid as later users are added (position
  // providers capture pointers into this container).
  std::deque<User> users_;
  std::unordered_map<std::uint64_t, BipsClient*> clients_by_addr_;
  bool started_ = false;
  TrackingMetrics tracking_;
  std::unique_ptr<sim::PeriodicTimer> sampler_;
};

}  // namespace bips::core
