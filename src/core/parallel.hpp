// Sharded full-stack BIPS simulation (DESIGN.md section 9).
//
// Partitions the building into vertical zones (contiguous column bands of
// room centres) and gives each zone its own sim::Simulator shard carrying
// the zone's workstations, its own radio channel, its own LAN segment and a
// dormant replica of every handheld. The shards advance in conservative-
// lookahead windows under a sim::ShardGroup; the only cross-shard traffic
// is
//   * zone-LAN -> server uplink datagrams (the server lives on shard 0),
//     carried as mailbox events due at their precomputed delivery instant;
//   * agent handoffs: a walker crossing a zone seam suspends its replica at
//     the exact crossing point and mails its TransitState (route, speed,
//     Rng, session) one window ahead to the neighbouring shard's replica.
//
// The zone seams are RF-opaque: a handheld interacts only with the radio of
// the shard that currently owns it, and goes dark for one lookahead window
// (~ms, i.e. millimetres of walk) while crossing -- the same observable
// behaviour as the walkout/walk-in the stack already handles every time a
// user leaves one room's coverage for another. In exchange, no radio state
// is shared between threads at all, and the execution is byte-identical for
// every thread count: history CSV, presence streams and energy ledgers from
// `--threads N` match `--threads 1` exactly (the --par-ab gate).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/core/zone_map.hpp"
#include "src/core/zone_ingest.hpp"
#include "src/sim/shard.hpp"

namespace bips::core {

struct ShardedConfig {
  /// The monolithic stack configuration every shard inherits.
  SimulationConfig base;
  /// Requested zone count; clamped to the number of distinct room-centre
  /// x coordinates (a single-column building cannot be split).
  std::size_t shards = 4;
  /// Location-service shard count. 0 (default) aligns the service with the
  /// simulator zones -- same ZonePartition, so a presence delta ingested
  /// by simulator shard k is owned by location shard k. Any other value
  /// decouples the two (e.g. 1 = the classic single-database server under
  /// a sharded simulator).
  std::size_t service_zones = 0;
  /// Extra one-way latency of the inter-zone uplink switch hop. Only
  /// cross-zone datagrams pay it, and it -- not the intra-zone base
  /// latency -- is the LAN leg of the lookahead window, so it trades
  /// cross-zone presence freshness (milliseconds) for window length.
  Duration uplink_extra = Duration::millis(5);
  /// Explicit window override; Duration(0) derives it (derive_window).
  Duration window = Duration(0);
};

/// The whole-building simulation, sharded. Mirrors the BipsSimulation
/// surface the bench and scenario layers consume; `threads` on run_for
/// selects the worker count without changing a single byte of output.
class ShardedBipsSimulation {
 public:
  /// The conservative window this configuration admits:
  /// min(base LAN latency + uplink extra, seam margin / ff_max_speed_mps)
  /// with the seam margin following the radio occupancy convention
  /// RadioChannel::ff_radius_for(coverage_radius, ff_slack). Returns
  /// nullopt and fills `error` for configurations with no conservative
  /// window (e.g. a zero-latency LAN).
  static std::optional<Duration> derive_window(const ShardedConfig& cfg,
                                               std::string* error);

  ShardedBipsSimulation(mobility::Building building, ShardedConfig cfg);
  ShardedBipsSimulation(const ShardedBipsSimulation&) = delete;
  ShardedBipsSimulation& operator=(const ShardedBipsSimulation&) = delete;

  /// Registers a user and creates one handheld+agent replica per shard
  /// (only the replica owning `start_room`'s zone is live). Call before
  /// start().
  void add_user(const std::string& name, const std::string& userid,
                const std::string& password, mobility::RoomId start_room);

  void start();
  /// Advances every shard by `d` in conservative windows on `threads`
  /// workers (1 = the sequential reference execution; byte-identical).
  void run_for(Duration d, unsigned threads);

  sim::ShardGroup& group() { return group_; }
  std::size_t shard_count() const { return group_.shard_count(); }
  /// The shard owning station / room `s`.
  std::size_t shard_of_station(StationId s) const {
    return station_shard_[s];
  }
  sim::Simulator& shard_simulator(std::size_t k) { return group_.shard(k); }
  /// The synchronisation window in force (kUnboundedLookahead when only
  /// one shard exists).
  Duration window() const { return window_; }

  BipsServer& server() { return *server_; }
  const mobility::Building& building() const { return building_; }
  std::size_t workstation_count() const { return stations_.size(); }
  BipsWorkstation& workstation(StationId s) { return *stations_.at(s); }
  std::size_t user_count() const { return users_.size(); }
  /// Registered userids, in add_user order (invariant grading needs the
  /// roster without reaching into the registry).
  std::vector<std::string> userids() const;

  /// Zone `k`'s LAN segment (fault injection targets it directly: link
  /// loss, loss bursts and partitions are per-zone state).
  net::Lan& shard_lan(std::size_t k) { return shards_[k]->lan; }
  /// Zone `k`'s presence ingest front-end; nullptr in single-shard worlds
  /// (stations talk straight to the server there).
  const ZoneIngest* zone_ingest(std::size_t k) const {
    return ingests_.empty() ? nullptr : ingests_[k].get();
  }
  /// Global LAN addresses of every zone agent (empty in single-shard
  /// worlds). Partition faults must keep these with the server's side so
  /// isolated stations lose their presence path too.
  std::vector<net::Address> ingest_addresses() const;

  /// Gates every shard's metrics registry at once.
  void set_metrics_enabled(bool on);
  /// Sums a registry counter across all shards (shard order).
  std::uint64_t metric_sum(std::string_view name) const;

  /// Schedules a scripted act against whichever replica of `userid` is
  /// live at `at` (scheduled into every shard; the owner guard makes
  /// exactly one fire). An act landing inside the one-window handoff
  /// blackout -- both replicas suspended -- is dropped, identically at
  /// every thread count. Call while the group is idle.
  using UserAct =
      std::function<void(BipsClient&, mobility::RandomWaypointAgent&)>;
  void schedule_user_act(SimTime at, std::string_view userid, UserAct act);
  /// Scripted RF shadow (the set_radio_shadowed fault of the monolithic
  /// harness): the flag rides handoffs with the user.
  void schedule_radio_shadow(SimTime at, std::string_view userid,
                             bool shadowed);
  /// Scripted handheld power cycle (the monolithic shadow + power_off /
  /// unshadow + power_on pair as one act): radio dark and session RAM dead
  /// at `at`, back on at `at + off_for`. The powered-off state rides
  /// handoffs with the user like the shadow flag does.
  void schedule_power_cycle(SimTime at, std::string_view userid,
                            Duration off_for);

  // ---- barrier-time observation (safe between run_for calls and inside
  // ---- the barrier hook: every shard is quiescent there) ---------------

  /// Ground truth: the piconet coverage circle the user stands in.
  mobility::RoomId true_room(std::string_view userid) const;
  /// What the location database believes.
  std::optional<StationId> db_room(std::string_view userid) const;
  /// The live replica's client (the seam-crossing blackout keeps the last
  /// owner's suspended client, whose logged_in() reads false).
  BipsClient& active_client(std::string_view userid);
  mobility::RandomWaypointAgent& active_agent(std::string_view userid);
  /// The shard currently owning the user's live replica.
  std::size_t owner_shard(std::string_view userid) const {
    return owner_[user_index(userid)];
  }

  /// Single-threaded hook at every window barrier (after handoffs and
  /// uplink mail have been drained), with the window's right edge.
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Periodic DB-vs-ground-truth grading. Multi-shard worlds sample at the
  /// first window barrier at or after each period tick (a bounded, fully
  /// deterministic quantisation); a single-shard world keeps the
  /// monolithic in-simulation sampler.
  void enable_tracking_metrics(Duration period);
  const TrackingMetrics& tracking() const { return tracking_; }

  /// The canonical discovery-history CSV (identical format to
  /// BipsSimulation::write_history_csv; same canonical sort).
  void write_history_csv(std::ostream& os) const;

 private:
  /// One zone: a simulator shard's radio, LAN segment and RNG stream. The
  /// struct is heap-pinned; runtime access is exclusively by the worker
  /// currently executing the owning shard.
  struct Shard {
    Shard(sim::Simulator& sim, Rng rng_in, baseband::ChannelConfig ccfg,
          net::Lan::Config lcfg)
        : rng(std::move(rng_in)), radio(sim, rng, ccfg), lan(sim, rng, lcfg) {}
    Rng rng;
    baseband::RadioChannel radio;
    net::Lan lan;
    std::unordered_map<std::uint64_t, BipsClient*> clients_by_addr;
  };

  /// One user's presence on one shard. Every field is written only by the
  /// owning shard's events (or single-threaded between windows), so the
  /// replicas need no locks.
  struct Replica {
    std::unique_ptr<BipsClient> client;
    std::unique_ptr<mobility::RandomWaypointAgent> agent;
    bool active = false;    // this shard owns the user right now
    bool shadowed = false;  // scripted RF shadow (travels on handoff)
    bool powered_off = false;  // scripted power cycle (travels on handoff)
  };

  struct User {
    std::string userid;
    std::string name;
    std::vector<std::unique_ptr<Replica>> replicas;  // one per shard
  };

  std::size_t shard_of_room(mobility::RoomId room) const;
  double dom_lo(std::size_t k) const;
  double dom_hi(std::size_t k) const;
  std::size_t user_index(std::string_view userid) const;

  /// (Re)installs replica (i, k)'s device position provider. The install
  /// itself fires the device's position listeners -- the discrete
  /// "teleport" into or out of the parking shadow that wakes any quiesced
  /// master relying on a speed bound.
  void install_provider(std::size_t i, std::size_t k);
  void handle_exit(std::size_t i, std::size_t k, mobility::TransitState st);
  void resume_replica(std::size_t i, std::size_t dst,
                      mobility::TransitState st,
                      BipsClient::HandoffState session, bool shadowed,
                      bool powered_off);
  void on_barrier(SimTime edge);
  /// Barrier step 1: drains every zone agent's window log, replays it
  /// through the shard-0 server in one deterministic merge order, then
  /// mirrors the server's fault/epoch state back out to the agents.
  void merge_zone_ingest(SimTime edge);
  void sample_tracking();

  ShardedConfig cfg_;
  mobility::Building building_;
  /// The zone partition (seams between adjacent zones and the
  /// station -> zone table); shared shape with the server's location
  /// shards when service_zones aligns.
  ZonePartition zones_;
  sim::ShardGroup group_;
  Duration window_ = Duration(0);
  Rng rng_;  // master stream: construction-time forks only
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<BipsServer> server_;  // lives on shard 0
  std::vector<std::unique_ptr<BipsWorkstation>> stations_;
  std::vector<std::size_t> station_shard_;
  /// Per-zone presence ingest front-ends (multi-shard worlds only): each
  /// zone's stations report presence to their local agent, the agents'
  /// window logs merge into the server at every barrier.
  std::vector<std::unique_ptr<ZoneIngest>> ingests_;
  /// Stations whose presence-stream watermark the server's failure
  /// detector dropped mid-window (written only by shard 0's worker via
  /// the server hook, drained single-threaded at the barrier).
  std::vector<StationId> pending_presence_resets_;
  /// Last server fault_generation() mirrored out to the agents.
  std::uint64_t seen_fault_generation_ = 0;
  std::deque<User> users_;
  /// Owning shard per user. Written by the owning shard's resume event,
  /// read single-threaded at barriers.
  std::vector<std::uint32_t> owner_;
  bool started_ = false;
  std::function<void(SimTime)> barrier_hook_;
  TrackingMetrics tracking_;
  Duration sample_period_ = Duration(0);
  SimTime next_sample_;
  std::unique_ptr<sim::PeriodicTimer> sampler_;  // single-shard worlds only
};

}  // namespace bips::core
