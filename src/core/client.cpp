#include "src/core/client.hpp"

#include "src/util/log.hpp"

namespace bips::core {

BipsClient::BipsClient(sim::Simulator& sim, baseband::RadioChannel& radio,
                       baseband::BdAddr addr, Rng rng, ClientConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      ctrl_(sim, radio, addr, std::move(rng), cfg_.slave),
      c_relogins_(&sim.obs().metrics.counter("client.relogin")) {
  ctrl_.set_on_connected(
      [this](baseband::BdAddr master, std::uint32_t clock, SimTime when) {
        on_connected(master, clock, when);
      });
  ctrl_.link().set_on_message(
      [this](const baseband::AclPayload& p) { on_message(p); });
}

void BipsClient::on_connected(baseband::BdAddr, std::uint32_t, SimTime) {
  ++stats_.connections;
  // The workstation attaches our link shortly *after* this callback (its
  // pager hears the final ack one packet later), so the first login attempt
  // is deferred, and retried until a reply lands -- the request or reply
  // can be lost with the link if the user walks off mid-exchange.
  if (cfg_.auto_login && !logged_in_) {
    login_retry_.call_after(Duration::millis(50));
  }
}

void BipsClient::try_login() {
  if (logged_in_ || !ctrl_.connected()) return;  // reconnect re-arms us
  proto::LoginRequest req;
  req.bd_addr = addr().raw();
  req.userid = cfg_.userid;
  req.password = cfg_.password;
  req.prior_epoch = login_epoch_;
  if (ctrl_.link().send_to_master(proto::encode(req))) {
    login_pending_ = true;
    ++stats_.logins_sent;
  }
  login_retry_.call_after(Duration::seconds(2));
}

bool BipsClient::where_is(const std::string& target_name, WhereIsCallback cb) {
  if (!ctrl_.connected()) return false;
  proto::WhereIsRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.target_user = target_name;
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  whereis_pending_.emplace(req.query_id, std::move(cb));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::find_path_to(const std::string& target_name,
                              PathCallback cb) {
  if (!ctrl_.connected()) return false;
  proto::PathRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.target_user = target_name;
  req.from_room = 0;  // filled in by the serving workstation
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  path_pending_.emplace(req.query_id, std::move(cb));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::who_is_in(const std::string& room_name, WhoIsInCallback cb) {
  if (!ctrl_.connected()) return false;
  proto::WhoIsInRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.room = room_name;
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  whoisin_pending_.emplace(req.query_id, std::move(cb));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::where_was(const std::string& target_name, SimTime at,
                           HistoryCallback cb) {
  if (!ctrl_.connected()) return false;
  proto::HistoryRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.target_user = target_name;
  req.at_time_ns = at.ns();
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  history_pending_.emplace(req.query_id, std::move(cb));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::subscribe(const std::string& target_name,
                           MovementCallback on_event,
                           SubscribeCallback on_result) {
  if (!ctrl_.connected()) return false;
  proto::SubscribeRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.target_user = target_name;
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  watches_[target_name] = std::move(on_event);
  if (on_result) subscribe_pending_.emplace(req.query_id, std::move(on_result));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::unsubscribe(const std::string& target_name,
                             SubscribeCallback on_result) {
  if (!ctrl_.connected()) return false;
  proto::SubscribeRequest req;
  req.query_id = next_query_++;
  req.requester_bd_addr = addr().raw();
  req.target_user = target_name;
  req.unsubscribe = true;
  if (!ctrl_.link().send_to_master(proto::encode(req))) return false;
  watches_.erase(target_name);
  if (on_result) subscribe_pending_.emplace(req.query_id, std::move(on_result));
  ++stats_.queries_sent;
  return true;
}

bool BipsClient::logout() {
  if (!ctrl_.connected() || !logged_in_) return false;
  proto::LogoutRequest req;
  req.bd_addr = addr().raw();
  req.userid = cfg_.userid;
  return ctrl_.link().send_to_master(proto::encode(req));
}

void BipsClient::power_off() {
  logged_in_ = false;
  login_pending_ = false;
  known_epoch_ = 0;
  login_epoch_ = 0;
  login_retry_.cancel();
  whereis_pending_.clear();
  path_pending_.clear();
  whoisin_pending_.clear();
  history_pending_.clear();
  subscribe_pending_.clear();
  watches_.clear();
  ctrl_.stop();
}

void BipsClient::power_on() {
  if (!ctrl_.connected()) {
    ctrl_.start();
  } else if (!logged_in_) {
    // The link outlived the flick; there will be no reconnect callback, so
    // re-arm the login loop by hand.
    login_retry_.call_after(Duration::millis(50));
  }
}

BipsClient::HandoffState BipsClient::suspend_handoff() {
  HandoffState st;
  st.logged_in = logged_in_;
  st.known_epoch = known_epoch_;
  st.login_epoch = login_epoch_;
  logged_in_ = false;
  known_epoch_ = 0;
  login_epoch_ = 0;
  login_pending_ = false;
  login_retry_.cancel();
  whereis_pending_.clear();
  path_pending_.clear();
  whoisin_pending_.clear();
  history_pending_.clear();
  subscribe_pending_.clear();
  watches_.clear();
  ctrl_.stop();
  return st;
}

void BipsClient::resume_handoff(const HandoffState& st) {
  logged_in_ = st.logged_in;
  known_epoch_ = st.known_epoch;
  login_epoch_ = st.login_epoch;
  login_pending_ = false;
  ctrl_.start();
}

int BipsClient::flood_logins(int n) {
  if (!ctrl_.connected()) return 0;
  int sent = 0;
  for (; sent < n; ++sent) {
    proto::LoginRequest req;
    req.bd_addr = addr().raw();
    req.userid = cfg_.userid;
    req.password = cfg_.password;
    req.prior_epoch = login_epoch_;
    if (!ctrl_.link().send_to_master(proto::encode(req))) break;
  }
  stats_.logins_sent += static_cast<std::uint64_t>(sent);
  return sent;
}

void BipsClient::on_message(const baseband::AclPayload& p) {
  auto msg = proto::decode(p);
  if (!msg) return;
  ++stats_.replies_received;
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginReply>) {
          // A reply stamped with an epoch older than the latest notice is
          // an in-flight straggler from a dead incarnation: accepting it
          // would mark a session the restarted server does not hold.
          if (m.ok && m.server_epoch != 0 &&
              m.server_epoch < known_epoch_) {
            BIPS_DEBUG(sim_.now(), "client %s: stale login ack (epoch %u < %u)",
                       cfg_.userid.c_str(), m.server_epoch, known_epoch_);
            return;
          }
          login_pending_ = false;
          logged_in_ = m.ok;
          if (m.ok) {
            login_epoch_ = m.server_epoch;
            if (m.server_epoch > known_epoch_) known_epoch_ = m.server_epoch;
          }
          BIPS_DEBUG(sim_.now(), "client %s: login %s",
                     cfg_.userid.c_str(), m.ok ? "ok" : m.reason.c_str());
          if (on_login_) on_login_(m);
        } else if constexpr (std::is_same_v<T, proto::EpochNotice>) {
          // The epoch relay's last hop. A notice at or below what we
          // already know is stale (reordered or redundant) and ignored. An
          // advance past our login epoch means the server restarted since
          // it granted our session: the session hint may have been lost
          // with it (no workstation can attest a walker), so drop the
          // session and log in again. login_epoch_ survives as the
          // prior_epoch stamp of the re-login.
          if (m.server_epoch <= known_epoch_) return;
          known_epoch_ = m.server_epoch;
          if (logged_in_ && m.server_epoch > login_epoch_) {
            logged_in_ = false;
            login_pending_ = false;
            ++stats_.relogins;
            c_relogins_->inc();
            BIPS_DEBUG(sim_.now(), "client %s: server epoch %u > login epoch %u, re-login",
                       cfg_.userid.c_str(), m.server_epoch, login_epoch_);
            login_retry_.call_after(Duration::millis(50));
          }
        } else if constexpr (std::is_same_v<T, proto::LogoutReply>) {
          if (m.ok) logged_in_ = false;
        } else if constexpr (std::is_same_v<T, proto::WhereIsReply>) {
          const auto it = whereis_pending_.find(m.query_id);
          if (it == whereis_pending_.end()) return;
          WhereIsCallback cb = std::move(it->second);
          whereis_pending_.erase(it);
          if (cb) cb(m);
        } else if constexpr (std::is_same_v<T, proto::PathReply>) {
          const auto it = path_pending_.find(m.query_id);
          if (it == path_pending_.end()) return;
          PathCallback cb = std::move(it->second);
          path_pending_.erase(it);
          if (cb) cb(m);
        } else if constexpr (std::is_same_v<T, proto::WhoIsInReply>) {
          const auto it = whoisin_pending_.find(m.query_id);
          if (it == whoisin_pending_.end()) return;
          WhoIsInCallback cb = std::move(it->second);
          whoisin_pending_.erase(it);
          if (cb) cb(m);
        } else if constexpr (std::is_same_v<T, proto::HistoryReply>) {
          const auto it = history_pending_.find(m.query_id);
          if (it == history_pending_.end()) return;
          HistoryCallback cb = std::move(it->second);
          history_pending_.erase(it);
          if (cb) cb(m);
        } else if constexpr (std::is_same_v<T, proto::SubscribeReply>) {
          const auto it = subscribe_pending_.find(m.query_id);
          if (it == subscribe_pending_.end()) return;
          SubscribeCallback cb = std::move(it->second);
          subscribe_pending_.erase(it);
          if (cb) cb(m);
        } else if constexpr (std::is_same_v<T, proto::MovementEvent>) {
          const auto it = watches_.find(m.target_user);
          if (it != watches_.end() && it->second) it->second(m);
        }
      },
      *msg);
}

}  // namespace bips::core
