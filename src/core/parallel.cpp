#include "src/core/parallel.hpp"

#include <algorithm>
#include <utility>

#include "src/baseband/radio.hpp"
#include "src/util/assert.hpp"

namespace bips::core {

namespace {
/// Same address plan as the monolithic harness (simulation.cpp): the
/// replicas of one handheld share one BD_ADDR across every shard's radio --
/// it is the same physical device.
baseband::BdAddr station_addr(StationId s) {
  return baseband::BdAddr(0xAA00'0000'0000ull + s + 1);
}
baseband::BdAddr handheld_addr(std::size_t i) {
  return baseband::BdAddr(0xC0FF'EE00'0000ull + i + 1);
}

/// Zone-LAN address plan: shard k hands out addresses from k << 20, so the
/// owning shard of any LAN address is just its high bits. 2^20 addresses
/// per zone comfortably exceeds any building.
constexpr unsigned kShardAddressShift = 20;

/// Effectively-infinite domain edge for the outermost zones.
constexpr double kOpenEnd = 1e18;

sim::LookaheadInputs lookahead_inputs(const ShardedConfig& cfg,
                                      std::size_t shard_count) {
  sim::LookaheadInputs in;
  in.shard_count = shard_count;
  // The LAN leg: cross-zone datagrams pay base + uplink before jitter and
  // FIFO clamping, which only ever add.
  in.lan_latency = cfg.base.lan.base_latency + cfg.uplink_extra;
  // The RF leg: the same occupancy-radius convention the radio's
  // fast-forward wakeups use, fed by the deployment's coverage radius.
  in.seam_margin_m = baseband::RadioChannel::ff_radius_for(
      cfg.base.coverage_radius_m, cfg.base.channel.ff_slack_m);
  in.max_speed_mps = cfg.base.workstation.scheduler.piconet.ff_max_speed_mps;
  return in;
}
}  // namespace

std::optional<Duration> ShardedBipsSimulation::derive_window(
    const ShardedConfig& cfg, std::string* error) {
  return sim::conservative_lookahead(lookahead_inputs(cfg, cfg.shards),
                                     error);
}

ShardedBipsSimulation::ShardedBipsSimulation(mobility::Building building,
                                             ShardedConfig cfg)
    : cfg_(std::move(cfg)),
      building_(std::move(building)),
      zones_(ZonePartition::columns(building_, cfg_.shards)),
      group_(zones_.zone_count()),
      rng_(cfg_.base.seed) {
  const std::size_t s = shard_count();
  std::string err;
  const auto window = sim::conservative_lookahead(lookahead_inputs(cfg_, s),
                                                  &err);
  BIPS_ASSERT_MSG(window.has_value(), "no conservative window");
  window_ = cfg_.window > Duration(0) ? cfg_.window : *window;

  // Shard construction order fixes the master-RNG fork order; everything
  // below runs single-threaded, so the whole build is a deterministic
  // function of the seed regardless of how many threads later run it.
  shards_.reserve(s);
  for (std::size_t k = 0; k < s; ++k) {
    baseband::ChannelConfig ccfg = cfg_.base.channel;
    ccfg.default_range_m = cfg_.base.coverage_radius_m;
    net::Lan::Config lcfg = cfg_.base.lan;
    lcfg.address_base = static_cast<net::Address>(k) << kShardAddressShift;
    lcfg.uplink_extra = cfg_.uplink_extra;
    shards_.push_back(std::make_unique<Shard>(group_.shard(k), rng_.fork(),
                                              ccfg, lcfg));
  }
  if (s > 1) {
    for (std::size_t k = 0; k < s; ++k) {
      shards_[k]->lan.set_uplink([this, k](net::Address from, net::Address to,
                                           SimTime due, net::Payload data) {
        const std::size_t dst = to >> kShardAddressShift;
        if (dst >= shard_count() || dst == k) return false;
        group_.post(k, dst, due,
                    [this, dst, from, to, d = std::move(data)] {
                      shards_[dst]->lan.deliver_remote(from, to, d);
                    });
        return true;
      });
    }
  }
  group_.set_window_hook([this](SimTime edge) { on_barrier(edge); });

  // The server's endpoint is the first created on shard 0's LAN, so its
  // address is exactly shard 0's address base -- reachable from every zone
  // through the uplink. Its location shards align with the simulator zones
  // by default (service_zones == 0): the same ZonePartition::columns cut,
  // so a delta ingested by simulator shard k is owned by location shard k.
  cfg_.base.server.zones = cfg_.service_zones == 0 ? shard_count()
                                                   : cfg_.service_zones;
  server_ = std::make_unique<BipsServer>(group_.shard(0), shards_[0]->lan,
                                         building_, cfg_.base.server);

  stations_.reserve(building_.room_count());
  station_shard_.reserve(building_.room_count());
  for (const mobility::Room& room : building_.rooms()) {
    const std::size_t k = shard_of_room(room.id);
    Shard& shard = *shards_[k];
    auto ws = std::make_unique<BipsWorkstation>(
        group_.shard(k), shard.radio, shard.lan, server_->address(), room.id,
        station_addr(room.id), shard.rng.fork(), room.center,
        cfg_.base.workstation);
    ws->set_link_resolver(
        [m = &shard.clients_by_addr](baseband::BdAddr a)
            -> baseband::SlaveLink* {
          const auto it = m->find(a.raw());
          return it == m->end() ? nullptr : &it->second->link();
        });
    stations_.push_back(std::move(ws));
    station_shard_.push_back(k);
  }

  if (s > 1) {
    // Presence ingest moves off the server thread: each zone gets a local
    // front-end agent; its window log replays into the server at barriers
    // (merge_zone_ingest). Single-shard worlds skip all of this and keep
    // the monolithic direct-to-server presence path.
    ingests_.reserve(s);
    for (std::size_t k = 0; k < s; ++k) {
      ingests_.push_back(std::make_unique<ZoneIngest>(
          group_.shard(k), shards_[k]->lan, building_.room_count()));
    }
    std::vector<net::Address> sync_targets;
    sync_targets.reserve(stations_.size());
    for (std::size_t sid = 0; sid < stations_.size(); ++sid) {
      stations_[sid]->set_presence_sink(
          ingests_[station_shard_[sid]]->address());
      sync_targets.push_back(stations_[sid]->lan_address());
    }
    server_->set_sync_targets(std::move(sync_targets));
    server_->set_presence_reset_hook([this](StationId sid) {
      pending_presence_resets_.push_back(sid);
    });
  }
}

std::size_t ShardedBipsSimulation::shard_of_room(
    mobility::RoomId room) const {
  return zones_.zone_of(static_cast<StationId>(room));
}

double ShardedBipsSimulation::dom_lo(std::size_t k) const {
  return k == 0 ? -kOpenEnd : zones_.seams()[k - 1];
}

double ShardedBipsSimulation::dom_hi(std::size_t k) const {
  return k + 1 == shard_count() ? kOpenEnd : zones_.seams()[k];
}

std::size_t ShardedBipsSimulation::user_index(std::string_view userid) const {
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (users_[i].userid == userid) return i;
  }
  BIPS_ASSERT_MSG(false, "unknown userid");
  return 0;
}

void ShardedBipsSimulation::add_user(const std::string& name,
                                     const std::string& userid,
                                     const std::string& password,
                                     mobility::RoomId start_room) {
  BIPS_ASSERT_MSG(!started_, "add users before starting the simulation");
  BIPS_ASSERT(start_room < building_.room_count());
  const bool registered =
      server_->registry().register_user(userid, name, password,
                                        rng_.next_u64());
  BIPS_ASSERT_MSG(registered, "duplicate userid or name");

  const std::size_t i = users_.size();
  const std::size_t owner = shard_of_room(start_room);
  User u;
  u.userid = userid;
  u.name = name;
  u.replicas.reserve(shard_count());
  for (std::size_t k = 0; k < shard_count(); ++k) {
    Shard& shard = *shards_[k];
    ClientConfig ccfg;
    ccfg.userid = userid;
    ccfg.password = password;
    ccfg.slave = cfg_.base.slave;
    auto rep = std::make_unique<Replica>();
    rep->client = std::make_unique<BipsClient>(group_.shard(k), shard.radio,
                                               handheld_addr(i),
                                               shard.rng.fork(),
                                               std::move(ccfg));
    rep->agent = std::make_unique<mobility::RandomWaypointAgent>(
        group_.shard(k), building_, server_->paths(), shard.rng.fork(),
        start_room, cfg_.base.mobility);
    if (shard_count() > 1) {
      rep->agent->set_domain(dom_lo(k), dom_hi(k),
                             [this, i, k](mobility::TransitState st) {
                               handle_exit(i, k, std::move(st));
                             });
    }
    rep->active = (k == owner);
    shard.clients_by_addr.emplace(rep->client->addr().raw(),
                                  rep->client.get());
    u.replicas.push_back(std::move(rep));
  }
  users_.push_back(std::move(u));
  owner_.push_back(static_cast<std::uint32_t>(owner));
  for (std::size_t k = 0; k < shard_count(); ++k) install_provider(i, k);
}

void ShardedBipsSimulation::install_provider(std::size_t i, std::size_t k) {
  Replica* rep = users_[i].replicas[k].get();
  // A dormant (or scripted-shadowed) replica's device parks 1 km off the
  // floor plan, exactly like the monolithic radio-shadow fault: outside
  // every coverage circle, so it neither answers inquiries nor holds any
  // occupancy bookkeeping near the seam. The re-install itself fires the
  // device's position listeners (the discrete teleport that wakes quiesced
  // masters).
  rep->client->device().set_position_provider([rep] {
    const Vec2 p = rep->agent->position();
    return rep->active && !rep->shadowed ? p : p + Vec2{1000.0, 1000.0};
  });
}

void ShardedBipsSimulation::start() {
  if (started_) return;
  started_ = true;
  const Duration cycle = cfg_.base.workstation.scheduler.cycle_length;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (cfg_.base.stagger_inquiry && stations_.size() > 1) {
      const Duration offset = Duration::nanos(
          cycle.ns() * static_cast<std::int64_t>(i) /
          static_cast<std::int64_t>(stations_.size()));
      stations_[i]->start_after(offset);
    } else {
      stations_[i]->start();
    }
  }
  for (std::size_t i = 0; i < users_.size(); ++i) {
    Replica& rep = *users_[i].replicas[owner_[i]];
    rep.client->start();
    rep.agent->start();
  }
}

void ShardedBipsSimulation::run_for(Duration d, unsigned threads) {
  start();
  group_.run_until(group_.now() + d, window_, threads);
}

void ShardedBipsSimulation::handle_exit(std::size_t i, std::size_t k,
                                        mobility::TransitState st) {
  Replica& rep = *users_[i].replicas[k];
  const std::size_t dst = st.position.x >= dom_hi(k) ? k + 1 : k - 1;
  BIPS_ASSERT(dst < shard_count());
  rep.active = false;
  BipsClient::HandoffState session = rep.client->suspend_handoff();
  const bool shadowed = rep.shadowed;
  const bool powered_off = rep.powered_off;
  install_provider(i, k);  // teleport out: wakes this zone's masters
  // One full window of delay guarantees the mail lands strictly after the
  // current window's edge (the lookahead contract). Physically: the user
  // is RF-dark for window-length * ff_max_speed_mps of walk -- millimetres.
  const SimTime due = group_.shard(k).now() + window_;
  group_.post(k, dst, due,
              [this, i, dst, session, shadowed, powered_off,
               s = std::move(st)]() mutable {
                resume_replica(i, dst, std::move(s), session, shadowed,
                               powered_off);
              });
}

void ShardedBipsSimulation::resume_replica(std::size_t i, std::size_t dst,
                                           mobility::TransitState st,
                                           BipsClient::HandoffState session,
                                           bool shadowed, bool powered_off) {
  Replica& rep = *users_[i].replicas[dst];
  owner_[i] = static_cast<std::uint32_t>(dst);
  rep.active = true;
  rep.shadowed = shadowed;
  rep.powered_off = powered_off;
  rep.agent->resume_transit(std::move(st));
  install_provider(i, dst);  // teleport in: the new zone can see it
  rep.client->resume_handoff(session);
  // A device carried across a seam while powered off stays off: the resume
  // restarted the scan loop, so switch it straight back off.
  if (powered_off) rep.client->power_off();
}

void ShardedBipsSimulation::schedule_user_act(SimTime at,
                                              std::string_view userid,
                                              UserAct act) {
  const std::size_t i = user_index(userid);
  for (std::size_t k = 0; k < shard_count(); ++k) {
    group_.shard(k).schedule_at(at, [this, i, k, act] {
      Replica& rep = *users_[i].replicas[k];
      if (rep.active) act(*rep.client, *rep.agent);
    });
  }
}

void ShardedBipsSimulation::schedule_radio_shadow(SimTime at,
                                                  std::string_view userid,
                                                  bool shadowed) {
  const std::size_t i = user_index(userid);
  for (std::size_t k = 0; k < shard_count(); ++k) {
    group_.shard(k).schedule_at(at, [this, i, k, shadowed] {
      Replica& rep = *users_[i].replicas[k];
      if (!rep.active || rep.shadowed == shadowed) return;
      rep.shadowed = shadowed;
      install_provider(i, k);
    });
  }
}

void ShardedBipsSimulation::schedule_power_cycle(SimTime at,
                                                 std::string_view userid,
                                                 Duration off_for) {
  BIPS_ASSERT(off_for > Duration(0));
  const std::size_t i = user_index(userid);
  for (std::size_t k = 0; k < shard_count(); ++k) {
    // Exactly the monolithic power-cycle pair: shadow + power_off, then
    // unshadow + power_on, fired on whichever replica is live (the owner
    // guard makes exactly one fire; mid-blackout acts drop, identically at
    // every thread count).
    group_.shard(k).schedule_at(at, [this, i, k] {
      Replica& rep = *users_[i].replicas[k];
      if (!rep.active || rep.powered_off) return;
      rep.powered_off = true;
      if (!rep.shadowed) {
        rep.shadowed = true;
        install_provider(i, k);
      }
      rep.client->power_off();
    });
    group_.shard(k).schedule_at(at + off_for, [this, i, k] {
      Replica& rep = *users_[i].replicas[k];
      if (!rep.active || !rep.powered_off) return;
      rep.powered_off = false;
      if (rep.shadowed) {
        rep.shadowed = false;
        install_provider(i, k);
      }
      rep.client->power_on();
    });
  }
}

void ShardedBipsSimulation::set_metrics_enabled(bool on) {
  for (std::size_t k = 0; k < shard_count(); ++k) {
    group_.shard(k).obs().metrics.set_enabled(on);
  }
}

std::uint64_t ShardedBipsSimulation::metric_sum(std::string_view name) const {
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < shard_count(); ++k) {
    sum += group_.shard(k).obs().metrics.counter_value(name);
  }
  return sum;
}

mobility::RoomId ShardedBipsSimulation::true_room(
    std::string_view userid) const {
  const std::size_t i = user_index(userid);
  const Replica& rep = *users_[i].replicas[owner_[i]];
  return building_.nearest_room_within(rep.agent->position(),
                                       cfg_.base.coverage_radius_m);
}

std::optional<StationId> ShardedBipsSimulation::db_room(
    std::string_view userid) const {
  const std::size_t i = user_index(userid);
  const Replica& rep = *users_[i].replicas[owner_[i]];
  return server_->locations().piconet_of(rep.client->addr().raw());
}

BipsClient& ShardedBipsSimulation::active_client(std::string_view userid) {
  const std::size_t i = user_index(userid);
  return *users_[i].replicas[owner_[i]]->client;
}

mobility::RandomWaypointAgent& ShardedBipsSimulation::active_agent(
    std::string_view userid) {
  const std::size_t i = user_index(userid);
  return *users_[i].replicas[owner_[i]]->agent;
}

void ShardedBipsSimulation::enable_tracking_metrics(Duration period) {
  BIPS_ASSERT(period > Duration(0));
  sample_period_ = period;
  next_sample_ = group_.now() + period;
  if (shard_count() == 1) {
    // No barriers to ride in a single-shard world: keep the monolithic
    // in-simulation sampler.
    sampler_ = std::make_unique<sim::PeriodicTimer>(
        group_.shard(0), period, [this] { sample_tracking(); });
    sampler_->start();
  }
}

std::vector<std::string> ShardedBipsSimulation::userids() const {
  std::vector<std::string> ids;
  ids.reserve(users_.size());
  for (const User& u : users_) ids.push_back(u.userid);
  return ids;
}

std::vector<net::Address> ShardedBipsSimulation::ingest_addresses() const {
  std::vector<net::Address> out;
  out.reserve(ingests_.size());
  for (const auto& a : ingests_) out.push_back(a->address());
  return out;
}

void ShardedBipsSimulation::merge_zone_ingest(SimTime edge) {
  (void)edge;
  if (ingests_.empty()) return;

  // Collect every zone's window log and replay it through the server in
  // one deterministic total order: (arrival instant, zone index, arrival
  // order within the zone). Each zone's log is already in its shard's
  // event order, which the lookahead contract makes thread-invariant, so
  // the merged order -- and with it every Transition::seq the service
  // stamps -- is byte-identical at every thread count.
  struct Keyed {
    ZoneIngest::Entry e;
    std::size_t zone;
  };
  std::vector<Keyed> merged;
  for (std::size_t k = 0; k < ingests_.size(); ++k) {
    std::vector<ZoneIngest::Entry> log = ingests_[k]->drain();
    merged.reserve(merged.size() + log.size());
    for (ZoneIngest::Entry& e : log) merged.push_back(Keyed{std::move(e), k});
  }
  if (!merged.empty()) {
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Keyed& a, const Keyed& b) {
                       if (a.e.recv_at != b.e.recv_at) {
                         return a.e.recv_at < b.e.recv_at;
                       }
                       return a.zone < b.zone;
                     });
    // One window of deltas back to back: defer the global history trim to
    // the end of the batch (identical final state, one pass).
    server_->locations().begin_merge_batch();
    for (const Keyed& x : merged) server_->ingest_merged(x.e.from, x.e.u);
    server_->locations().end_merge_batch();
  }

  // Mirror server-side control state back out to the agents. Watermark
  // resets (failure-detector expiry) accumulate mid-window on shard 0's
  // worker; fault state (crash/restart/shard crash) is refreshed only when
  // the server's fault generation moved since the last barrier.
  for (const StationId sid : pending_presence_resets_) {
    ingests_[station_shard_[sid]]->reset_station(sid);
  }
  pending_presence_resets_.clear();
  if (server_->fault_generation() != seen_fault_generation_) {
    seen_fault_generation_ = server_->fault_generation();
    const bool crashed = server_->crashed();
    const std::uint32_t epoch = server_->epoch();
    for (auto& a : ingests_) a->set_server_state(crashed, epoch);
    const PartitionedLocationService& svc = server_->locations();
    for (StationId sid = 0; sid < stations_.size(); ++sid) {
      ingests_[station_shard_[sid]]->set_station_refused(
          sid, !svc.zone_available(sid));
    }
  }
}

void ShardedBipsSimulation::on_barrier(SimTime edge) {
  merge_zone_ingest(edge);
  if (sample_period_ > Duration(0) && !sampler_) {
    // One sample per elapsed period tick, taken at the first barrier at or
    // after it: a deterministic quantisation bounded by the window.
    while (next_sample_ <= edge) {
      sample_tracking();
      next_sample_ = next_sample_ + sample_period_;
    }
  }
  if (barrier_hook_) barrier_hook_(edge);
}

void ShardedBipsSimulation::sample_tracking() {
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const Replica& rep = *users_[i].replicas[owner_[i]];
    // BIPS only tracks logged-in users. A user mid-handoff reads as logged
    // out for the one-window blackout, identically at every thread count.
    if (!rep.client->logged_in()) continue;
    const mobility::RoomId truth = building_.nearest_room_within(
        rep.agent->position(), cfg_.base.coverage_radius_m);
    const auto believed =
        server_->locations().piconet_of(rep.client->addr().raw());
    ++tracking_.samples;
    if (truth == mobility::kNoRoom) {
      believed ? ++tracking_.false_present : ++tracking_.agree_absent;
    } else if (!believed) {
      ++tracking_.false_absent;
    } else if (*believed == truth) {
      ++tracking_.correct_room;
    } else {
      ++tracking_.wrong_room;
    }
  }
}

void ShardedBipsSimulation::write_history_csv(std::ostream& os) const {
  core::write_history_csv(os, *server_, building_);
}

}  // namespace bips::core
