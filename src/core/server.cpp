#include "src/core/server.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace bips::core {

using proto::QueryStatus;

BipsServer::BipsServer(sim::Simulator& sim, net::Lan& lan,
                       const mobility::Building& building, Config cfg)
    : sim_(sim),
      lan_(lan),
      building_(building),
      topology_(building.to_graph()),
      paths_(topology_),  // the offline all-pairs precomputation
      db_(cfg.history_limit, &sim.obs().metrics),
      endpoint_(lan.create_endpoint()),
      tracer_(&sim.obs().tracer) {
  obs::MetricsRegistry& reg = sim.obs().metrics;
  c_.logins_ok = &reg.counter("server.logins_ok");
  c_.logins_failed = &reg.counter("server.logins_failed");
  c_.logouts = &reg.counter("server.logouts");
  c_.presence_received = &reg.counter("server.presence_received");
  c_.presence_duplicates = &reg.counter("server.presence_duplicates");
  c_.whereis_served = &reg.counter("server.whereis_served");
  c_.paths_served = &reg.counter("server.paths_served");
  c_.whoisin_served = &reg.counter("server.whoisin_served");
  c_.history_served = &reg.counter("server.history_served");
  c_.subscriptions_served = &reg.counter("server.subscriptions_served");
  c_.events_pushed = &reg.counter("server.events_pushed");
  c_.heartbeats = &reg.counter("server.heartbeats");
  c_.stations_expired = &reg.counter("server.stations_expired");
  c_.presences_expired = &reg.counter("server.presences_expired");
  c_.malformed = &reg.counter("server.malformed");
  c_.crashes = &reg.counter("server.crashes");
  c_.restarts = &reg.counter("server.restarts");
  c_.syncs_received = &reg.counter("server.syncs_received");
  c_.sessions_restored = &reg.counter("server.sessions_restored");
  c_.presences_restored = &reg.counter("server.presences_restored");
  c_.resyncs_requested = &reg.counter("server.resyncs_requested");
  c_.queries = &reg.counter("server.queries");
  reg.gauge("server.sessions").set_callback([this] {
    return static_cast<double>(db_.session_count());
  });
  reg.gauge("server.subscriptions").set_callback([this] {
    return static_cast<double>(subscription_count());
  });
  BIPS_ASSERT_MSG(topology_.connected(),
                  "BIPS requires a connected building graph");
  endpoint_.set_handler([this](net::Address from, const net::Payload& data) {
    on_datagram(from, data);
  });
  if (cfg.station_timeout > Duration(0)) {
    BIPS_ASSERT(cfg.sweep_period > Duration(0));
    cfg_ = cfg;
    sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, cfg.sweep_period, [this] { sweep_dead_stations(); });
    sweep_timer_->start();
  } else {
    cfg_ = cfg;
  }
}

void BipsServer::reply(net::Address to, const proto::Message& m) {
  endpoint_.send(to, proto::encode(m));
}

void BipsServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  c_.crashes->inc();
  // Record the death, then flush: a buffered trace sink must neither lose
  // the records leading up to the crash nor replay them after restart.
  tracer_->emit(sim_.now(), obs::TraceKind::kServerCrash, 0, epoch_);
  tracer_->flush();
  if (sweep_timer_) sweep_timer_->stop();
  // Everything in memory dies with the process. The registry survives:
  // accounts live on disk in a real deployment.
  db_.clear();
  station_lan_.clear();
  last_presence_seq_.clear();
  last_heard_.clear();
  subs_.clear();
  resync_pending_.clear();
  synced_.clear();
  BIPS_WARN(sim_.now(), "server: crashed (epoch %u dies)", epoch_);
}

void BipsServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  c_.restarts->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kServerRestart, 0, epoch_);
  if (sweep_timer_) sweep_timer_->start();
  // Ask the whole LAN for state. Workstations answer with SyncSnapshots;
  // anything else ignores the request. Loss of individual requests is
  // repaired by the epoch riding on every HeartbeatAck/PresenceAck.
  const proto::SyncRequest req{epoch_, sim_.now().ns()};
  for (net::Address a = 0; a < lan_.endpoint_count(); ++a) {
    if (a != endpoint_.address()) reply(a, req);
  }
  BIPS_WARN(sim_.now(), "server: restarted as epoch %u, resync requested",
            epoch_);
}

void BipsServer::on_datagram(net::Address from, const net::Payload& data) {
  if (crashed_) return;  // a dead machine hears nothing
  auto msg = proto::decode(data);
  if (!msg) {
    c_.malformed->inc();
    BIPS_WARN(sim_.now(), "server: malformed datagram from %u", from);
    return;
  }
  std::visit(
      [this, from](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequest> ||
                      std::is_same_v<T, proto::LogoutRequest> ||
                      std::is_same_v<T, proto::PresenceUpdate> ||
                      std::is_same_v<T, proto::WhereIsRequest> ||
                      std::is_same_v<T, proto::PathRequest> ||
                      std::is_same_v<T, proto::WhoIsInRequest> ||
                      std::is_same_v<T, proto::HistoryRequest> ||
                      std::is_same_v<T, proto::SubscribeRequest> ||
                      std::is_same_v<T, proto::Heartbeat> ||
                      std::is_same_v<T, proto::SyncSnapshot>) {
          handle(from, m);
        } else {
          c_.malformed->inc();  // a reply type sent *to* the server
        }
      },
      *msg);
}

void BipsServer::handle(net::Address from, const proto::LoginRequest& m) {
  proto::LoginReply rep;
  rep.bd_addr = m.bd_addr;
  // Idempotent re-login of the same binding succeeds (the handheld may
  // retry if the reply was slow to come back through the piconet).
  const auto existing = db_.addr_of(m.userid);
  if (existing && *existing == m.bd_addr) {
    rep.ok = true;
  } else if (!registry_.authenticate(m.userid, m.password)) {
    rep.ok = false;
    rep.reason = "bad credentials";
  } else if (!db_.login(m.userid, m.bd_addr, sim_.now())) {
    rep.ok = false;
    rep.reason = "userid or device already bound";
  } else {
    rep.ok = true;
  }
  (rep.ok ? c_.logins_ok : c_.logins_failed)->inc();
  BIPS_DEBUG(sim_.now(), "server: login %s for %s -> %s",
             m.userid.c_str(), std::to_string(m.bd_addr).c_str(),
             rep.ok ? "ok" : rep.reason.c_str());
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::LogoutRequest& m) {
  proto::LogoutReply rep;
  rep.bd_addr = m.bd_addr;
  const auto bound = db_.userid_of(m.bd_addr);
  rep.ok = bound.has_value() && *bound == m.userid;
  if (rep.ok) {
    // Tell subscribers the user vanished before the record disappears.
    const auto station = db_.piconet_of(m.bd_addr);
    if (station) {
      notify_subscribers(m.bd_addr, /*entered=*/false, *station, sim_.now());
    }
    rep.ok = db_.logout(m.bd_addr);
    // A departing user's own subscriptions die with the session.
    for (auto& [target, sub_set] : subs_) sub_set.erase(m.bd_addr);
    c_.logouts->inc();
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::Heartbeat& m) {
  c_.heartbeats->inc();
  note_station_alive(m.workstation, from);
  reply(from, proto::HeartbeatAck{epoch_});
}

void BipsServer::handle(net::Address from, const proto::SyncSnapshot& m) {
  c_.syncs_received->inc();
  station_lan_[m.workstation] = from;
  last_heard_[m.workstation] = sim_.now();
  resync_pending_.erase(m.workstation);
  synced_.insert(m.workstation);
  const SimTime now = sim_.now();
  // Session hints first, so the presence notifications below can already
  // resolve userids. A hint is only accepted when it names a registered
  // account and neither side of the binding is taken -- the workstation
  // attests the binding existed, nothing more.
  for (const auto& s : m.sessions) {
    if (registry_.by_userid(s.userid) == nullptr) continue;
    if (db_.userid_of(s.bd_addr) || db_.addr_of(s.userid)) continue;
    if (db_.login(s.userid, s.bd_addr, now)) c_.sessions_restored->inc();
  }
  for (const auto& p : m.present) {
    if (db_.set_present(p.bd_addr, m.workstation, now, p.rssi_dbm)) {
      c_.presences_restored->inc();
      notify_subscribers(p.bd_addr, /*entered=*/true, m.workstation, now);
    }
  }
  BIPS_DEBUG(now, "server: snapshot from station %u (%zu present, %zu sessions)",
             m.workstation, m.present.size(), m.sessions.size());
}

void BipsServer::request_resync(net::Address station_addr) {
  c_.resyncs_requested->inc();
  reply(station_addr, proto::SyncRequest{epoch_, sim_.now().ns()});
}

void BipsServer::note_station_alive(StationId station, net::Address from) {
  station_lan_[station] = from;
  last_heard_[station] = sim_.now();
  // A restarted incarnation (epoch > 1) came up empty: until this station
  // has delivered a snapshot, its deltas describe transitions on top of
  // state we do not have. The restart broadcast and the station's own
  // epoch-advance push are each a single unacked datagram, so arm the
  // retry loop below and keep asking until handle(SyncSnapshot) fires.
  if (epoch_ > 1 && synced_.count(station) == 0) {
    resync_pending_.try_emplace(station, SimTime::zero());
  }
  const auto pending = resync_pending_.find(station);
  if (pending != resync_pending_.end()) {
    // We expired this station's records but it was merely unreachable (or
    // restarted): its deltas all predate the expiry, so only a snapshot can
    // repopulate the database. Keep asking (throttled) until one arrives;
    // handle(SyncSnapshot) clears the flag.
    if (sim_.now() - pending->second >= cfg_.sweep_period) {
      pending->second = sim_.now();
      request_resync(from);
    }
  }
}

void BipsServer::sweep_dead_stations() {
  const SimTime now = sim_.now();
  std::vector<StationId> dead;
  for (const auto& [station, heard] : last_heard_) {
    if (now - heard >= cfg_.station_timeout) dead.push_back(station);
  }
  for (const StationId station : dead) {
    last_heard_.erase(station);
    last_presence_seq_.erase(station);  // a restarted station starts fresh
    resync_pending_.try_emplace(station, SimTime::zero());
    db_.retire_station_claims(station);
    c_.stations_expired->inc();
    for (const std::uint64_t addr : db_.devices_at(station)) {
      // set_absent promotes a runner-up claim if an overlapping station
      // still sees the device; otherwise the record is cleared.
      if (db_.set_absent(addr, station, now)) {
        c_.presences_expired->inc();
        const auto new_station = db_.piconet_of(addr);
        notify_subscribers(addr, new_station.has_value(),
                           new_station.value_or(station), now);
      }
    }
    BIPS_WARN(now, "server: station %u presumed crashed, records expired",
              station);
  }
}

void BipsServer::handle(net::Address from, const proto::PresenceUpdate& m) {
  c_.presence_received->inc();
  // Learn which LAN address serves this station (used for pushes); any
  // traffic proves liveness and may trigger a pending resync.
  note_station_alive(m.workstation, from);

  // Reliability: deduplicate retransmissions, acknowledge cumulatively.
  if (m.seq != 0) {
    auto& last = last_presence_seq_[m.workstation];
    if (m.seq <= last) {
      c_.presence_duplicates->inc();
      reply(from, proto::PresenceAck{m.workstation, last, epoch_});
      return;
    }
    last = m.seq;
  }

  const SimTime at(m.timestamp_ns);
  bool changed;
  if (m.present) {
    changed = db_.set_present(m.bd_addr, m.workstation, at, m.rssi_dbm);
  } else {
    changed = db_.set_absent(m.bd_addr, m.workstation, at);
  }
  if (changed) {
    notify_subscribers(m.bd_addr, m.present, m.workstation, at);
  }
  if (m.seq != 0) {
    reply(from, proto::PresenceAck{m.workstation, m.seq, epoch_});
  }
}

bool BipsServer::push_to_device(std::uint64_t bd_addr,
                                const proto::Message& m) {
  const auto station = db_.piconet_of(bd_addr);
  if (!station) return false;
  const auto it = station_lan_.find(*station);
  if (it == station_lan_.end()) return false;
  reply(it->second, m);
  return true;
}

void BipsServer::notify_subscribers(std::uint64_t bd_addr, bool entered,
                                    StationId station, SimTime at) {
  const auto userid = db_.userid_of(bd_addr);
  if (!userid) return;  // pre-login devices have no watchable identity
  const UserRecord* rec = registry_.by_userid(*userid);
  if (rec == nullptr) return;
  const auto it = subs_.find(*userid);
  if (it == subs_.end()) return;
  for (const std::uint64_t subscriber : it->second) {
    proto::MovementEvent ev;
    ev.subscriber_bd_addr = subscriber;
    ev.target_user = rec->name;
    ev.entered = entered;
    ev.room = building_.room(station).name;
    ev.timestamp_ns = at.ns();
    if (push_to_device(subscriber, ev)) c_.events_pushed->inc();
  }
}

QueryStatus BipsServer::resolve_target(std::string_view requester_userid,
                                       std::string_view target_name,
                                       StationId* target_station) const {
  const UserRecord* target = registry_.by_name(target_name);
  if (target == nullptr) return QueryStatus::kUnknownUser;

  if (!requester_userid.empty()) {
    const UserRecord* requester = registry_.by_userid(requester_userid);
    if (requester == nullptr) return QueryStatus::kAccessDenied;
    if (!registry_.can_locate(*requester, *target)) {
      return QueryStatus::kAccessDenied;
    }
  }

  // "BIPS verifies that the target mobile user is logged in."
  const auto addr = db_.addr_of(target->userid);
  if (!addr) return QueryStatus::kNotLoggedIn;

  const auto station = db_.piconet_of(*addr);
  if (!station) return QueryStatus::kLocationUnknown;
  *target_station = *station;
  return QueryStatus::kOk;
}

// ----------------------------------------------- unified query API ---

BipsServer::Query BipsServer::Query::where_is(std::string_view requester,
                                              std::string_view target) {
  Query q;
  q.kind = Kind::kWhereIs;
  q.requester = std::string(requester);
  q.target = std::string(target);
  return q;
}

BipsServer::Query BipsServer::Query::path_to(std::string_view requester,
                                             std::string_view target,
                                             StationId from_station) {
  Query q;
  q.kind = Kind::kPathTo;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.from_station = from_station;
  return q;
}

BipsServer::Query BipsServer::Query::who_is_in(std::string_view requester,
                                               std::string_view room) {
  Query q;
  q.kind = Kind::kWhoIsIn;
  q.requester = std::string(requester);
  q.target = std::string(room);
  return q;
}

BipsServer::Query BipsServer::Query::where_was(std::string_view requester,
                                               std::string_view target,
                                               SimTime at) {
  Query q;
  q.kind = Kind::kWhereWas;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.at = at;
  return q;
}

BipsServer::Query BipsServer::Query::history_since(std::string_view requester,
                                                   std::string_view target,
                                                   SimTime since) {
  Query q;
  q.kind = Kind::kHistorySince;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.at = since;
  return q;
}

BipsServer::QueryResult BipsServer::query(const Query& q) const {
  QueryResult res;
  switch (q.kind) {
    case Query::Kind::kWhereIs: {
      StationId station = kNoStation;
      res.status = resolve_target(q.requester, q.target, &station);
      if (res.status == QueryStatus::kOk) {
        res.room = building_.room(station).name;
      }
      break;
    }

    case Query::Kind::kPathTo: {
      if (q.from_station >= topology_.node_count()) {
        res.status = QueryStatus::kUnreachable;
        break;
      }
      StationId target_station = kNoStation;
      res.status = resolve_target(q.requester, q.target, &target_station);
      if (res.status != QueryStatus::kOk) break;
      const auto path = paths_.path(q.from_station, target_station);
      if (path.empty() && q.from_station != target_station) {
        res.status = QueryStatus::kUnreachable;
        break;
      }
      res.rooms.reserve(path.size());
      for (const auto node : path) {
        res.rooms.push_back(
            building_.room(static_cast<mobility::RoomId>(node)).name);
      }
      res.distance = paths_.distance(q.from_station, target_station);
      break;
    }

    case Query::Kind::kWhoIsIn: {
      const auto room = building_.find(q.target);
      if (!room) {
        res.status = QueryStatus::kUnknownUser;  // unknown *room*, same family
        break;
      }
      const UserRecord* requester = nullptr;
      if (!q.requester.empty()) {
        requester = registry_.by_userid(q.requester);
        if (requester == nullptr || !requester->may_query) {
          res.status = QueryStatus::kAccessDenied;
          break;
        }
      }
      for (const std::uint64_t addr : db_.devices_at(*room)) {
        const auto userid = db_.userid_of(addr);
        if (!userid) continue;
        const UserRecord* target = registry_.by_userid(*userid);
        if (target == nullptr) continue;
        // Privacy: the reply only names users this requester may locate.
        if (requester != nullptr &&
            !registry_.can_locate(*requester, *target)) {
          continue;
        }
        res.users.push_back(target->name);
      }
      std::sort(res.users.begin(), res.users.end());
      break;
    }

    case Query::Kind::kWhereWas:
    case Query::Kind::kHistorySince: {
      const UserRecord* target = registry_.by_name(q.target);
      if (target == nullptr) {
        res.status = QueryStatus::kUnknownUser;
        break;
      }
      if (!q.requester.empty()) {
        const UserRecord* requester = registry_.by_userid(q.requester);
        if (requester == nullptr ||
            !registry_.can_locate(*requester, *target)) {
          res.status = QueryStatus::kAccessDenied;
          break;
        }
      }
      const auto addr = db_.addr_of(target->userid);
      if (!addr) {
        res.status = QueryStatus::kNotLoggedIn;
        break;
      }
      if (q.kind == Query::Kind::kWhereWas) {
        const auto fix = db_.where_was(*addr, q.at);
        res.was_present = fix.has_value();
        if (fix) {
          res.room = building_.room(fix->station).name;
          res.since = fix->since;
        }
      } else {
        // Every recorded transition of the device at or after `at`, oldest
        // first (the bounded history may have evicted older entries).
        for (const auto& t : db_.history()) {
          if (t.bd_addr != *addr || t.at < q.at) continue;
          res.visits.push_back(QueryResult::Visit{
              building_.room(t.station).name, t.present, t.at});
        }
      }
      break;
    }
  }

  c_.queries->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kServerQuery,
                static_cast<std::uint32_t>(q.kind),
                static_cast<std::uint64_t>(res.status));
  return res;
}

// ------------------------------ deprecated wrappers over query() ------

proto::WhereIsReply BipsServer::where_is(std::string_view requester_userid,
                                         std::string_view target_name) const {
  const QueryResult r = query(Query::where_is(requester_userid, target_name));
  proto::WhereIsReply rep;
  rep.status = r.status;
  rep.room = r.room;
  return rep;
}

proto::PathReply BipsServer::path_to(std::string_view requester_userid,
                                     std::string_view target_name,
                                     StationId from_station) const {
  const QueryResult r =
      query(Query::path_to(requester_userid, target_name, from_station));
  proto::PathReply rep;
  rep.status = r.status;
  rep.rooms = r.rooms;
  rep.distance = r.distance;
  return rep;
}

proto::WhoIsInReply BipsServer::who_is_in(std::string_view requester_userid,
                                          std::string_view room_name) const {
  const QueryResult r =
      query(Query::who_is_in(requester_userid, room_name));
  proto::WhoIsInReply rep;
  rep.status = r.status;
  rep.users = r.users;
  return rep;
}

proto::HistoryReply BipsServer::where_was(std::string_view requester_userid,
                                          std::string_view target_name,
                                          SimTime at) const {
  const QueryResult r =
      query(Query::where_was(requester_userid, target_name, at));
  proto::HistoryReply rep;
  rep.status = r.status;
  rep.was_present = r.was_present;
  if (r.was_present) {
    rep.room = r.room;
    rep.since_ns = r.since.ns();
  }
  return rep;
}

BipsServer::Stats BipsServer::stats() const {
  Stats s;
  s.logins_ok = c_.logins_ok->value();
  s.logins_failed = c_.logins_failed->value();
  s.logouts = c_.logouts->value();
  s.presence_received = c_.presence_received->value();
  s.presence_duplicates = c_.presence_duplicates->value();
  s.whereis_served = c_.whereis_served->value();
  s.paths_served = c_.paths_served->value();
  s.whoisin_served = c_.whoisin_served->value();
  s.history_served = c_.history_served->value();
  s.subscriptions_served = c_.subscriptions_served->value();
  s.events_pushed = c_.events_pushed->value();
  s.heartbeats = c_.heartbeats->value();
  s.stations_expired = c_.stations_expired->value();
  s.presences_expired = c_.presences_expired->value();
  s.malformed = c_.malformed->value();
  s.crashes = c_.crashes->value();
  s.restarts = c_.restarts->value();
  s.syncs_received = c_.syncs_received->value();
  s.sessions_restored = c_.sessions_restored->value();
  s.presences_restored = c_.presences_restored->value();
  s.resyncs_requested = c_.resyncs_requested->value();
  return s;
}

std::size_t BipsServer::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [target, sub_set] : subs_) n += sub_set.size();
  return n;
}

void BipsServer::handle(net::Address from, const proto::WhoIsInRequest& m) {
  c_.whoisin_served->inc();
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::WhoIsInReply rep;
  if (requester) {
    rep = who_is_in(*requester, m.room);
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::HistoryRequest& m) {
  c_.history_served->inc();
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::HistoryReply rep;
  if (requester) {
    rep = where_was(*requester, m.target_user, SimTime(m.at_time_ns));
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::SubscribeRequest& m) {
  c_.subscriptions_served->inc();
  proto::SubscribeReply rep;
  rep.query_id = m.query_id;

  const auto requester_id = db_.userid_of(m.requester_bd_addr);
  const UserRecord* requester =
      requester_id ? registry_.by_userid(*requester_id) : nullptr;
  const UserRecord* target = registry_.by_name(m.target_user);
  if (target == nullptr) {
    rep.status = QueryStatus::kUnknownUser;
  } else if (requester == nullptr ||
             !registry_.can_locate(*requester, *target)) {
    rep.status = QueryStatus::kAccessDenied;
  } else if (m.unsubscribe) {
    subs_[target->userid].erase(m.requester_bd_addr);
  } else {
    subs_[target->userid].insert(m.requester_bd_addr);
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::WhereIsRequest& m) {
  c_.whereis_served->inc();
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::WhereIsReply rep =
      requester ? where_is(*requester, m.target_user)
                : proto::WhereIsReply{0, QueryStatus::kAccessDenied, ""};
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::PathRequest& m) {
  c_.paths_served->inc();
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::PathReply rep;
  if (requester) {
    rep = path_to(*requester, m.target_user, m.from_room);
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

}  // namespace bips::core
