#include "src/core/server.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace bips::core {

using proto::QueryStatus;

BipsServer::BipsServer(sim::Simulator& sim, net::Lan& lan,
                       const mobility::Building& building, Config cfg)
    : sim_(sim),
      lan_(lan),
      building_(building),
      topology_(building.to_graph()),
      paths_(topology_),  // the offline all-pairs precomputation
      db_(cfg.history_limit),
      endpoint_(lan.create_endpoint()) {
  BIPS_ASSERT_MSG(topology_.connected(),
                  "BIPS requires a connected building graph");
  endpoint_.set_handler([this](net::Address from, const net::Payload& data) {
    on_datagram(from, data);
  });
  if (cfg.station_timeout > Duration(0)) {
    BIPS_ASSERT(cfg.sweep_period > Duration(0));
    cfg_ = cfg;
    sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, cfg.sweep_period, [this] { sweep_dead_stations(); });
    sweep_timer_->start();
  } else {
    cfg_ = cfg;
  }
}

void BipsServer::reply(net::Address to, const proto::Message& m) {
  endpoint_.send(to, proto::encode(m));
}

void BipsServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  if (sweep_timer_) sweep_timer_->stop();
  // Everything in memory dies with the process. The registry survives:
  // accounts live on disk in a real deployment.
  db_.clear();
  station_lan_.clear();
  last_presence_seq_.clear();
  last_heard_.clear();
  subs_.clear();
  resync_pending_.clear();
  BIPS_WARN(sim_.now(), "server: crashed (epoch %u dies)", epoch_);
}

void BipsServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  ++stats_.restarts;
  if (sweep_timer_) sweep_timer_->start();
  // Ask the whole LAN for state. Workstations answer with SyncSnapshots;
  // anything else ignores the request. Loss of individual requests is
  // repaired by the epoch riding on every HeartbeatAck/PresenceAck.
  const proto::SyncRequest req{epoch_, sim_.now().ns()};
  for (net::Address a = 0; a < lan_.endpoint_count(); ++a) {
    if (a != endpoint_.address()) reply(a, req);
  }
  BIPS_WARN(sim_.now(), "server: restarted as epoch %u, resync requested",
            epoch_);
}

void BipsServer::on_datagram(net::Address from, const net::Payload& data) {
  if (crashed_) return;  // a dead machine hears nothing
  auto msg = proto::decode(data);
  if (!msg) {
    ++stats_.malformed;
    BIPS_WARN(sim_.now(), "server: malformed datagram from %u", from);
    return;
  }
  std::visit(
      [this, from](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequest> ||
                      std::is_same_v<T, proto::LogoutRequest> ||
                      std::is_same_v<T, proto::PresenceUpdate> ||
                      std::is_same_v<T, proto::WhereIsRequest> ||
                      std::is_same_v<T, proto::PathRequest> ||
                      std::is_same_v<T, proto::WhoIsInRequest> ||
                      std::is_same_v<T, proto::HistoryRequest> ||
                      std::is_same_v<T, proto::SubscribeRequest> ||
                      std::is_same_v<T, proto::Heartbeat> ||
                      std::is_same_v<T, proto::SyncSnapshot>) {
          handle(from, m);
        } else {
          ++stats_.malformed;  // a reply type sent *to* the server
        }
      },
      *msg);
}

void BipsServer::handle(net::Address from, const proto::LoginRequest& m) {
  proto::LoginReply rep;
  rep.bd_addr = m.bd_addr;
  // Idempotent re-login of the same binding succeeds (the handheld may
  // retry if the reply was slow to come back through the piconet).
  const auto existing = db_.addr_of(m.userid);
  if (existing && *existing == m.bd_addr) {
    rep.ok = true;
  } else if (!registry_.authenticate(m.userid, m.password)) {
    rep.ok = false;
    rep.reason = "bad credentials";
  } else if (!db_.login(m.userid, m.bd_addr, sim_.now())) {
    rep.ok = false;
    rep.reason = "userid or device already bound";
  } else {
    rep.ok = true;
  }
  rep.ok ? ++stats_.logins_ok : ++stats_.logins_failed;
  BIPS_DEBUG(sim_.now(), "server: login %s for %s -> %s",
             m.userid.c_str(), std::to_string(m.bd_addr).c_str(),
             rep.ok ? "ok" : rep.reason.c_str());
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::LogoutRequest& m) {
  proto::LogoutReply rep;
  rep.bd_addr = m.bd_addr;
  const auto bound = db_.userid_of(m.bd_addr);
  rep.ok = bound.has_value() && *bound == m.userid;
  if (rep.ok) {
    // Tell subscribers the user vanished before the record disappears.
    const auto station = db_.piconet_of(m.bd_addr);
    if (station) {
      notify_subscribers(m.bd_addr, /*entered=*/false, *station, sim_.now());
    }
    rep.ok = db_.logout(m.bd_addr);
    // A departing user's own subscriptions die with the session.
    for (auto& [target, sub_set] : subs_) sub_set.erase(m.bd_addr);
    ++stats_.logouts;
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::Heartbeat& m) {
  ++stats_.heartbeats;
  note_station_alive(m.workstation, from);
  reply(from, proto::HeartbeatAck{epoch_});
}

void BipsServer::handle(net::Address from, const proto::SyncSnapshot& m) {
  ++stats_.syncs_received;
  station_lan_[m.workstation] = from;
  last_heard_[m.workstation] = sim_.now();
  resync_pending_.erase(m.workstation);
  const SimTime now = sim_.now();
  // Session hints first, so the presence notifications below can already
  // resolve userids. A hint is only accepted when it names a registered
  // account and neither side of the binding is taken -- the workstation
  // attests the binding existed, nothing more.
  for (const auto& s : m.sessions) {
    if (registry_.by_userid(s.userid) == nullptr) continue;
    if (db_.userid_of(s.bd_addr) || db_.addr_of(s.userid)) continue;
    if (db_.login(s.userid, s.bd_addr, now)) ++stats_.sessions_restored;
  }
  for (const auto& p : m.present) {
    if (db_.set_present(p.bd_addr, m.workstation, now, p.rssi_dbm)) {
      ++stats_.presences_restored;
      notify_subscribers(p.bd_addr, /*entered=*/true, m.workstation, now);
    }
  }
  BIPS_DEBUG(now, "server: snapshot from station %u (%zu present, %zu sessions)",
             m.workstation, m.present.size(), m.sessions.size());
}

void BipsServer::request_resync(net::Address station_addr) {
  ++stats_.resyncs_requested;
  reply(station_addr, proto::SyncRequest{epoch_, sim_.now().ns()});
}

void BipsServer::note_station_alive(StationId station, net::Address from) {
  station_lan_[station] = from;
  last_heard_[station] = sim_.now();
  const auto pending = resync_pending_.find(station);
  if (pending != resync_pending_.end()) {
    // We expired this station's records but it was merely unreachable (or
    // restarted): its deltas all predate the expiry, so only a snapshot can
    // repopulate the database. Keep asking (throttled) until one arrives;
    // handle(SyncSnapshot) clears the flag.
    if (sim_.now() - pending->second >= cfg_.sweep_period) {
      pending->second = sim_.now();
      request_resync(from);
    }
  }
}

void BipsServer::sweep_dead_stations() {
  const SimTime now = sim_.now();
  std::vector<StationId> dead;
  for (const auto& [station, heard] : last_heard_) {
    if (now - heard >= cfg_.station_timeout) dead.push_back(station);
  }
  for (const StationId station : dead) {
    last_heard_.erase(station);
    last_presence_seq_.erase(station);  // a restarted station starts fresh
    resync_pending_.try_emplace(station, SimTime::zero());
    db_.retire_station_claims(station);
    ++stats_.stations_expired;
    for (const std::uint64_t addr : db_.devices_at(station)) {
      // set_absent promotes a runner-up claim if an overlapping station
      // still sees the device; otherwise the record is cleared.
      if (db_.set_absent(addr, station, now)) {
        ++stats_.presences_expired;
        const auto new_station = db_.piconet_of(addr);
        notify_subscribers(addr, new_station.has_value(),
                           new_station.value_or(station), now);
      }
    }
    BIPS_WARN(now, "server: station %u presumed crashed, records expired",
              station);
  }
}

void BipsServer::handle(net::Address from, const proto::PresenceUpdate& m) {
  ++stats_.presence_received;
  // Learn which LAN address serves this station (used for pushes); any
  // traffic proves liveness and may trigger a pending resync.
  note_station_alive(m.workstation, from);

  // Reliability: deduplicate retransmissions, acknowledge cumulatively.
  if (m.seq != 0) {
    auto& last = last_presence_seq_[m.workstation];
    if (m.seq <= last) {
      ++stats_.presence_duplicates;
      reply(from, proto::PresenceAck{m.workstation, last, epoch_});
      return;
    }
    last = m.seq;
  }

  const SimTime at(m.timestamp_ns);
  bool changed;
  if (m.present) {
    changed = db_.set_present(m.bd_addr, m.workstation, at, m.rssi_dbm);
  } else {
    changed = db_.set_absent(m.bd_addr, m.workstation, at);
  }
  if (changed) {
    notify_subscribers(m.bd_addr, m.present, m.workstation, at);
  }
  if (m.seq != 0) {
    reply(from, proto::PresenceAck{m.workstation, m.seq, epoch_});
  }
}

bool BipsServer::push_to_device(std::uint64_t bd_addr,
                                const proto::Message& m) {
  const auto station = db_.piconet_of(bd_addr);
  if (!station) return false;
  const auto it = station_lan_.find(*station);
  if (it == station_lan_.end()) return false;
  reply(it->second, m);
  return true;
}

void BipsServer::notify_subscribers(std::uint64_t bd_addr, bool entered,
                                    StationId station, SimTime at) {
  const auto userid = db_.userid_of(bd_addr);
  if (!userid) return;  // pre-login devices have no watchable identity
  const UserRecord* rec = registry_.by_userid(*userid);
  if (rec == nullptr) return;
  const auto it = subs_.find(*userid);
  if (it == subs_.end()) return;
  for (const std::uint64_t subscriber : it->second) {
    proto::MovementEvent ev;
    ev.subscriber_bd_addr = subscriber;
    ev.target_user = rec->name;
    ev.entered = entered;
    ev.room = building_.room(station).name;
    ev.timestamp_ns = at.ns();
    if (push_to_device(subscriber, ev)) ++stats_.events_pushed;
  }
}

QueryStatus BipsServer::resolve_target(std::string_view requester_userid,
                                       std::string_view target_name,
                                       StationId* target_station) const {
  const UserRecord* target = registry_.by_name(target_name);
  if (target == nullptr) return QueryStatus::kUnknownUser;

  if (!requester_userid.empty()) {
    const UserRecord* requester = registry_.by_userid(requester_userid);
    if (requester == nullptr) return QueryStatus::kAccessDenied;
    if (!registry_.can_locate(*requester, *target)) {
      return QueryStatus::kAccessDenied;
    }
  }

  // "BIPS verifies that the target mobile user is logged in."
  const auto addr = db_.addr_of(target->userid);
  if (!addr) return QueryStatus::kNotLoggedIn;

  const auto station = db_.piconet_of(*addr);
  if (!station) return QueryStatus::kLocationUnknown;
  *target_station = *station;
  return QueryStatus::kOk;
}

proto::WhereIsReply BipsServer::where_is(std::string_view requester_userid,
                                         std::string_view target_name) const {
  proto::WhereIsReply rep;
  StationId station = kNoStation;
  rep.status = resolve_target(requester_userid, target_name, &station);
  if (rep.status == QueryStatus::kOk) {
    rep.room = building_.room(station).name;
  }
  return rep;
}

proto::PathReply BipsServer::path_to(std::string_view requester_userid,
                                     std::string_view target_name,
                                     StationId from_station) const {
  proto::PathReply rep;
  if (from_station >= topology_.node_count()) {
    rep.status = QueryStatus::kUnreachable;
    return rep;
  }
  StationId target_station = kNoStation;
  rep.status = resolve_target(requester_userid, target_name, &target_station);
  if (rep.status != QueryStatus::kOk) return rep;

  const auto path = paths_.path(from_station, target_station);
  if (path.empty() && from_station != target_station) {
    rep.status = QueryStatus::kUnreachable;
    return rep;
  }
  rep.rooms.reserve(path.size());
  for (const auto node : path) {
    rep.rooms.push_back(building_.room(static_cast<mobility::RoomId>(node)).name);
  }
  rep.distance = paths_.distance(from_station, target_station);
  return rep;
}

proto::WhoIsInReply BipsServer::who_is_in(std::string_view requester_userid,
                                          std::string_view room_name) const {
  proto::WhoIsInReply rep;
  const auto room = building_.find(room_name);
  if (!room) {
    rep.status = QueryStatus::kUnknownUser;  // unknown *room*, same family
    return rep;
  }
  const UserRecord* requester = nullptr;
  if (!requester_userid.empty()) {
    requester = registry_.by_userid(requester_userid);
    if (requester == nullptr || !requester->may_query) {
      rep.status = QueryStatus::kAccessDenied;
      return rep;
    }
  }
  for (const std::uint64_t addr : db_.devices_at(*room)) {
    const auto userid = db_.userid_of(addr);
    if (!userid) continue;
    const UserRecord* target = registry_.by_userid(*userid);
    if (target == nullptr) continue;
    // Privacy: the reply only names users this requester may locate.
    if (requester != nullptr && !registry_.can_locate(*requester, *target)) {
      continue;
    }
    rep.users.push_back(target->name);
  }
  std::sort(rep.users.begin(), rep.users.end());
  return rep;
}

proto::HistoryReply BipsServer::where_was(std::string_view requester_userid,
                                          std::string_view target_name,
                                          SimTime at) const {
  proto::HistoryReply rep;
  const UserRecord* target = registry_.by_name(target_name);
  if (target == nullptr) {
    rep.status = QueryStatus::kUnknownUser;
    return rep;
  }
  if (!requester_userid.empty()) {
    const UserRecord* requester = registry_.by_userid(requester_userid);
    if (requester == nullptr || !registry_.can_locate(*requester, *target)) {
      rep.status = QueryStatus::kAccessDenied;
      return rep;
    }
  }
  const auto addr = db_.addr_of(target->userid);
  if (!addr) {
    rep.status = QueryStatus::kNotLoggedIn;
    return rep;
  }
  const auto fix = db_.where_was(*addr, at);
  rep.was_present = fix.has_value();
  if (fix) {
    rep.room = building_.room(fix->station).name;
    rep.since_ns = fix->since.ns();
  }
  return rep;
}

std::size_t BipsServer::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [target, sub_set] : subs_) n += sub_set.size();
  return n;
}

void BipsServer::handle(net::Address from, const proto::WhoIsInRequest& m) {
  ++stats_.whoisin_served;
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::WhoIsInReply rep;
  if (requester) {
    rep = who_is_in(*requester, m.room);
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::HistoryRequest& m) {
  ++stats_.history_served;
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::HistoryReply rep;
  if (requester) {
    rep = where_was(*requester, m.target_user, SimTime(m.at_time_ns));
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::SubscribeRequest& m) {
  ++stats_.subscriptions_served;
  proto::SubscribeReply rep;
  rep.query_id = m.query_id;

  const auto requester_id = db_.userid_of(m.requester_bd_addr);
  const UserRecord* requester =
      requester_id ? registry_.by_userid(*requester_id) : nullptr;
  const UserRecord* target = registry_.by_name(m.target_user);
  if (target == nullptr) {
    rep.status = QueryStatus::kUnknownUser;
  } else if (requester == nullptr ||
             !registry_.can_locate(*requester, *target)) {
    rep.status = QueryStatus::kAccessDenied;
  } else if (m.unsubscribe) {
    subs_[target->userid].erase(m.requester_bd_addr);
  } else {
    subs_[target->userid].insert(m.requester_bd_addr);
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::WhereIsRequest& m) {
  ++stats_.whereis_served;
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::WhereIsReply rep =
      requester ? where_is(*requester, m.target_user)
                : proto::WhereIsReply{0, QueryStatus::kAccessDenied, ""};
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::PathRequest& m) {
  ++stats_.paths_served;
  const auto requester = db_.userid_of(m.requester_bd_addr);
  proto::PathReply rep;
  if (requester) {
    rep = path_to(*requester, m.target_user, m.from_room);
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

}  // namespace bips::core
