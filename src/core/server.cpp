#include "src/core/server.hpp"

#include <algorithm>

#include "src/core/zone_map.hpp"
#include "src/util/log.hpp"

namespace bips::core {

using proto::QueryStatus;

BipsServer::BipsServer(sim::Simulator& sim, net::Lan& lan,
                       const mobility::Building& building, Config cfg)
    : sim_(sim),
      lan_(lan),
      building_(building),
      topology_(building.to_graph()),
      paths_(topology_),  // the offline all-pairs precomputation
      svc_(cfg.history_limit, &sim.obs().metrics,
           ZonePartition::columns(building,
                                  std::max<std::size_t>(cfg.zones, 1))),
      endpoint_(lan.create_endpoint()),
      tracer_(&sim.obs().tracer) {
  obs::MetricsRegistry& reg = sim.obs().metrics;
  c_.logins_ok = &reg.counter("server.logins_ok");
  c_.logins_failed = &reg.counter("server.logins_failed");
  c_.relogins = &reg.counter("svc.relogin");
  c_.logouts = &reg.counter("server.logouts");
  c_.presence_received = &reg.counter("server.presence_received");
  c_.presence_duplicates = &reg.counter("server.presence_duplicates");
  c_.batches_received = &reg.counter("server.batches_received");
  c_.whereis_served = &reg.counter("server.whereis_served");
  c_.paths_served = &reg.counter("server.paths_served");
  c_.whoisin_served = &reg.counter("server.whoisin_served");
  c_.history_served = &reg.counter("server.history_served");
  c_.subscriptions_served = &reg.counter("server.subscriptions_served");
  c_.events_pushed = &reg.counter("server.events_pushed");
  c_.heartbeats = &reg.counter("server.heartbeats");
  c_.stations_expired = &reg.counter("server.stations_expired");
  c_.presences_expired = &reg.counter("server.presences_expired");
  c_.malformed = &reg.counter("server.malformed");
  c_.crashes = &reg.counter("server.crashes");
  c_.restarts = &reg.counter("server.restarts");
  c_.shard_crashes = &reg.counter("server.shard_crashes");
  c_.shard_restarts = &reg.counter("server.shard_restarts");
  c_.syncs_received = &reg.counter("server.syncs_received");
  c_.sessions_restored = &reg.counter("server.sessions_restored");
  c_.presences_restored = &reg.counter("server.presences_restored");
  c_.resyncs_requested = &reg.counter("server.resyncs_requested");
  c_.queries = &reg.counter("server.queries");
  c_.path_cache_hits = &reg.counter("server.path_cache_hits");
  reg.gauge("server.sessions").set_callback([this] {
    return static_cast<double>(svc_.session_count());
  });
  reg.gauge("server.subscriptions").set_callback([this] {
    return static_cast<double>(subscription_count());
  });
  BIPS_ASSERT_MSG(topology_.connected(),
                  "BIPS requires a connected building graph");
  endpoint_.set_handler([this](net::Address from, const net::Payload& data) {
    on_datagram(from, data);
  });
  if (cfg.station_timeout > Duration(0)) {
    BIPS_ASSERT(cfg.sweep_period > Duration(0));
    cfg_ = cfg;
    sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, cfg.sweep_period, [this] { sweep_dead_stations(); });
    sweep_timer_->start();
  } else {
    cfg_ = cfg;
  }
}

void BipsServer::reply(net::Address to, const proto::Message& m) {
  endpoint_.send(to, proto::encode(m));
}

void BipsServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++fault_generation_;
  c_.crashes->inc();
  // Record the death, then flush: a buffered trace sink must neither lose
  // the records leading up to the crash nor replay them after restart.
  tracer_->emit(sim_.now(), obs::TraceKind::kServerCrash, 0, epoch_);
  tracer_->flush();
  if (sweep_timer_) sweep_timer_->stop();
  // Everything in memory dies with the process. The registry survives:
  // accounts live on disk in a real deployment. The path cache is derived
  // from the static building graph, not from state, so whether it survives
  // is unobservable; it is kept.
  svc_.clear();
  station_lan_.clear();
  last_presence_seq_.clear();
  last_heard_.clear();
  hub_.drop_remote();
  resync_pending_.clear();
  synced_.clear();
  BIPS_WARN(sim_.now(), "server: crashed (epoch %u dies)", epoch_);
}

void BipsServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  ++fault_generation_;
  c_.restarts->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kServerRestart, 0, epoch_);
  if (sweep_timer_) sweep_timer_->start();
  // Ask the whole LAN for state. Workstations answer with SyncSnapshots;
  // anything else ignores the request. Loss of individual requests is
  // repaired by the epoch riding on every HeartbeatAck/PresenceAck. A
  // sharded world's stations sit on remote segments this LAN cannot
  // enumerate, so the harness supplies their global addresses up front.
  const proto::SyncRequest req{epoch_, sim_.now().ns()};
  if (!sync_targets_.empty()) {
    for (const net::Address a : sync_targets_) reply(a, req);
  } else {
    for (net::Address a = 0; a < lan_.endpoint_count(); ++a) {
      if (a != endpoint_.address()) reply(a, req);
    }
  }
  BIPS_WARN(sim_.now(), "server: restarted as epoch %u, resync requested",
            epoch_);
}

void BipsServer::crash_shard(std::size_t k) {
  if (crashed_ || k >= svc_.shard_count() || svc_.shard_crashed(k)) return;
  svc_.crash_shard(k);
  ++fault_generation_;
  c_.shard_crashes->inc();
  BIPS_WARN(sim_.now(), "server: location shard %zu crashed, zone slice lost",
            k);
}

void BipsServer::restart_shard(std::size_t k) {
  if (crashed_ || k >= svc_.shard_count() || !svc_.shard_crashed(k)) return;
  svc_.restart_shard(k);
  ++fault_generation_;
  c_.shard_restarts->inc();
  // Zone-scoped resync: only zone-k workstations hold the lost slice, so
  // only they are asked for snapshots (contrast restart(), which must
  // broadcast because the whole routing table died too). The pending map
  // keeps re-asking on every sign of life until each snapshot lands.
  const SimTime now = sim_.now();
  for (const auto& [station, addr] : station_lan_) {
    if (svc_.zone_of(station) != k) continue;
    resync_pending_[station] = now;
    request_resync(addr);
  }
  BIPS_WARN(now, "server: location shard %zu restarted (epoch %u), "
            "zone resync requested", k, svc_.shard_epoch(k));
}

void BipsServer::on_datagram(net::Address from, const net::Payload& data) {
  if (crashed_) return;  // a dead machine hears nothing
  auto msg = proto::decode(data);
  if (!msg) {
    c_.malformed->inc();
    BIPS_WARN(sim_.now(), "server: malformed datagram from %u", from);
    return;
  }
  std::visit(
      [this, from](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequest> ||
                      std::is_same_v<T, proto::LogoutRequest> ||
                      std::is_same_v<T, proto::PresenceUpdate> ||
                      std::is_same_v<T, proto::PresenceBatch> ||
                      std::is_same_v<T, proto::Query> ||
                      std::is_same_v<T, proto::WhereIsRequest> ||
                      std::is_same_v<T, proto::PathRequest> ||
                      std::is_same_v<T, proto::WhoIsInRequest> ||
                      std::is_same_v<T, proto::HistoryRequest> ||
                      std::is_same_v<T, proto::SubscribeRequest> ||
                      std::is_same_v<T, proto::Heartbeat> ||
                      std::is_same_v<T, proto::SyncSnapshot>) {
          handle(from, m);
        } else {
          c_.malformed->inc();  // a reply type sent *to* the server
        }
      },
      *msg);
}

void BipsServer::handle(net::Address from, const proto::LoginRequest& m) {
  proto::LoginReply rep;
  rep.bd_addr = m.bd_addr;
  // Idempotent re-login of the same binding succeeds (the handheld may
  // retry if the reply was slow to come back through the piconet).
  const auto existing = svc_.addr_of(m.userid);
  if (existing && *existing == m.bd_addr) {
    rep.ok = true;
  } else if (!registry_.authenticate(m.userid, m.password)) {
    rep.ok = false;
    rep.reason = "bad credentials";
  } else if (!svc_.login(m.userid, m.bd_addr, sim_.now())) {
    rep.ok = false;
    rep.reason = "userid or device already bound";
  } else {
    rep.ok = true;
    // The device was typically discovered (and its presence recorded)
    // before the user authenticated; that pre-login delta had no watchable
    // identity. Now that it does, tell subscribers the user is here --
    // otherwise a user who logs in and never moves is invisible to the
    // subscription API that replaced polling.
    if (const auto station = svc_.piconet_of(m.bd_addr)) {
      notify_subscribers(m.bd_addr, /*entered=*/true, *station, sim_.now());
    }
  }
  rep.server_epoch = epoch_;
  (rep.ok ? c_.logins_ok : c_.logins_failed)->inc();
  // A successful login stamped with an older prior epoch is a session the
  // client re-established after server amnesia: the recovery path the
  // corpus assertions gate on ("recovery via re-login, not lucky
  // snapshot"). A retry within one incarnation carries prior == epoch_ and
  // does not count.
  if (rep.ok && m.prior_epoch != 0 && m.prior_epoch < epoch_) {
    c_.relogins->inc();
  }
  BIPS_DEBUG(sim_.now(), "server: login %s for %s -> %s",
             m.userid.c_str(), std::to_string(m.bd_addr).c_str(),
             rep.ok ? "ok" : rep.reason.c_str());
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::LogoutRequest& m) {
  proto::LogoutReply rep;
  rep.bd_addr = m.bd_addr;
  const auto bound = svc_.userid_of(m.bd_addr);
  rep.ok = bound.has_value() && *bound == m.userid;
  if (rep.ok) {
    // Tell subscribers the user vanished before the record disappears.
    const auto station = svc_.piconet_of(m.bd_addr);
    if (station) {
      notify_subscribers(m.bd_addr, /*entered=*/false, *station, sim_.now());
    }
    rep.ok = svc_.logout(m.bd_addr);
    // A departing user's own subscriptions die with the session.
    hub_.drop_subscriber(m.bd_addr);
    c_.logouts->inc();
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::Heartbeat& m) {
  c_.heartbeats->inc();
  note_station_alive(m.workstation, from);
  reply(from, proto::HeartbeatAck{epoch_});
}

void BipsServer::handle(net::Address from, const proto::SyncSnapshot& m) {
  c_.syncs_received->inc();
  station_lan_[m.workstation] = from;
  last_heard_[m.workstation] = sim_.now();
  resync_pending_.erase(m.workstation);
  synced_.insert(m.workstation);
  const SimTime now = sim_.now();
  // Session hints first, so the presence notifications below can already
  // resolve userids. A hint is only accepted when it names a registered
  // account and neither side of the binding is taken -- the workstation
  // attests the binding existed, nothing more.
  for (const auto& s : m.sessions) {
    if (registry_.by_userid(s.userid) == nullptr) continue;
    if (svc_.userid_of(s.bd_addr) || svc_.addr_of(s.userid)) continue;
    if (svc_.login(s.userid, s.bd_addr, now)) c_.sessions_restored->inc();
  }
  for (const auto& p : m.present) {
    if (svc_.apply_present(p.bd_addr, m.workstation, now, p.rssi_dbm)
            .value_or(false)) {
      c_.presences_restored->inc();
      notify_subscribers(p.bd_addr, /*entered=*/true, m.workstation, now);
    }
  }
  BIPS_DEBUG(now, "server: snapshot from station %u (%zu present, %zu sessions)",
             m.workstation, m.present.size(), m.sessions.size());
}

void BipsServer::request_resync(net::Address station_addr) {
  c_.resyncs_requested->inc();
  reply(station_addr, proto::SyncRequest{epoch_, sim_.now().ns()});
}

void BipsServer::note_station_alive(StationId station, net::Address from) {
  station_lan_[station] = from;
  last_heard_[station] = sim_.now();
  // A restarted incarnation (epoch > 1) came up empty: until this station
  // has delivered a snapshot, its deltas describe transitions on top of
  // state we do not have. The restart broadcast and the station's own
  // epoch-advance push are each a single unacked datagram, so arm the
  // retry loop below and keep asking until handle(SyncSnapshot) fires.
  if (epoch_ > 1 && synced_.count(station) == 0) {
    resync_pending_.try_emplace(station, SimTime::zero());
  }
  const auto pending = resync_pending_.find(station);
  if (pending != resync_pending_.end()) {
    // We expired this station's records but it was merely unreachable (or
    // restarted, or its shard did): its deltas all predate the loss, so
    // only a snapshot can repopulate the database. Keep asking (throttled)
    // until one arrives; handle(SyncSnapshot) clears the flag.
    if (sim_.now() - pending->second >= cfg_.sweep_period) {
      pending->second = sim_.now();
      request_resync(from);
    }
  }
}

void BipsServer::sweep_dead_stations() {
  const SimTime now = sim_.now();
  std::vector<StationId> dead;
  for (const auto& [station, heard] : last_heard_) {
    if (now - heard >= cfg_.station_timeout) dead.push_back(station);
  }
  for (const StationId station : dead) {
    last_heard_.erase(station);
    last_presence_seq_.erase(station);  // a restarted station starts fresh
    // A zone-ingest front-end holding this station's dedup watermark must
    // forget it too (applied at the next window barrier).
    if (presence_reset_hook_) presence_reset_hook_(station);
    resync_pending_.try_emplace(station, SimTime::zero());
    svc_.retire_station_claims(station);
    c_.stations_expired->inc();
    for (const std::uint64_t addr : svc_.devices_at(station)) {
      // apply_absent promotes a runner-up claim if an overlapping station
      // still sees the device; otherwise the record is cleared. (A refusal
      // cannot happen here: devices_at answered, so the zone is up.)
      if (svc_.apply_absent(addr, station, now).value_or(false)) {
        c_.presences_expired->inc();
        const auto new_station = svc_.piconet_of(addr);
        notify_subscribers(addr, new_station.has_value(),
                           new_station.value_or(station), now);
      }
    }
    BIPS_WARN(now, "server: station %u presumed crashed, records expired",
              station);
  }
}

bool BipsServer::ingest_presence(net::Address from,
                                 const proto::PresenceUpdate& m) {
  (void)from;
  // Reliability: deduplicate retransmissions. Duplicates are ackable (the
  // cumulative ack re-tells the sender where the stream stands).
  if (m.seq != 0) {
    const auto it = last_presence_seq_.find(m.workstation);
    if (it != last_presence_seq_.end() && m.seq <= it->second) {
      c_.presence_duplicates->inc();
      return true;
    }
  }
  const SimTime at(m.timestamp_ns);
  const std::optional<bool> changed =
      m.present ? svc_.apply_present(m.bd_addr, m.workstation, at, m.rssi_dbm)
                : svc_.apply_absent(m.bd_addr, m.workstation, at);
  if (!changed) {
    // The zone's shard is down. The delta is refused and must NOT be
    // acked and must not advance the stream: the workstation's retransmit
    // queue holds it until the restarted shard's SyncSnapshot (which
    // clears the queue) or until the shard accepts the retransmission.
    return false;
  }
  if (m.seq != 0) last_presence_seq_[m.workstation] = m.seq;
  if (*changed) notify_subscribers(m.bd_addr, m.present, m.workstation, at);
  return true;
}

void BipsServer::ingest_merged(net::Address from,
                               const proto::PresenceUpdate& m) {
  if (crashed_) return;  // the window's log raced a crash: deltas die too
  // Liveness + routing exactly as if the datagram had arrived here: the
  // station's address feeds pushes and resync requests, and a station in
  // resync-pending keeps being asked for its snapshot.
  note_station_alive(m.workstation, from);
  const SimTime at(m.timestamp_ns);
  const std::optional<bool> changed =
      m.present ? svc_.apply_present(m.bd_addr, m.workstation, at, m.rssi_dbm)
                : svc_.apply_absent(m.bd_addr, m.workstation, at);
  // A nullopt refusal (zone shard died inside the window) drops the delta;
  // the zone-scoped resync after restart_shard restores the slice.
  if (changed.value_or(false)) {
    notify_subscribers(m.bd_addr, m.present, m.workstation, at);
  }
}

void BipsServer::handle(net::Address from, const proto::PresenceUpdate& m) {
  c_.presence_received->inc();
  // Learn which LAN address serves this station (used for pushes); any
  // traffic proves liveness and may trigger a pending resync.
  note_station_alive(m.workstation, from);
  if (ingest_presence(from, m) && m.seq != 0) {
    reply(from, proto::PresenceAck{m.workstation, ackable_seq(m.workstation),
                                   epoch_});
  }
}

void BipsServer::handle(net::Address from, const proto::PresenceBatch& m) {
  c_.batches_received->inc();
  note_station_alive(m.workstation, from);
  bool ackable = false;
  bool sequenced = false;
  for (const auto& u : m.updates) {
    c_.presence_received->inc();
    sequenced = sequenced || u.seq != 0;
    if (ingest_presence(from, u)) ackable = true;
  }
  // One cumulative ack for the whole batch; refused entries sit above the
  // acked seq and stay queued on the workstation.
  if (ackable && sequenced) {
    reply(from, proto::PresenceAck{m.workstation, ackable_seq(m.workstation),
                                   epoch_});
  }
}

bool BipsServer::push_to_device(std::uint64_t bd_addr,
                                const proto::Message& m) {
  const auto station = svc_.piconet_of(bd_addr);
  if (!station) return false;
  const auto it = station_lan_.find(*station);
  if (it == station_lan_.end()) return false;
  reply(it->second, m);
  return true;
}

void BipsServer::notify_subscribers(std::uint64_t bd_addr, bool entered,
                                    StationId station, SimTime at) {
  const auto userid = svc_.userid_of(bd_addr);
  if (!userid) return;  // pre-login devices have no watchable identity
  const UserRecord* rec = registry_.by_userid(*userid);
  if (rec == nullptr) return;
  SubscriptionHub::Event ev;
  ev.user = rec->name;
  ev.entered = entered;
  ev.station = station;
  ev.room = building_.room(station).name;
  ev.at = at;
  hub_.publish(*userid, ev,
               [this](std::uint64_t subscriber,
                      const SubscriptionHub::Event& e) {
                 proto::MovementEvent mev;
                 mev.subscriber_bd_addr = subscriber;
                 mev.target_user = e.user;
                 mev.entered = e.entered;
                 mev.room = e.room;
                 mev.timestamp_ns = e.at.ns();
                 if (push_to_device(subscriber, mev)) c_.events_pushed->inc();
               });
}

QueryStatus BipsServer::resolve_target(std::string_view requester_userid,
                                       std::string_view target_name,
                                       StationId* target_station) const {
  const UserRecord* target = registry_.by_name(target_name);
  if (target == nullptr) return QueryStatus::kUnknownUser;

  if (!requester_userid.empty()) {
    const UserRecord* requester = registry_.by_userid(requester_userid);
    if (requester == nullptr) return QueryStatus::kAccessDenied;
    if (!registry_.can_locate(*requester, *target)) {
      return QueryStatus::kAccessDenied;
    }
  }

  // "BIPS verifies that the target mobile user is logged in."
  const auto addr = svc_.addr_of(target->userid);
  if (!addr) return QueryStatus::kNotLoggedIn;

  const auto station = svc_.piconet_of(*addr);
  if (!station) return QueryStatus::kLocationUnknown;
  *target_station = *station;
  return QueryStatus::kOk;
}

// ----------------------------------------------- unified query API ---

BipsServer::QueryResult BipsServer::query(const Query& q) const {
  QueryResult res;
  switch (q.kind) {
    case Query::Kind::kWhereIs: {
      StationId station = kNoStation;
      res.status = resolve_target(q.requester, q.target, &station);
      if (res.status == QueryStatus::kOk) {
        res.room = building_.room(station).name;
      }
      break;
    }

    case Query::Kind::kPathTo: {
      if (q.from_station >= topology_.node_count()) {
        res.status = QueryStatus::kUnreachable;
        break;
      }
      StationId target_station = kNoStation;
      res.status = resolve_target(q.requester, q.target, &target_station);
      if (res.status != QueryStatus::kOk) break;
      // The graph never changes at runtime, so a materialised answer is
      // valid forever; "everyone asks the way to the same meeting room"
      // stops re-walking the hop list and re-allocating its names.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(q.from_station) << 32) | target_station;
      auto it = path_cache_.find(key);
      if (it != path_cache_.end()) {
        c_.path_cache_hits->inc();
      } else {
        const auto path = paths_.path(q.from_station, target_station);
        if (path.empty() && q.from_station != target_station) {
          res.status = QueryStatus::kUnreachable;
          break;
        }
        CachedPath entry;
        entry.rooms.reserve(path.size());
        for (const auto node : path) {
          entry.rooms.push_back(
              building_.room(static_cast<mobility::RoomId>(node)).name);
        }
        entry.distance = paths_.distance(q.from_station, target_station);
        it = path_cache_.emplace(key, std::move(entry)).first;
      }
      res.rooms = it->second.rooms;
      res.distance = it->second.distance;
      break;
    }

    case Query::Kind::kWhoIsIn: {
      const auto room = building_.find(q.target);
      if (!room) {
        res.status = QueryStatus::kUnknownUser;  // unknown *room*, same family
        break;
      }
      if (!svc_.zone_available(*room)) {
        // The shard owning this room's zone is down; a healthy zone's
        // answer stays correct, this one is honestly unavailable.
        res.status = QueryStatus::kZoneUnavailable;
        break;
      }
      const UserRecord* requester = nullptr;
      if (!q.requester.empty()) {
        requester = registry_.by_userid(q.requester);
        if (requester == nullptr || !requester->may_query) {
          res.status = QueryStatus::kAccessDenied;
          break;
        }
      }
      for (const std::uint64_t addr : svc_.devices_at(*room)) {
        const auto userid = svc_.userid_of(addr);
        if (!userid) continue;
        const UserRecord* target = registry_.by_userid(*userid);
        if (target == nullptr) continue;
        // Privacy: the reply only names users this requester may locate.
        if (requester != nullptr &&
            !registry_.can_locate(*requester, *target)) {
          continue;
        }
        res.users.push_back(target->name);
      }
      std::sort(res.users.begin(), res.users.end());
      break;
    }

    case Query::Kind::kWhereWas:
    case Query::Kind::kHistorySince: {
      const UserRecord* target = registry_.by_name(q.target);
      if (target == nullptr) {
        res.status = QueryStatus::kUnknownUser;
        break;
      }
      if (!q.requester.empty()) {
        const UserRecord* requester = registry_.by_userid(q.requester);
        if (requester == nullptr ||
            !registry_.can_locate(*requester, *target)) {
          res.status = QueryStatus::kAccessDenied;
          break;
        }
      }
      const auto addr = svc_.addr_of(target->userid);
      if (!addr) {
        res.status = QueryStatus::kNotLoggedIn;
        break;
      }
      const SimTime at(q.at_ns);
      if (q.kind == Query::Kind::kWhereWas) {
        const auto fix = svc_.where_was(*addr, at);
        res.was_present = fix.has_value();
        if (fix) {
          res.room = building_.room(fix->station).name;
          res.since = fix->since;
        }
      } else {
        // Every recorded transition of the device at or after `at`, oldest
        // first: the shard histories merged back into global seq order
        // (the bounded history may have evicted older entries).
        for (const auto& t : svc_.history()) {
          if (t.bd_addr != *addr || t.at < at) continue;
          res.visits.push_back(QueryResult::Visit{
              building_.room(t.station).name, t.present, t.at});
        }
      }
      break;
    }
  }

  c_.queries->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kServerQuery,
                static_cast<std::uint32_t>(q.kind),
                static_cast<std::uint64_t>(res.status));
  return res;
}

std::size_t BipsServer::subscription_count() const {
  return hub_.remote_watch_count() + hub_.local_count();
}

// ------------------------------------------------- wire handlers ------

void BipsServer::handle(net::Address from, const proto::Query& m) {
  // The routable form of query(): the requester names itself by userid and
  // must hold a live session (an empty requester is the system operator --
  // LAN-attached tooling, all rights).
  QueryResult res;
  if (!m.requester.empty() && !svc_.logged_in(m.requester)) {
    res.status = QueryStatus::kAccessDenied;
  } else {
    res = query(m);
  }
  reply(from, res);
}

void BipsServer::handle(net::Address from, const proto::WhoIsInRequest& m) {
  c_.whoisin_served->inc();
  const auto requester = svc_.userid_of(m.requester_bd_addr);
  proto::WhoIsInReply rep;
  if (requester) {
    const QueryResult r = query(Query::who_is_in(*requester, m.room));
    rep.status = r.status;
    rep.users = r.users;
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::HistoryRequest& m) {
  c_.history_served->inc();
  const auto requester = svc_.userid_of(m.requester_bd_addr);
  proto::HistoryReply rep;
  if (requester) {
    const QueryResult r = query(
        Query::where_was(*requester, m.target_user, SimTime(m.at_time_ns)));
    rep.status = r.status;
    rep.was_present = r.was_present;
    if (r.was_present) {
      rep.room = r.room;
      rep.since_ns = r.since.ns();
    }
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::SubscribeRequest& m) {
  c_.subscriptions_served->inc();
  proto::SubscribeReply rep;
  rep.query_id = m.query_id;

  const auto requester_id = svc_.userid_of(m.requester_bd_addr);
  const UserRecord* requester =
      requester_id ? registry_.by_userid(*requester_id) : nullptr;
  const UserRecord* target = registry_.by_name(m.target_user);
  if (target == nullptr) {
    rep.status = QueryStatus::kUnknownUser;
  } else if (requester == nullptr ||
             !registry_.can_locate(*requester, *target)) {
    rep.status = QueryStatus::kAccessDenied;
  } else if (m.unsubscribe) {
    hub_.unwatch(target->userid, m.requester_bd_addr);
  } else {
    hub_.watch(target->userid, m.requester_bd_addr);
  }
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::WhereIsRequest& m) {
  c_.whereis_served->inc();
  const auto requester = svc_.userid_of(m.requester_bd_addr);
  proto::WhereIsReply rep;
  if (requester) {
    const QueryResult r = query(Query::where_is(*requester, m.target_user));
    rep.status = r.status;
    rep.room = r.room;
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

void BipsServer::handle(net::Address from, const proto::PathRequest& m) {
  c_.paths_served->inc();
  const auto requester = svc_.userid_of(m.requester_bd_addr);
  proto::PathReply rep;
  if (requester) {
    const QueryResult r =
        query(Query::path_to(*requester, m.target_user, m.from_room));
    rep.status = r.status;
    rep.rooms = r.rooms;
    rep.distance = r.distance;
  } else {
    rep.status = QueryStatus::kAccessDenied;
  }
  rep.query_id = m.query_id;
  reply(from, rep);
}

}  // namespace bips::core
