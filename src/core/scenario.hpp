// Text scenario descriptions.
//
// A deployment -- floor plan, policies, user population, run length -- can
// be written as a small line-based text file and executed without writing
// C++ (examples/scenario_runner is the CLI). Grammar, one directive per
// line, '#' starts a comment:
//
//   seed 42                 # RNG seed
//   radius 10               # piconet coverage radius (m)
//   stagger on              # stagger neighbouring inquiry slots
//   interlaced on           # handhelds use BT 1.2 interlaced inquiry scan
//   inquiry 3.84            # master inquiry slot (s)
//   cycle 15.4              # master operational cycle (s)
//   lan-loss 0.0            # LAN datagram loss probability
//   speed 0.5 1.5           # walking speed range (m/s)
//   pause 20 120            # dwell range between walks (s)
//   room lobby 0 0          # room name + workstation position (m)
//   room lab 14 0
//   edge lobby lab          # physical path; distance defaults to Euclidean
//   edge lobby lab 18       # ... or given explicitly (walking metres)
//   user Alice alice pw lobby
//   station-timeout 10      # server failure detector (0 = off)
//   crash lab 120           # fault injection: lab's workstation dies...
//   restart lab 180         # ...and comes back
//   run 300                 # simulated seconds
//   sample 1                # tracking-metric sample period (s)
//
// parse_scenario validates everything it can statically (unknown rooms,
// duplicate users, disconnected buildings) and reports the offending line.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"

namespace bips::core {

struct ScenarioUser {
  std::string name;
  std::string userid;
  std::string password;
  mobility::RoomId room = 0;
};

/// A scripted workstation fault.
struct ScenarioFault {
  mobility::RoomId room = 0;
  SimTime at;
  bool restart = false;  // false = crash
};

struct ScenarioSpec {
  SimulationConfig config;
  mobility::Building building;
  std::vector<ScenarioUser> users;
  std::vector<ScenarioFault> faults;
  Duration run_time = Duration::seconds(300);
  Duration sample_period = Duration::seconds(1);
};

struct ScenarioError {
  int line = 0;          // 1-based; 0 = file-level problem
  std::string message;
};

/// Parses a scenario; on failure returns nullopt and fills `err`.
std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           ScenarioError* err);

/// Convenience: parse from a string.
std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           ScenarioError* err);

/// Builds the simulation, registers the users, enables tracking metrics and
/// runs for the configured time. The returned simulation can be inspected
/// (tracking(), server().db(), write_history_csv, ...).
std::unique_ptr<BipsSimulation> run_scenario(const ScenarioSpec& spec);

/// Same, but invokes `pre_run` on the fully built (not yet run) simulation
/// first -- the hook for attaching a trace sink or toggling the metrics
/// registry before any event fires.
std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run);

}  // namespace bips::core
