#include "src/core/registry_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace bips::core {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

bool fail(std::string* error, int line, const std::string& msg) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + msg;
  }
  return false;
}

}  // namespace

void save_registry(const UserRegistry& reg, std::ostream& out) {
  out << "bips-registry v1\n";
  for (const UserRecord* u : reg.all_users()) {
    out << "user\t" << u->userid << '\t' << u->name << '\t'
        << hex64(u->password.salt) << '\t' << hex64(u->password.digest)
        << '\t' << (u->locatable_by_anyone ? 1 : 0) << '\t'
        << (u->may_query ? 1 : 0) << '\t';
    // Deterministic order for the allow-list too.
    std::vector<std::string> allowed(u->allowed_requesters.begin(),
                                     u->allowed_requesters.end());
    std::sort(allowed.begin(), allowed.end());
    for (std::size_t i = 0; i < allowed.size(); ++i) {
      if (i) out << ',';
      out << allowed[i];
    }
    out << '\n';
  }
}

std::optional<UserRegistry> load_registry(std::istream& in,
                                          std::string* error) {
  std::string line;
  if (!std::getline(in, line) || line != "bips-registry v1") {
    fail(error, 1, "missing 'bips-registry v1' header");
    return std::nullopt;
  }
  UserRegistry reg;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto f = split(line, '\t');
    if (f.size() != 8 || f[0] != "user") {
      fail(error, lineno, "expected 8 tab-separated fields starting 'user'");
      return std::nullopt;
    }
    PasswordHash hash;
    if (!parse_hex64(f[3], &hash.salt) || !parse_hex64(f[4], &hash.digest)) {
      fail(error, lineno, "bad salt/digest hex");
      return std::nullopt;
    }
    if ((f[5] != "0" && f[5] != "1") || (f[6] != "0" && f[6] != "1")) {
      fail(error, lineno, "flags must be 0 or 1");
      return std::nullopt;
    }
    if (!reg.register_user_prehashed(f[1], f[2], hash)) {
      fail(error, lineno, "duplicate or invalid user record");
      return std::nullopt;
    }
    reg.set_locatable_by_anyone(f[1], f[5] == "1");
    reg.set_may_query(f[1], f[6] == "1");
    if (!f[7].empty()) {
      for (const auto& requester : split(f[7], ',')) {
        if (requester.empty()) {
          fail(error, lineno, "empty requester in allow-list");
          return std::nullopt;
        }
        reg.allow_requester(f[1], requester);
      }
    }
  }
  return reg;
}

}  // namespace bips::core
