#include "src/core/auth.hpp"

namespace bips::core {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr int kIterations = 64;  // cheap stretching

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

PasswordHash hash_password(std::string_view password, std::uint64_t salt) {
  std::uint64_t h = kFnvOffset ^ salt;
  for (int i = 0; i < kIterations; ++i) {
    h = fnv1a(password, h);
    h ^= h >> 33;
    h *= kFnvPrime;
  }
  return PasswordHash{salt, h};
}

bool verify_password(std::string_view password, const PasswordHash& stored) {
  return hash_password(password, stored.salt).digest == stored.digest;
}

}  // namespace bips::core
