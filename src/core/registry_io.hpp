// Persistence for the user registry -- the durable artifact of the paper's
// "off-line procedure for registering new BIPS users".
//
// Text format, tab-separated (user names may contain spaces), one record
// per line after a version header:
//
//   bips-registry v1
//   user<TAB>userid<TAB>display name<TAB>salt-hex<TAB>digest-hex<TAB>
//       anyone(0|1)<TAB>may_query(0|1)<TAB>allowed,requesters,csv
//
// Only salted password digests are stored, never plaintext.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "src/core/registry.hpp"

namespace bips::core {

/// Writes every record, sorted by userid (byte-stable output).
void save_registry(const UserRegistry& reg, std::ostream& out);

/// Parses a saved registry. On failure returns nullopt and, if provided,
/// fills `error` with a line-tagged message.
std::optional<UserRegistry> load_registry(std::istream& in,
                                          std::string* error = nullptr);

}  // namespace bips::core
