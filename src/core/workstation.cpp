#include "src/core/workstation.hpp"

#include "src/util/log.hpp"

namespace bips::core {

BipsWorkstation::BipsWorkstation(sim::Simulator& sim,
                                 baseband::RadioChannel& radio, net::Lan& lan,
                                 net::Address server, StationId station,
                                 baseband::BdAddr addr, Rng rng, Vec2 pos,
                                 WorkstationConfig cfg)
    : sim_(sim),
      server_(server),
      presence_sink_(server),
      station_(station),
      device_(sim, radio, addr, std::move(rng), pos),
      scheduler_(device_, cfg.scheduler),
      endpoint_(lan.create_endpoint()),
      cfg_(cfg),
      retransmit_timer_(sim, cfg.presence_retransmit,
                        [this] { retransmit_unacked(); }),
      heartbeat_timer_(sim, cfg.heartbeat_period,
                       [this] { send_heartbeat(); }),
      c_discoveries_(&sim.obs().metrics.counter("ws.discoveries")),
      c_connections_(&sim.obs().metrics.counter("ws.connections")),
      c_presences_(&sim.obs().metrics.counter("ws.presences_reported")),
      c_absences_(&sim.obs().metrics.counter("ws.absences_reported")),
      c_retransmissions_(&sim.obs().metrics.counter("ws.retransmissions")),
      c_snapshots_(&sim.obs().metrics.counter("ws.snapshots_sent")),
      c_crashes_(&sim.obs().metrics.counter("ws.crashes")),
      c_epoch_notices_(&sim.obs().metrics.counter("ws.epoch_notices")),
      tracer_(&sim.obs().tracer) {
  BIPS_ASSERT(cfg_.missed_rounds_for_absence >= 1);
  BIPS_ASSERT(cfg_.heartbeat_period > Duration(0));

  scheduler_.set_on_discovered(
      [this](const baseband::InquiryResponse& r) { on_discovered(r); });
  scheduler_.set_on_connected(
      [this](baseband::BdAddr a, SimTime when) { on_connected(a, when); });
  scheduler_.set_on_inquiry_done([this](SimTime when) { on_inquiry_done(when); });
  scheduler_.piconet().set_on_link_loss(
      [this](baseband::BdAddr a) { on_link_loss(a); });
  scheduler_.piconet().set_on_message(
      [this](baseband::BdAddr from, const baseband::AclPayload& p) {
        on_acl_message(from, p);
      });
  endpoint_.set_handler([this](net::Address from, const net::Payload& data) {
    on_lan_message(from, data);
  });
}

void BipsWorkstation::start() { start_after(Duration(0)); }

void BipsWorkstation::start_after(Duration offset) {
  crashed_ = false;
  scheduler_.start_after(offset);
  send_heartbeat();  // announce liveness immediately
  heartbeat_timer_.start();
  if (!unacked_.empty()) retransmit_timer_.start();
}

void BipsWorkstation::stop() {
  scheduler_.stop();
  heartbeat_timer_.stop();
  retransmit_timer_.stop();
}

void BipsWorkstation::crash() {
  if (crashed_) return;
  stop();
  crashed_ = true;
  ++stats_.crashes;
  c_crashes_->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kWsCrash, station_);
  // Links die with the radio: detach every slave (they observe the loss and
  // resume scanning), and everything volatile is gone.
  for (const baseband::BdAddr a : scheduler_.piconet().slave_addrs()) {
    scheduler_.piconet().detach(a);
  }
  tracked_.clear();
  unacked_.clear();
  pending_queries_.clear();
  session_hints_.clear();
  pending_logins_.clear();
  server_epoch_ = 0;  // a fresh boot re-learns the server's incarnation
  next_presence_seq_ = 1;  // the server forgets a dead station's stream
  round_ = 0;
}

void BipsWorkstation::restart() {
  if (!crashed_) return;
  tracer_->emit(sim_.now(), obs::TraceKind::kWsRestart, station_);
  start();
}

void BipsWorkstation::send_heartbeat() {
  proto::Heartbeat hb;
  hb.workstation = station_;
  hb.timestamp_ns = sim_.now().ns();
  endpoint_.send(server_, proto::encode(hb));
}

void BipsWorkstation::report(std::uint64_t bd_addr, bool present,
                             double rssi_dbm) {
  proto::PresenceUpdate u;
  u.workstation = station_;
  u.bd_addr = bd_addr;
  u.present = present;
  u.timestamp_ns = sim_.now().ns();
  u.seq = next_presence_seq_++;
  u.rssi_dbm = rssi_dbm;
  // Coalesce: an unacked delta for the same device is superseded by this
  // one (a `present` followed by an `absent` collapses to the absence, and
  // vice versa) -- the server only needs the latest state, and cumulative
  // acks tolerate the gap in the sequence. Keeps the queue bounded by the
  // number of distinct in-flux devices during a server outage.
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    if (it->bd_addr == bd_addr) {
      it = unacked_.erase(it);
      ++stats_.updates_coalesced;
    } else {
      ++it;
    }
  }
  unacked_.push_back(u);
  // Backstop cap for pathological churn: evict the oldest delta. Should the
  // server have missed it, the expiry/resync path restores the state.
  while (unacked_.size() > cfg_.max_unacked) {
    unacked_.pop_front();
    ++stats_.updates_dropped;
  }
  endpoint_.send(presence_sink_, proto::encode(u));
  if (!retransmit_timer_.running()) retransmit_timer_.start();
  present ? ++stats_.presences_reported : ++stats_.absences_reported;
  (present ? c_presences_ : c_absences_)->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kPresence, station_, bd_addr,
                present ? 1 : 0, rssi_dbm);
  BIPS_DEBUG(sim_.now(), "ws %u: %s device %012llx", station_,
             present ? "presence" : "absence",
             static_cast<unsigned long long>(bd_addr));
}

void BipsWorkstation::handle_ack(std::uint64_t acked_seq) {
  while (!unacked_.empty() && unacked_.front().seq <= acked_seq) {
    unacked_.pop_front();
  }
  if (unacked_.empty()) retransmit_timer_.stop();
}

void BipsWorkstation::retransmit_unacked() {
  if (unacked_.empty()) return;
  // The happy path sends singles (one delta, one datagram); only the
  // retransmit path batches. During an outage the queue holds one delta
  // per in-flux device, and re-sending them as N datagrams per beat is
  // pure uplink burn -- one PresenceBatch carries the lot and earns one
  // cumulative ack. Per-delta retransmission counters stay per delta.
  if (unacked_.size() == 1) {
    endpoint_.send(presence_sink_, proto::encode(unacked_.front()));
    ++stats_.retransmissions;
    c_retransmissions_->inc();
    return;
  }
  proto::PresenceBatch batch;
  batch.workstation = station_;
  batch.updates.assign(unacked_.begin(), unacked_.end());
  stats_.retransmissions += unacked_.size();
  c_retransmissions_->inc(unacked_.size());
  endpoint_.send(presence_sink_, proto::encode(batch));
}

void BipsWorkstation::note_server_epoch(std::uint32_t epoch) {
  if (adopt_epoch(epoch)) {
    // The server we knew died and came back empty; its SyncRequest
    // broadcast may have been lost, so push the snapshot unprompted.
    send_snapshot();
  }
}

bool BipsWorkstation::adopt_epoch(std::uint32_t epoch) {
  if (epoch <= server_epoch_) return false;
  const bool server_restarted = server_epoch_ != 0;
  server_epoch_ = epoch;
  // Every adoption is relayed down the piconet: the snapshot above can only
  // restore sessions this station can attest, but a slave that logged in
  // elsewhere (a walker) has no attester anywhere and must hear about the
  // restart itself to re-login.
  relay_epoch();
  return server_restarted;
}

void BipsWorkstation::relay_epoch(baseband::BdAddr only) {
  if (server_epoch_ == 0) return;
  proto::EpochNotice notice;
  notice.server_epoch = server_epoch_;
  const auto payload = proto::encode(notice);
  auto& pico = scheduler_.piconet();
  if (!only.is_null()) {
    if (pico.send(only, payload)) {
      ++stats_.epoch_notices;
      c_epoch_notices_->inc();
    }
    return;
  }
  for (const baseband::BdAddr a : pico.slave_addrs()) {
    if (pico.send(a, payload)) {
      ++stats_.epoch_notices;
      c_epoch_notices_->inc();
    }
  }
}

void BipsWorkstation::send_snapshot() {
  proto::SyncSnapshot snap;
  snap.workstation = station_;
  snap.server_epoch = server_epoch_;
  snap.timestamp_ns = sim_.now().ns();
  snap.present.reserve(tracked_.size());
  for (const auto& [addr, dev] : tracked_) {
    snap.present.push_back({addr.raw(), dev.last_rssi_dbm});
    const auto hint = session_hints_.find(addr.raw());
    if (hint != session_hints_.end()) {
      snap.sessions.push_back({addr.raw(), hint->second});
    }
  }
  // The snapshot is the full state; every pending delta predates it and is
  // superseded (the requesting server has no records of this station, so
  // stale absences have nothing left to clear).
  unacked_.clear();
  retransmit_timer_.stop();
  endpoint_.send(server_, proto::encode(snap));
  ++stats_.snapshots_sent;
  c_snapshots_->inc();
  BIPS_DEBUG(sim_.now(), "ws %u: snapshot to server epoch %u (%zu devices)",
             station_, server_epoch_, snap.present.size());
}

void BipsWorkstation::on_discovered(const baseband::InquiryResponse& r) {
  ++stats_.discoveries;
  c_discoveries_->inc();
  auto [it, inserted] = tracked_.try_emplace(r.addr);
  it->second.last_seen_round = round_;
  it->second.last_rssi_dbm = r.rssi_dbm;
  if (inserted) report(r.addr.raw(), /*present=*/true, r.rssi_dbm);
}

void BipsWorkstation::on_connected(baseband::BdAddr addr, SimTime when) {
  (void)when;
  ++stats_.connections;
  c_connections_->inc();
  if (resolver_) {
    baseband::SlaveLink* link = resolver_(addr);
    if (link != nullptr && !link->connected()) {
      auto& pico = scheduler_.piconet();
      if (!pico.attach(*link) && cfg_.park_idle_links) {
        // All AM_ADDRs taken: park the idlest active slave to make room.
        if (!pico.park_idlest(addr).is_null()) pico.attach(*link);
      }
    }
  }
  // A newly attached slave may have walked in from a room that never heard
  // about a server restart (or it spent the outage between piconets, where
  // nobody could tell it anything): greet it with the current epoch so a
  // stale session re-logs-in here.
  relay_epoch(addr);
  auto [it, inserted] = tracked_.try_emplace(addr);
  it->second.last_seen_round = round_;
  const bool was_connected = it->second.connected;
  it->second.connected = true;
  // A completed page exchange is the strongest proximity evidence a
  // workstation has; report it louder than any inquiry sighting -- and
  // re-report even if the device was already tracked: the earlier
  // inquiry-strength delta may have lost an overlap arbitration at the
  // server, and this upgrade wins it.
  constexpr double kConnectedRssiDbm = -20.0;
  it->second.last_rssi_dbm = kConnectedRssiDbm;
  if (inserted || !was_connected) {
    report(addr.raw(), /*present=*/true, kConnectedRssiDbm);
  }
}

void BipsWorkstation::on_link_loss(baseband::BdAddr addr) {
  // Keep the presence for now: the device may still be in the room with a
  // flaky link; the missed-rounds hysteresis decides.
  const auto it = tracked_.find(addr);
  if (it != tracked_.end()) it->second.connected = false;
}

void BipsWorkstation::on_inquiry_done(SimTime) {
  ++round_;
  // Connected devices count as seen even though they no longer answer
  // inquiries; their link is the proof of presence.
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    auto& [addr, dev] = *it;
    if (dev.connected || scheduler_.piconet().has_slave(addr)) {
      dev.last_seen_round = round_;
    }
    if (round_ - dev.last_seen_round >=
        static_cast<std::uint64_t>(cfg_.missed_rounds_for_absence)) {
      report(addr.raw(), /*present=*/false);
      it = tracked_.erase(it);
    } else {
      ++it;
    }
  }
}

// ------------------------------------------------------------- relaying ---

void BipsWorkstation::on_acl_message(baseband::BdAddr from,
                                     const baseband::AclPayload& p) {
  if (crashed_) return;
  auto msg = proto::decode(p);
  if (!msg) return;

  // Rewrite identity fields from the authenticated link (a handheld cannot
  // spoof another device's BD_ADDR past its own baseband), assign a relay
  // id for reply routing, and forward to the server.
  const bool relayed = std::visit(
      [&](auto& m) -> bool {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::LoginRequest>) {
          m.bd_addr = from.raw();
          // Remember who is logging in on this device: once the reply
          // confirms, the binding becomes a session hint for resyncs.
          pending_logins_[m.bd_addr] = m.userid;
          endpoint_.send(server_, proto::encode(m));
          return true;
        } else if constexpr (std::is_same_v<T, proto::LogoutRequest>) {
          m.bd_addr = from.raw();
          // The hint dies with the logout attempt: resurrecting a session
          // the user asked to end is worse than losing a valid hint.
          pending_logins_.erase(m.bd_addr);
          session_hints_.erase(m.bd_addr);
          endpoint_.send(server_, proto::encode(m));
          return true;
        } else if constexpr (std::is_same_v<T, proto::WhereIsRequest> ||
                             std::is_same_v<T, proto::WhoIsInRequest> ||
                             std::is_same_v<T, proto::HistoryRequest> ||
                             std::is_same_v<T, proto::SubscribeRequest>) {
          m.requester_bd_addr = from.raw();
          const std::uint32_t relay_id = next_relay_id_++;
          pending_queries_.emplace(relay_id,
                                   PendingQuery{from, m.query_id});
          m.query_id = relay_id;
          endpoint_.send(server_, proto::encode(m));
          return true;
        } else if constexpr (std::is_same_v<T, proto::PathRequest>) {
          m.requester_bd_addr = from.raw();
          m.from_room = station_;  // the requester is in *this* piconet
          const std::uint32_t relay_id = next_relay_id_++;
          pending_queries_.emplace(relay_id,
                                   PendingQuery{from, m.query_id});
          m.query_id = relay_id;
          endpoint_.send(server_, proto::encode(m));
          return true;
        } else {
          return false;  // unexpected type from a handheld
        }
      },
      *msg);
  if (relayed) ++stats_.relays_up;
}

void BipsWorkstation::on_lan_message(net::Address, const net::Payload& data) {
  if (crashed_) return;
  auto msg = proto::decode(data);
  if (!msg) return;

  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::PresenceAck>) {
          handle_ack(m.seq);
          note_server_epoch(m.server_epoch);
        } else if constexpr (std::is_same_v<T, proto::HeartbeatAck>) {
          note_server_epoch(m.server_epoch);
        } else if constexpr (std::is_same_v<T, proto::SyncRequest>) {
          // The server explicitly states it holds nothing for us (restart
          // broadcast, or it expired our records): always answer. The
          // restart broadcast is usually the first thing a station hears
          // from the new incarnation, so it must feed the epoch relay too.
          adopt_epoch(m.server_epoch);
          send_snapshot();
        } else if constexpr (std::is_same_v<T, proto::LoginReply>) {
          const auto pending = pending_logins_.find(m.bd_addr);
          if (pending != pending_logins_.end()) {
            if (m.ok) session_hints_[m.bd_addr] = pending->second;
            pending_logins_.erase(pending);
          }
          const baseband::BdAddr to(m.bd_addr);
          if (scheduler_.piconet().send(to, proto::encode(m))) {
            ++stats_.relays_down;
          }
          if (m.ok && cfg_.park_idle_links) {
            // Enrolled and idle: hand back the AM_ADDR, keep the membership.
            sim_.schedule(cfg_.park_after_login_delay,
                          [this, to] { scheduler_.piconet().park(to); });
          }
        } else if constexpr (std::is_same_v<T, proto::LogoutReply>) {
          const baseband::BdAddr to(m.bd_addr);
          if (scheduler_.piconet().send(to, proto::encode(m))) {
            ++stats_.relays_down;
          }
        } else if constexpr (std::is_same_v<T, proto::MovementEvent>) {
          // Server push: forward to the subscriber if it is in our piconet
          // (it was when the server routed here; it may have just left).
          const baseband::BdAddr to(m.subscriber_bd_addr);
          if (scheduler_.piconet().send(to, proto::encode(m))) {
            ++stats_.relays_down;
          }
        } else if constexpr (std::is_same_v<T, proto::WhereIsReply> ||
                             std::is_same_v<T, proto::PathReply> ||
                             std::is_same_v<T, proto::WhoIsInReply> ||
                             std::is_same_v<T, proto::HistoryReply> ||
                             std::is_same_v<T, proto::SubscribeReply>) {
          const auto it = pending_queries_.find(m.query_id);
          if (it == pending_queries_.end()) return;
          const PendingQuery pq = it->second;
          pending_queries_.erase(it);
          m.query_id = pq.original_id;
          if (scheduler_.piconet().send(pq.device, proto::encode(m))) {
            ++stats_.relays_down;
          }
        }
      },
      *msg);
}

}  // namespace bips::core
