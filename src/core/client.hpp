// A BIPS handheld client.
//
// Wraps a baseband SlaveController with the BIPS session logic: on its
// first connection to any workstation it logs in (binding its userid to its
// BD_ADDR at the server), after which it may issue "where is" and
// "path to" queries through whichever workstation currently serves it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/baseband/slave.hpp"
#include "src/obs/metrics.hpp"
#include "src/proto/messages.hpp"

namespace bips::core {

struct ClientConfig {
  std::string userid;
  std::string password;
  baseband::SlaveConfig slave;
  /// Send LoginRequest automatically on the first connection.
  bool auto_login = true;
};

class BipsClient {
 public:
  using LoginCallback = std::function<void(const proto::LoginReply&)>;
  using WhereIsCallback = std::function<void(const proto::WhereIsReply&)>;
  using PathCallback = std::function<void(const proto::PathReply&)>;
  using WhoIsInCallback = std::function<void(const proto::WhoIsInReply&)>;
  using HistoryCallback = std::function<void(const proto::HistoryReply&)>;
  using SubscribeCallback = std::function<void(const proto::SubscribeReply&)>;
  using MovementCallback = std::function<void(const proto::MovementEvent&)>;

  BipsClient(sim::Simulator& sim, baseband::RadioChannel& radio,
             baseband::BdAddr addr, Rng rng, ClientConfig cfg);

  baseband::BdAddr addr() const { return ctrl_.device().addr(); }
  const std::string& userid() const { return cfg_.userid; }
  baseband::SlaveController& controller() { return ctrl_; }
  baseband::SlaveLink& link() { return ctrl_.link(); }
  baseband::Device& device() { return ctrl_.device(); }

  /// Starts scanning (the device becomes discoverable).
  void start() { ctrl_.start(); }
  void stop() { ctrl_.stop(); }

  bool connected() const { return ctrl_.connected(); }
  bool logged_in() const { return logged_in_; }

  /// Latest server incarnation this client has heard of (EpochNotice or a
  /// successful LoginReply); 0 until the first notice.
  std::uint32_t known_epoch() const { return known_epoch_; }
  /// The incarnation that granted the current (or, if logged out, the last)
  /// session; 0 before the first login.
  std::uint32_t login_epoch() const { return login_epoch_; }

  void set_on_login(LoginCallback cb) { on_login_ = std::move(cb); }

  /// Issues the paper's spatio-temporal query for `target_name`. Requires a
  /// live connection to a workstation; returns false otherwise. The reply
  /// arrives asynchronously on `cb`.
  bool where_is(const std::string& target_name, WhereIsCallback cb);

  /// Asks for the shortest path from the current room to `target_name`'s
  /// room ("visualize the shortest path he has to follow").
  bool find_path_to(const std::string& target_name, PathCallback cb);

  /// Inverse spatial query: who is currently in `room_name`?
  bool who_is_in(const std::string& room_name, WhoIsInCallback cb);

  /// Temporal query: where was `target_name` at instant `at`?
  bool where_was(const std::string& target_name, SimTime at,
                 HistoryCallback cb);

  /// Subscribes to `target_name`'s room transitions. `on_event` fires for
  /// every movement pushed by the server while this device is reachable;
  /// `on_result` reports whether the subscription was accepted.
  bool subscribe(const std::string& target_name, MovementCallback on_event,
                 SubscribeCallback on_result = nullptr);
  bool unsubscribe(const std::string& target_name,
                   SubscribeCallback on_result = nullptr);

  /// Explicit logout (also sent on stop() when logged in and connected).
  bool logout();

  /// Fault injection: the handheld powers off. Scanning stops and all
  /// session RAM -- login state, pending query callbacks, live watches --
  /// is lost without any goodbye on the air. An attached master only
  /// notices through its supervision timeout, so the owning simulation
  /// shadows the device's radio position alongside this call.
  void power_off();
  /// Powers back on: resumes scanning when disconnected, or re-logs-in
  /// over a link that survived an outage shorter than the supervision
  /// timeout (no reconnect event would fire to trigger the auto-login).
  void power_on();

  /// Shard-handoff capsule: the session state that walks across a zone seam
  /// with the user. The radio link does not cross -- it dies in the old zone
  /// by supervision timeout, exactly like any other walkout.
  struct HandoffState {
    bool logged_in = false;
    std::uint32_t known_epoch = 0;
    std::uint32_t login_epoch = 0;
  };

  /// Suspends this replica for a shard handoff: stops scanning and the
  /// login-retry loop *without* sending a logout (unlike stop()) and without
  /// dropping the session (unlike power_off()). Pending query callbacks and
  /// watches are cleared -- their replies cannot follow the user across the
  /// seam. Returns the capsule for the replica on the far side.
  HandoffState suspend_handoff();
  /// Resumes a dormant replica on the new owner shard: adopts the session
  /// state and starts scanning so the new zone's masters can discover it.
  void resume_handoff(const HandoffState& st);

  /// Stress act: queues `n` back-to-back LoginRequests on the live link
  /// (duplicates included -- the server's session handling must stay
  /// idempotent under the burst). Returns how many were queued; 0 when
  /// not connected.
  int flood_logins(int n);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t logins_sent = 0;
    std::uint64_t queries_sent = 0;
    std::uint64_t replies_received = 0;
    /// Sessions dropped and re-established because an EpochNotice showed
    /// the server restarted since this client's login.
    std::uint64_t relogins = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_connected(baseband::BdAddr master, std::uint32_t clock,
                    SimTime when);
  void try_login();
  void on_message(const baseband::AclPayload& p);

  sim::Simulator& sim_;
  ClientConfig cfg_;
  baseband::SlaveController ctrl_;
  bool logged_in_ = false;
  bool login_pending_ = false;
  std::uint32_t known_epoch_ = 0;
  std::uint32_t login_epoch_ = 0;
  sim::Process login_retry_{sim_, [this] { try_login(); }};
  LoginCallback on_login_;
  std::uint32_t next_query_ = 1;
  std::unordered_map<std::uint32_t, WhereIsCallback> whereis_pending_;
  std::unordered_map<std::uint32_t, PathCallback> path_pending_;
  std::unordered_map<std::uint32_t, WhoIsInCallback> whoisin_pending_;
  std::unordered_map<std::uint32_t, HistoryCallback> history_pending_;
  std::unordered_map<std::uint32_t, SubscribeCallback> subscribe_pending_;
  /// Live movement subscriptions, keyed by the watched user's name.
  std::unordered_map<std::string, MovementCallback> watches_;
  Stats stats_;
  obs::Counter* c_relogins_;
};

}  // namespace bips::core
