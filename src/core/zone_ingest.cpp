#include "src/core/zone_ingest.hpp"

#include <variant>

namespace bips::core {

ZoneIngest::ZoneIngest(sim::Simulator& sim, net::Lan& lan,
                       std::size_t station_count)
    : sim_(sim), endpoint_(lan.create_endpoint()) {
  station_refused_.assign(station_count, 0);
  obs::MetricsRegistry& reg = sim.obs().metrics;
  c_ops_ = &reg.counter("svc.ingest_ops");
  c_dupes_ = &reg.counter("svc.ingest_dupes");
  endpoint_.set_handler([this](net::Address from, const net::Payload& data) {
    on_datagram(from, data);
  });
}

void ZoneIngest::on_datagram(net::Address from, const net::Payload& data) {
  // A dead server's front-ends are dead with it: while the (barrier-
  // mirrored) server state says crashed, presence goes unacked and unqueued
  // so the stations hold it for the restart resync.
  if (server_crashed_) return;
  const auto msg = proto::decode(data);
  if (!msg) return;  // stations only ever send well-formed presence here
  if (const auto* u = std::get_if<proto::PresenceUpdate>(&*msg)) {
    if (accept(from, *u) && u->seq != 0) {
      endpoint_.send(from, proto::encode(proto::PresenceAck{
                               u->workstation, last_seq_[u->workstation],
                               epoch_}));
    }
  } else if (const auto* b = std::get_if<proto::PresenceBatch>(&*msg)) {
    bool ackable = false;
    bool sequenced = false;
    for (const auto& u : b->updates) {
      sequenced = sequenced || u.seq != 0;
      if (accept(from, u)) ackable = true;
    }
    // One cumulative ack for the whole batch, exactly like the server's
    // batch path: refused entries sit above the acked seq and stay queued.
    if (ackable && sequenced) {
      endpoint_.send(from, proto::encode(proto::PresenceAck{
                               b->workstation, last_seq_[b->workstation],
                               epoch_}));
    }
  }
}

bool ZoneIngest::accept(net::Address from, const proto::PresenceUpdate& u) {
  if (u.workstation < station_refused_.size() &&
      station_refused_[u.workstation] != 0) {
    // The owning location shard is crashed: refuse un-acked, exactly like
    // PartitionedLocationService refusing the delta at the server.
    return false;
  }
  if (u.seq != 0) {
    const auto it = last_seq_.find(u.workstation);
    if (it != last_seq_.end() && u.seq <= it->second) {
      c_dupes_->inc();
      return true;  // duplicate: ackable, re-tells the stream position
    }
    last_seq_[u.workstation] = u.seq;
  }
  log_.push_back(Entry{sim_.now(), from, u});
  ++ops_;
  c_ops_->inc();
  return true;
}

}  // namespace bips::core
