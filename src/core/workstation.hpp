// A BIPS workstation: piconet master + presence tracker + protocol relay.
//
// "The main task of every BIPS workstation is discovering and enrolling
// those mobile users who enter its coverage area. Once a handheld device
// has been enrolled, its position is communicated to the central server."
//
// Tracking policy (paper section 2 + 5):
//  * the MasterScheduler alternates a continuous inquiry slot with a
//    service phase, per operational cycle;
//  * a device is *seen* in a round if it answered the inquiry or is
//    attached to the piconet;
//  * presence is reported to the server the first time a device is seen;
//    absence is reported after `missed_rounds_for_absence` consecutive
//    rounds without a sighting (hysteresis against unlucky inquiry rounds);
//  * only deltas travel on the LAN.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "src/baseband/scheduler.hpp"
#include "src/core/location_db.hpp"
#include "src/net/lan.hpp"
#include "src/proto/messages.hpp"

namespace bips::core {

struct WorkstationConfig {
  baseband::SchedulerConfig scheduler;
  /// Consecutive inquiry rounds a device may go unseen before the
  /// workstation announces its absence.
  int missed_rounds_for_absence = 2;
  /// Unacknowledged presence updates are retransmitted at this period
  /// (sequence numbers + cumulative server acks make the stream survive
  /// LAN loss).
  Duration presence_retransmit = Duration::millis(500);
  /// Hard cap on the retransmit queue: a long server outage must not grow
  /// it without bound. Superseded deltas for the same device are coalesced
  /// first, so the cap only ever bites with more distinct in-flux devices
  /// than this; the oldest delta is dropped then (the server resyncs via
  /// snapshot anyway once it reappears).
  std::size_t max_unacked = 256;
  /// Park slaves once they are logged in, and park the idlest active slave
  /// to admit a newcomer when all 7 AM_ADDRs are taken -- lets one room
  /// track far more than seven users (Bluetooth park mode).
  bool park_idle_links = true;
  /// Liveness beacon period (feeds the server's failure detector).
  Duration heartbeat_period = Duration::seconds(2);
  /// Grace between relaying a successful login reply and parking the link
  /// (lets the reply ride a poll down to the handheld first).
  Duration park_after_login_delay = Duration::millis(200);
};

class BipsWorkstation {
 public:
  /// Resolves a discovered BD_ADDR to its SlaveLink so the piconet can
  /// attach it (wired by the owning simulation; returns nullptr for devices
  /// that are not simulated clients).
  using LinkResolver = std::function<baseband::SlaveLink*(baseband::BdAddr)>;

  BipsWorkstation(sim::Simulator& sim, baseband::RadioChannel& radio,
                  net::Lan& lan, net::Address server, StationId station,
                  baseband::BdAddr addr, Rng rng, Vec2 pos,
                  WorkstationConfig cfg);

  void set_link_resolver(LinkResolver r) { resolver_ = std::move(r); }

  void start();
  /// Starts with the operational cycle delayed by `offset` (inquiry
  /// staggering across neighbours); heartbeats and the LAN side are live
  /// immediately.
  void start_after(Duration offset);
  void stop();

  /// Fault injection: the workstation dies -- radio silent, links dropped,
  /// timers stopped, LAN traffic ignored -- until restart(). The server's
  /// failure detector is what cleans up after it.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  StationId station() const { return station_; }
  net::Address lan_address() const { return endpoint_.address(); }
  /// Redirects the presence stream (reports, retransmit singles and
  /// batches) to a different LAN endpoint. The sharded harness points this
  /// at the zone's local ingest front-end (core::ZoneIngest) so presence
  /// stays on the zone's own shard; heartbeats, snapshots and protocol
  /// relays keep travelling to the server. Defaults to the server address.
  void set_presence_sink(net::Address sink) { presence_sink_ = sink; }
  baseband::Device& device() { return device_; }
  baseband::MasterScheduler& scheduler() { return scheduler_; }

  /// Devices currently considered present in this piconet.
  std::size_t tracked_count() const { return tracked_.size(); }
  bool tracks(baseband::BdAddr a) const { return tracked_.count(a) != 0; }

  // Authoritative per-instance counters (unlike the radio/LAN counters,
  // which live in the MetricsRegistry: a building has many workstations and
  // per-instance breakdown is what the experiments read).
  struct Stats {
    std::uint64_t presences_reported = 0;
    std::uint64_t absences_reported = 0;
    std::uint64_t discoveries = 0;
    std::uint64_t connections = 0;
    std::uint64_t relays_up = 0;    // handheld -> server messages relayed
    std::uint64_t relays_down = 0;  // server -> handheld replies relayed
    std::uint64_t retransmissions = 0;  // presence updates resent
    std::uint64_t updates_coalesced = 0;  // superseded deltas collapsed
    std::uint64_t updates_dropped = 0;    // queue-cap evictions
    std::uint64_t snapshots_sent = 0;     // SyncSnapshots pushed
    std::uint64_t crashes = 0;            // fault injections survived
    std::uint64_t epoch_notices = 0;      // EpochNotices pushed to slaves
  };
  const Stats& stats() const { return stats_; }

  /// Presence updates sent but not yet acknowledged by the server.
  std::size_t unacked_updates() const { return unacked_.size(); }

  /// Next presence sequence number (monotonic per incarnation; resets only
  /// on crash()). Exposed for the fault layer's regression invariant.
  std::uint64_t presence_seq() const { return next_presence_seq_; }
  /// Last server epoch this workstation has observed (0 = none yet).
  std::uint32_t known_server_epoch() const { return server_epoch_; }

 private:
  struct TrackedDevice {
    std::uint64_t last_seen_round = 0;
    bool connected = false;
    double last_rssi_dbm = 0.0;  // strength of the latest sighting
  };

  void on_discovered(const baseband::InquiryResponse& r);
  void on_connected(baseband::BdAddr addr, SimTime when);
  void on_link_loss(baseband::BdAddr addr);
  void on_inquiry_done(SimTime when);
  void report(std::uint64_t bd_addr, bool present, double rssi_dbm = 0.0);
  void handle_ack(std::uint64_t acked_seq);
  void retransmit_unacked();
  void send_heartbeat();

  /// Records a server epoch seen on any server->workstation message; an
  /// advance past an already-known epoch means the server restarted empty,
  /// so a snapshot is pushed without waiting for its SyncRequest.
  void note_server_epoch(std::uint32_t epoch);
  /// Adopts `epoch` if it advances past the known one and relays it to
  /// every attached slave (the epoch relay's workstation hop). Returns
  /// true when the advance revealed a restart of an already-known server
  /// (i.e. a snapshot push is warranted).
  bool adopt_epoch(std::uint32_t epoch);
  /// Pushes an EpochNotice with the current epoch to one slave (`only`) or,
  /// when `only` is null, to every attached slave -- parked ones included:
  /// send() queues and the poll loop auto-unparks them.
  void relay_epoch(baseband::BdAddr only = {});
  /// Full-state push: everything tracked plus witnessed session bindings.
  /// Supersedes (and clears) all pending deltas.
  void send_snapshot();

  // Relay plumbing.
  void on_acl_message(baseband::BdAddr from, const baseband::AclPayload& p);
  void on_lan_message(net::Address from, const net::Payload& data);

  sim::Simulator& sim_;
  net::Address server_;
  net::Address presence_sink_;  // where the presence stream goes (see above)
  StationId station_;
  baseband::Device device_;
  baseband::MasterScheduler scheduler_;
  net::Endpoint& endpoint_;
  WorkstationConfig cfg_;
  LinkResolver resolver_;

  std::uint64_t round_ = 0;
  std::unordered_map<baseband::BdAddr, TrackedDevice> tracked_;

  /// Reliable presence stream: in-flight updates await a cumulative ack.
  std::uint64_t next_presence_seq_ = 1;
  std::deque<proto::PresenceUpdate> unacked_;
  sim::PeriodicTimer retransmit_timer_;
  sim::PeriodicTimer heartbeat_timer_;
  bool crashed_ = false;

  /// Server incarnation tracking (see note_server_epoch).
  std::uint32_t server_epoch_ = 0;
  /// Witnessed session bindings (bd_addr -> userid), from relayed logins;
  /// carried on snapshots so a restarted server recovers sessions without
  /// waiting for every handheld to notice and re-login.
  std::unordered_map<std::uint64_t, std::string> session_hints_;
  /// Login relays whose reply has not come back yet (bd_addr -> userid).
  std::unordered_map<std::uint64_t, std::string> pending_logins_;

  /// Query relays in flight: relay id -> (device, its original query id).
  struct PendingQuery {
    baseband::BdAddr device;
    std::uint32_t original_id = 0;
  };
  std::uint32_t next_relay_id_ = 1;
  std::unordered_map<std::uint32_t, PendingQuery> pending_queries_;
  Stats stats_;

  // Aggregate "ws.*" registry cells, summed across every workstation on
  // the simulator (the per-instance Stats struct above stays authoritative
  // per station), plus the tracer for presence/crash records.
  obs::Counter* c_discoveries_;
  obs::Counter* c_connections_;
  obs::Counter* c_presences_;
  obs::Counter* c_absences_;
  obs::Counter* c_retransmissions_;
  obs::Counter* c_snapshots_;
  obs::Counter* c_crashes_;
  obs::Counter* c_epoch_notices_;
  obs::Tracer* tracer_;
};

}  // namespace bips::core
