#include "src/core/scenario.hpp"

#include <istream>
#include <sstream>
#include <unordered_set>

namespace bips::core {

namespace {

bool fail(ScenarioError* err, int line, std::string message) {
  if (err != nullptr) *err = ScenarioError{line, std::move(message)};
  return false;
}

bool parse_double(const std::string& tok, double* out) {
  std::size_t pos = 0;
  try {
    *out = std::stod(tok, &pos);
  } catch (...) {
    return false;
  }
  return pos == tok.size();
}

bool parse_positive(const std::string& tok, double* out) {
  return parse_double(tok, out) && *out > 0;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;  // comment until end of line
    toks.push_back(t);
  }
  return toks;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           ScenarioError* err) {
  std::istringstream is(text);
  return parse_scenario(is, err);
}

std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           ScenarioError* err) {
  ScenarioSpec spec;
  std::unordered_set<std::string> userids, usernames;
  std::string line;
  int lineno = 0;
  bool ok = true;

  while (ok && std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];
    const std::size_t argc = toks.size() - 1;

    auto want = [&](std::size_t lo, std::size_t hi) {
      if (argc >= lo && argc <= hi) return true;
      std::ostringstream msg;
      msg << cmd << ": expected ";
      if (lo == hi) {
        msg << lo;
      } else {
        msg << lo << ".." << hi;
      }
      msg << " arguments, got " << argc;
      return fail(err, lineno, msg.str());
    };

    double v = 0, v2 = 0;
    if (cmd == "seed") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0)) {
        fail(err, lineno, "seed: not a non-negative number");
        break;
      }
      spec.config.seed = static_cast<std::uint64_t>(v);
    } else if (cmd == "radius") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "radius: not a positive number");
        break;
      }
      spec.config.coverage_radius_m = v;
    } else if (cmd == "stagger") {
      if (!(ok = want(1, 1))) break;
      if (toks[1] == "on") {
        spec.config.stagger_inquiry = true;
      } else if (toks[1] == "off") {
        spec.config.stagger_inquiry = false;
      } else {
        ok = fail(err, lineno, "stagger: expected 'on' or 'off'");
      }
    } else if (cmd == "inquiry") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "inquiry: not a positive number of seconds");
        break;
      }
      spec.config.workstation.scheduler.inquiry_length =
          Duration::from_seconds(v);
    } else if (cmd == "cycle") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "cycle: not a positive number of seconds");
        break;
      }
      spec.config.workstation.scheduler.cycle_length =
          Duration::from_seconds(v);
    } else if (cmd == "interlaced") {
      if (!(ok = want(1, 1))) break;
      if (toks[1] == "on") {
        spec.config.slave.inquiry_scan.interlaced = true;
      } else if (toks[1] == "off") {
        spec.config.slave.inquiry_scan.interlaced = false;
      } else {
        ok = fail(err, lineno, "interlaced: expected 'on' or 'off'");
      }
    } else if (cmd == "lan-loss") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0 && v <= 1)) {
        fail(err, lineno, "lan-loss: expected a probability in [0, 1]");
        break;
      }
      spec.config.lan.loss = v;
    } else if (cmd == "speed") {
      if (!(ok = want(2, 2))) break;
      if (!(ok = parse_positive(toks[1], &v) && parse_positive(toks[2], &v2) &&
                 v <= v2)) {
        fail(err, lineno, "speed: expected 0 < min <= max (m/s)");
        break;
      }
      spec.config.mobility.speed_min_mps = v;
      spec.config.mobility.speed_max_mps = v2;
    } else if (cmd == "pause") {
      if (!(ok = want(2, 2))) break;
      if (!(ok = parse_double(toks[1], &v) && parse_double(toks[2], &v2) &&
                 v >= 0 && v <= v2)) {
        fail(err, lineno, "pause: expected 0 <= min <= max (seconds)");
        break;
      }
      spec.config.mobility.pause_min = Duration::from_seconds(v);
      spec.config.mobility.pause_max = Duration::from_seconds(v2);
    } else if (cmd == "room") {
      if (!(ok = want(3, 3))) break;
      if (spec.building.find(toks[1]).has_value()) {
        ok = fail(err, lineno, "room: duplicate room name '" + toks[1] + "'");
        break;
      }
      if (!(ok = parse_double(toks[2], &v) && parse_double(toks[3], &v2))) {
        fail(err, lineno, "room: coordinates must be numbers");
        break;
      }
      spec.building.add_room(toks[1], Vec2{v, v2});
    } else if (cmd == "edge") {
      if (!(ok = want(2, 3))) break;
      const auto a = spec.building.find(toks[1]);
      const auto b = spec.building.find(toks[2]);
      if (!a || !b) {
        ok = fail(err, lineno, "edge: unknown room");
        break;
      }
      if (*a == *b) {
        ok = fail(err, lineno, "edge: cannot connect a room to itself");
        break;
      }
      if (argc == 3) {
        if (!(ok = parse_positive(toks[3], &v))) {
          fail(err, lineno, "edge: distance must be positive");
          break;
        }
        spec.building.connect(*a, *b, v);
      } else {
        spec.building.connect(*a, *b);
      }
    } else if (cmd == "user") {
      if (!(ok = want(4, 4))) break;
      const auto room = spec.building.find(toks[4]);
      if (!room) {
        ok = fail(err, lineno, "user: unknown start room '" + toks[4] + "'");
        break;
      }
      if (!usernames.insert(toks[1]).second) {
        ok = fail(err, lineno, "user: duplicate name '" + toks[1] + "'");
        break;
      }
      if (!userids.insert(toks[2]).second) {
        ok = fail(err, lineno, "user: duplicate userid '" + toks[2] + "'");
        break;
      }
      spec.users.push_back(ScenarioUser{toks[1], toks[2], toks[3], *room});
    } else if (cmd == "station-timeout") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0)) {
        fail(err, lineno, "station-timeout: not a non-negative number");
        break;
      }
      spec.config.server.station_timeout = Duration::from_seconds(v);
    } else if (cmd == "crash" || cmd == "restart") {
      if (!(ok = want(2, 2))) break;
      const auto room = spec.building.find(toks[1]);
      if (!room) {
        ok = fail(err, lineno, cmd + ": unknown room '" + toks[1] + "'");
        break;
      }
      if (!(ok = parse_positive(toks[2], &v))) {
        fail(err, lineno, cmd + ": time must be a positive number of seconds");
        break;
      }
      spec.faults.push_back(ScenarioFault{
          *room, SimTime(Duration::from_seconds(v).ns()), cmd == "restart"});
    } else if (cmd == "run") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "run: not a positive number of seconds");
        break;
      }
      spec.run_time = Duration::from_seconds(v);
    } else if (cmd == "sample") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "sample: not a positive number of seconds");
        break;
      }
      spec.sample_period = Duration::from_seconds(v);
    } else {
      ok = fail(err, lineno, "unknown directive '" + cmd + "'");
    }
  }
  if (!ok) return std::nullopt;

  // File-level validation.
  if (spec.building.room_count() == 0) {
    fail(err, 0, "scenario declares no rooms");
    return std::nullopt;
  }
  if (!spec.building.to_graph().connected()) {
    fail(err, 0, "building graph is not connected (missing edges)");
    return std::nullopt;
  }
  if (spec.config.workstation.scheduler.inquiry_length >=
      spec.config.workstation.scheduler.cycle_length) {
    fail(err, 0, "inquiry slot must be shorter than the cycle");
    return std::nullopt;
  }
  return spec;
}

std::unique_ptr<BipsSimulation> run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, {});
}

std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run) {
  auto sim = std::make_unique<BipsSimulation>(spec.building, spec.config);
  for (const auto& u : spec.users) {
    sim->add_user(u.name, u.userid, u.password, u.room);
  }
  sim->enable_tracking_metrics(spec.sample_period);
  // Scripted faults fire at their scenario times.
  BipsSimulation* raw = sim.get();
  for (const auto& f : spec.faults) {
    sim->simulator().schedule_at(f.at, [raw, f] {
      auto& ws = raw->workstation(f.room);
      f.restart ? ws.restart() : ws.crash();
    });
  }
  if (pre_run) pre_run(*sim);
  sim->run_for(spec.run_time);
  return sim;
}

}  // namespace bips::core
