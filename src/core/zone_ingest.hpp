// Zone-local presence ingest front-end for the sharded simulation.
//
// In a sharded world (DESIGN.md section 9) every zone's workstations used to
// uplink their presence streams to the shard-0 server, so decode, dedup and
// acking for the whole building serialized on one worker. A ZoneIngest is a
// LAN endpoint owned by the zone's own shard: the zone's stations report
// presence to it at intra-zone latency, it deduplicates and acks the streams
// locally on the zone's worker thread, and it appends every accepted-fresh
// delta to a per-window log. The shard-0 server never sees the datagrams;
// at each window barrier the harness drains all zone logs single-threaded,
// sorts them on (receive instant, zone, arrival order) and replays them
// through the shared PartitionedLocationService (BipsServer::ingest_merged)
// -- the cross-zone merge that keeps Transition::seq assignment, FIFO
// eviction and the db.* counters identical at every thread count.
//
// Server-side control state (crash epoch, crashed location shards, the
// failure detector's dedup resets) is pushed *to* the agent at barriers, so
// the worker-thread fast path reads only zone-local memory. The agent may
// therefore lag the server by at most one window (~ms) after a crash: a
// delta acked in that sliver and refused at the merge is repaired by the
// same snapshot resync that heals every other crash, exactly like a delta
// acked just before a monolithic server dies.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/location_db.hpp"
#include "src/net/lan.hpp"
#include "src/obs/obs.hpp"
#include "src/proto/messages.hpp"
#include "src/sim/simulator.hpp"

namespace bips::core {

class ZoneIngest {
 public:
  /// One accepted-fresh presence delta, logged in zone-local arrival order.
  struct Entry {
    SimTime recv_at;        // the agent's receive instant (merge sort key)
    net::Address from;      // the reporting station's global LAN address
    proto::PresenceUpdate u;
  };

  /// Creates the zone's ingest endpoint on `lan` (the zone's own segment).
  ZoneIngest(sim::Simulator& sim, net::Lan& lan, std::size_t station_count);

  net::Address address() const { return endpoint_.address(); }

  /// Moves out the window's accepted-delta log. Call single-threaded at a
  /// window barrier only.
  std::vector<Entry> drain() {
    std::vector<Entry> out;
    out.swap(log_);
    return out;
  }

  // ---- barrier-time control plane (single-threaded writers only) --------

  /// Mirrors the server's crash state and incarnation into the agent. While
  /// the server is down the agent goes deaf with it: no acks, no logging,
  /// no dedup advance -- the stations queue and retransmit exactly as they
  /// would against a dead monolithic server.
  void set_server_state(bool crashed, std::uint32_t epoch) {
    server_crashed_ = crashed;
    epoch_ = epoch;
  }
  /// Mirrors a location-shard crash for one of this zone's stations: its
  /// deltas are refused un-acked until the shard restarts (the workstation
  /// retransmit queue plus the zone-scoped resync repair the gap).
  void set_station_refused(StationId station, bool refused) {
    if (station < station_refused_.size()) {
      station_refused_[station] = refused ? 1 : 0;
    }
  }
  /// The failure detector expired this station: its next incarnation starts
  /// a fresh stream, so forget the dedup watermark (the barrier-propagated
  /// twin of the server erasing last_presence_seq_).
  void reset_station(StationId station) { last_seq_.erase(station); }

  /// Accepted-fresh deltas logged over the agent's lifetime (svc.ingest_ops
  /// mirrors this in the zone's registry).
  std::uint64_t ops() const { return ops_; }

 private:
  void on_datagram(net::Address from, const net::Payload& data);
  /// Dedups + logs one update; returns true if ackable (fresh or duplicate,
  /// i.e. anything but a refusal).
  bool accept(net::Address from, const proto::PresenceUpdate& u);

  sim::Simulator& sim_;
  net::Endpoint& endpoint_;
  /// Cumulative per-station watermark: highest logged seq (the ack value).
  std::unordered_map<StationId, std::uint64_t> last_seq_;
  std::vector<Entry> log_;
  std::vector<char> station_refused_;
  bool server_crashed_ = false;
  std::uint32_t epoch_ = 1;
  std::uint64_t ops_ = 0;
  obs::Counter* c_ops_;
  obs::Counter* c_dupes_;
};

}  // namespace bips::core
