#include "src/core/location_service.hpp"

#include <algorithm>
#include <limits>

#include "src/util/assert.hpp"

namespace bips::core {

PartitionedLocationService::Shard::Shard(obs::MetricsRegistry* registry)
    // Per-shard histories are unbounded; the *global* FIFO bound is
    // enforced by the service (trim_history) so eviction order matches a
    // single database exactly.
    : db(std::numeric_limits<std::size_t>::max(), registry) {}

PartitionedLocationService::PartitionedLocationService(
    std::size_t history_limit, obs::MetricsRegistry* registry,
    ZonePartition zones)
    : zones_(std::move(zones)), history_limit_(history_limit) {
  if (registry == nullptr) {
    // All shards must intern the same "db.*" cells or the aggregate
    // counters stop matching the single-database ones.
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  c_handoffs_ = &registry->counter("svc.shard_handoffs");
  c_dropped_deltas_ = &registry->counter("svc.deltas_dropped");
  shards_.reserve(zones_.zone_count());
  for (std::size_t k = 0; k < zones_.zone_count(); ++k) {
    shards_.push_back(std::make_unique<Shard>(registry));
    shards_.back()->db.set_sequence_source(&next_seq_);
  }
}

// ---- shard lifecycle ------------------------------------------------------

void PartitionedLocationService::crash_shard(std::size_t k) {
  BIPS_ASSERT(k < shards_.size());
  Shard& s = *shards_[k];
  if (s.crashed) return;
  s.crashed = true;
  s.db.clear();
  for (auto it = owner_.begin(); it != owner_.end();) {
    it = it->second == k ? owner_.erase(it) : std::next(it);
  }
  // No promotion may resurrect an attribution into the dead zone.
  for (auto& other : shards_) {
    other->db.retire_claims_if(
        [this, k](StationId st) { return zones_.zone_of(st) == k; });
  }
}

void PartitionedLocationService::restart_shard(std::size_t k) {
  BIPS_ASSERT(k < shards_.size());
  Shard& s = *shards_[k];
  if (!s.crashed) return;
  s.crashed = false;
  ++s.epoch;
}

void PartitionedLocationService::clear() {
  for (auto& s : shards_) {
    s->db.clear();
    s->crashed = false;
    ++s->epoch;
  }
  owner_.clear();
}

// ---- sessions ---------------------------------------------------------------

bool PartitionedLocationService::login(std::string userid,
                                       std::uint64_t bd_addr, SimTime at) {
  if (userid.empty() || bd_addr == 0) return false;
  // The one-to-one binding is global: a userid bound on *any* shard blocks
  // the login, exactly as the single database's by_userid check would.
  if (addr_of(userid)) return false;
  const std::size_t j = owner_or(bd_addr, 0);
  if (!shards_[j]->db.login(std::move(userid), bd_addr, at)) return false;
  owner_[bd_addr] = j;
  return true;
}

bool PartitionedLocationService::logout(std::uint64_t bd_addr) {
  const auto it = owner_.find(bd_addr);
  if (it == owner_.end()) return false;
  LocationDatabase& db = shards_[it->second]->db;
  if (!db.logout(bd_addr)) return false;  // presence without session
  owner_.erase(it);                       // logout also erased presence
  return true;
}

bool PartitionedLocationService::logged_in(std::string_view userid) const {
  for (const auto& s : shards_) {
    if (s->db.logged_in(userid)) return true;
  }
  return false;
}

std::optional<std::uint64_t> PartitionedLocationService::addr_of(
    std::string_view userid) const {
  for (const auto& s : shards_) {
    if (auto a = s->db.addr_of(userid)) return a;
  }
  return std::nullopt;
}

std::optional<std::string> PartitionedLocationService::userid_of(
    std::uint64_t bd_addr) const {
  const auto it = owner_.find(bd_addr);
  if (it == owner_.end()) return std::nullopt;
  return shards_[it->second]->db.userid_of(bd_addr);
}

std::size_t PartitionedLocationService::session_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->db.session_count();
  return n;
}

// ---- presence ingest --------------------------------------------------------

std::optional<bool> PartitionedLocationService::apply_present(
    std::uint64_t bd_addr, StationId station, SimTime at, double rssi_dbm) {
  const std::size_t z = zones_.zone_of(station);
  if (shards_[z]->crashed) {
    c_dropped_deltas_->inc();
    return std::nullopt;
  }
  const std::size_t j = owner_or(bd_addr, z);
  const bool changed = shards_[j]->db.set_present(bd_addr, station, at,
                                                  rssi_dbm);
  rehome(bd_addr, j);
  if (!batching_) trim_history();
  return changed;
}

std::optional<bool> PartitionedLocationService::apply_absent(
    std::uint64_t bd_addr, StationId station, SimTime at) {
  const std::size_t z = zones_.zone_of(station);
  if (shards_[z]->crashed) {
    c_dropped_deltas_->inc();
    return std::nullopt;
  }
  const std::size_t j = owner_or(bd_addr, z);
  const bool changed = shards_[j]->db.set_absent(bd_addr, station, at);
  rehome(bd_addr, j);
  if (!batching_) trim_history();
  return changed;
}

void PartitionedLocationService::set_conflict_window(Duration w) {
  for (auto& s : shards_) s->db.set_conflict_window(w);
}

void PartitionedLocationService::retire_station_claims(StationId station) {
  for (auto& s : shards_) s->db.retire_station_claims(station);
}

// ---- lookups ----------------------------------------------------------------

std::optional<StationId> PartitionedLocationService::piconet_of(
    std::uint64_t bd_addr) const {
  const auto it = owner_.find(bd_addr);
  if (it == owner_.end()) return std::nullopt;
  return shards_[it->second]->db.piconet_of(bd_addr);
}

std::optional<SimTime> PartitionedLocationService::present_since(
    std::uint64_t bd_addr) const {
  const auto it = owner_.find(bd_addr);
  if (it == owner_.end()) return std::nullopt;
  return shards_[it->second]->db.present_since(bd_addr);
}

std::size_t PartitionedLocationService::population_of(
    StationId station) const {
  return shards_[zones_.zone_of(station)]->db.population_of(station);
}

std::vector<std::uint64_t> PartitionedLocationService::devices_at(
    StationId station) const {
  return shards_[zones_.zone_of(station)]->db.devices_at(station);
}

std::optional<LocationDatabase::HistoricalFix>
PartitionedLocationService::where_was(std::uint64_t bd_addr,
                                      SimTime at) const {
  // Per-shard candidates are each that shard's newest matching transition;
  // the shared seq totally orders them, so the global max is exactly the
  // row a single database's backwards walk would have stopped at.
  const Transition* best = nullptr;
  for (const auto& s : shards_) {
    const Transition* t = s->db.last_transition_at(bd_addr, at);
    if (t != nullptr && (best == nullptr || t->seq > best->seq)) best = t;
  }
  if (best == nullptr || !best->present) return std::nullopt;
  return HistoricalFix{best->station, best->at};
}

std::vector<LocationDatabase::Transition>
PartitionedLocationService::history() const {
  std::vector<Transition> out;
  out.reserve(history_size());
  std::vector<std::size_t> idx(shards_.size(), 0);
  for (;;) {
    std::size_t pick = shards_.size();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const auto& h = shards_[k]->db.history();
      if (idx[k] >= h.size()) continue;
      if (pick == shards_.size() ||
          h[idx[k]].seq < shards_[pick]->db.history()[idx[pick]].seq) {
        pick = k;
      }
    }
    if (pick == shards_.size()) break;
    out.push_back(shards_[pick]->db.history()[idx[pick]++]);
  }
  return out;
}

std::size_t PartitionedLocationService::history_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->db.history_size();
  return n;
}

// ---- internals --------------------------------------------------------------

std::size_t PartitionedLocationService::owner_or(std::uint64_t bd_addr,
                                                 std::size_t fallback) const {
  const auto it = owner_.find(bd_addr);
  return it != owner_.end() ? it->second : fallback;
}

void PartitionedLocationService::rehome(std::uint64_t bd_addr,
                                        std::size_t j) {
  LocationDatabase& db = shards_[j]->db;
  const auto attributed = db.piconet_of(bd_addr);
  if (attributed) {
    const std::size_t want = zones_.zone_of(*attributed);
    if (want != j) {
      auto st = db.extract_device(bd_addr);
      if (shards_[want]->crashed) {
        // Backstop: a runner-up promotion targeting a crashed zone (its
        // claims are retired at crash time, but a delta may race the
        // crash). The zone's state is down, so the fix is dropped; the
        // session stays homed where it was.
        st.presence.reset();
        db.adopt_device(bd_addr, std::move(st));
      } else {
        shards_[want]->db.adopt_device(bd_addr, std::move(st));
        owner_[bd_addr] = want;
        c_handoffs_->inc();
        return;
      }
    }
  }
  // No move: record the owner if the device still has state here, drop the
  // entry if nothing remains (absence erased the record, no session).
  if (db.piconet_of(bd_addr) || db.userid_of(bd_addr)) {
    owner_[bd_addr] = j;
  } else {
    owner_.erase(bd_addr);
  }
}

void PartitionedLocationService::trim_history() {
  // Global FIFO: evict the row with the globally smallest seq until the
  // merged history fits. Identical eviction order to the single database.
  while (history_size() > history_limit_) {
    Shard* victim = nullptr;
    for (auto& s : shards_) {
      if (s->db.history_size() == 0) continue;
      if (victim == nullptr ||
          s->db.oldest_history_seq() < victim->db.oldest_history_seq()) {
        victim = s.get();
      }
    }
    victim->db.pop_oldest_history();
  }
}

}  // namespace bips::core
