// Streaming movement subscriptions.
//
// Cost model: the hub is write-fanout, read-free. Every presence *delta*
// publishes exactly one Event, delivered to (a) the remote device watchers
// of that user and (b) the in-process observers of that user or of the
// station the delta names -- O(interested watchers) work per delta, zero
// per watcher per sweep. A watcher that polls where-is instead pays one
// full query per poll whether or not anything moved; 10k watchers polling
// once a second is 10k queries/s of dead weight, 10k subscribers cost
// nothing until someone actually moves.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/location_db.hpp"
#include "src/util/time.hpp"

namespace bips::core {

class SubscriptionHub {
 public:
  /// One presence delta, resolved for human consumption. `entered` false
  /// means the delta was a departure from `station`; a move between rooms
  /// publishes a single entered-event at the new station (deltas, not
  /// diffs -- exactly what the workstations report).
  struct Event {
    std::string user;  // display name
    bool entered = false;
    StationId station = kNoStation;
    std::string room;
    SimTime at;
  };
  using Callback = std::function<void(const Event&)>;
  /// Delivery of one event to one remote watcher device; supplied by the
  /// server so the hub stays transport-agnostic.
  using DevicePush =
      std::function<void(std::uint64_t subscriber, const Event&)>;

  // ---- remote watchers (handheld devices, via SubscribeRequest) ---------

  void watch(std::string userid, std::uint64_t subscriber) {
    watchers_[std::move(userid)].insert(subscriber);
  }
  void unwatch(std::string_view userid, std::uint64_t subscriber);
  /// The subscriber's session ended; all its watches die with it.
  void drop_subscriber(std::uint64_t subscriber);
  /// Server crash: remote watch state lives in server memory and is lost.
  /// In-process observers survive, like the user registry -- they model an
  /// operator console attached to the service process, not LAN state.
  void drop_remote() { watchers_.clear(); }

  // ---- in-process observers (examples, harnesses) ------------------------

  /// Observes every delta of one user (by userid). Returns a handle for
  /// unsubscribe().
  std::uint64_t subscribe_user(std::string userid, Callback cb);
  /// Observes every delta naming one station (arrivals and departures).
  std::uint64_t subscribe_room(StationId station, Callback cb);
  void unsubscribe(std::uint64_t id);

  // ---- fan-out ------------------------------------------------------------

  /// Fans one delta of `userid` out: remote watchers first (through
  /// `push`), then user observers, then the room observers of ev.station.
  void publish(const std::string& userid, const Event& ev,
               const DevicePush& push) const;

  std::size_t remote_watch_count() const;
  std::size_t local_count() const;

 private:
  struct LocalSub {
    std::uint64_t id = 0;
    Callback cb;
  };

  std::unordered_map<std::string, std::unordered_set<std::uint64_t>>
      watchers_;
  std::unordered_map<std::string, std::vector<LocalSub>> user_subs_;
  std::unordered_map<StationId, std::vector<LocalSub>> room_subs_;
  std::uint64_t next_id_ = 1;
};

}  // namespace bips::core
