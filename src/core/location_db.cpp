#include "src/core/location_db.hpp"

#include <algorithm>

namespace bips::core {

LocationDatabase::LocationDatabase(std::size_t history_limit,
                                   obs::MetricsRegistry* registry)
    : history_limit_(history_limit) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  c_presence_updates_ = &registry->counter("db.presence_updates");
  c_redundant_updates_ = &registry->counter("db.redundant_updates");
  c_conflicts_suppressed_ = &registry->counter("db.conflicts_suppressed");
  c_logins_ = &registry->counter("db.logins");
  c_logouts_ = &registry->counter("db.logouts");
}

void LocationDatabase::clear() {
  by_userid_.clear();
  by_addr_.clear();
  presence_.clear();
  history_.clear();
}

void LocationDatabase::retire_station_claims(StationId station) {
  retire_claims_if([station](StationId s) { return s == station; });
}

void LocationDatabase::retire_claims_if(
    const std::function<bool(StationId)>& pred) {
  for (auto& [addr, rec] : presence_) {
    if (rec.runner_up && pred(rec.runner_up->station)) {
      rec.runner_up.reset();
    }
  }
}

bool LocationDatabase::login(std::string userid, std::uint64_t bd_addr,
                             SimTime at) {
  if (userid.empty() || bd_addr == 0) return false;
  if (by_userid_.count(userid) != 0) return false;
  if (by_addr_.count(bd_addr) != 0) return false;
  by_addr_.emplace(bd_addr, userid);
  by_userid_.emplace(userid, Session{userid, bd_addr, at});
  c_logins_->inc();
  return true;
}

bool LocationDatabase::logout(std::uint64_t bd_addr) {
  const auto it = by_addr_.find(bd_addr);
  if (it == by_addr_.end()) return false;
  by_userid_.erase(it->second);
  by_addr_.erase(it);
  presence_.erase(bd_addr);
  c_logouts_->inc();
  return true;
}

bool LocationDatabase::logged_in(std::string_view userid) const {
  return by_userid_.count(std::string(userid)) != 0;
}

std::optional<std::uint64_t> LocationDatabase::addr_of(
    std::string_view userid) const {
  const auto it = by_userid_.find(std::string(userid));
  if (it == by_userid_.end()) return std::nullopt;
  return it->second.bd_addr;
}

std::optional<std::string> LocationDatabase::userid_of(
    std::uint64_t bd_addr) const {
  const auto it = by_addr_.find(bd_addr);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

void LocationDatabase::record(std::uint64_t bd_addr, StationId station,
                              bool present, SimTime at) {
  history_.push_back(Transition{bd_addr, station, present, at,
                                (*seq_source_)++});
  while (history_.size() > history_limit_) history_.pop_front();
}

bool LocationDatabase::set_present(std::uint64_t bd_addr, StationId station,
                                   SimTime at, double rssi_dbm) {
  auto [it, inserted] = presence_.try_emplace(bd_addr);
  PresenceRecord& rec = it->second;
  if (!inserted && rec.station == station) {
    c_redundant_updates_->inc();
    rec.rssi_dbm = rssi_dbm;  // refresh the proximity hint
    return false;
  }
  if (!inserted && at - rec.since < conflict_window_ &&
      rssi_dbm < rec.rssi_dbm) {
    // A near-simultaneous claim from an overlapping piconet, but the
    // current workstation hears the device louder: keep the attribution.
    // The losing claim is remembered as the runner-up: its workstation
    // sent a *delta* and will stay silent, so if the winner later reports
    // absence the runner-up is promoted instead of the record vanishing.
    c_conflicts_suppressed_->inc();
    if (!rec.runner_up || rssi_dbm >= rec.runner_up->rssi_dbm) {
      rec.runner_up = Claim{station, at, rssi_dbm};
    }
    return false;
  }
  if (!inserted) {
    // The previous attribution loses but its workstation also went quiet
    // believing the server knows; keep it as the runner-up.
    rec.runner_up = Claim{rec.station, rec.since, rec.rssi_dbm};
  }
  rec.station = station;
  rec.since = at;
  rec.rssi_dbm = rssi_dbm;
  c_presence_updates_->inc();
  record(bd_addr, station, true, at);
  return true;
}

bool LocationDatabase::set_absent(std::uint64_t bd_addr, StationId station,
                                  SimTime at) {
  const auto it = presence_.find(bd_addr);
  if (it == presence_.end()) {
    c_redundant_updates_->inc();
    return false;
  }
  PresenceRecord& rec = it->second;
  if (rec.station != station) {
    // An absence for the runner-up retires that fallback claim.
    if (rec.runner_up && rec.runner_up->station == station) {
      rec.runner_up.reset();
    } else {
      c_redundant_updates_->inc();  // stale or duplicate absence
    }
    return false;
  }
  if (rec.runner_up) {
    // The winner left; the overlapping workstation that lost the earlier
    // arbitration still sees the device. Promote its claim.
    const Claim promoted = *rec.runner_up;
    rec.station = promoted.station;
    rec.since = std::max(promoted.since, at);
    rec.rssi_dbm = promoted.rssi_dbm;
    rec.runner_up.reset();
    c_presence_updates_->inc();
    record(bd_addr, promoted.station, true, rec.since);
    return true;
  }
  presence_.erase(it);
  c_presence_updates_->inc();
  record(bd_addr, station, false, at);
  return true;
}

std::optional<StationId> LocationDatabase::piconet_of(
    std::uint64_t bd_addr) const {
  const auto it = presence_.find(bd_addr);
  if (it == presence_.end()) return std::nullopt;
  return it->second.station;
}

std::optional<SimTime> LocationDatabase::present_since(
    std::uint64_t bd_addr) const {
  const auto it = presence_.find(bd_addr);
  if (it == presence_.end()) return std::nullopt;
  return it->second.since;
}

std::size_t LocationDatabase::population_of(StationId station) const {
  std::size_t n = 0;
  for (const auto& [addr, rec] : presence_) {
    if (rec.station == station) ++n;
  }
  return n;
}

std::vector<std::uint64_t> LocationDatabase::devices_at(
    StationId station) const {
  std::vector<std::uint64_t> out;
  for (const auto& [addr, rec] : presence_) {
    if (rec.station == station) out.push_back(addr);
  }
  return out;
}

std::optional<LocationDatabase::HistoricalFix> LocationDatabase::where_was(
    std::uint64_t bd_addr, SimTime at) const {
  const Transition* t = last_transition_at(bd_addr, at);
  if (t == nullptr || !t->present) return std::nullopt;
  return HistoricalFix{t->station, t->at};
}

const LocationDatabase::Transition* LocationDatabase::last_transition_at(
    std::uint64_t bd_addr, SimTime at) const {
  // Walk backwards: the first transition of this device at or before `at`
  // determines its state then (deque order is seq order).
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->bd_addr != bd_addr || it->at > at) continue;
    return &*it;
  }
  return nullptr;  // before first record, or evicted
}

LocationDatabase::DeviceState LocationDatabase::extract_device(
    std::uint64_t bd_addr) {
  DeviceState st;
  const auto addr_it = by_addr_.find(bd_addr);
  if (addr_it != by_addr_.end()) {
    const auto sess_it = by_userid_.find(addr_it->second);
    st.session = sess_it->second;
    by_userid_.erase(sess_it);
    by_addr_.erase(addr_it);
  }
  const auto pres_it = presence_.find(bd_addr);
  if (pres_it != presence_.end()) {
    st.presence = pres_it->second;
    presence_.erase(pres_it);
  }
  return st;
}

void LocationDatabase::adopt_device(std::uint64_t bd_addr, DeviceState st) {
  if (st.session) {
    by_addr_.emplace(bd_addr, st.session->userid);
    by_userid_.emplace(st.session->userid, std::move(*st.session));
  }
  if (st.presence) presence_.emplace(bd_addr, std::move(*st.presence));
}

}  // namespace bips::core
