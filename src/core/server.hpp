// The BIPS central server.
//
// Owns the location database, the user registry, and the building topology
// with its offline all-pairs shortest paths ("the computation of the
// shortest path has no impact on BIPS online activities"). Serves the LAN:
// login/logout relays, presence deltas, and the spatio-temporal queries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/core/location_db.hpp"
#include "src/core/registry.hpp"
#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"
#include "src/net/lan.hpp"
#include "src/proto/messages.hpp"
#include "src/sim/simulator.hpp"

namespace bips::core {

class BipsServer {
 public:
  struct Config {
    std::size_t history_limit = 4096;
    /// Failure detector: a workstation silent (no heartbeat, no presence
    /// traffic) for this long is presumed crashed and every presence record
    /// attributed to it is expired -- a dead station can never send its own
    /// absences. 0 disables the detector.
    Duration station_timeout = Duration(0);
    /// How often the detector sweeps (when enabled).
    Duration sweep_period = Duration::seconds(2);
  };

  /// `building` must outlive the server.
  BipsServer(sim::Simulator& sim, net::Lan& lan,
             const mobility::Building& building, Config cfg);

  net::Address address() const { return endpoint_.address(); }

  /// Fault injection: the server dies -- every in-memory structure
  /// (sessions, presence, history, routing, subscriptions) is lost and all
  /// LAN traffic is ignored until restart(). The user registry survives
  /// (accounts live on disk in a real deployment).
  void crash();
  /// Comes back with the next epoch and broadcasts a SyncRequest so the
  /// workstations resynchronise the location database in one round trip
  /// instead of hours of organic re-sightings.
  void restart();
  bool crashed() const { return crashed_; }
  /// Monotonically increasing incarnation number (starts at 1, +1 per
  /// restart). Carried on SyncRequest/HeartbeatAck/PresenceAck so the
  /// workstations can detect restarts even under LAN loss.
  std::uint32_t epoch() const { return epoch_; }

  UserRegistry& registry() { return registry_; }
  const UserRegistry& registry() const { return registry_; }
  LocationDatabase& db() { return db_; }
  const LocationDatabase& db() const { return db_; }
  const graph::Graph& topology() const { return topology_; }
  const graph::AllPairsPaths& paths() const { return paths_; }
  const mobility::Building& building() const { return building_; }

  // ---- unified spatio-temporal query API -------------------------------
  //
  // One entry point for every lookup the paper's service offers. A Query
  // names the requester (empty = system operator, all rights), a kind and
  // that kind's operands; the QueryResult carries the union of the reply
  // fields, with `status` deciding which are meaningful. The wire handlers
  // and the deprecated per-kind accessors below all route through query().
  struct Query {
    enum class Kind : std::uint8_t {
      kWhereIs,       // current room of user `target`
      kPathTo,        // shortest path from `from_station` to `target`
      kWhoIsIn,       // users currently in room `target`
      kWhereWas,      // room of `target` at instant `at`
      kHistorySince,  // transitions of `target` at or after `at`
    };

    Kind kind = Kind::kWhereIs;
    std::string requester;  // userid; empty = system operator
    std::string target;     // user display name, or room name for kWhoIsIn
    StationId from_station = kNoStation;  // kPathTo
    SimTime at;                           // kWhereWas / kHistorySince

    static Query where_is(std::string_view requester,
                          std::string_view target);
    static Query path_to(std::string_view requester, std::string_view target,
                         StationId from_station);
    static Query who_is_in(std::string_view requester,
                           std::string_view room);
    static Query where_was(std::string_view requester,
                           std::string_view target, SimTime at);
    static Query history_since(std::string_view requester,
                               std::string_view target, SimTime since);
  };

  struct QueryResult {
    proto::QueryStatus status = proto::QueryStatus::kOk;
    bool ok() const { return status == proto::QueryStatus::kOk; }

    std::string room;                // kWhereIs / kWhereWas
    std::vector<std::string> users;  // kWhoIsIn (sorted)
    std::vector<std::string> rooms;  // kPathTo (route, in walking order)
    double distance = 0.0;           // kPathTo (metres)
    bool was_present = false;        // kWhereWas: the fix existed
    SimTime since;                   // kWhereWas: attribution start

    struct Visit {
      std::string room;
      bool entered = false;  // false: the transition was a departure
      SimTime at;
    };
    std::vector<Visit> visits;  // kHistorySince, chronological
  };

  /// Executes `q` against the live database. Counts under "server.queries"
  /// and emits one server.query trace record carrying kind and status.
  QueryResult query(const Query& q) const;

  // ---- deprecated per-kind accessors (thin wrappers over query()) ------

  /// Answers "where is <target_name>?" on behalf of `requester_userid`.
  /// An empty requester is the system operator (all rights).
  proto::WhereIsReply where_is(std::string_view requester_userid,
                               std::string_view target_name) const;

  /// Shortest path from `from_station` to the target's current room.
  proto::PathReply path_to(std::string_view requester_userid,
                           std::string_view target_name,
                           StationId from_station) const;

  /// Everyone currently in `room_name` whom the requester may locate.
  proto::WhoIsInReply who_is_in(std::string_view requester_userid,
                                std::string_view room_name) const;

  /// Where was the target at `at` (temporal query over the history)?
  proto::HistoryReply where_was(std::string_view requester_userid,
                                std::string_view target_name,
                                SimTime at) const;

  /// Number of live movement subscriptions (test/metrics hook).
  std::size_t subscription_count() const;

  /// Deprecated accessor shape kept for existing call sites; the counters
  /// live in the simulator's MetricsRegistry under "server.*" and stats()
  /// materialises this struct from them on demand.
  struct Stats {
    std::uint64_t logins_ok = 0;
    std::uint64_t logins_failed = 0;
    std::uint64_t logouts = 0;
    std::uint64_t presence_received = 0;
    std::uint64_t presence_duplicates = 0;  // retransmissions deduplicated
    std::uint64_t whereis_served = 0;
    std::uint64_t paths_served = 0;
    std::uint64_t whoisin_served = 0;
    std::uint64_t history_served = 0;
    std::uint64_t subscriptions_served = 0;
    std::uint64_t events_pushed = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t stations_expired = 0;
    std::uint64_t presences_expired = 0;
    std::uint64_t malformed = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t syncs_received = 0;      // SyncSnapshots applied
    std::uint64_t sessions_restored = 0;   // from snapshot session hints
    std::uint64_t presences_restored = 0;  // from snapshot presence entries
    std::uint64_t resyncs_requested = 0;   // unicast SyncRequests sent
  };
  Stats stats() const;

 private:
  void on_datagram(net::Address from, const net::Payload& data);
  void handle(net::Address from, const proto::LoginRequest& m);
  void handle(net::Address from, const proto::LogoutRequest& m);
  void handle(net::Address from, const proto::PresenceUpdate& m);
  void handle(net::Address from, const proto::WhereIsRequest& m);
  void handle(net::Address from, const proto::PathRequest& m);
  void handle(net::Address from, const proto::WhoIsInRequest& m);
  void handle(net::Address from, const proto::HistoryRequest& m);
  void handle(net::Address from, const proto::SubscribeRequest& m);
  void handle(net::Address from, const proto::Heartbeat& m);
  void handle(net::Address from, const proto::SyncSnapshot& m);
  void reply(net::Address to, const proto::Message& m);

  /// A station the failure detector expired turned out to be alive: ask it
  /// for a full snapshot (its tracked set never changed from its side, so
  /// no deltas would ever repopulate the expired records).
  void request_resync(net::Address station_addr);
  /// Any traffic from `station` proves liveness; returns true if the
  /// station was awaiting a resync (and issues the SyncRequest).
  void note_station_alive(StationId station, net::Address from);

  /// Failure-detector sweep: expires every record of silent stations.
  void sweep_dead_stations();

  /// Fans a presence transition of `bd_addr` out to its subscribers.
  void notify_subscribers(std::uint64_t bd_addr, bool entered,
                          StationId station, SimTime at);
  /// Routes a server-originated message to the workstation currently
  /// serving `bd_addr`; false when the device's piconet is unknown.
  bool push_to_device(std::uint64_t bd_addr, const proto::Message& m);

  /// Resolves a query's requester/target and applies the paper's checks.
  /// On success fills `target_station`; otherwise returns the status.
  proto::QueryStatus resolve_target(std::string_view requester_userid,
                                    std::string_view target_name,
                                    StationId* target_station) const;

  sim::Simulator& sim_;
  net::Lan& lan_;
  Config cfg_;
  const mobility::Building& building_;
  graph::Graph topology_;
  graph::AllPairsPaths paths_;
  UserRegistry registry_;
  LocationDatabase db_;
  net::Endpoint& endpoint_;

  /// Learned routing table: which LAN address serves each station (from the
  /// presence updates they send).
  std::unordered_map<StationId, net::Address> station_lan_;
  /// Reliability state of each workstation's presence stream.
  std::unordered_map<StationId, std::uint64_t> last_presence_seq_;
  /// Failure detector: last time each station was heard from.
  std::unordered_map<StationId, SimTime> last_heard_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
  /// Movement subscriptions: target userid -> subscriber device addresses.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> subs_;
  /// Stations the failure detector expired, with the time of the last
  /// unicast SyncRequest sent to them (zero = none yet). Every sign of life
  /// re-requests (throttled to the sweep period) until a snapshot actually
  /// arrives -- the request or the reply may itself be lost.
  std::unordered_map<StationId, SimTime> resync_pending_;
  /// Stations that have delivered a SyncSnapshot to *this* incarnation. A
  /// post-restart server (epoch > 1) keeps soliciting a snapshot from every
  /// station it hears until the station shows up here: the restart broadcast
  /// and the station's unprompted epoch-advance push are each one datagram,
  /// and losing both must not orphan the station's state forever.
  std::unordered_set<StationId> synced_;

  bool crashed_ = false;
  std::uint32_t epoch_ = 1;

  /// Cached "server.*" registry cells (see stats()) and the tracer.
  struct Cells {
    obs::Counter* logins_ok;
    obs::Counter* logins_failed;
    obs::Counter* logouts;
    obs::Counter* presence_received;
    obs::Counter* presence_duplicates;
    obs::Counter* whereis_served;
    obs::Counter* paths_served;
    obs::Counter* whoisin_served;
    obs::Counter* history_served;
    obs::Counter* subscriptions_served;
    obs::Counter* events_pushed;
    obs::Counter* heartbeats;
    obs::Counter* stations_expired;
    obs::Counter* presences_expired;
    obs::Counter* malformed;
    obs::Counter* crashes;
    obs::Counter* restarts;
    obs::Counter* syncs_received;
    obs::Counter* sessions_restored;
    obs::Counter* presences_restored;
    obs::Counter* resyncs_requested;
    obs::Counter* queries;
  };
  Cells c_;
  obs::Tracer* tracer_;
};

}  // namespace bips::core
