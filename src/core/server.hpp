// The BIPS central server.
//
// Owns the location database, the user registry, and the building topology
// with its offline all-pairs shortest paths ("the computation of the
// shortest path has no impact on BIPS online activities"). Serves the LAN:
// login/logout relays, presence deltas, and the spatio-temporal queries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/core/location_db.hpp"
#include "src/core/registry.hpp"
#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"
#include "src/net/lan.hpp"
#include "src/proto/messages.hpp"
#include "src/sim/simulator.hpp"

namespace bips::core {

class BipsServer {
 public:
  struct Config {
    std::size_t history_limit = 4096;
    /// Failure detector: a workstation silent (no heartbeat, no presence
    /// traffic) for this long is presumed crashed and every presence record
    /// attributed to it is expired -- a dead station can never send its own
    /// absences. 0 disables the detector.
    Duration station_timeout = Duration(0);
    /// How often the detector sweeps (when enabled).
    Duration sweep_period = Duration::seconds(2);
  };

  /// `building` must outlive the server.
  BipsServer(sim::Simulator& sim, net::Lan& lan,
             const mobility::Building& building, Config cfg);

  net::Address address() const { return endpoint_.address(); }

  /// Fault injection: the server dies -- every in-memory structure
  /// (sessions, presence, history, routing, subscriptions) is lost and all
  /// LAN traffic is ignored until restart(). The user registry survives
  /// (accounts live on disk in a real deployment).
  void crash();
  /// Comes back with the next epoch and broadcasts a SyncRequest so the
  /// workstations resynchronise the location database in one round trip
  /// instead of hours of organic re-sightings.
  void restart();
  bool crashed() const { return crashed_; }
  /// Monotonically increasing incarnation number (starts at 1, +1 per
  /// restart). Carried on SyncRequest/HeartbeatAck/PresenceAck so the
  /// workstations can detect restarts even under LAN loss.
  std::uint32_t epoch() const { return epoch_; }

  UserRegistry& registry() { return registry_; }
  const UserRegistry& registry() const { return registry_; }
  LocationDatabase& db() { return db_; }
  const LocationDatabase& db() const { return db_; }
  const graph::Graph& topology() const { return topology_; }
  const graph::AllPairsPaths& paths() const { return paths_; }
  const mobility::Building& building() const { return building_; }

  // ---- local query API (bypasses the wire; used by tools/tests) --------

  /// Answers "where is <target_name>?" on behalf of `requester_userid`.
  /// An empty requester is the system operator (all rights).
  proto::WhereIsReply where_is(std::string_view requester_userid,
                               std::string_view target_name) const;

  /// Shortest path from `from_station` to the target's current room.
  proto::PathReply path_to(std::string_view requester_userid,
                           std::string_view target_name,
                           StationId from_station) const;

  /// Everyone currently in `room_name` whom the requester may locate.
  proto::WhoIsInReply who_is_in(std::string_view requester_userid,
                                std::string_view room_name) const;

  /// Where was the target at `at` (temporal query over the history)?
  proto::HistoryReply where_was(std::string_view requester_userid,
                                std::string_view target_name,
                                SimTime at) const;

  /// Number of live movement subscriptions (test/metrics hook).
  std::size_t subscription_count() const;

  struct Stats {
    std::uint64_t logins_ok = 0;
    std::uint64_t logins_failed = 0;
    std::uint64_t logouts = 0;
    std::uint64_t presence_received = 0;
    std::uint64_t presence_duplicates = 0;  // retransmissions deduplicated
    std::uint64_t whereis_served = 0;
    std::uint64_t paths_served = 0;
    std::uint64_t whoisin_served = 0;
    std::uint64_t history_served = 0;
    std::uint64_t subscriptions_served = 0;
    std::uint64_t events_pushed = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t stations_expired = 0;
    std::uint64_t presences_expired = 0;
    std::uint64_t malformed = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t syncs_received = 0;      // SyncSnapshots applied
    std::uint64_t sessions_restored = 0;   // from snapshot session hints
    std::uint64_t presences_restored = 0;  // from snapshot presence entries
    std::uint64_t resyncs_requested = 0;   // unicast SyncRequests sent
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_datagram(net::Address from, const net::Payload& data);
  void handle(net::Address from, const proto::LoginRequest& m);
  void handle(net::Address from, const proto::LogoutRequest& m);
  void handle(net::Address from, const proto::PresenceUpdate& m);
  void handle(net::Address from, const proto::WhereIsRequest& m);
  void handle(net::Address from, const proto::PathRequest& m);
  void handle(net::Address from, const proto::WhoIsInRequest& m);
  void handle(net::Address from, const proto::HistoryRequest& m);
  void handle(net::Address from, const proto::SubscribeRequest& m);
  void handle(net::Address from, const proto::Heartbeat& m);
  void handle(net::Address from, const proto::SyncSnapshot& m);
  void reply(net::Address to, const proto::Message& m);

  /// A station the failure detector expired turned out to be alive: ask it
  /// for a full snapshot (its tracked set never changed from its side, so
  /// no deltas would ever repopulate the expired records).
  void request_resync(net::Address station_addr);
  /// Any traffic from `station` proves liveness; returns true if the
  /// station was awaiting a resync (and issues the SyncRequest).
  void note_station_alive(StationId station, net::Address from);

  /// Failure-detector sweep: expires every record of silent stations.
  void sweep_dead_stations();

  /// Fans a presence transition of `bd_addr` out to its subscribers.
  void notify_subscribers(std::uint64_t bd_addr, bool entered,
                          StationId station, SimTime at);
  /// Routes a server-originated message to the workstation currently
  /// serving `bd_addr`; false when the device's piconet is unknown.
  bool push_to_device(std::uint64_t bd_addr, const proto::Message& m);

  /// Resolves a query's requester/target and applies the paper's checks.
  /// On success fills `target_station`; otherwise returns the status.
  proto::QueryStatus resolve_target(std::string_view requester_userid,
                                    std::string_view target_name,
                                    StationId* target_station) const;

  sim::Simulator& sim_;
  net::Lan& lan_;
  Config cfg_;
  const mobility::Building& building_;
  graph::Graph topology_;
  graph::AllPairsPaths paths_;
  UserRegistry registry_;
  LocationDatabase db_;
  net::Endpoint& endpoint_;

  /// Learned routing table: which LAN address serves each station (from the
  /// presence updates they send).
  std::unordered_map<StationId, net::Address> station_lan_;
  /// Reliability state of each workstation's presence stream.
  std::unordered_map<StationId, std::uint64_t> last_presence_seq_;
  /// Failure detector: last time each station was heard from.
  std::unordered_map<StationId, SimTime> last_heard_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
  /// Movement subscriptions: target userid -> subscriber device addresses.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> subs_;
  /// Stations the failure detector expired, with the time of the last
  /// unicast SyncRequest sent to them (zero = none yet). Every sign of life
  /// re-requests (throttled to the sweep period) until a snapshot actually
  /// arrives -- the request or the reply may itself be lost.
  std::unordered_map<StationId, SimTime> resync_pending_;

  bool crashed_ = false;
  std::uint32_t epoch_ = 1;
  Stats stats_;
};

}  // namespace bips::core
