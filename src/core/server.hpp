// The BIPS central server.
//
// Owns the partitioned location service (one LocationShard per building
// zone), the user registry, and the building topology with its offline
// all-pairs shortest paths ("the computation of the shortest path has no
// impact on BIPS online activities"). Serves the LAN: login/logout relays,
// presence deltas (single or batched), the unified spatio-temporal Query
// API, and streaming movement subscriptions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/location_service.hpp"
#include "src/core/registry.hpp"
#include "src/core/subscriptions.hpp"
#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"
#include "src/net/lan.hpp"
#include "src/proto/messages.hpp"
#include "src/sim/simulator.hpp"

namespace bips::core {

class BipsServer {
 public:
  struct Config {
    std::size_t history_limit = 4096;
    /// Location shards: the building is cut into this many column-band
    /// zones (clamped to the distinct-column count) and each zone's slice
    /// of the location database lives on its own shard. 1 = the classic
    /// single-database server. Sharded simulations align this with the
    /// simulator's zone count so deltas never cross shards on ingest.
    std::size_t zones = 1;
    /// Failure detector: a workstation silent (no heartbeat, no presence
    /// traffic) for this long is presumed crashed and every presence record
    /// attributed to it is expired -- a dead station can never send its own
    /// absences. 0 disables the detector.
    Duration station_timeout = Duration(0);
    /// How often the detector sweeps (when enabled).
    Duration sweep_period = Duration::seconds(2);
  };

  /// `building` must outlive the server.
  BipsServer(sim::Simulator& sim, net::Lan& lan,
             const mobility::Building& building, Config cfg);

  net::Address address() const { return endpoint_.address(); }

  /// Fault injection: the server dies -- every in-memory structure
  /// (sessions, presence, history, routing, remote subscriptions) is lost
  /// and all LAN traffic is ignored until restart(). The user registry
  /// survives (accounts live on disk in a real deployment).
  void crash();
  /// Comes back with the next epoch and broadcasts a SyncRequest so the
  /// workstations resynchronise the location database in one round trip
  /// instead of hours of organic re-sightings.
  void restart();
  bool crashed() const { return crashed_; }
  /// Monotonically increasing incarnation number (starts at 1, +1 per
  /// restart). Carried on SyncRequest/HeartbeatAck/PresenceAck so the
  /// workstations can detect restarts even under LAN loss.
  std::uint32_t epoch() const { return epoch_; }

  /// Partial fault injection: one location shard dies. Only zone k's slice
  /// is lost; presence deltas reported by zone-k stations are refused
  /// (unacked -- the workstations' retransmit queues hold them) and
  /// who-is-in queries on zone-k rooms answer zone-unavailable. Every
  /// other zone keeps answering correctly.
  void crash_shard(std::size_t k);
  /// Brings shard k back empty and solicits SyncSnapshots from exactly the
  /// zone-k workstations (zone-scoped unicast SyncRequests, retried via
  /// the pending-resync loop until each snapshot lands).
  void restart_shard(std::size_t k);
  bool shard_crashed(std::size_t k) const { return svc_.shard_crashed(k); }

  // ---- sharded-harness control plane (DESIGN.md section 9) --------------

  /// Applies one zone-agent presence delta at a window barrier. The zone's
  /// ZoneIngest already deduplicated and acked the stream on its own shard,
  /// so this path skips the wire dedup/ack machinery and goes straight to
  /// the shared location service, plus liveness/routing bookkeeping and
  /// subscriber fan-out. No-op while crashed: the agents mirror the crash
  /// at the next barrier, and the one-window sliver of deltas acked in
  /// between is repaired by the restart snapshot resync, exactly like a
  /// delta acked moments before a monolithic server dies.
  void ingest_merged(net::Address from, const proto::PresenceUpdate& m);

  /// Explicit restart()-broadcast targets. A sharded world's stations live
  /// on remote LAN segments the server's own endpoint enumeration cannot
  /// see; the harness hands their global addresses over so the post-restart
  /// SyncRequest reaches every zone. Empty (the default) keeps the
  /// monolithic local-segment broadcast.
  void set_sync_targets(std::vector<net::Address> targets) {
    sync_targets_ = std::move(targets);
  }

  /// Invoked whenever the failure detector forgets a station's presence-
  /// stream watermark (the station must start a fresh stream); the sharded
  /// harness propagates the reset to the station's zone agent at the next
  /// barrier.
  void set_presence_reset_hook(std::function<void(StationId)> hook) {
    presence_reset_hook_ = std::move(hook);
  }

  /// Bumps on every crash / restart / crash_shard / restart_shard; the
  /// sharded harness refreshes the zone agents' mirrored fault state only
  /// when this changed since the last barrier.
  std::uint64_t fault_generation() const { return fault_generation_; }

  UserRegistry& registry() { return registry_; }
  const UserRegistry& registry() const { return registry_; }
  /// The partitioned location service (sessions, presence, history).
  PartitionedLocationService& locations() { return svc_; }
  const PartitionedLocationService& locations() const { return svc_; }
  /// Streaming movement subscriptions; in-process observers attach here.
  SubscriptionHub& subscriptions() { return hub_; }
  const graph::Graph& topology() const { return topology_; }
  const graph::AllPairsPaths& paths() const { return paths_; }
  const mobility::Building& building() const { return building_; }

  // ---- unified spatio-temporal query API -------------------------------
  //
  // The one and only lookup surface. A Query names the requester (empty =
  // system operator, all rights), a kind and that kind's operands; the
  // QueryResult carries the union of the reply fields, with `status`
  // deciding which are meaningful. The wire handlers (legacy request
  // types and the routable proto::Query datagram) all route through
  // query().
  using Query = proto::Query;
  using QueryResult = proto::QueryResult;

  /// Executes `q` against the live service. Counts under "server.queries"
  /// and emits one server.query trace record carrying kind and status.
  QueryResult query(const Query& q) const;

  /// Number of live movement subscriptions, remote and in-process
  /// (test/metrics hook).
  std::size_t subscription_count() const;

 private:
  void on_datagram(net::Address from, const net::Payload& data);
  void handle(net::Address from, const proto::LoginRequest& m);
  void handle(net::Address from, const proto::LogoutRequest& m);
  void handle(net::Address from, const proto::PresenceUpdate& m);
  void handle(net::Address from, const proto::PresenceBatch& m);
  void handle(net::Address from, const proto::Query& m);
  void handle(net::Address from, const proto::WhereIsRequest& m);
  void handle(net::Address from, const proto::PathRequest& m);
  void handle(net::Address from, const proto::WhoIsInRequest& m);
  void handle(net::Address from, const proto::HistoryRequest& m);
  void handle(net::Address from, const proto::SubscribeRequest& m);
  void handle(net::Address from, const proto::Heartbeat& m);
  void handle(net::Address from, const proto::SyncSnapshot& m);
  void reply(net::Address to, const proto::Message& m);

  /// Applies one presence delta (shared by the single and batch handlers).
  /// Handles dedup and seq advance; returns true if an ack should carry
  /// the stream forward (false only when the delta was refused because its
  /// zone's shard is down -- refusals must NOT be acked, the workstation's
  /// retransmit queue is what repairs the slice after restart).
  bool ingest_presence(net::Address from, const proto::PresenceUpdate& m);
  /// Highest contiguously-accepted presence seq of `station` (the value a
  /// cumulative ack carries); 0 if nothing was ever accepted.
  std::uint64_t ackable_seq(StationId station) const {
    const auto it = last_presence_seq_.find(station);
    return it != last_presence_seq_.end() ? it->second : 0;
  }

  /// A station the failure detector expired turned out to be alive: ask it
  /// for a full snapshot (its tracked set never changed from its side, so
  /// no deltas would ever repopulate the expired records).
  void request_resync(net::Address station_addr);
  /// Any traffic from `station` proves liveness; returns true if the
  /// station was awaiting a resync (and issues the SyncRequest).
  void note_station_alive(StationId station, net::Address from);

  /// Failure-detector sweep: expires every record of silent stations.
  void sweep_dead_stations();

  /// Fans a presence transition of `bd_addr` out through the hub to its
  /// remote watchers and in-process observers.
  void notify_subscribers(std::uint64_t bd_addr, bool entered,
                          StationId station, SimTime at);
  /// Routes a server-originated message to the workstation currently
  /// serving `bd_addr`; false when the device's piconet is unknown.
  bool push_to_device(std::uint64_t bd_addr, const proto::Message& m);

  /// Resolves a query's requester/target and applies the paper's checks.
  /// On success fills `target_station`; otherwise returns the status.
  proto::QueryStatus resolve_target(std::string_view requester_userid,
                                    std::string_view target_name,
                                    StationId* target_station) const;

  sim::Simulator& sim_;
  net::Lan& lan_;
  Config cfg_;
  const mobility::Building& building_;
  graph::Graph topology_;
  graph::AllPairsPaths paths_;
  UserRegistry registry_;
  PartitionedLocationService svc_;
  SubscriptionHub hub_;
  net::Endpoint& endpoint_;

  /// Learned routing table: which LAN address serves each station (from the
  /// presence updates they send).
  std::unordered_map<StationId, net::Address> station_lan_;
  /// Reliability state of each workstation's presence stream.
  std::unordered_map<StationId, std::uint64_t> last_presence_seq_;
  /// Failure detector: last time each station was heard from.
  std::unordered_map<StationId, SimTime> last_heard_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
  /// Stations the failure detector expired (or whose shard restarted
  /// empty), with the time of the last unicast SyncRequest sent to them
  /// (zero = none yet). Every sign of life re-requests (throttled to the
  /// sweep period) until a snapshot actually arrives -- the request or the
  /// reply may itself be lost.
  std::unordered_map<StationId, SimTime> resync_pending_;
  /// Stations that have delivered a SyncSnapshot to *this* incarnation. A
  /// post-restart server (epoch > 1) keeps soliciting a snapshot from every
  /// station it hears until the station shows up here: the restart broadcast
  /// and the station's unprompted epoch-advance push are each one datagram,
  /// and losing both must not orphan the station's state forever.
  std::unordered_set<StationId> synced_;

  /// Heavy-read path: materialised path-to answers. The all-pairs tables
  /// are precomputed offline, but every path-to still reconstructs the hop
  /// list and allocates its room-name strings; with whole floors asking
  /// "path to the printer room" those answers repeat endlessly. Keyed on
  /// (from_station, target_station); the underlying graph never changes at
  /// runtime, so entries are valid forever.
  struct CachedPath {
    std::vector<std::string> rooms;
    double distance = 0.0;
  };
  mutable std::unordered_map<std::uint64_t, CachedPath> path_cache_;

  bool crashed_ = false;
  std::uint32_t epoch_ = 1;
  std::uint64_t fault_generation_ = 0;
  std::vector<net::Address> sync_targets_;
  std::function<void(StationId)> presence_reset_hook_;

  /// Cached "server.*" registry cells and the tracer.
  struct Cells {
    obs::Counter* logins_ok;
    obs::Counter* logins_failed;
    obs::Counter* relogins;  // successful logins refreshing a pre-restart session
    obs::Counter* logouts;
    obs::Counter* presence_received;
    obs::Counter* presence_duplicates;
    obs::Counter* batches_received;
    obs::Counter* whereis_served;
    obs::Counter* paths_served;
    obs::Counter* whoisin_served;
    obs::Counter* history_served;
    obs::Counter* subscriptions_served;
    obs::Counter* events_pushed;
    obs::Counter* heartbeats;
    obs::Counter* stations_expired;
    obs::Counter* presences_expired;
    obs::Counter* malformed;
    obs::Counter* crashes;
    obs::Counter* restarts;
    obs::Counter* shard_crashes;
    obs::Counter* shard_restarts;
    obs::Counter* syncs_received;
    obs::Counter* sessions_restored;
    obs::Counter* presences_restored;
    obs::Counter* resyncs_requested;
    obs::Counter* queries;
    obs::Counter* path_cache_hits;
  };
  Cells c_;
  obs::Tracer* tracer_;
};

}  // namespace bips::core
