// The partitioned location service (ROADMAP item 2).
//
// The single LocationDatabase becomes N LocationShards, one per building
// zone, with the zone seams computed by the same ZonePartition the sharded
// simulator uses -- so service shards align with simulator shards and a
// presence delta never crosses shards on ingest in the aligned
// configuration.
//
// Routing invariant: a device's record lives on the shard of its *winning
// attribution* (the station the database currently places it at). Mutations
// are applied on the record's current owner shard -- so the arbitration
// code in LocationDatabase runs unchanged against the full record, giving
// bit-identical counters and history rows to the single-database path --
// and the record is re-homed afterwards only if the attribution's zone
// actually changed (a seam handoff).
//
// Byte-equivalence with a single database is engineered, not hoped for:
//  * every shard stamps Transition::seq from one shared counter, so a k-way
//    merge of the shard histories by seq reproduces the exact single-DB
//    insertion order;
//  * the global history bound is enforced by evicting from whichever shard
//    holds the globally oldest row (min front seq), which is FIFO in seq
//    order == single-DB FIFO;
//  * all shards intern the same "db.*" counter cells in one registry, so
//    the aggregate counters are the single-DB counters.
//
// Fault semantics: crash_shard(k) wipes zone k's slice (sessions, presence,
// history rows homed there) and bumps its epoch; while crashed, presence
// deltas *reported by* zone-k stations are refused (the caller must not ack
// them -- the workstation's retransmit queue plus the post-restart
// SyncRequest snapshot is what repairs the slice) and queries that must be
// answered by zone k report zone-unavailable. Healthy zones are unaffected.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/location_db.hpp"
#include "src/core/zone_map.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/time.hpp"

namespace bips::core {

class PartitionedLocationService {
 public:
  using Transition = LocationDatabase::Transition;
  using HistoricalFix = LocationDatabase::HistoricalFix;
  using Stats = LocationDatabase::Stats;

  /// `history_limit` bounds the *merged* history across all shards (the
  /// single-database semantics). `registry` is where the shared "db.*" and
  /// "svc.*" cells are interned; nullptr makes the service own one.
  explicit PartitionedLocationService(std::size_t history_limit = 1024,
                                      obs::MetricsRegistry* registry = nullptr,
                                      ZonePartition zones = ZonePartition());

  const ZonePartition& zones() const { return zones_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t zone_of(StationId station) const {
    return zones_.zone_of(station);
  }

  // ---- shard lifecycle ---------------------------------------------------

  /// Crash-stops zone k: its slice (sessions, presence and history rows
  /// homed there) is lost, its epoch is bumped, and runner-up claims naming
  /// zone-k stations are retired everywhere (a promotion must never move
  /// state into a dead shard). Idempotent.
  void crash_shard(std::size_t k);
  /// Brings zone k back empty; the caller drives resync (SyncRequest).
  void restart_shard(std::size_t k);
  bool shard_crashed(std::size_t k) const { return shards_[k]->crashed; }
  std::uint32_t shard_epoch(std::size_t k) const { return shards_[k]->epoch; }
  /// True when the shard owning `station`'s zone is up.
  bool zone_available(StationId station) const {
    return !shards_[zones_.zone_of(station)]->crashed;
  }

  /// Full wipe (whole-server crash): every shard's slice is lost, every
  /// epoch bumps. Counters survive, as with LocationDatabase::clear().
  void clear();

  // ---- sessions ----------------------------------------------------------

  bool login(std::string userid, std::uint64_t bd_addr, SimTime at);
  bool logout(std::uint64_t bd_addr);
  bool logged_in(std::string_view userid) const;
  std::optional<std::uint64_t> addr_of(std::string_view userid) const;
  std::optional<std::string> userid_of(std::uint64_t bd_addr) const;
  std::size_t session_count() const;

  // ---- presence ingest ---------------------------------------------------

  /// Applies a presence delta reported by `station`. Returns nullopt if the
  /// reporting station's zone is crashed (delta refused: do NOT ack it),
  /// otherwise whether the service state changed.
  std::optional<bool> apply_present(std::uint64_t bd_addr, StationId station,
                                    SimTime at, double rssi_dbm = 0.0);
  std::optional<bool> apply_absent(std::uint64_t bd_addr, StationId station,
                                   SimTime at);

  /// Barrier-merge batching: between begin and end, the per-delta global
  /// history trim is deferred and run once at end_merge_batch(). The trim
  /// is FIFO by the shared seq either way, so the post-batch state is
  /// byte-identical to trimming per delta -- callers just must not read
  /// history mid-batch. Used by the sharded harness, whose barrier merge
  /// applies a whole window of deltas back to back.
  void begin_merge_batch() { batching_ = true; }
  void end_merge_batch() {
    batching_ = false;
    trim_history();
  }

  void set_conflict_window(Duration w);
  /// Fans out to every shard (a dead station's fallback claims may be held
  /// by a record homed anywhere).
  void retire_station_claims(StationId station);

  // ---- lookups -----------------------------------------------------------

  std::optional<StationId> piconet_of(std::uint64_t bd_addr) const;
  std::optional<SimTime> present_since(std::uint64_t bd_addr) const;
  /// Routed to `station`'s zone shard; empty while that zone is crashed
  /// (callers gate on zone_available() to distinguish).
  std::size_t population_of(StationId station) const;
  std::vector<std::uint64_t> devices_at(StationId station) const;
  /// Global max-seq transition at-or-before `at` across shards: exactly the
  /// single-database answer, because seq is a shared total order.
  std::optional<HistoricalFix> where_was(std::uint64_t bd_addr,
                                         SimTime at) const;

  /// The merged transition history, ascending by seq (== the order a single
  /// database would have recorded). O(total * shards) merge; diagnostics
  /// and harness use only.
  std::vector<Transition> history() const;
  std::size_t history_size() const;

  Stats stats() const { return shards_[0]->db.stats(); }

  /// Direct shard access for tests and per-shard grading.
  const LocationDatabase& shard_db(std::size_t k) const {
    return shards_[k]->db;
  }

 private:
  struct Shard {
    explicit Shard(obs::MetricsRegistry* registry);
    LocationDatabase db;
    bool crashed = false;
    std::uint32_t epoch = 1;
  };

  /// Shard currently owning `bd_addr`'s record (session and/or presence);
  /// falls back to `fallback` for unknown devices.
  std::size_t owner_or(std::uint64_t bd_addr, std::size_t fallback) const;
  /// After a mutation on shard `j`: moves the record to its attribution's
  /// zone if that changed (seam handoff) and keeps owner_ consistent.
  void rehome(std::uint64_t bd_addr, std::size_t j);
  void trim_history();

  ZonePartition zones_;
  std::size_t history_limit_;
  bool batching_ = false;  // defer trim_history until end_merge_batch()
  std::uint64_t next_seq_ = 0;  // shared Transition::seq source
  // unique_ptr: LocationDatabase captures its own address in seq_source_
  // (and the service hands out &next_seq_), so shards must never relocate.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::uint64_t, std::size_t> owner_;
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* c_handoffs_;        // svc.shard_handoffs
  obs::Counter* c_dropped_deltas_;  // svc.deltas_dropped (crashed zone)
};

}  // namespace bips::core
