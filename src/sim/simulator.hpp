// Deterministic discrete-event simulation engine.
//
// This is the ns-2 replacement the reproduction runs on. Properties:
//
//  * Events fire in (time, insertion-sequence) order, so two events scheduled
//    for the same instant run in the order they were scheduled -- reruns with
//    the same seed are bit-identical.
//  * Events are cancellable through the EventHandle returned by schedule().
//    Cancellation removes the event from the heap in O(log n) and is a true
//    no-op after the event has fired (generation tags make stale ids inert).
//  * Event state lives in an arena of reusable slots, so a long run with
//    heavy schedule/cancel churn keeps a small, stable footprint instead of
//    accumulating tombstones.
//  * The engine is single-threaded by design: Bluetooth slot timing needs a
//    strict global order far more than it needs parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/sim/callback.hpp"
#include "src/util/assert.hpp"
#include "src/util/time.hpp"

namespace bips::sim {

/// Opaque identifier for a scheduled event; 0 is "no event". Internally the
/// high half names an arena slot and the low half is that slot's generation
/// at scheduling time, so ids from fired events can never alias live ones.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Simulator;

/// RAII-free lightweight handle: cancel() is idempotent and safe after the
/// event has fired (it becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(Simulator* sim, EventId id) : sim_(sim), id_(id) {}

  bool valid() const { return id_ != kNoEvent; }
  EventId id() const { return id_; }

  /// Cancels the event if it has not fired yet; clears the handle.
  void cancel();

 private:
  Simulator* sim_ = nullptr;
  EventId id_ = kNoEvent;
};

/// The event-driven simulator core.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Per-simulation observability context (metrics + tracing). Everything
  /// built on this simulator registers its cells and emits its trace here,
  /// so each Simulator instance is an isolated measurement namespace.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must not be in the past).
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule(Duration delay, Callback fn) {
    BIPS_ASSERT(delay >= Duration(0));
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs until the queue is empty or `until` is reached, whichever first.
  /// Time advances to `until` even if the queue drains earlier, so periodic
  /// processes restarted by the caller observe a consistent clock.
  void run_until(SimTime until);

  /// Runs until the event queue is completely empty.
  void run();

  /// Executes exactly one event; returns false if the queue is empty.
  bool step();

  /// Number of events executed so far (for engine micro-benchmarks).
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending (cancelled events excluded).
  std::size_t events_pending() const { return heap_.size(); }
  /// Arena capacity: high-water mark of concurrently pending events (slots
  /// are reused, so this stays flat under schedule/cancel churn).
  std::size_t arena_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNullPos = UINT32_MAX;
  // Heap arity. Quaternary instead of binary: half the depth, so half the
  // backpointer updates per sift, and the 4-child minimum scan reads one
  // 64-byte cache line of contiguous 16-byte entries.
  static constexpr std::size_t kArity = 4;
  // HeapEntry packs (seq, slot) into one word: slot in the low 24 bits,
  // insertion sequence in the high 40. Comparing the packed word compares
  // seq first (seqs are unique, so the slot bits never decide an order).
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  // Per-event arena slot: the cold payload (callback plus its fire time).
  struct Slot {
    SimTime when = SimTime::zero();
    Callback fn;
  };
  // Hot per-slot bookkeeping, kept in a dense parallel array so the sift
  // loops update backpointers without dragging 80-byte slots through the
  // cache. `generation` advances every time the slot fires, is cancelled,
  // or is reused, so an EventId minted for one occupancy can never act on a
  // later one.
  struct SlotMeta {
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kNullPos;
  };

  // Heap entries carry the full (when, seq) ordering key so sift
  // comparisons stay within the heap array instead of chasing arena
  // pointers; 16 bytes, so four children share a cache line.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seqslot;  // seq << kSlotBits | slot
  };
  static std::uint32_t slot_of_entry(const HeapEntry& e) {
    return static_cast<std::uint32_t>(e.seqslot) & kSlotMask;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32) - 1;
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seqslot < b.seqslot;
  }

  void place(std::size_t pos, HeapEntry entry) {
    heap_[pos] = entry;
    meta_[slot_of_entry(entry)].heap_pos = static_cast<std::uint32_t>(pos);
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);

  // Pops the due front event and returns its callback; advances now_.
  Callback take_front();
  // Returns the slot to the free list with a bumped generation.
  void retire(std::uint32_t slot);

  obs::Observability obs_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Slot> slots_;
  std::vector<SlotMeta> meta_;  // parallel to slots_
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
};

/// A reusable one-shot activity whose callback is stored once at
/// construction. Components that used to keep an EventHandle and re-schedule
/// a fresh `[this] { ... }` closure on every arming can hold a Process
/// instead: each call_at()/call_after() re-arms the same stored body with no
/// per-arming allocation, and arming again simply moves the pending
/// activation. Not movable -- the scheduled event captures `this`.
class Process {
 public:
  Process(Simulator& sim, Callback body) : sim_(sim), body_(std::move(body)) {
    BIPS_ASSERT(static_cast<bool>(body_));
  }
  ~Process() { cancel(); }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Arms (or re-arms) the process to run its body at absolute time `at`.
  /// Any previously pending activation is replaced.
  void call_at(SimTime at) {
    handle_.cancel();
    handle_ = sim_.schedule_at(at, [this] { fire(); });
  }
  /// Arms (or re-arms) the process `delay` from now.
  void call_after(Duration delay) { call_at(sim_.now() + delay); }

  /// Cancels the pending activation, if any. Idempotent.
  void cancel() { handle_.cancel(); }

  /// True while an activation is scheduled and has not fired.
  bool pending() const { return handle_.valid(); }

  Simulator& simulator() { return sim_; }

 private:
  void fire() {
    // Clear the handle before invoking so the body observes pending() ==
    // false and may freely re-arm itself.
    handle_ = EventHandle();
    body_();
  }

  Simulator& sim_;
  Callback body_;
  EventHandle handle_;
};

/// Repeating timer built on the simulator: fires every `period` until
/// stopped. Restart-safe; the callback may stop or retune the timer.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, Callback fn)
      : process_(sim, [this] { fire(); }), period_(period),
        fn_(std::move(fn)) {
    BIPS_ASSERT(period > Duration(0));
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after one period, or after
  /// `initial_delay` if given.
  void start() { start_after(period_); }
  void start_after(Duration initial_delay) {
    running_ = true;
    process_.call_after(initial_delay);
  }
  void stop() {
    process_.cancel();
    running_ = false;
  }

  bool running() const { return running_; }
  Duration period() const { return period_; }
  void set_period(Duration p) {
    BIPS_ASSERT(p > Duration(0));
    period_ = p;
  }

 private:
  void fire() {
    // Re-arm before invoking so the callback can observe running() and call
    // stop()/set_period() to retune.
    process_.call_after(period_);
    fn_();
  }

  Process process_;
  Duration period_;
  Callback fn_;
  bool running_ = false;
};

}  // namespace bips::sim
