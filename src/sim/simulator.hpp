// Deterministic discrete-event simulation engine.
//
// This is the ns-2 replacement the reproduction runs on. Properties:
//
//  * Events fire in (time, insertion-sequence) order, so two events scheduled
//    for the same instant run in the order they were scheduled -- reruns with
//    the same seed are bit-identical.
//  * Events are cancellable through the EventHandle returned by schedule();
//    cancellation is O(1) (lazy deletion from the heap).
//  * The engine is single-threaded by design: Bluetooth slot timing needs a
//    strict global order far more than it needs parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/assert.hpp"
#include "src/util/time.hpp"

namespace bips::sim {

/// Opaque identifier for a scheduled event; 0 is "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Simulator;

/// RAII-free lightweight handle: cancel() is idempotent and safe after the
/// event has fired (it becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(Simulator* sim, EventId id) : sim_(sim), id_(id) {}

  bool valid() const { return id_ != kNoEvent; }
  EventId id() const { return id_; }

  /// Cancels the event if it has not fired yet; clears the handle.
  void cancel();

 private:
  Simulator* sim_ = nullptr;
  EventId id_ = kNoEvent;
};

/// The event-driven simulator core.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must not be in the past).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule(Duration delay, std::function<void()> fn) {
    BIPS_ASSERT(delay >= Duration(0));
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs until the queue is empty or `until` is reached, whichever first.
  /// Time advances to `until` even if the queue drains earlier, so periodic
  /// processes restarted by the caller observe a consistent clock.
  void run_until(SimTime until);

  /// Runs until the event queue is completely empty.
  void run();

  /// Executes exactly one event; returns false if the queue is empty.
  bool step();

  /// Number of events executed so far (for engine micro-benchmarks).
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending (cancelled events excluded).
  std::size_t events_pending() const { return pending_live_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Event& out);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_live_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeating timer built on the simulator: fires every `period` until
/// stopped. Restart-safe; the callback may stop or retune the timer.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    BIPS_ASSERT(period > Duration(0));
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after one period, or after
  /// `initial_delay` if given.
  void start();
  void start_after(Duration initial_delay);
  void stop() { handle_.cancel(); running_ = false; }

  bool running() const { return running_; }
  Duration period() const { return period_; }
  void set_period(Duration p) {
    BIPS_ASSERT(p > Duration(0));
    period_ = p;
  }

 private:
  void fire();

  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace bips::sim
