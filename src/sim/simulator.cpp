#include "src/sim/simulator.hpp"

#include <algorithm>

namespace bips::sim {

namespace {
/// Kernel-churn trace sampling period: one kernel.sample record per this
/// many executed events. Power of two so the check is a mask, not a divide.
constexpr std::uint64_t kSampleMask = (1ull << 16) - 1;
}  // namespace

Simulator::Simulator() {
  // Callback gauges: zero cost until a snapshot polls them.
  obs_.metrics.gauge("kernel.events_executed").set_callback([this] {
    return static_cast<double>(executed_);
  });
  obs_.metrics.gauge("kernel.events_pending").set_callback([this] {
    return static_cast<double>(heap_.size());
  });
  obs_.metrics.gauge("kernel.arena_slots").set_callback([this] {
    return static_cast<double>(slots_.size());
  });
}

void EventHandle::cancel() {
  if (sim_ != nullptr && id_ != kNoEvent) sim_->cancel(id_);
  id_ = kNoEvent;
  sim_ = nullptr;
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  BIPS_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  BIPS_ASSERT(static_cast<bool>(fn));

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    BIPS_ASSERT_MSG(slots_.size() < kSlotMask, "event arena exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    meta_.emplace_back();
  }

  Slot& s = slots_[slot];
  s.when = at;
  s.fn = std::move(fn);

  const std::uint64_t seq = next_seq_++;
  BIPS_ASSERT_MSG(seq < kMaxSeq, "event sequence space exhausted");
  heap_.push_back(HeapEntry{at, seq << kSlotBits | slot});
  meta_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return EventHandle(this, make_id(slot, meta_[slot].generation));
}

void Simulator::cancel(EventId id) {
  if (id == kNoEvent) return;
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return;
  SlotMeta& m = meta_[slot];
  // Generation mismatch means the event already fired or was cancelled (and
  // the slot possibly reused): a true no-op, no bookkeeping to corrupt.
  if (m.generation != generation_of(id)) return;
  BIPS_ASSERT(m.heap_pos != kNullPos);
  heap_remove(m.heap_pos);
  retire(slot);
}

void Simulator::sift_up(std::size_t pos) {
  HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(entry, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, entry);
}

void Simulator::sift_down(std::size_t pos) {
  HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = kArity * pos + 1;
    if (first_child >= n) break;
    // The grandchildren of `pos` occupy one contiguous index range
    // (kArity^2 entries right after kArity * first_child); start pulling
    // those lines in while the sibling comparison below picks the branch.
    const std::size_t first_grandchild = kArity * first_child + 1;
    if (first_grandchild < n) {
      __builtin_prefetch(&heap_[first_grandchild]);
      __builtin_prefetch(&heap_[std::min(first_grandchild + 2 * kArity,
                                         n - 1)]);
    }
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, entry);
}

void Simulator::heap_remove(std::size_t pos) {
  BIPS_ASSERT(pos < heap_.size());
  meta_[slot_of_entry(heap_[pos])].heap_pos = kNullPos;
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_.pop_back();
    // The moved-in entry may need to go either way relative to `pos`.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Simulator::retire(std::uint32_t slot) {
  SlotMeta& m = meta_[slot];
  ++m.generation;
  m.heap_pos = kNullPos;
  slots_[slot].fn.reset();
  free_slots_.push_back(slot);
}

Callback Simulator::take_front() {
  const std::uint32_t slot = slot_of_entry(heap_.front());
  Slot& s = slots_[slot];
  BIPS_ASSERT(s.when >= now_);
  now_ = s.when;
  Callback fn = std::move(s.fn);
  heap_remove(0);
  // Retire before invoking: the callback may schedule new events (reusing
  // this slot under a fresh generation) or cancel its own, now stale, id.
  retire(slot);
  ++executed_;
  if ((executed_ & kSampleMask) == 0 && obs_.tracer.enabled()) {
    // Sinks only record; they cannot schedule, so sampling never perturbs
    // the event order -- traces stay bit-identical with tracing on or off.
    obs_.tracer.emit(now_, obs::TraceKind::kKernelSample, 0, executed_,
                     heap_.size(), static_cast<double>(slots_.size()));
  }
  return fn;
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  Callback fn = take_front();
  fn();
  return true;
}

void Simulator::run_until(SimTime until) {
  BIPS_ASSERT(until >= now_);
  while (!heap_.empty() && heap_.front().when <= until) {
    Callback fn = take_front();
    fn();
  }
  now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace bips::sim
