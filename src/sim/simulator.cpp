#include "src/sim/simulator.hpp"

namespace bips::sim {

void EventHandle::cancel() {
  if (sim_ != nullptr && id_ != kNoEvent) sim_->cancel(id_);
  id_ = kNoEvent;
  sim_ = nullptr;
}

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  BIPS_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  BIPS_ASSERT(fn != nullptr);
  const EventId id = next_seq_;
  queue_.push(Event{at, next_seq_, id, std::move(fn)});
  ++next_seq_;
  ++pending_live_;
  return EventHandle(this, id);
}

void Simulator::cancel(EventId id) {
  if (id == kNoEvent) return;
  // Lazy deletion: remember the id; pop_next() discards it later. Inserting
  // an id that already fired is harmless -- fired ids are never re-enqueued
  // because seq numbers are unique.
  if (cancelled_.insert(id).second && pending_live_ > 0) --pending_live_;
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; moving the std::function out before
    // pop() avoids a copy. pop() only compares (when, seq), which a move
    // leaves intact, so the heap sift-down stays well-defined.
    out = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(out.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  BIPS_ASSERT(ev.when >= now_);
  now_ = ev.when;
  --pending_live_;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime until) {
  BIPS_ASSERT(until >= now_);
  while (!queue_.empty()) {
    // Peek without executing: stop before events beyond the horizon.
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.when > until) {
      // Push back the not-yet-due event (it keeps its original seq so
      // ordering is preserved) and stop. pending_live_ is unchanged: the
      // event was never executed or cancelled.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.when;
    --pending_live_;
    ++executed_;
    ev.fn();
  }
  now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  handle_ = sim_.schedule(initial_delay, [this] { fire(); });
}

void PeriodicTimer::fire() {
  // Re-arm before invoking so the callback can observe running() and call
  // stop()/set_period() to retune.
  handle_ = sim_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace bips::sim
