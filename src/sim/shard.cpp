#include "src/sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <utility>

#include "src/util/assert.hpp"

namespace bips::sim {

std::optional<Duration> conservative_lookahead(const LookaheadInputs& in,
                                               std::string* error) {
  const auto fail = [error](std::string msg) -> std::optional<Duration> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (in.shard_count == 0) {
    return fail("lookahead: shard_count must be at least 1");
  }
  if (in.shard_count == 1) {
    // Nothing to synchronise with: the single shard may run to the horizon.
    return kUnboundedLookahead;
  }
  if (in.lan_latency <= Duration(0)) {
    return fail(
        "lookahead: cross-shard LAN latency must be positive -- a "
        "zero-latency LAN means a message sent at t can arrive at t, so no "
        "window of barrier-free execution is conservative; configure "
        "net::Lan::Config::base_latency (plus the uplink extra) > 0");
  }
  if (in.max_speed_mps <= 0.0) {
    return fail(
        "lookahead: max_speed_mps must be positive -- without a mobility "
        "speed bound the walk-time-to-radio-overlap at a shard seam is "
        "unbounded below (see Config::ff_max_speed_mps)");
  }
  if (in.seam_margin_m <= 0.0) {
    return fail(
        "lookahead: seam_margin_m must be positive -- a device already "
        "inside the seam overlap can interact with the neighbouring shard "
        "immediately, leaving no conservative window");
  }
  const Duration walk =
      Duration::from_seconds(in.seam_margin_m / in.max_speed_mps);
  const Duration horizon = std::min(in.lan_latency, walk);
  if (horizon <= Duration(0)) {
    // from_seconds rounds to nanoseconds; a sub-nanosecond walk bound
    // truncates to zero, which is as unusable as a zero-latency LAN.
    return fail("lookahead: computed horizon rounds to zero nanoseconds");
  }
  return horizon;
}

ShardGroup::ShardGroup(std::size_t shard_count) {
  BIPS_ASSERT_MSG(shard_count >= 1, "a ShardGroup needs at least one shard");
  shards_.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  outboxes_.resize(shard_count);
}

ShardGroup::~ShardGroup() = default;

void ShardGroup::post(std::size_t src, std::size_t dst, SimTime due,
                      Callback fn) {
  BIPS_ASSERT(src < shards_.size());
  BIPS_ASSERT(dst < shards_.size());
  // The conservative-lookahead contract: effects posted during a window must
  // be due strictly after its right edge, otherwise the destination shard --
  // which may already have executed past `due` within this window -- would
  // see an effect from its past. run_until's inclusive right edge makes the
  // strict inequality necessary even for due == window end.
  BIPS_ASSERT_MSG(due > window_end_,
                  "cross-shard mail due inside the current window violates "
                  "the conservative lookahead");
  Outbox& ob = outboxes_[src];
  Mail m;
  m.due = due;
  m.src = static_cast<std::uint32_t>(src);
  m.dst = static_cast<std::uint32_t>(dst);
  m.seq = ob.next_seq++;
  m.fn = std::move(fn);
  ob.mail.push_back(std::move(m));
}

void ShardGroup::run_window_shards(std::size_t worker, std::size_t stride,
                                   SimTime to) {
  for (std::size_t k = worker; k < shards_.size(); k += stride) {
    shards_[k]->run_until(to);
  }
}

void ShardGroup::drain_mailboxes() {
  std::vector<Mail> batch;
  for (Outbox& ob : outboxes_) {
    for (Mail& m : ob.mail) batch.push_back(std::move(m));
    ob.mail.clear();
  }
  if (batch.empty()) return;
  // Canonical delivery order: (due, src shard, per-src posting sequence).
  // Each source's sequence is totally ordered and sources are disjoint, so
  // this key is unique -- destination-heap insertion order (and with it the
  // kernel's FIFO tie-break for same-instant events) is independent of how
  // shards were interleaved across threads.
  std::sort(batch.begin(), batch.end(), [](const Mail& a, const Mail& b) {
    return std::tie(a.due, a.src, a.seq) < std::tie(b.due, b.src, b.seq);
  });
  for (Mail& m : batch) {
    shards_[m.dst]->schedule_at(m.due, std::move(m.fn));
    ++mail_delivered_;
  }
}

void ShardGroup::run_until(SimTime until, Duration window, unsigned threads) {
  BIPS_ASSERT(window > Duration(0));
  BIPS_ASSERT(until >= now_);
  const std::size_t nworkers = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, shards_.size()));

  const auto next_edge = [this, until, window] {
    // Guard the addition: an unbounded window (INT64_MAX ns) must clamp to
    // `until`, not overflow.
    return (until - now_ <= window) ? until : now_ + window;
  };
  const auto finish_window = [this](SimTime w_end) {
    now_ = w_end;
    ++windows_;
    drain_mailboxes();
    if (hook_) {
      hook_(w_end);
      // The hook runs single-threaded at the barrier and may itself post
      // cross-shard mail (the sharded harness's barrier merge fans
      // subscriber pushes and resync requests out through the uplinks).
      // That mail is due inside the *next* window, so it must be moved
      // into the destination heaps before the window runs -- a drain at
      // the following barrier would be one window too late.
      drain_mailboxes();
    }
  };

  if (nworkers == 1) {
    while (now_ < until) {
      const SimTime w_end = next_edge();
      window_end_ = w_end;
      run_window_shards(0, 1, w_end);
      finish_window(w_end);
    }
    return;
  }

  // Persistent worker pool for this run: an epoch counter releases the
  // workers into a window; each worker advances its statically-assigned
  // shards (k = worker, worker + n, worker + 2n, ...) and bumps `done`. The
  // main thread participates as worker 0, then waits for the others before
  // draining mailboxes single-threaded. All cross-thread data (the target
  // edge, shard heaps, outboxes) is ordered by the release/acquire pairs on
  // `epoch` and `done`; shard-to-worker assignment never affects results
  // because shards share no state inside a window.
  struct Pool {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<bool> stop{false};
    SimTime target = SimTime::zero();  // published by the epoch bump
  } pool;
  const auto spin_until = [](auto pred) {
    for (int i = 0; i < 4096; ++i) {
      if (pred()) return;
    }
    while (!pred()) std::this_thread::yield();
  };

  std::vector<std::thread> workers;
  workers.reserve(nworkers - 1);
  for (std::size_t w = 1; w < nworkers; ++w) {
    workers.emplace_back([this, &pool, &spin_until, w, nworkers] {
      std::uint64_t seen = 0;
      for (;;) {
        spin_until([&] {
          return pool.epoch.load(std::memory_order_acquire) != seen;
        });
        seen = pool.epoch.load(std::memory_order_acquire);
        if (pool.stop.load(std::memory_order_acquire)) return;
        run_window_shards(w, nworkers, pool.target);
        pool.done.fetch_add(1, std::memory_order_release);
      }
    });
  }

  while (now_ < until) {
    const SimTime w_end = next_edge();
    window_end_ = w_end;
    pool.target = w_end;
    pool.epoch.fetch_add(1, std::memory_order_release);
    run_window_shards(0, nworkers, w_end);
    spin_until([&] {
      return pool.done.load(std::memory_order_acquire) == nworkers - 1;
    });
    pool.done.store(0, std::memory_order_relaxed);
    finish_window(w_end);
  }

  pool.stop.store(true, std::memory_order_release);
  pool.epoch.fetch_add(1, std::memory_order_release);
  for (std::thread& t : workers) t.join();
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

}  // namespace bips::sim
