// Closed-form fast-forward for fixed-cadence processes.
//
// A protocol process that drums at a fixed cadence (the Bluetooth TX-slot
// pattern: one activation every two slots) spends almost all of its
// activations doing work nobody can observe -- an inquiring master sweeping
// ID packets across channels with no listener in range. VirtualClock lets
// such a process *park*: instead of re-arming per slot, it records the time
// of the first skipped activation and goes quiet. When an external
// subscription (see RadioChannel::subscribe_occupancy) reports that the
// activity would become observable, the process wakes, and wake() answers
// the two questions closed-form re-entry needs:
//
//   * `resume`  -- the first on-cadence activation at or after the wake
//     instant, so the drumming re-enters the exact slot grid it left; and
//   * `skipped` -- how many whole activations the park elided, so the
//     process can advance its train/repetition counters (and credit energy
//     and packet statistics) as if every slot had run.
//
// Skipped activations are accounted to the simulator-wide
// "kernel.skipped_slots" counter: executed + skipped is the mode-invariant
// work measure the benches report as events-retired-equivalent.
//
// The arithmetic contract mirrors the exact path's event ordering: an
// activation scheduled for time T is "skipped" by a park that began at or
// before T and ended after it; a park retired at exactly time T does not
// count an activation at T (in the exact path, a stop event scheduled
// earlier in FIFO order cancels the same-instant activation before it
// fires).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/util/assert.hpp"
#include "src/util/time.hpp"

namespace bips::sim {

class VirtualClock {
 public:
  /// `cadence` is the period of the skippable activation (> 0).
  VirtualClock(Simulator& sim, Duration cadence)
      : cadence_(cadence),
        c_skipped_(&sim.obs().metrics.counter("kernel.skipped_slots")) {
    BIPS_ASSERT(cadence > Duration(0));
  }
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  bool parked() const { return parked_; }
  /// Time of the first activation the current park skipped.
  SimTime parked_at() const { return parked_at_; }

  /// Starts a park. `first_skipped` is the activation the caller is
  /// declining to run (normally the current instant, from inside the
  /// activation body itself).
  void park(SimTime first_skipped) {
    BIPS_ASSERT(!parked_);
    parked_ = true;
    parked_at_ = first_skipped;
  }

  struct Wake {
    SimTime resume;         // first on-cadence activation >= the wake time
    std::uint64_t skipped;  // activations elided in [parked_at, resume)
  };

  /// Ends the park at `now` (>= parked_at). The caller reschedules itself
  /// at .resume and advances its phase counters by .skipped.
  Wake wake(SimTime now) {
    BIPS_ASSERT(parked_);
    parked_ = false;
    const std::uint64_t n = elided_before(now);
    const SimTime resume = parked_at_ + n * cadence_;
    c_skipped_->inc(n);
    skipped_total_ += n;
    return Wake{resume, n};
  }

  /// Ends the park because the process is stopping at `now`: no resume
  /// time, but the activations elided strictly before `now` still count
  /// (the exact path would have run them before the stop).
  std::uint64_t retire(SimTime now) {
    BIPS_ASSERT(parked_);
    parked_ = false;
    const std::uint64_t n = elided_before(now);
    c_skipped_->inc(n);
    skipped_total_ += n;
    return n;
  }

  Duration cadence() const { return cadence_; }
  std::uint64_t skipped_total() const { return skipped_total_; }

  /// Whole activations at parked_at + k*cadence that fall strictly before
  /// `at`, plus the one at `at` itself only when `at` lies off-grid (ceil
  /// division): exactly the set wake()'s resume slot does not re-run.
  /// Public so a parked process can answer stats queries lazily -- "how
  /// many activations would the exact path have run by now?" -- without
  /// ending the park.
  std::uint64_t elided_before(SimTime at) const {
    BIPS_ASSERT(at >= parked_at_);
    const auto span = static_cast<std::uint64_t>((at - parked_at_).ns());
    const auto step = static_cast<std::uint64_t>(cadence_.ns());
    return (span + step - 1) / step;
  }

 private:
  Duration cadence_;
  obs::Counter* c_skipped_;
  bool parked_ = false;
  SimTime parked_at_;
  std::uint64_t skipped_total_ = 0;
};

/// Multi-deadline park accounting. A park that can end for one of several
/// competing reasons (a supervision deadline, a possible range transition,
/// traffic arrival, a membership change, ...) proposes each candidate with
/// a reason index; earliest() is the instant the parked process schedules
/// its wake for, and record() attributes how the park *actually* ended to a
/// "<prefix>.wake.<reason>" counter, so benches can see why parks end
/// without a trace pass. Proposal and recording are pure bookkeeping --
/// nothing here schedules, so the set never perturbs event order.
class DeadlineSet {
 public:
  DeadlineSet(Simulator& sim, const std::string& prefix,
              std::initializer_list<const char*> reasons) {
    counters_.reserve(reasons.size());
    for (const char* r : reasons) {
      counters_.push_back(
          &sim.obs().metrics.counter(prefix + ".wake." + r));
    }
  }
  DeadlineSet(const DeadlineSet&) = delete;
  DeadlineSet& operator=(const DeadlineSet&) = delete;

  /// Forgets all proposed deadlines (call when starting a new park).
  void reset() { pending_ = false; }

  /// Offers `at` as a candidate end-of-park instant for `reason`. Keeps
  /// the earliest candidate and the reason that proposed it.
  void propose(std::size_t reason, SimTime at) {
    BIPS_ASSERT(reason < counters_.size());
    if (!pending_ || at < earliest_) {
      earliest_ = at;
      earliest_reason_ = reason;
      pending_ = true;
    }
  }

  bool pending() const { return pending_; }
  SimTime earliest() const {
    BIPS_ASSERT(pending_);
    return earliest_;
  }
  /// The reason that proposed the earliest candidate (what to record when
  /// the scheduled deadline itself is what fires).
  std::size_t earliest_reason() const {
    BIPS_ASSERT(pending_);
    return earliest_reason_;
  }

  /// Ends the park: counts one wake under `reason` and clears the set.
  void record(std::size_t reason) {
    BIPS_ASSERT(reason < counters_.size());
    counters_[reason]->inc();
    pending_ = false;
  }

  std::uint64_t wakes(std::size_t reason) const {
    BIPS_ASSERT(reason < counters_.size());
    return counters_[reason]->value();
  }

 private:
  std::vector<obs::Counter*> counters_;
  SimTime earliest_;
  std::size_t earliest_reason_ = 0;
  bool pending_ = false;
};

}  // namespace bips::sim
