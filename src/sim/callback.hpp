// Small-buffer-optimized move-only callable for simulator events.
//
// std::function is the wrong tool for an event kernel: it is copyable (so
// every capture must be copyable), and captures beyond the implementation's
// tiny inline buffer (16 bytes on libstdc++) force a heap allocation per
// scheduled event. Callback is move-only with a 48-byte inline buffer, which
// fits every closure the simulator's hot paths schedule; larger functors
// still work but fall back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/assert.hpp"

namespace bips::sim {

/// Move-only `void()` callable with small-buffer optimization.
class Callback {
 public:
  /// Inline capture budget. Sized for the largest hot-path closure (the LAN
  /// datagram delivery lambda: this + two addresses + a vector) with room to
  /// spare; raising it grows every arena slot, so keep it modest.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &ops_for<Fn, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &ops_for<Fn, /*Inline=*/false>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    BIPS_ASSERT_MSG(ops_ != nullptr, "invoking an empty Callback");
    ops_->invoke(buf_);
  }

  /// Destroys the stored callable, leaving the Callback empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn, bool Inline>
  static Fn* stored(void* storage) {
    if constexpr (Inline) {
      return std::launder(reinterpret_cast<Fn*>(storage));
    } else {
      return *std::launder(reinterpret_cast<Fn**>(storage));
    }
  }

  template <typename Fn, bool Inline>
  static inline const Ops ops_for = {
      /*invoke=*/[](void* storage) { (*stored<Fn, Inline>(storage))(); },
      /*relocate=*/
      [](void* dst, void* src) {
        if constexpr (Inline) {
          Fn* from = stored<Fn, Inline>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        } else {
          ::new (dst) Fn*(stored<Fn, Inline>(src));
        }
      },
      /*destroy=*/
      [](void* storage) {
        if constexpr (Inline) {
          stored<Fn, Inline>(storage)->~Fn();
        } else {
          delete stored<Fn, Inline>(storage);
        }
      },
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace bips::sim
