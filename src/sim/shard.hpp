// Sharded parallel event kernel with conservative lookahead.
//
// A ShardGroup runs N independent Simulator instances ("shards") in lockstep
// windows: inside a window every shard advances barrier-free (optionally on
// worker threads); at the window edge all cross-shard traffic posted during
// the window is drained from per-shard mailboxes into the destination heaps
// in one deterministic canonical order. The window length is a conservative
// lookahead: as long as every cross-shard effect posted inside a window is
// due strictly *after* that window's right edge, no shard can ever observe
// an effect "from the future", so the execution -- and therefore every
// discovery history, presence stream and energy ledger -- is byte-identical
// whether the shards run on 1 thread or 16.
//
// The lookahead window is the minimum of two physical bounds the BIPS world
// offers (DESIGN.md section 9):
//   * the cross-shard LAN latency floor: a presence delta sent at t cannot
//     reach the server shard before t + L_min;
//   * the walk-time-to-radio-overlap at a shard seam: an agent at least
//     `seam_margin` metres from the seam, moving at most v_max m/s, cannot
//     interact with the neighbouring shard's radio for seam_margin / v_max
//     seconds (the same speed bound Config::ff_max_speed_mps that the
//     quiesced-piconet fast-forward already trusts, and the same ff_radius
//     convention the radio occupancy wakeups use).
//
// Determinism contract (the --par-ab gate):
//   * each shard's state (simulator, RNG streams, components) is touched
//     only by the worker currently running that shard;
//   * mailbox posts carry a (due, src shard, per-src sequence) key and are
//     drained sorted on it, so destination-heap insertion order -- and with
//     it the FIFO tie-break of same-instant events -- never depends on
//     thread scheduling;
//   * the barrier (and hence any window hook) runs single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/util/time.hpp"

namespace bips::sim {

/// Lookahead with no cross-shard constraint (single-shard worlds): the
/// window degenerates to "run to the end in one go".
inline constexpr Duration kUnboundedLookahead = Duration(INT64_MAX);

/// Inputs to the conservative-lookahead computation.
struct LookaheadInputs {
  /// Minimum latency of any cross-shard LAN message (base latency; jitter
  /// and store-and-forward hops only ever add to it). Must be positive for
  /// multi-shard worlds: a zero-latency LAN admits no conservative window.
  Duration lan_latency = Duration(0);
  /// RF seam margin in metres: how far from a shard seam a device must be
  /// before it can possibly interact with the neighbouring shard's radio.
  /// By convention this follows the radio occupancy radius,
  /// RadioChannel::ff_radius_for(range_highwater, slack) = 2 * range + slack.
  double seam_margin_m = 0.0;
  /// Mobility speed bound (the role Config::ff_max_speed_mps plays for the
  /// quiesce logic). Must be positive for multi-shard worlds.
  double max_speed_mps = 0.0;
  std::size_t shard_count = 1;
};

/// Computes the conservative window: min(lan_latency, seam_margin / v_max).
/// Returns kUnboundedLookahead for single-shard worlds (nothing to
/// synchronise with). Returns nullopt and fills `error` for configurations
/// that admit no conservative window (zero shards, zero-latency LAN,
/// non-positive speed bound or seam margin).
std::optional<Duration> conservative_lookahead(const LookaheadInputs& in,
                                               std::string* error);

/// A group of independent simulators advanced in conservative windows.
class ShardGroup {
 public:
  explicit ShardGroup(std::size_t shard_count);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Simulator& shard(std::size_t k) { return *shards_[k]; }
  const Simulator& shard(std::size_t k) const { return *shards_[k]; }

  /// The right edge of the last completed window (every shard's clock
  /// stands exactly here between run_until calls).
  SimTime now() const { return now_; }

  /// Posts a cross-shard effect: `fn` will be scheduled on shard `dst` at
  /// absolute time `due` during the barrier that ends the current window.
  /// MUST be called from the worker currently executing shard `src` (or
  /// single-threaded between windows with src naming any shard).
  /// `due` must lie strictly after the current window's right edge -- that
  /// is the conservative-lookahead contract; it is asserted.
  void post(std::size_t src, std::size_t dst, SimTime due, Callback fn);

  /// Runs every shard to `until` in windows of `window`, using `threads`
  /// worker threads (clamped to the shard count; 1 = the sequential
  /// reference execution). The result is byte-identical for every value of
  /// `threads`.
  void run_until(SimTime until, Duration window, unsigned threads);

  /// Single-threaded hook invoked at every window barrier (after the mail
  /// drain), with the window's right edge. Samplers and assertion graders
  /// hang here: every shard is quiescent at the barrier, so cross-shard
  /// reads are safe and deterministic. The hook may itself post() (src
  /// naming any shard) or schedule directly onto a shard -- barrier-time
  /// mail is drained again right after the hook returns, so it lands
  /// before the next window runs.
  void set_window_hook(std::function<void(SimTime)> hook) {
    hook_ = std::move(hook);
  }

  /// Sum of events executed across all shards.
  std::uint64_t events_executed() const;
  /// Completed synchronisation windows.
  std::uint64_t windows_run() const { return windows_; }
  /// Cross-shard mailbox events drained so far.
  std::uint64_t mail_delivered() const { return mail_delivered_; }

 private:
  struct Mail {
    SimTime due;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;  // per-src posting sequence
    Callback fn;
  };
  /// Per-source outbox: only the worker running shard `src` appends, so no
  /// locking inside a window; the barrier drains single-threaded.
  struct Outbox {
    std::vector<Mail> mail;
    std::uint64_t next_seq = 0;
  };

  void run_window_shards(std::size_t worker, std::size_t stride, SimTime to);
  void drain_mailboxes();

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Outbox> outboxes_;  // indexed by src shard
  std::function<void(SimTime)> hook_;
  SimTime now_ = SimTime::zero();
  SimTime window_end_ = SimTime::zero();  // right edge while a window runs
  std::uint64_t windows_ = 0;
  std::uint64_t mail_delivered_ = 0;
};

}  // namespace bips::sim
