// Metrics registry: named counters, gauges and timers for the whole repo.
//
// Every component that used to carry a hand-rolled `Stats` struct interns
// its counters here instead, under a dotted name ("lan.sent",
// "radio.collisions", "server.queries"). The registry is owned by the
// Simulator, so each simulation -- and therefore each test -- gets an
// isolated namespace for free.
//
// Cost model: a component looks its cells up once at construction and keeps
// `Counter*` handles; the hot path is then a single branch on the cached
// enabled flag plus an add -- no hashing, no allocation, no virtual call.
// With the registry disabled the branch falls through and the increment is
// skipped entirely, which is what the bench overhead gate measures.
//
// Cells live in deques so their addresses survive later registrations; the
// name index is an ordered map so snapshots iterate in one deterministic
// (sorted) order regardless of registration order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.hpp"
#include "src/util/time.hpp"

namespace bips::obs {

/// Monotone event count. Increment through a cached pointer; the gate is
/// the owning registry's enabled flag.
class Counter {
 public:
  explicit Counter(const bool* gate) : gate_(gate) {}

  void inc(std::uint64_t n = 1) {
    if (*gate_) value_ += n;
  }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  const bool* gate_;
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Either set explicitly or backed by a callback that
/// is polled at snapshot time -- callback gauges cost nothing until then.
class Gauge {
 public:
  explicit Gauge(const bool* gate) : gate_(gate) {}

  void set(double v) {
    if (*gate_) value_ = v;
  }
  void set_callback(std::function<double()> poll) { poll_ = std::move(poll); }
  double value() const { return poll_ ? poll_() : value_; }

 private:
  const bool* gate_;
  double value_ = 0.0;
  std::function<double()> poll_;
};

/// Streaming distribution of durations/samples (Welford under the hood).
class Timer {
 public:
  explicit Timer(const bool* gate) : gate_(gate) {}

  void record(double x) {
    if (*gate_) stats_.add(x);
  }
  void record(Duration d) { record(d.to_seconds()); }
  const RunningStats& stats() const { return stats_; }
  void reset() { stats_ = RunningStats(); }

 private:
  const bool* gate_;
  RunningStats stats_;
};

/// One metric as it appears in a snapshot.
struct SnapshotRow {
  std::string name;
  const char* kind;          // "counter" | "gauge" | "timer"
  std::uint64_t count = 0;   // counters: value; timers: sample count
  double value = 0.0;        // gauges: value; timers: mean
  double min = 0.0;
  double max = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns a cell under `name`; repeated calls return the same cell.
  /// Registering one name as two different kinds is a programming error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// Master switch for all write paths. Snapshots always work; cells keep
  /// whatever they accumulated while enabled. Default: enabled.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  bool has(std::string_view name) const;
  /// Value of a counter by name; 0 when absent (query-side convenience for
  /// benches and tests, not a hot path).
  std::uint64_t counter_value(std::string_view name) const;

  /// All metrics in sorted-name order; gauges are polled here.
  std::vector<SnapshotRow> snapshot() const;
  /// Aligned console table of the snapshot.
  std::string to_table() const;
  /// One JSON object, keys sorted, deterministic formatting.
  std::string to_json() const;

  /// Zeroes every counter and timer (gauges re-poll). Registration stays.
  void reset();

  std::size_t size() const { return by_name_.size(); }

 private:
  struct Entry {
    char kind;  // 'c' | 'g' | 't'
    std::uint32_t index;
  };

  bool enabled_ = true;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Timer> timers_;
  std::map<std::string, Entry, std::less<>> by_name_;
};

}  // namespace bips::obs
