// The per-simulation observability context: one metrics registry plus one
// tracer, owned by the Simulator and reached as `sim.obs()`. Bundling them
// keeps component constructors down to a single dependency and gives every
// test-local Simulator an isolated metric/trace namespace.
#pragma once

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bips::obs {

struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace bips::obs
