#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace bips::obs {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kInquiryStart: return "inquiry.start";
    case TraceKind::kInquiryResp: return "inquiry.resp";
    case TraceKind::kScanFhs: return "scan.fhs";
    case TraceKind::kPageStart: return "page.start";
    case TraceKind::kPageOk: return "page.ok";
    case TraceKind::kPageFail: return "page.fail";
    case TraceKind::kPresence: return "presence";
    case TraceKind::kLanSend: return "lan.send";
    case TraceKind::kLanDrop: return "lan.drop";
    case TraceKind::kServerQuery: return "server.query";
    case TraceKind::kServerCrash: return "server.crash";
    case TraceKind::kServerRestart: return "server.restart";
    case TraceKind::kWsCrash: return "ws.crash";
    case TraceKind::kWsRestart: return "ws.restart";
    case TraceKind::kFault: return "fault";
    case TraceKind::kKernelSample: return "kernel.sample";
    case TraceKind::kRadioFf: return "radio.ff";
  }
  return "?";
}

std::string to_jsonl(const TraceRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"t_ns\":%lld,\"kind\":\"%s\",\"id\":%u,\"a\":%llu,"
                "\"b\":%llu,\"x\":%.6f}\n",
                static_cast<long long>(r.at.ns()), to_string(r.kind), r.id,
                static_cast<unsigned long long>(r.a),
                static_cast<unsigned long long>(r.b), r.x);
  return buf;
}

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {}

void RingSink::write(const TraceRecord& r) {
  ++written_;
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(r);
}

void RingSink::clear() {
  records_.clear();
  written_ = 0;
  dropped_ = 0;
}

JsonlSink::JsonlSink(std::ostream& os, std::size_t buffer_records)
    : os_(os), buffer_records_(buffer_records) {
  buf_.reserve(buffer_records_);
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::write(const TraceRecord& r) {
  buf_.push_back(r);
  if (buf_.size() >= buffer_records_) flush();
}

void Tracer::write(const TraceRecord& r) {
  // Any record with a later timestamp closes the pending same-instant
  // presence batch (simulated time is monotone, so the batch can never
  // grow again once time moves).
  if (!pending_presence_.empty() && r.at != pending_presence_.front().at) {
    drain_presence();
  }
  if (r.kind == TraceKind::kPresence) {
    pending_presence_.push_back(r);
    return;
  }
  sink_->write(r);
}

void Tracer::drain_presence() {
  if (pending_presence_.empty()) return;
  if (pending_presence_.size() > 1) {
    // Field `a` is the subject device's BD_ADDR (see DESIGN.md section 7).
    // stable_sort keeps one device's same-instant deltas in causal order.
    std::stable_sort(pending_presence_.begin(), pending_presence_.end(),
                     [](const TraceRecord& l, const TraceRecord& r) {
                       return l.a < r.a;
                     });
  }
  if (sink_ != nullptr) {
    for (const TraceRecord& r : pending_presence_) sink_->write(r);
  }
  pending_presence_.clear();
}

void JsonlSink::flush() {
  // Swap the buffer out *before* encoding: should encoding itself trigger a
  // re-entrant flush (it cannot today, but crash handlers are jumpy places)
  // every record still goes out exactly once.
  std::vector<TraceRecord> pending;
  pending.swap(buf_);
  for (const TraceRecord& r : pending) {
    os_ << to_jsonl(r);
    ++written_;
  }
  os_.flush();
}

}  // namespace bips::obs
