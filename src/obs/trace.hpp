// Structured simulation tracing.
//
// Components emit typed, fixed-size TraceRecords -- not strings -- through
// the Tracer the Simulator owns. A record carries the simulated time, a
// kind tag, one stable subject id and three free payload words whose
// meaning is fixed per kind (see DESIGN.md section 7 for the schema). All
// identifiers are simulation-stable (station ids, BD_ADDRs, event counts),
// never host pointers or wall-clock times, so two same-seed runs produce
// byte-identical traces.
//
// Emission is a single branch on the cached sink pointer; with no sink
// installed tracing costs ~nothing and, crucially, perturbs nothing: sinks
// only record, they never schedule, so the simulation's event order is
// bit-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/time.hpp"

namespace bips::obs {

enum class TraceKind : std::uint8_t {
  kInquiryStart,    // master opened an inquiry phase
  kInquiryResp,     // first FHS heard from a device this session
  kScanFhs,         // a scanner transmitted its FHS response
  kPageStart,       // master started paging a target
  kPageOk,          // page exchange completed
  kPageFail,        // page timed out
  kPresence,        // workstation reported a presence delta to the server
  kLanSend,         // datagram accepted by the LAN
  kLanDrop,         // datagram dropped (partition / uniform / link loss)
  kServerQuery,     // spatio-temporal query executed
  kServerCrash,     // fault: server died
  kServerRestart,   // fault: server came back (new epoch)
  kWsCrash,         // fault: workstation died
  kWsRestart,       // fault: workstation came back
  kFault,           // a FaultPlan event fired
  kKernelSample,    // periodic event-churn sample from the simulator core
  kRadioFf,         // a parked protocol process fast-forwarded over idle slots
};

/// Stable wire name of a kind ("lan.send", "kernel.sample", ...).
const char* to_string(TraceKind k);

/// One trace event. Fixed-size POD; field meaning per kind is documented in
/// DESIGN.md section 7. Unused fields are zero.
struct TraceRecord {
  SimTime at;
  TraceKind kind = TraceKind::kKernelSample;
  std::uint32_t id = 0;   // subject: station id, low-32 device addr, ...
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double x = 0.0;
};

/// Renders one record as a single JSONL line (terminated with '\n').
/// Formatting is fully deterministic: integer ns timestamps, %.6f payload.
std::string to_jsonl(const TraceRecord& r);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceRecord& r) = 0;
  /// Persists anything buffered. Must be exactly-once per record and safe
  /// to call repeatedly (crash paths flush defensively).
  virtual void flush() {}
};

/// Bounded in-memory ring: keeps the newest `capacity` records, counts what
/// it had to drop. The default sink for tests and interactive tools.
class RingSink : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity = 65536);

  void write(const TraceRecord& r) override;

  const std::deque<TraceRecord>& records() const { return records_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_written() const { return written_; }
  void clear();

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::uint64_t written_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Buffered JSONL file sink. Records accumulate in memory and are encoded
/// on flush; flush clears the buffer first, so a crash handler that flushes
/// and a destructor that flushes again emit every record exactly once.
class JsonlSink : public TraceSink {
 public:
  /// `os` must outlive the sink. `buffer_records` bounds the in-memory
  /// buffer; the sink self-flushes when it fills.
  explicit JsonlSink(std::ostream& os, std::size_t buffer_records = 8192);
  ~JsonlSink() override;

  void write(const TraceRecord& r) override;
  void flush() override;

  /// Records encoded to the stream so far (excludes the pending buffer).
  std::uint64_t records_written() const { return written_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::ostream& os_;
  std::size_t buffer_records_;
  std::vector<TraceRecord> buf_;
  std::uint64_t written_ = 0;
};

/// The emission front-end components cache a pointer to. No sink installed
/// (the default) means emit() is one compare-and-skip.
///
/// Presence canonicalisation: same-instant kPresence records of *different*
/// devices reach the sink ordered by (time, device BD_ADDR), not by kernel
/// interleaving -- the same tie-break core::write_history_csv applies to
/// the discovery-history report -- so the live JSONL stream is byte-stable
/// across exact and fast-forward modes. Records of one device at one
/// instant keep their causal emission order (the sort is stable), and
/// non-presence kinds pass through untouched.
class Tracer {
 public:
  /// Installs a sink (caller keeps ownership); nullptr disables tracing.
  /// Returns the previous sink so scoped instrumentation can restore it.
  /// Presence records buffered for canonicalisation drain to the *old*
  /// sink first -- they were emitted on its watch.
  TraceSink* set_sink(TraceSink* s) {
    drain_presence();
    TraceSink* prev = sink_;
    sink_ = s;
    return prev;
  }
  TraceSink* sink() const { return sink_; }
  bool enabled() const { return sink_ != nullptr; }

  void emit(SimTime at, TraceKind kind, std::uint32_t id = 0,
            std::uint64_t a = 0, std::uint64_t b = 0, double x = 0.0) {
    if (sink_ == nullptr) return;
    write(TraceRecord{at, kind, id, a, b, x});
  }
  void flush() {
    drain_presence();
    if (sink_ != nullptr) sink_->flush();
  }

 private:
  void write(const TraceRecord& r);
  /// Sorts the buffered same-instant presence batch by device and hands it
  /// to the sink.
  void drain_presence();

  TraceSink* sink_ = nullptr;
  std::vector<TraceRecord> pending_presence_;
};

}  // namespace bips::obs
