#include "src/obs/metrics.hpp"

#include <cstdio>

#include "src/util/assert.hpp"
#include "src/util/table.hpp"

namespace bips::obs {

namespace {
/// JSON number formatting: shortest round-trip is overkill, fixed %.9g is
/// deterministic across runs and platforms for the magnitudes we emit.
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    BIPS_ASSERT_MSG(it->second.kind == 'c', "metric kind mismatch");
    return counters_[it->second.index];
  }
  counters_.emplace_back(&enabled_);
  by_name_.emplace(std::string(name),
                   Entry{'c', static_cast<std::uint32_t>(counters_.size() - 1)});
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    BIPS_ASSERT_MSG(it->second.kind == 'g', "metric kind mismatch");
    return gauges_[it->second.index];
  }
  gauges_.emplace_back(&enabled_);
  by_name_.emplace(std::string(name),
                   Entry{'g', static_cast<std::uint32_t>(gauges_.size() - 1)});
  return gauges_.back();
}

Timer& MetricsRegistry::timer(std::string_view name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    BIPS_ASSERT_MSG(it->second.kind == 't', "metric kind mismatch");
    return timers_[it->second.index];
  }
  timers_.emplace_back(&enabled_);
  by_name_.emplace(std::string(name),
                   Entry{'t', static_cast<std::uint32_t>(timers_.size() - 1)});
  return timers_.back();
}

bool MetricsRegistry::has(std::string_view name) const {
  return by_name_.find(name) != by_name_.end();
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != 'c') return 0;
  return counters_[it->second.index].value();
}

std::vector<SnapshotRow> MetricsRegistry::snapshot() const {
  std::vector<SnapshotRow> rows;
  rows.reserve(by_name_.size());
  for (const auto& [name, e] : by_name_) {
    SnapshotRow row;
    row.name = name;
    switch (e.kind) {
      case 'c':
        row.kind = "counter";
        row.count = counters_[e.index].value();
        row.value = static_cast<double>(row.count);
        break;
      case 'g':
        row.kind = "gauge";
        row.value = gauges_[e.index].value();
        break;
      default: {
        const RunningStats& s = timers_[e.index].stats();
        row.kind = "timer";
        row.count = s.count();
        row.value = s.mean();
        row.min = s.min();
        row.max = s.max();
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string MetricsRegistry::to_table() const {
  TableWriter table({"metric", "kind", "count", "value", "min", "max"});
  for (const SnapshotRow& r : snapshot()) {
    table.add_row({r.name, r.kind, std::to_string(r.count), fmt(r.value, 4),
                   fmt(r.min, 4), fmt(r.max, 4)});
  }
  return table.to_string();
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const SnapshotRow& r : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + r.name + "\":";
    if (r.kind[0] == 'c') {
      out += std::to_string(r.count);
    } else if (r.kind[0] == 'g') {
      out += json_number(r.value);
    } else {
      out += "{\"count\":" + std::to_string(r.count) +
             ",\"mean\":" + json_number(r.value) +
             ",\"min\":" + json_number(r.min) +
             ",\"max\":" + json_number(r.max) + "}";
    }
  }
  out += "}";
  return out;
}

void MetricsRegistry::reset() {
  for (Counter& c : counters_) c.reset();
  for (Timer& t : timers_) t.reset();
}

}  // namespace bips::obs
