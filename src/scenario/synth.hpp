// Generative scenarios: a seeded random-but-valid .bips file emitter.
//
// synth_scenario(seed) produces the *text* of a self-checking scenario --
// topology, population, act/fault schedule and auto-derived assertions --
// that parse_scenario accepts and that a correct simulator passes. The
// derivation is conservative: every assert-at instant leaves the walker's
// worst-case (slowest-speed, longest-path) arrival plus a discovery margin,
// every fault heals well before the end of the run, and the staleness bound
// exceeds the longest outage the schedule can inflict. Same seed + params
// -> byte-identical text, so generated scenarios can be frozen into a CI
// corpus (examples/scenarios/corpus/) and replayed forever.
#pragma once

#include <cstdint>
#include <string>

namespace bips::core {

/// Knobs for the scenario generator. Ranges are inclusive.
struct SynthParams {
  int min_rooms = 4;
  int max_rooms = 8;
  int min_users = 3;
  int max_users = 6;
  /// Simulated length of the generated run (seconds).
  double run_seconds = 600.0;
  /// Scripted workstation crash/restart pairs (capped at room count - 1).
  int station_faults = 1;
  /// Emit one seeded `chaos` block instead of scripted station faults.
  bool chaos_block = false;
  /// Emit an `assert-window ... max-staleness` directive (bound derived
  /// from the fault schedule).
  bool staleness_window = true;
};

/// Emits the text of a random valid self-checking scenario. Deterministic:
/// the text is a pure function of (seed, params).
std::string synth_scenario(std::uint64_t seed, const SynthParams& params = {});

}  // namespace bips::core
