#include "src/scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <istream>
#include <sstream>
#include <unordered_set>

#include "src/fault/invariants.hpp"

namespace bips::core {

namespace {

bool fail(ScenarioError* err, int line, std::string message) {
  if (err != nullptr) *err = ScenarioError{line, std::move(message)};
  return false;
}

bool parse_double(const std::string& tok, double* out) {
  std::size_t pos = 0;
  try {
    *out = std::stod(tok, &pos);
  } catch (...) {
    return false;
  }
  return pos == tok.size();
}

bool parse_positive(const std::string& tok, double* out) {
  return parse_double(tok, out) && *out > 0;
}

bool parse_count(const std::string& tok, int* out) {
  double v = 0;
  if (!parse_double(tok, &v) || v < 1 || v > 1'000'000 ||
      v != static_cast<double>(static_cast<int>(v))) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;  // comment until end of line
    toks.push_back(t);
  }
  return toks;
}

std::string join_tokens(const std::vector<std::string>& toks) {
  std::string out;
  for (const auto& t : toks) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

SimTime at_seconds(double s) { return SimTime(Duration::from_seconds(s).ns()); }

/// A crash/restart directive awaiting the pairing validation (the windowed
/// fault kinds carry their own span and need none).
struct PendingOutage {
  int line = 0;
  Duration at;
  bool restart = false;
  bool server = false;
  mobility::RoomId room = 0;
};

/// A `chaos <seed> [k v ...]` block; compiled once the room count is known.
struct PendingChaos {
  int line = 0;
  std::uint64_t seed = 0;
  fault::ChaosParams params;
};

/// Validates that per scope (each room, and the server) the crash/restart
/// directives alternate crash -> restart in time order: a restart without a
/// preceding crash, two crashes without an intervening restart (overlapping
/// crash windows), and zero-length outages are all rejected with the line
/// of the offending directive.
bool validate_outages(const std::vector<PendingOutage>& outages,
                      const ScenarioSpec& spec, ScenarioError* err) {
  auto scope_name = [&](const PendingOutage& o) {
    return o.server ? std::string("the server")
                    : "room '" + spec.building.room(o.room).name + "'";
  };
  // Group per scope, keeping file order for equal instants (they are
  // rejected anyway, with the later line blamed).
  std::vector<const PendingOutage*> sorted;
  sorted.reserve(outages.size());
  for (const auto& o : outages) sorted.push_back(&o);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PendingOutage* a, const PendingOutage* b) {
                     return a->at < b->at;
                   });
  struct ScopeState {
    bool crashed = false;
    Duration crash_at;
  };
  std::vector<ScopeState> rooms(spec.building.room_count());
  ScopeState server;
  for (const PendingOutage* o : sorted) {
    ScopeState& s = o->server ? server : rooms[o->room];
    if (o->restart) {
      if (!s.crashed) {
        return fail(err, o->line,
                    "restart: no preceding crash for " + scope_name(*o));
      }
      if (o->at <= s.crash_at) {
        return fail(err, o->line,
                    "restart: must come strictly after the crash of " +
                        scope_name(*o));
      }
      s.crashed = false;
    } else {
      if (s.crashed) {
        char buf[64];
        std::snprintf(buf, sizeof buf, " (still down since t=%.1fs)",
                      s.crash_at.to_seconds());
        return fail(err, o->line,
                    "crash: overlapping crash window for " + scope_name(*o) +
                        buf);
      }
      s.crashed = true;
      s.crash_at = o->at;
    }
  }
  return true;
}

}  // namespace

bool ScenarioReport::invariants_violated() const {
  for (const ScenarioCheck& c : checks) {
    if (c.invariant && !c.passed) return true;
  }
  return false;
}

std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           ScenarioError* err) {
  std::istringstream is(text);
  return parse_scenario(is, err);
}

std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           ScenarioError* err) {
  ScenarioSpec spec;
  std::unordered_set<std::string> userids, usernames;
  std::vector<PendingOutage> outages;
  std::vector<PendingChaos> chaos_blocks;
  std::string line;
  int lineno = 0;
  bool ok = true;

  while (ok && std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];
    const std::size_t argc = toks.size() - 1;

    auto want = [&](std::size_t lo, std::size_t hi) {
      if (argc >= lo && argc <= hi) return true;
      std::ostringstream msg;
      msg << cmd << ": expected ";
      if (lo == hi) {
        msg << lo;
      } else if (hi == SIZE_MAX) {
        msg << "at least " << lo;
      } else {
        msg << lo << ".." << hi;
      }
      msg << " arguments, got " << argc;
      return fail(err, lineno, msg.str());
    };
    auto find_room = [&](const std::string& name) {
      return spec.building.find(name);
    };
    auto find_user = [&](const std::string& who) -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < spec.users.size(); ++i) {
        if (spec.users[i].name == who || spec.users[i].userid == who) return i;
      }
      return std::nullopt;
    };

    double v = 0, v2 = 0;
    if (cmd == "seed") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0)) {
        fail(err, lineno, "seed: not a non-negative number");
        break;
      }
      spec.config.seed = static_cast<std::uint64_t>(v);
    } else if (cmd == "radius") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "radius: not a positive number");
        break;
      }
      spec.config.coverage_radius_m = v;
    } else if (cmd == "stagger") {
      if (!(ok = want(1, 1))) break;
      if (toks[1] == "on") {
        spec.config.stagger_inquiry = true;
      } else if (toks[1] == "off") {
        spec.config.stagger_inquiry = false;
      } else {
        ok = fail(err, lineno, "stagger: expected 'on' or 'off'");
      }
    } else if (cmd == "inquiry") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "inquiry: not a positive number of seconds");
        break;
      }
      spec.config.workstation.scheduler.inquiry_length =
          Duration::from_seconds(v);
    } else if (cmd == "cycle") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "cycle: not a positive number of seconds");
        break;
      }
      spec.config.workstation.scheduler.cycle_length =
          Duration::from_seconds(v);
    } else if (cmd == "interlaced") {
      if (!(ok = want(1, 1))) break;
      if (toks[1] == "on") {
        spec.config.slave.inquiry_scan.interlaced = true;
      } else if (toks[1] == "off") {
        spec.config.slave.inquiry_scan.interlaced = false;
      } else {
        ok = fail(err, lineno, "interlaced: expected 'on' or 'off'");
      }
    } else if (cmd == "lan-loss") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0 && v <= 1)) {
        fail(err, lineno, "lan-loss: expected a probability in [0, 1]");
        break;
      }
      spec.config.lan.loss = v;
    } else if (cmd == "speed") {
      if (!(ok = want(2, 2))) break;
      if (!(ok = parse_positive(toks[1], &v) && parse_positive(toks[2], &v2) &&
                 v <= v2)) {
        fail(err, lineno, "speed: expected 0 < min <= max (m/s)");
        break;
      }
      spec.config.mobility.speed_min_mps = v;
      spec.config.mobility.speed_max_mps = v2;
    } else if (cmd == "pause") {
      if (!(ok = want(2, 2))) break;
      if (!(ok = parse_double(toks[1], &v) && parse_double(toks[2], &v2) &&
                 v >= 0 && v <= v2)) {
        fail(err, lineno, "pause: expected 0 <= min <= max (seconds)");
        break;
      }
      spec.config.mobility.pause_min = Duration::from_seconds(v);
      spec.config.mobility.pause_max = Duration::from_seconds(v2);
    } else if (cmd == "room") {
      if (!(ok = want(3, 3))) break;
      if (spec.building.find(toks[1]).has_value()) {
        ok = fail(err, lineno, "room: duplicate room name '" + toks[1] + "'");
        break;
      }
      if (!(ok = parse_double(toks[2], &v) && parse_double(toks[3], &v2))) {
        fail(err, lineno, "room: coordinates must be numbers");
        break;
      }
      spec.building.add_room(toks[1], Vec2{v, v2});
    } else if (cmd == "edge") {
      if (!(ok = want(2, 3))) break;
      const auto a = find_room(toks[1]);
      const auto b = find_room(toks[2]);
      if (!a || !b) {
        ok = fail(err, lineno, "edge: unknown room");
        break;
      }
      if (*a == *b) {
        ok = fail(err, lineno, "edge: cannot connect a room to itself");
        break;
      }
      if (argc == 3) {
        if (!(ok = parse_positive(toks[3], &v))) {
          fail(err, lineno, "edge: distance must be positive");
          break;
        }
        spec.building.connect(*a, *b, v);
      } else {
        spec.building.connect(*a, *b);
      }
    } else if (cmd == "user") {
      if (!(ok = want(4, 4))) break;
      const auto room = find_room(toks[4]);
      if (!room) {
        ok = fail(err, lineno, "user: unknown start room '" + toks[4] + "'");
        break;
      }
      if (!usernames.insert(toks[1]).second) {
        ok = fail(err, lineno, "user: duplicate name '" + toks[1] + "'");
        break;
      }
      if (!userids.insert(toks[2]).second) {
        ok = fail(err, lineno, "user: duplicate userid '" + toks[2] + "'");
        break;
      }
      spec.users.push_back(ScenarioUser{toks[1], toks[2], toks[3], *room});
    } else if (cmd == "station-timeout") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0)) {
        fail(err, lineno, "station-timeout: not a non-negative number");
        break;
      }
      spec.config.server.station_timeout = Duration::from_seconds(v);
    } else if (cmd == "zones") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v) && v == std::floor(v))) {
        fail(err, lineno, "zones: not a positive integer");
        break;
      }
      spec.config.server.zones = static_cast<std::size_t>(v);
    } else if (cmd == "crash" || cmd == "restart") {
      if (!(ok = want(2, 2))) break;
      const auto room = find_room(toks[1]);
      if (!room) {
        ok = fail(err, lineno, cmd + ": unknown room '" + toks[1] + "'");
        break;
      }
      if (!(ok = parse_positive(toks[2], &v))) {
        fail(err, lineno, cmd + ": time must be a positive number of seconds");
        break;
      }
      outages.push_back(PendingOutage{lineno, Duration::from_seconds(v),
                                      cmd == "restart", false, *room});
    } else if (cmd == "server-crash" || cmd == "server-restart") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, cmd + ": time must be a positive number of seconds");
        break;
      }
      outages.push_back(PendingOutage{lineno, Duration::from_seconds(v),
                                      cmd == "server-restart", true, 0});
    } else if (cmd == "partition") {
      if (!(ok = want(3, SIZE_MAX))) break;
      if (!(ok = parse_positive(toks[1], &v) && parse_positive(toks[2], &v2))) {
        fail(err, lineno, "partition: expected <t> <duration> <room>...");
        break;
      }
      std::vector<StationId> group;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        const auto room = find_room(toks[i]);
        if (!room) {
          ok = fail(err, lineno, "partition: unknown room '" + toks[i] + "'");
          break;
        }
        if (std::find(group.begin(), group.end(),
                      static_cast<StationId>(*room)) != group.end()) {
          ok = fail(err, lineno, "partition: duplicate room '" + toks[i] + "'");
          break;
        }
        group.push_back(static_cast<StationId>(*room));
      }
      if (!ok) break;
      spec.fault_plan.partition_stations(Duration::from_seconds(v),
                                         Duration::from_seconds(v2),
                                         std::move(group));
    } else if (cmd == "loss-burst") {
      if (!(ok = want(3, 3))) break;
      double loss = 0;
      if (!(ok = parse_positive(toks[1], &v) && parse_positive(toks[2], &v2) &&
                 parse_double(toks[3], &loss) && loss >= 0 && loss <= 1)) {
        fail(err, lineno,
             "loss-burst: expected <t> <duration> <probability in [0, 1]>");
        break;
      }
      spec.fault_plan.loss_burst(Duration::from_seconds(v),
                                 Duration::from_seconds(v2), loss);
    } else if (cmd == "link-loss") {
      if (!(ok = want(4, 4))) break;
      const auto room = find_room(toks[1]);
      if (!room) {
        ok = fail(err, lineno, "link-loss: unknown room '" + toks[1] + "'");
        break;
      }
      double loss = 0;
      if (!(ok = parse_positive(toks[2], &v) && parse_positive(toks[3], &v2) &&
                 parse_double(toks[4], &loss) && loss >= 0 && loss <= 1)) {
        fail(err, lineno,
             "link-loss: expected <room> <t> <duration> <probability>");
        break;
      }
      spec.fault_plan.flaky_link(Duration::from_seconds(v),
                                 Duration::from_seconds(v2),
                                 static_cast<StationId>(*room), loss);
    } else if (cmd == "chaos") {
      if (!(ok = want(1, SIZE_MAX))) break;
      if (!(ok = parse_double(toks[1], &v) && v >= 0)) {
        fail(err, lineno, "chaos: seed must be a non-negative number");
        break;
      }
      if (argc % 2 != 1) {
        ok = fail(err, lineno,
                  "chaos: parameter overrides come in <key> <value> pairs");
        break;
      }
      PendingChaos pc;
      pc.line = lineno;
      pc.seed = static_cast<std::uint64_t>(v);
      for (std::size_t i = 2; ok && i + 1 < toks.size(); i += 2) {
        const std::string& key = toks[i];
        double val = 0;
        if (!parse_double(toks[i + 1], &val) || val < 0) {
          ok = fail(err, lineno,
                    "chaos: value for '" + key + "' must be a non-negative "
                    "number");
          break;
        }
        if (key == "start") {
          pc.params.start = Duration::from_seconds(val);
        } else if (key == "window") {
          pc.params.window = Duration::from_seconds(val);
        } else if (key == "min-outage") {
          pc.params.min_outage = Duration::from_seconds(val);
        } else if (key == "max-outage") {
          pc.params.max_outage = Duration::from_seconds(val);
        } else if (key == "station-faults") {
          pc.params.station_faults = static_cast<int>(val);
        } else if (key == "server-faults") {
          pc.params.server_faults = static_cast<int>(val);
        } else if (key == "partitions") {
          pc.params.partitions = static_cast<int>(val);
        } else if (key == "loss-bursts") {
          pc.params.loss_bursts = static_cast<int>(val);
        } else if (key == "burst-loss") {
          if (val > 1) {
            ok = fail(err, lineno, "chaos: burst-loss must be in [0, 1]");
            break;
          }
          pc.params.burst_loss = val;
        } else {
          ok = fail(err, lineno, "chaos: unknown parameter '" + key + "'");
          break;
        }
      }
      if (!ok) break;
      if (pc.params.window <= Duration(0) ||
          pc.params.min_outage <= Duration(0) ||
          pc.params.min_outage > pc.params.max_outage) {
        ok = fail(err, lineno,
                  "chaos: need window > 0 and 0 < min-outage <= max-outage");
        break;
      }
      chaos_blocks.push_back(std::move(pc));
    } else if (cmd == "act") {
      if (!(ok = want(4, 4))) break;
      const auto user = find_user(toks[1]);
      if (!user) {
        ok = fail(err, lineno, "act: unknown user '" + toks[1] + "'");
        break;
      }
      ScenarioAct act;
      act.user = *user;
      act.line = lineno;
      const std::string& verb = toks[2];
      if (verb == "walk-to") {
        const auto room = find_room(toks[3]);
        if (!room) {
          ok = fail(err, lineno, "act: unknown room '" + toks[3] + "'");
          break;
        }
        if (!(ok = parse_positive(toks[4], &v))) {
          fail(err, lineno, "act walk-to: departure time must be positive");
          break;
        }
        act.kind = ScenarioAct::Kind::kWalkTo;
        act.room = *room;
        act.at = at_seconds(v);
      } else if (verb == "power-cycle" || verb == "unreachable") {
        if (!(ok = parse_positive(toks[3], &v) &&
                   parse_positive(toks[4], &v2))) {
          fail(err, lineno,
               "act " + verb + ": expected <t> <duration>, both positive");
          break;
        }
        act.kind = verb == "power-cycle" ? ScenarioAct::Kind::kPowerCycle
                                         : ScenarioAct::Kind::kUnreachable;
        act.at = at_seconds(v);
        act.duration = Duration::from_seconds(v2);
      } else if (verb == "login-flood") {
        if (!(ok = parse_positive(toks[3], &v))) {
          fail(err, lineno, "act login-flood: time must be positive");
          break;
        }
        int n = 0;
        if (!(ok = parse_count(toks[4], &n))) {
          fail(err, lineno,
               "act login-flood: count must be a positive integer");
          break;
        }
        act.kind = ScenarioAct::Kind::kLoginFlood;
        act.at = at_seconds(v);
        act.count = n;
      } else {
        ok = fail(err, lineno, "act: unknown verb '" + verb + "'");
        break;
      }
      spec.acts.push_back(std::move(act));
    } else if (cmd == "assert-at") {
      if (!(ok = want(4, 4))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "assert-at: time must be positive");
        break;
      }
      if (toks[2] != "whereis") {
        ok = fail(err, lineno,
                  "assert-at: unknown predicate '" + toks[2] +
                      "' (expected 'whereis')");
        break;
      }
      const auto user = find_user(toks[3]);
      if (!user) {
        ok = fail(err, lineno, "assert-at: unknown user '" + toks[3] + "'");
        break;
      }
      ScenarioAssertion a;
      a.kind = ScenarioAssertion::Kind::kWhereIsAt;
      a.at = at_seconds(v);
      a.user = *user;
      a.line = lineno;
      a.text = join_tokens(toks);
      if (toks[4] == "absent") {
        a.room = mobility::kNoRoom;
      } else {
        const auto room = find_room(toks[4]);
        if (!room) {
          ok = fail(err, lineno,
                    "assert-at: unknown room '" + toks[4] +
                        "' (or the keyword 'absent')");
          break;
        }
        a.room = *room;
      }
      spec.assertions.push_back(std::move(a));
    } else if (cmd == "assert-window") {
      if (!(ok = want(4, 4))) break;
      double s = 0;
      if (!(ok = parse_double(toks[1], &v) && v >= 0 &&
                 parse_positive(toks[2], &v2) && v < v2)) {
        fail(err, lineno,
             "assert-window: expected 0 <= t0 < t1 (seconds)");
        break;
      }
      if (toks[3] != "max-staleness") {
        ok = fail(err, lineno,
                  "assert-window: unknown predicate '" + toks[3] +
                      "' (expected 'max-staleness')");
        break;
      }
      if (!(ok = parse_positive(toks[4], &s))) {
        fail(err, lineno, "assert-window: staleness bound must be positive");
        break;
      }
      ScenarioAssertion a;
      a.kind = ScenarioAssertion::Kind::kMaxStalenessWindow;
      a.at = at_seconds(v);
      a.until = at_seconds(v2);
      a.staleness = Duration::from_seconds(s);
      a.line = lineno;
      a.text = join_tokens(toks);
      spec.assertions.push_back(std::move(a));
    } else if (cmd == "assert-final") {
      if (!(ok = want(1, 3))) break;
      ScenarioAssertion a;
      if (toks[1] == "no-invariant-violations") {
        if (!(ok = want(1, 1))) break;
        a.kind = ScenarioAssertion::Kind::kNoInvariantViolations;
      } else if (toks[1] == "min-counter") {
        // assert-final min-counter <cell> <floor>: the named metrics cell
        // (summed across shards when sharded) must have reached <floor> by
        // the end of the run. Lets a fault scenario assert *how* it
        // recovered (e.g. svc.relogin >= 1: via re-login, not snapshot).
        if (!(ok = want(3, 3))) break;
        double floor_v = 0;
        if (!(ok = parse_double(toks[3], &floor_v) && floor_v >= 0 &&
                   floor_v <= 1e15 &&
                   floor_v == static_cast<double>(
                                  static_cast<std::uint64_t>(floor_v)))) {
          fail(err, lineno,
               "assert-final min-counter: floor must be a non-negative "
               "integer");
          break;
        }
        a.kind = ScenarioAssertion::Kind::kMinCounter;
        a.counter = toks[2];
        a.min_count = static_cast<std::uint64_t>(floor_v);
      } else {
        ok = fail(err, lineno,
                  "assert-final: unknown predicate '" + toks[1] +
                      "' (expected 'no-invariant-violations' or "
                      "'min-counter')");
        break;
      }
      a.line = lineno;
      a.text = join_tokens(toks);
      spec.assertions.push_back(std::move(a));
    } else if (cmd == "run") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "run: not a positive number of seconds");
        break;
      }
      spec.run_time = Duration::from_seconds(v);
    } else if (cmd == "sample") {
      if (!(ok = want(1, 1))) break;
      if (!(ok = parse_positive(toks[1], &v))) {
        fail(err, lineno, "sample: not a positive number of seconds");
        break;
      }
      spec.sample_period = Duration::from_seconds(v);
    } else {
      ok = fail(err, lineno, "unknown directive '" + cmd + "'");
    }
  }
  if (!ok) return std::nullopt;

  // File-level validation.
  if (spec.building.room_count() == 0) {
    fail(err, 0, "scenario declares no rooms");
    return std::nullopt;
  }
  if (!spec.building.to_graph().connected()) {
    fail(err, 0, "building graph is not connected (missing edges)");
    return std::nullopt;
  }
  if (spec.config.workstation.scheduler.inquiry_length >=
      spec.config.workstation.scheduler.cycle_length) {
    fail(err, 0, "inquiry slot must be shorter than the cycle");
    return std::nullopt;
  }
  // Crash/restart pairing (per room and for the server), then compile the
  // validated outages into the unified plan.
  if (!validate_outages(outages, spec, err)) return std::nullopt;
  for (const PendingOutage& o : outages) {
    if (o.server) {
      o.restart ? spec.fault_plan.restart_server(o.at)
                : spec.fault_plan.crash_server(o.at);
    } else {
      o.restart
          ? spec.fault_plan.restart_station(o.at,
                                            static_cast<StationId>(o.room))
          : spec.fault_plan.crash_station(o.at,
                                          static_cast<StationId>(o.room));
    }
  }
  // Seeded chaos blocks join the same plan (they self-validate pairing).
  for (const PendingChaos& pc : chaos_blocks) {
    spec.fault_plan.merge(fault::FaultPlan::chaos(
        pc.seed, spec.building.room_count(), pc.params));
  }
  // Acts and assertions must fall inside the run: a directive past the end
  // would silently never fire, which defeats a self-checking scenario.
  const SimTime end(spec.run_time.ns());
  for (const ScenarioAct& a : spec.acts) {
    if (a.at > end) {
      fail(err, a.line, "act: time is beyond the end of the run");
      return std::nullopt;
    }
  }
  for (const ScenarioAssertion& a : spec.assertions) {
    const SimTime last =
        a.kind == ScenarioAssertion::Kind::kMaxStalenessWindow ? a.until
                                                               : a.at;
    if (last > end) {
      fail(err, a.line, "assertion: time is beyond the end of the run");
      return std::nullopt;
    }
  }
  return spec;
}

namespace {

/// Live grader for one `assert-window t0 t1 max-staleness s` directive:
/// samples every spec.sample_period inside the window and fails the check
/// as soon as some logged-in user's database record has disagreed with the
/// mobility ground truth for longer than the bound. Streaks are measured
/// from the first in-window sample that disagrees.
struct WindowProbe {
  const ScenarioSpec* spec = nullptr;
  BipsSimulation* sim = nullptr;
  const ScenarioAssertion* a = nullptr;
  ScenarioCheck* out = nullptr;
  std::unique_ptr<sim::PeriodicTimer> timer;
  std::vector<SimTime> since;  // per user; SimTime::max() = in agreement
  bool done = false;

  void sample() {
    if (done) return;
    const SimTime now = sim->simulator().now();
    for (std::size_t i = 0; i < spec->users.size(); ++i) {
      const ScenarioUser& u = spec->users[i];
      BipsClient* c = sim->client(u.userid);
      bool mismatch = false;
      mobility::RoomId truth = mobility::kNoRoom;
      std::optional<StationId> believed;
      if (c != nullptr && c->logged_in()) {  // BIPS only tracks logged-in users
        truth = sim->true_room(u.userid);
        believed = sim->db_room(u.userid);
        mismatch = truth == mobility::kNoRoom
                       ? believed.has_value()
                       : (!believed || *believed != truth);
      }
      if (!mismatch) {
        since[i] = SimTime::max();
        continue;
      }
      if (since[i] == SimTime::max()) since[i] = now;
      if (now - since[i] > a->staleness) {
        char buf[224];
        std::snprintf(
            buf, sizeof buf,
            "t=%.1fs: %s stale for %.1fs (bound %.1fs): truth=%s, db=%s",
            now.to_seconds(), u.name.c_str(), (now - since[i]).to_seconds(),
            a->staleness.to_seconds(),
            truth == mobility::kNoRoom
                ? "absent"
                : spec->building.room(truth).name.c_str(),
            believed ? spec->building.room(*believed).name.c_str() : "absent");
        out->passed = false;
        out->detail = buf;
        done = true;
        timer->stop();
        return;
      }
    }
  }

  void finish() {
    if (done) return;
    done = true;
    out->passed = true;
    out->detail.clear();
    timer->stop();
  }
};

}  // namespace

std::unique_ptr<BipsSimulation> run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, {}, nullptr);
}

std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run) {
  return run_scenario(spec, pre_run, nullptr);
}

std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run,
    ScenarioReport* report) {
  auto sim = std::make_unique<BipsSimulation>(spec.building, spec.config);
  for (const auto& u : spec.users) {
    sim->add_user(u.name, u.userid, u.password, u.room);
  }
  sim->enable_tracking_metrics(spec.sample_period);
  BipsSimulation* raw = sim.get();

  // The unified fault schedule rides the event queue (FaultPlan::apply), as
  // do the behaviour acts below -- first-class sim events, so a
  // fast-forwarded kernel wakes for each exactly where the exact-slot
  // kernel executes it.
  spec.fault_plan.apply(*sim);

  for (const ScenarioAct& a : spec.acts) {
    const std::string uid = spec.users[a.user].userid;
    switch (a.kind) {
      case ScenarioAct::Kind::kWalkTo:
        sim->simulator().schedule_at(a.at, [raw, uid, room = a.room] {
          raw->agent(uid)->walk_to(room);
        });
        break;
      case ScenarioAct::Kind::kPowerCycle:
        sim->simulator().schedule_at(a.at, [raw, uid] {
          raw->set_radio_shadowed(uid, true);  // the radio goes dark...
          raw->client(uid)->power_off();       // ...and the session RAM dies
        });
        sim->simulator().schedule_at(a.at + a.duration, [raw, uid] {
          raw->set_radio_shadowed(uid, false);
          raw->client(uid)->power_on();
        });
        break;
      case ScenarioAct::Kind::kUnreachable:
        sim->simulator().schedule_at(a.at, [raw, uid] {
          raw->set_radio_shadowed(uid, true);
        });
        sim->simulator().schedule_at(a.at + a.duration, [raw, uid] {
          raw->set_radio_shadowed(uid, false);
        });
        break;
      case ScenarioAct::Kind::kLoginFlood:
        sim->simulator().schedule_at(a.at, [raw, uid, n = a.count] {
          raw->client(uid)->flood_logins(n);
        });
        break;
    }
  }

  // Assertion graders. All state lives on this stack frame: every grading
  // event fires at or before run_time (validated by the parser), i.e.
  // inside the run_for below.
  std::vector<std::unique_ptr<WindowProbe>> probes;
  std::unique_ptr<fault::InvariantChecker> inv;
  std::vector<ScenarioCheck*> inv_checks;
  std::vector<std::pair<const ScenarioAssertion*, ScenarioCheck*>> min_checks;
  if (report != nullptr) {
    report->checks.clear();
    report->checks.reserve(spec.assertions.size());
    for (const ScenarioAssertion& a : spec.assertions) {
      ScenarioCheck c;
      c.line = a.line;
      c.what = a.text;
      c.passed = false;
      c.detail = "never evaluated";
      c.invariant = a.kind == ScenarioAssertion::Kind::kNoInvariantViolations;
      report->checks.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < spec.assertions.size(); ++i) {
      const ScenarioAssertion& a = spec.assertions[i];
      ScenarioCheck* out = &report->checks[i];
      switch (a.kind) {
        case ScenarioAssertion::Kind::kWhereIsAt:
          sim->simulator().schedule_at(a.at, [raw, sp = &spec, aa = &a, out] {
            const ScenarioUser& u = sp->users[aa->user];
            const auto r =
                raw->server().query(BipsServer::Query::where_is("", u.name));
            if (aa->room == mobility::kNoRoom) {
              out->passed = !r.ok();
              out->detail =
                  out->passed ? "" : "expected absent, db says " + r.room;
            } else {
              const std::string& want = sp->building.room(aa->room).name;
              out->passed = r.ok() && r.room == want;
              if (out->passed) {
                out->detail.clear();
              } else {
                out->detail =
                    "expected " + want + ", db says " +
                    (r.ok() ? r.room : std::string(proto::to_string(r.status)));
              }
            }
          });
          break;
        case ScenarioAssertion::Kind::kMaxStalenessWindow: {
          auto probe = std::make_unique<WindowProbe>();
          probe->spec = &spec;
          probe->sim = raw;
          probe->a = &a;
          probe->out = out;
          probe->since.assign(spec.users.size(), SimTime::max());
          probe->timer = std::make_unique<sim::PeriodicTimer>(
              sim->simulator(), spec.sample_period,
              [p = probe.get()] { p->sample(); });
          WindowProbe* p = probe.get();
          sim->simulator().schedule_at(a.at, [p] {
            p->sample();       // the window includes its first instant
            p->timer->start();
          });
          sim->simulator().schedule_at(a.until, [p] {
            p->sample();       // ... and its last
            p->finish();
          });
          probes.push_back(std::move(probe));
          break;
        }
        case ScenarioAssertion::Kind::kNoInvariantViolations:
          if (!inv) {
            fault::InvariantChecker::Config icfg;
            icfg.sample_period = spec.sample_period;
            // The dead-station bound must exceed the failure detector's
            // timeout + sweep (plus slack for a concurrent server outage).
            icfg.dead_station_grace =
                std::max(Duration::seconds(30),
                         spec.config.server.station_timeout +
                             spec.config.server.sweep_period +
                             Duration::seconds(20));
            inv = std::make_unique<fault::InvariantChecker>(*sim, icfg);
            inv->start();
          }
          inv_checks.push_back(out);
          break;
        case ScenarioAssertion::Kind::kMinCounter:
          min_checks.emplace_back(&a, out);  // graded after the run
          break;
      }
    }
  }

  if (pre_run) pre_run(*sim);
  sim->run_for(spec.run_time);

  if (inv) {
    // The convergence contract only binds once the plan has healed and the
    // recovery bound has elapsed (the bound the chaos tests use).
    if (spec.fault_plan.heal_time() + Duration::seconds(40) <=
        spec.run_time) {
      inv->check_converged();
    }
    inv->stop();
    std::string detail;
    for (const std::string& v : inv->violations()) {
      if (!detail.empty()) detail += "; ";
      detail += v;
    }
    for (ScenarioCheck* out : inv_checks) {
      out->passed = inv->ok();
      out->detail = detail;
    }
  }
  for (auto& [aa, out] : min_checks) {
    const std::uint64_t got =
        sim->simulator().obs().metrics.counter_value(aa->counter);
    out->passed = got >= aa->min_count;
    out->detail = out->passed
                      ? ""
                      : aa->counter + " = " + std::to_string(got) +
                            ", need >= " + std::to_string(aa->min_count);
  }
  return sim;
}

namespace {

/// Sharded counterpart of WindowProbe: grades one `assert-window t0 t1
/// max-staleness s` directive from the window barriers. The probe keeps
/// the monolithic tick grid -- t0, t0 + p, t0 + 2p, ..., plus t1 itself --
/// and evaluates every tick that has elapsed at the first barrier at or
/// after it (state as of the barrier, tick time for the streak
/// arithmetic). The quantisation is bounded by one lookahead window
/// (milliseconds against multi-second staleness bounds) and is identical
/// at every thread count. Single-shard worlds have no barriers; the runner
/// drives advance_to from per-tick events instead, making the grid exact.
struct ShardedWindowProbe {
  const ScenarioSpec* spec = nullptr;
  ShardedBipsSimulation* sim = nullptr;
  const ScenarioAssertion* a = nullptr;
  ScenarioCheck* out = nullptr;
  std::vector<SimTime> since;  // per user; SimTime::max() = in agreement
  SimTime next_tick;
  bool done = false;

  void advance_to(SimTime edge) {
    while (!done && next_tick <= edge && next_tick <= a->until) {
      sample(next_tick);
      next_tick = next_tick + spec->sample_period;
    }
    if (!done && edge >= a->until) {
      sample(a->until);  // the window includes its last instant
      finish();
    }
  }

  void sample(SimTime tick) {
    if (done) return;
    for (std::size_t i = 0; i < spec->users.size(); ++i) {
      const ScenarioUser& u = spec->users[i];
      bool mismatch = false;
      mobility::RoomId truth = mobility::kNoRoom;
      std::optional<StationId> believed;
      // BIPS only tracks logged-in users (a user mid-handoff reads as
      // logged out for the one-window blackout, at every thread count).
      if (sim->active_client(u.userid).logged_in()) {
        truth = sim->true_room(u.userid);
        believed = sim->db_room(u.userid);
        mismatch = truth == mobility::kNoRoom
                       ? believed.has_value()
                       : (!believed || *believed != truth);
      }
      if (!mismatch) {
        since[i] = SimTime::max();
        continue;
      }
      if (since[i] == SimTime::max()) since[i] = tick;
      if (tick - since[i] > a->staleness) {
        char buf[224];
        std::snprintf(
            buf, sizeof buf,
            "t=%.1fs: %s stale for %.1fs (bound %.1fs): truth=%s, db=%s",
            tick.to_seconds(), u.name.c_str(), (tick - since[i]).to_seconds(),
            a->staleness.to_seconds(),
            truth == mobility::kNoRoom
                ? "absent"
                : spec->building.room(truth).name.c_str(),
            believed ? spec->building.room(*believed).name.c_str() : "absent");
        out->passed = false;
        out->detail = buf;
        done = true;
        return;
      }
    }
  }

  void finish() {
    if (done) return;
    done = true;
    out->passed = true;
    out->detail.clear();
  }
};

}  // namespace

std::unique_ptr<ShardedBipsSimulation> run_scenario_sharded(
    const ScenarioSpec& spec, unsigned threads, std::size_t shards,
    ScenarioReport* report, std::string* error) {
  // Every scenario directive replays sharded now -- faults split into
  // shard-local and barrier classes (FaultPlan::apply_sharded), power
  // cycles ride the replica machinery, and window/invariant assertions
  // grade at barriers -- so nothing is rejected any more.
  if (error != nullptr) error->clear();

  ShardedConfig cfg;
  cfg.base = spec.config;
  cfg.shards = shards;
  auto sim = std::make_unique<ShardedBipsSimulation>(spec.building, cfg);
  for (const auto& u : spec.users) {
    sim->add_user(u.name, u.userid, u.password, u.room);
  }
  sim->enable_tracking_metrics(spec.sample_period);
  ShardedBipsSimulation* raw = sim.get();

  // The unified fault schedule, split by owner: station faults and the
  // windowed LAN faults fire inside the owning shards' windows, server and
  // location-shard faults fire on shard 0.
  spec.fault_plan.apply_sharded(*sim);

  for (const ScenarioAct& a : spec.acts) {
    const std::string& uid = spec.users[a.user].userid;
    switch (a.kind) {
      case ScenarioAct::Kind::kWalkTo:
        raw->schedule_user_act(
            a.at, uid,
            [room = a.room](BipsClient&, mobility::RandomWaypointAgent& ag) {
              ag.walk_to(room);
            });
        break;
      case ScenarioAct::Kind::kUnreachable:
        raw->schedule_radio_shadow(a.at, uid, true);
        raw->schedule_radio_shadow(a.at + a.duration, uid, false);
        break;
      case ScenarioAct::Kind::kLoginFlood:
        raw->schedule_user_act(
            a.at, uid,
            [n = a.count](BipsClient& c, mobility::RandomWaypointAgent&) {
              c.flood_logins(n);
            });
        break;
      case ScenarioAct::Kind::kPowerCycle:
        raw->schedule_power_cycle(a.at, uid, a.duration);
        break;
    }
  }

  // whereis graders. A multi-shard world grades each one at the first
  // window barrier at or after its instant (every shard is quiescent
  // there, so the cross-shard server read is safe; the quantisation is
  // bounded by one window and identical at every thread count). A
  // single-shard world has no barriers and simply schedules the grade as
  // an event, like the monolithic runner.
  struct WhereIsProbe {
    const ScenarioAssertion* a = nullptr;
    ScenarioCheck* out = nullptr;
  };
  std::vector<WhereIsProbe> pending;
  const auto grade = [raw, &spec](const ScenarioAssertion& a,
                                  ScenarioCheck* out) {
    const ScenarioUser& u = spec.users[a.user];
    const auto r = raw->server().query(BipsServer::Query::where_is("", u.name));
    if (a.room == mobility::kNoRoom) {
      out->passed = !r.ok();
      out->detail = out->passed ? "" : "expected absent, db says " + r.room;
    } else {
      const std::string& want = spec.building.room(a.room).name;
      out->passed = r.ok() && r.room == want;
      if (out->passed) {
        out->detail.clear();
      } else {
        out->detail =
            "expected " + want + ", db says " +
            (r.ok() ? r.room : std::string(proto::to_string(r.status)));
      }
    }
  };
  std::vector<std::unique_ptr<ShardedWindowProbe>> probes;
  std::unique_ptr<fault::InvariantChecker> inv;
  std::vector<ScenarioCheck*> inv_checks;
  std::vector<std::pair<const ScenarioAssertion*, ScenarioCheck*>> min_checks;
  std::unique_ptr<sim::PeriodicTimer> inv_timer;  // single-shard cadence
  SimTime inv_next;                               // multi-shard tick grid
  const bool single = sim->shard_count() == 1;
  if (report != nullptr) {
    report->checks.clear();
    report->checks.reserve(spec.assertions.size());
    for (const ScenarioAssertion& a : spec.assertions) {
      ScenarioCheck c;
      c.line = a.line;
      c.what = a.text;
      c.passed = false;
      c.detail = "never evaluated";
      c.invariant = a.kind == ScenarioAssertion::Kind::kNoInvariantViolations;
      report->checks.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < spec.assertions.size(); ++i) {
      const ScenarioAssertion& a = spec.assertions[i];
      ScenarioCheck* out = &report->checks[i];
      switch (a.kind) {
        case ScenarioAssertion::Kind::kWhereIsAt:
          if (single) {
            sim->shard_simulator(0).schedule_at(
                a.at, [&grade, aa = &a, out] { grade(*aa, out); });
          } else {
            pending.push_back(WhereIsProbe{&a, out});
          }
          break;
        case ScenarioAssertion::Kind::kMaxStalenessWindow: {
          auto probe = std::make_unique<ShardedWindowProbe>();
          probe->spec = &spec;
          probe->sim = raw;
          probe->a = &a;
          probe->out = out;
          probe->since.assign(spec.users.size(), SimTime::max());
          probe->next_tick = a.at;
          if (single) {
            // Exact tick grid as in-simulation events, like the monolithic
            // runner: every sample_period from a.at, plus a.until itself.
            ShardedWindowProbe* p = probe.get();
            for (SimTime t = a.at; t < a.until;
                 t = t + spec.sample_period) {
              sim->shard_simulator(0).schedule_at(t,
                                                  [p, t] { p->advance_to(t); });
            }
            sim->shard_simulator(0).schedule_at(
                a.until, [p, t = a.until] { p->advance_to(t); });
          }
          probes.push_back(std::move(probe));
          break;
        }
        case ScenarioAssertion::Kind::kNoInvariantViolations:
          if (!inv) {
            fault::InvariantChecker::Config icfg;
            icfg.sample_period = spec.sample_period;
            icfg.dead_station_grace =
                std::max(Duration::seconds(30),
                         spec.config.server.station_timeout +
                             spec.config.server.sweep_period +
                             Duration::seconds(20));
            // The same grading as the monolithic runner, over a view of
            // the sharded world. Barrier-time reads only.
            fault::InvariantChecker::WorldView view;
            view.now = [raw, single] {
              return single ? raw->shard_simulator(0).now()
                            : raw->group().now();
            };
            view.workstation_count = [raw] {
              return raw->workstation_count();
            };
            view.workstation = [raw](StationId s) -> BipsWorkstation& {
              return raw->workstation(s);
            };
            view.server_crashed = [raw] { return raw->server().crashed(); };
            view.userids = [raw] { return raw->userids(); };
            view.logged_in = [raw](std::string_view uid) {
              return raw->active_client(uid).logged_in();
            };
            view.db_room = [raw](std::string_view uid) {
              return raw->db_room(uid);
            };
            view.true_room = [raw](std::string_view uid) {
              return raw->true_room(uid);
            };
            inv = std::make_unique<fault::InvariantChecker>(std::move(view),
                                                            icfg);
            if (single) {
              inv_timer = std::make_unique<sim::PeriodicTimer>(
                  sim->shard_simulator(0), spec.sample_period,
                  [p = inv.get()] { p->sample(); });
              inv_timer->start();
            } else {
              inv_next = SimTime::zero() + spec.sample_period;
            }
          }
          inv_checks.push_back(out);
          break;
        case ScenarioAssertion::Kind::kMinCounter:
          min_checks.emplace_back(&a, out);  // graded after the run
          break;
      }
    }
    const bool need_hook =
        !single && (!pending.empty() || !probes.empty() || inv != nullptr);
    if (need_hook) {
      sim->set_barrier_hook([&grade, &pending, &probes, &inv, &inv_next,
                             &spec](SimTime edge) {
        for (WhereIsProbe& p : pending) {
          if (p.out != nullptr && p.a->at <= edge) {
            grade(*p.a, p.out);
            p.out = nullptr;  // graded; never re-evaluated
          }
        }
        for (auto& p : probes) {
          if (p->a->at <= edge) p->advance_to(edge);
        }
        if (inv) {
          while (inv_next <= edge) {
            inv->sample();
            inv_next = inv_next + spec.sample_period;
          }
        }
      });
    }
  }

  sim->run_for(spec.run_time, threads);
  sim->set_barrier_hook({});  // the probes above die with this frame

  if (inv) {
    if (inv_timer) inv_timer->stop();
    // The convergence contract only binds once the plan has healed and the
    // recovery bound has elapsed (the same bound the monolithic runner and
    // the chaos tests use).
    if (spec.fault_plan.heal_time() + Duration::seconds(40) <=
        spec.run_time) {
      inv->check_converged();
    }
    std::string detail;
    for (const std::string& v : inv->violations()) {
      if (!detail.empty()) detail += "; ";
      detail += v;
    }
    for (ScenarioCheck* out : inv_checks) {
      out->passed = inv->ok();
      out->detail = detail;
    }
  }
  // Counter floors grade against the cross-shard sum: the cell lives in
  // every shard's registry and the increments land wherever the owning
  // agent ran, identically at every thread count.
  for (auto& [aa, out] : min_checks) {
    const std::uint64_t got = raw->metric_sum(aa->counter);
    out->passed = got >= aa->min_count;
    out->detail = out->passed
                      ? ""
                      : aa->counter + " = " + std::to_string(got) +
                            ", need >= " + std::to_string(aa->min_count);
  }
  return sim;
}

}  // namespace bips::core
