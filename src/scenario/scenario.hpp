// Text scenario descriptions: a self-checking integration-test harness.
//
// A deployment -- floor plan, policies, user population, run length -- can
// be written as a small line-based text file and executed without writing
// C++ (examples/scenario_runner is the CLI). A scenario is more than a
// workload: scripted per-device behaviour acts, a fault schedule compiled
// into the same fault::FaultPlan the C++ chaos tests use, and in-scenario
// assertions graded against the server's Query API and the fault layer's
// InvariantChecker make one .bips file a runnable, self-grading test.
//
// Grammar, one directive per line, '#' starts a comment:
//
//   # --- deployment ------------------------------------------------------
//   seed 42                 # RNG seed
//   radius 10               # piconet coverage radius (m)
//   stagger on              # stagger neighbouring inquiry slots
//   interlaced on           # handhelds use BT 1.2 interlaced inquiry scan
//   inquiry 3.84            # master inquiry slot (s)
//   cycle 15.4              # master operational cycle (s)
//   lan-loss 0.0            # LAN datagram loss probability
//   speed 0.5 1.5           # walking speed range (m/s)
//   pause 20 120            # dwell range between walks (s)
//   room lobby 0 0          # room name + workstation position (m)
//   room lab 14 0
//   edge lobby lab          # physical path; distance defaults to Euclidean
//   edge lobby lab 18       # ... or given explicitly (walking metres)
//   user Alice alice pw lobby
//   station-timeout 10      # server failure detector (0 = off)
//   zones 3                 # location-service shards (1 = single database;
//                           # answers are identical at every count -- the
//                           # sharded --threads replay always aligns its
//                           # service shards with the simulator zones)
//   run 300                 # simulated seconds
//   sample 1                # tracking-metric sample period (s)
//
//   # --- scripted behaviour acts (first-class sim events) ----------------
//   act Alice walk-to lab 120       # walk to the lab, departing at t=120
//   act Alice power-cycle 150 20    # handheld off at t=150, on again at 170
//   act Bob unreachable 200 30      # RF shadow: radio-silent for 30 s
//   act Bob login-flood 240 50      # burst of 50 duplicate LoginRequests
//
//   # --- fault schedule (compiles to fault::FaultPlan) -------------------
//   crash lab 120                   # lab's workstation dies...
//   restart lab 180                 # ...and comes back (pairing validated)
//   server-crash 200                # the central server dies...
//   server-restart 230              # ...and resyncs via SyncRequest
//   partition 250 30 lobby lab      # cut these rooms off the LAN for 30 s
//   loss-burst 300 20 0.4           # 40% uniform LAN loss for 20 s
//   link-loss lab 340 25 0.6        # lab<->server link 60% lossy for 25 s
//   chaos 7                         # seeded random fault schedule ...
//   chaos 9 station-faults 3 window 120   # ... with ChaosParams overrides
//
//   # --- assertions (graded after/while the run executes) ----------------
//   assert-at 260 whereis Alice lab       # the Query API must say "lab"
//   assert-at 300 whereis Bob absent      # ... or have no fix at all
//   assert-window 60 280 max-staleness 45 # DB never lags truth by > 45 s
//   assert-final no-invariant-violations  # InvariantChecker stayed green
//   assert-final min-counter svc.relogin 1 # registry counter floor (sharded
//                                          # replays grade the cross-shard sum)
//
// parse_scenario validates everything it can statically -- unknown rooms or
// users, duplicate users, disconnected buildings, restarts without a
// preceding crash, overlapping crash windows, act/assert instants beyond
// the run -- and reports the offending line. Assertion outcomes are
// reported per source line in the ScenarioReport so a failing scenario
// pinpoints the directive that broke.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/parallel.hpp"
#include "src/core/simulation.hpp"
#include "src/fault/plan.hpp"

namespace bips::core {

struct ScenarioUser {
  std::string name;
  std::string userid;
  std::string password;
  mobility::RoomId room = 0;
};

/// One scripted per-device behaviour act (first-class sim events: each act
/// is scheduled on the kernel queue, so a fast-forwarded run wakes for it
/// exactly like the exact-slot run executes it).
struct ScenarioAct {
  enum class Kind {
    kWalkTo,       // leave for `room` at `at`
    kPowerCycle,   // handheld off during [at, at + duration)
    kUnreachable,  // RF shadow during [at, at + duration); no session loss
    kLoginFlood,   // burst of `count` LoginRequests at `at`
  };

  Kind kind = Kind::kWalkTo;
  std::size_t user = 0;  // index into ScenarioSpec::users
  SimTime at;
  Duration duration;               // kPowerCycle / kUnreachable
  mobility::RoomId room = 0;       // kWalkTo
  int count = 0;                   // kLoginFlood
  int line = 0;                    // source line (reporting)
};

/// One in-scenario assertion, graded against the server Query API (whereis)
/// or the fault layer's InvariantChecker.
struct ScenarioAssertion {
  enum class Kind {
    kWhereIsAt,             // at `at`: Query(where-is user) == room / absent
    kMaxStalenessWindow,    // in [at, until]: DB never disagrees with the
                            // ground truth for longer than `staleness`
    kNoInvariantViolations, // end of run: InvariantChecker.ok()
    kMinCounter,            // end of run: registry counter >= min_count
                            // (summed across shards on the sharded path) --
                            // lets a fault scenario pin down *how* it
                            // recovered, e.g. svc.relogin >= 1 proves the
                            // session came back via an epoch-triggered
                            // re-login rather than a lucky resync snapshot
  };

  Kind kind = Kind::kWhereIsAt;
  SimTime at;                              // kWhereIsAt / window start
  SimTime until;                           // window end
  std::size_t user = 0;                    // kWhereIsAt
  mobility::RoomId room = mobility::kNoRoom;  // kWhereIsAt; kNoRoom = absent
  Duration staleness;                      // kMaxStalenessWindow
  std::string counter;                     // kMinCounter: registry cell name
  std::uint64_t min_count = 0;             // kMinCounter: required floor
  int line = 0;                            // source line (reporting)
  std::string text;                        // directive text (reporting)
};

struct ScenarioSpec {
  SimulationConfig config;
  mobility::Building building;
  std::vector<ScenarioUser> users;
  /// Unified fault schedule: hand-written crash/restart/partition/loss
  /// directives and seeded chaos blocks all compile into the same plan the
  /// C++ chaos tests drive, applied at t=0 relative times.
  fault::FaultPlan fault_plan;
  std::vector<ScenarioAct> acts;
  std::vector<ScenarioAssertion> assertions;
  Duration run_time = Duration::seconds(300);
  Duration sample_period = Duration::seconds(1);
};

struct ScenarioError {
  int line = 0;          // 1-based; 0 = file-level problem
  std::string message;
};

/// Outcome of one assertion directive (file order preserved).
struct ScenarioCheck {
  int line = 0;          // source line of the assertion
  std::string what;      // the directive, e.g. "assert-at 120 whereis Alice lab"
  bool passed = false;
  std::string detail;    // failure explanation; empty when passed
  bool invariant = false;  // true for assert-final no-invariant-violations
};

struct ScenarioReport {
  std::vector<ScenarioCheck> checks;

  std::size_t failed() const {
    std::size_t n = 0;
    for (const ScenarioCheck& c : checks) n += c.passed ? 0 : 1;
    return n;
  }
  bool passed() const { return failed() == 0; }
  /// True when some failing check is the invariant-checker assertion (the
  /// runner maps this to its own exit code).
  bool invariants_violated() const;
};

/// Parses a scenario; on failure returns nullopt and fills `err`.
std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           ScenarioError* err);

/// Convenience: parse from a string.
std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           ScenarioError* err);

/// Builds the simulation, registers the users, enables tracking metrics,
/// applies the fault plan, schedules every act and runs for the configured
/// time. The returned simulation can be inspected (tracking(),
/// server().db(), write_history_csv, ...).
std::unique_ptr<BipsSimulation> run_scenario(const ScenarioSpec& spec);

/// Same, but invokes `pre_run` on the fully built (not yet run) simulation
/// first -- the hook for attaching a trace sink or toggling the metrics
/// registry before any event fires.
std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run);

/// Self-checking run: also grades every assertion into `report` (one
/// ScenarioCheck per assertion directive, file order). When `report` is
/// null the assertions are not evaluated -- a workload-only run costs
/// nothing extra.
std::unique_ptr<BipsSimulation> run_scenario(
    const ScenarioSpec& spec,
    const std::function<void(BipsSimulation&)>& pre_run,
    ScenarioReport* report);

/// Replays the scenario on the sharded parallel harness (DESIGN.md
/// section 9) with `threads` workers. The harness guarantees the run --
/// history CSV, presence stream, tracking scorecard, assertion outcomes --
/// is byte-identical for every thread count, so CI replays a scenario at
/// `--threads 1` and `--threads 4` and diffs the histories.
///
/// The full scenario language replays sharded: every act (walk-to,
/// power-cycle, unreachable, login-flood), the whole fault schedule
/// (station/server crash-restarts, location-shard faults, partitions,
/// loss bursts, link loss, seeded chaos -- split into shard-local and
/// shard-0 barrier classes by FaultPlan::apply_sharded) and every
/// assertion kind. `assert-at whereis` and `assert-window max-staleness`
/// grade at the first synchronisation barrier at or after each directive
/// instant (a deterministic, window-bounded quantisation);
/// `assert-final no-invariant-violations` runs the same InvariantChecker
/// grading as the monolithic runner over a barrier-sampled view of the
/// sharded world. Never returns nullptr; `error` is cleared when non-null
/// (kept for callers of the old rejecting interface).
std::unique_ptr<ShardedBipsSimulation> run_scenario_sharded(
    const ScenarioSpec& spec, unsigned threads, std::size_t shards,
    ScenarioReport* report, std::string* error);

}  // namespace bips::core
