#include "src/scenario/synth.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/graph/dijkstra.hpp"
#include "src/mobility/building.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace bips::core {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

struct Line {
  double at;
  std::string text;
};

}  // namespace

std::string synth_scenario(std::uint64_t seed, const SynthParams& p) {
  BIPS_ASSERT(p.min_rooms >= 2 && p.min_rooms <= p.max_rooms);
  BIPS_ASSERT(p.min_users >= 1 && p.min_users <= p.max_users);
  BIPS_ASSERT(p.run_seconds >= 400.0);  // the schedule below needs the room
  Rng rng(seed);
  const double run = p.run_seconds;

  // ---- topology: rooms on a grid, a connecting chain + random shortcuts.
  const int n_rooms =
      static_cast<int>(rng.uniform_int(p.min_rooms, p.max_rooms));
  const int cols =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n_rooms))));
  const double spacing = 12.0;
  mobility::Building building;
  std::string out;
  out += "# generated scenario: seed " + std::to_string(seed) + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "radius 10\nstagger on\ninterlaced on\n";
  out += "inquiry 2.56\ncycle 5.12\n";
  out += "station-timeout 10\n";
  out += "speed 1 1.5\n";
  // Dwell longer than the run: every walk in the scenario is scripted, so
  // the derived assert-at instants are exact worst-case bounds.
  out += "pause " + num(run) + " " + num(2 * run) + "\n";
  out += "sample 1\n";
  out += "run " + num(run) + "\n\n";
  for (int k = 0; k < n_rooms; ++k) {
    const double x = spacing * (k % cols);
    const double y = spacing * (k / cols);
    const std::string name = "r" + std::to_string(k);
    building.add_room(name, Vec2{x, y});
    out += "room " + name + " " + num(x) + " " + num(y) + "\n";
  }
  for (int k = 1; k < n_rooms; ++k) {
    building.connect(static_cast<mobility::RoomId>(k - 1),
                     static_cast<mobility::RoomId>(k));
    out += "edge r" + std::to_string(k - 1) + " r" + std::to_string(k) + "\n";
  }
  for (int a = 0; a + 2 < n_rooms; ++a) {
    for (int b = a + 2; b < n_rooms; ++b) {
      if (rng.chance(0.15)) {
        building.connect(static_cast<mobility::RoomId>(a),
                         static_cast<mobility::RoomId>(b));
        out += "edge r" + std::to_string(a) + " r" + std::to_string(b) + "\n";
      }
    }
  }
  out += "\n";

  // ---- population: the first half are witnesses (scripted walk + derived
  // whereis assertion), the rest misbehave (power cycles, RF shadows,
  // login floods).
  const int n_users =
      static_cast<int>(rng.uniform_int(p.min_users, p.max_users));
  const int n_witness = (n_users + 1) / 2;
  std::vector<int> start(n_users);
  for (int i = 0; i < n_users; ++i) {
    start[i] = static_cast<int>(rng.uniform(n_rooms));
    out += "user U" + std::to_string(i) + " u" + std::to_string(i) + " pw" +
           std::to_string(i) + " r" + std::to_string(start[i]) + "\n";
  }
  out += "\n";

  const graph::Graph g = building.to_graph();
  std::vector<Line> schedule;
  // Rooms a witness depends on after its walk: scripted faults avoid
  // crashing these stations so the derived assertions stay sound.
  std::vector<bool> witness_room(n_rooms, false);
  // The fault schedule (below) heals by this instant; witness assertions
  // and the staleness bound leave recovery room past it. A chaos block may
  // crash the *server* mid-walk, and a witness between piconets has no
  // attesting station then: its session comes back via the epoch relay
  // (EpochNotice -> client re-login), not via a resync snapshot. Budget
  // that path explicitly: heartbeat/ack epoch propagation (<= 2 s), one
  // poll round to an attached-or-parked slave (<= 5.12 s), and up to two
  // beats of the client's 2 s login retry -- 15 s covers it with slack.
  const double relogin_margin = 15.0;
  const double fault_heal =
      p.chaos_block ? 60.0 + 120.0 + 15.0 + relogin_margin : 260.0;

  double max_outage = 0.0;
  for (int i = 0; i < n_witness; ++i) {
    int target = static_cast<int>(rng.uniform(n_rooms));
    if (target == start[i]) target = (target + 1) % n_rooms;
    witness_room[target] = true;
    const double depart = 60.0 + 15.0 * i + rng.uniform_double(0.0, 60.0);
    const auto tree =
        graph::dijkstra(g, static_cast<graph::NodeId>(start[i]));
    BIPS_ASSERT(tree.reachable(static_cast<graph::NodeId>(target)));
    const double dist = tree.distance[static_cast<std::size_t>(target)];
    // Worst-case arrival: slowest speed (1 m/s) over the full shortest
    // path, plus one extra leg for the walk out of the start room's center.
    const double arrive = depart + (dist + spacing) / 1.0;
    const double check =
        std::max(arrive, fault_heal + 40.0) + 90.0;  // discovery margin
    BIPS_ASSERT(check <= run - 60.0);
    schedule.push_back({depart, "act U" + std::to_string(i) + " walk-to r" +
                                    std::to_string(target) + " " +
                                    num(depart)});
    schedule.push_back({check, "assert-at " + num(check) + " whereis U" +
                                   std::to_string(i) + " r" +
                                   std::to_string(target)});
  }

  for (int i = n_witness; i < n_users; ++i) {
    const double at = 100.0 + rng.uniform_double(0.0, run / 2.0 - 100.0);
    const std::string user = "U" + std::to_string(i);
    switch (rng.uniform(3)) {
      case 0: {
        const double dur = rng.uniform_double(10.0, 30.0);
        max_outage = std::max(max_outage, dur);
        schedule.push_back(
            {at, "act " + user + " power-cycle " + num(at) + " " + num(dur)});
        break;
      }
      case 1: {
        const double dur = rng.uniform_double(10.0, 30.0);
        max_outage = std::max(max_outage, dur);
        schedule.push_back(
            {at, "act " + user + " unreachable " + num(at) + " " + num(dur)});
        break;
      }
      default: {
        const int burst = static_cast<int>(rng.uniform_int(20, 100));
        schedule.push_back({at, "act " + user + " login-flood " + num(at) +
                                    " " + std::to_string(burst)});
        break;
      }
    }
  }

  // ---- faults: either one seeded chaos block or scripted crash/restart
  // pairs on stations no witness assertion depends on.
  if (p.chaos_block) {
    // Server faults ride the seeded chaos schedule at the fault layer's
    // default rate: since the epoch relay closed the amnesia hole, a
    // witness mid-walk across the server outage re-logs-in on its own
    // (relogin_margin above budgets that path), so the derived whereis
    // assertions hold with the server fault class enabled.
    schedule.push_back(
        {60.0, "chaos " + std::to_string(seed ^ 0xC0FFEEull) +
                   " start 60 window 120 min-outage 5 max-outage 15"});
    max_outage = std::max(max_outage, 15.0);
  } else {
    std::vector<int> candidates;
    for (int r = 0; r < n_rooms; ++r) {
      if (!witness_room[r]) candidates.push_back(r);
    }
    const int n_faults = std::min<int>(
        p.station_faults, static_cast<int>(candidates.size()));
    double t = 80.0;
    for (int i = 0; i < n_faults; ++i) {
      const std::size_t pick = rng.uniform(candidates.size());
      const int room = candidates[pick];
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
      const double crash = t + rng.uniform_double(0.0, 40.0);
      const double dur = rng.uniform_double(15.0, 40.0);
      max_outage = std::max(max_outage, dur);
      schedule.push_back(
          {crash, "crash r" + std::to_string(room) + " " + num(crash)});
      schedule.push_back({crash + dur, "restart r" + std::to_string(room) +
                                           " " + num(crash + dur)});
      t = crash + dur + 10.0;
      BIPS_ASSERT(t < fault_heal);
    }
  }

  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Line& a, const Line& b) { return a.at < b.at; });
  for (const Line& l : schedule) out += l.text + "\n";
  out += "\n";

  // ---- blanket assertions. The staleness bound must exceed the longest
  // single outage (crash window, RF shadow, power-off) plus the failure
  // detector (station-timeout 10 + sweep) on one side and rediscovery
  // (inquiry cycle + login retry) on the other.
  if (p.staleness_window) {
    const double bound = std::max(120.0, max_outage + 90.0);
    out += "assert-window 60 " + num(run - 30.0) + " max-staleness " +
           num(bound) + "\n";
  }
  // A chaos block always schedules exactly one server outage
  // (ChaosParams::server_faults), and some client is logged in before the
  // crash window opens at t=60 -- so the run must recover at least one
  // session through the epoch-relay re-login path, not a lucky snapshot.
  if (p.chaos_block) {
    out += "assert-final min-counter svc.relogin 1\n";
  }
  out += "assert-final no-invariant-violations\n";
  return out;
}

}  // namespace bips::core
