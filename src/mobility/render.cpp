#include "src/mobility/render.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace bips::mobility {

std::string render_map(const Building& building,
                       const std::vector<Marker>& markers,
                       const RenderOptions& opts) {
  BIPS_ASSERT(opts.meters_per_cell > 0);
  if (building.room_count() == 0 && markers.empty()) return "(empty map)\n";

  // Bounding box over rooms (plus coverage) and markers.
  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  auto grow = [&](Vec2 p, double pad) {
    min_x = std::min(min_x, p.x - pad);
    min_y = std::min(min_y, p.y - pad);
    max_x = std::max(max_x, p.x + pad);
    max_y = std::max(max_y, p.y + pad);
  };
  const double pad = opts.show_coverage ? opts.coverage_radius_m : 2.0;
  for (const Room& r : building.rooms()) grow(r.center, pad);
  for (const auto& [c, p] : markers) grow(p, 2.0);

  const double cell_w = opts.meters_per_cell;
  const double cell_h = opts.meters_per_cell * 2.0;  // glyphs are tall
  const int cols = std::max(1, static_cast<int>((max_x - min_x) / cell_w) + 1);
  const int rows = std::max(1, static_cast<int>((max_y - min_y) / cell_h) + 1);
  // Refuse absurd canvases rather than allocating gigabytes.
  BIPS_ASSERT_MSG(cols <= 500 && rows <= 500, "map too large to render");

  std::vector<std::string> grid(rows, std::string(cols, ' '));
  auto cell = [&](Vec2 p) {
    const int cx = std::clamp(
        static_cast<int>((p.x - min_x) / cell_w), 0, cols - 1);
    const int cy = std::clamp(
        static_cast<int>((p.y - min_y) / cell_h), 0, rows - 1);
    return std::pair{cy, cx};
  };

  if (opts.show_coverage) {
    for (int y = 0; y < rows; ++y) {
      for (int x = 0; x < cols; ++x) {
        const Vec2 p{min_x + (x + 0.5) * cell_w, min_y + (y + 0.5) * cell_h};
        if (building.nearest_room_within(p, opts.coverage_radius_m) !=
            kNoRoom) {
          grid[y][x] = '.';
        }
      }
    }
  }

  for (const Room& r : building.rooms()) {
    const auto [y, x] = cell(r.center);
    grid[y][x] = '#';
    if (opts.label_rooms) {
      // Write the name to the right of the workstation, clipped.
      for (std::size_t i = 0; i < r.name.size(); ++i) {
        const int tx = x + 1 + static_cast<int>(i);
        if (tx >= cols) break;
        grid[y][tx] = r.name[i];
      }
    }
  }

  // Markers last: people beat labels.
  for (const auto& [c, p] : markers) {
    const auto [y, x] = cell(p);
    grid[y][x] = c;
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
  // y grows upward in world space; render top row first.
  for (int y = rows - 1; y >= 0; --y) {
    // Trim trailing spaces per row.
    std::string row = grid[y];
    while (!row.empty() && row.back() == ' ') row.pop_back();
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace bips::mobility
