// Pedestrian mobility models.
//
// RandomWaypointAgent reproduces the paper's user population: people who
// stand around or walk between rooms at [0, 1.5] m/s (section 5: "a mobile
// user normally walks with a speed in the range [0, 1.5] meters per
// second"). Routes follow the building's corridor graph (shortest path
// between room centres), not straight lines through walls.
//
// CorridorCrosser walks straight through a single piconet at constant
// speed -- the section 5 crossing scenario used to size the master's
// operational cycle (20 m diameter / 1.3 m/s mean = 15.4 s).
#pragma once

#include <functional>
#include <vector>

#include "src/graph/all_pairs.hpp"
#include "src/mobility/building.hpp"
#include "src/mobility/walker.hpp"
#include "src/util/rng.hpp"

namespace bips::mobility {

/// Marshals a walking agent across a shard seam: everything the replica on
/// the far side needs to continue the trip deterministically. The Rng
/// travels with the agent, so the random-waypoint stream is one sequence no
/// matter how many times ownership changes hands.
struct TransitState {
  Vec2 position;            // exact seam-crossing point
  std::vector<Vec2> route;  // waypoints still ahead (empty: dwell on arrival)
  double speed_mps = 0.0;
  RoomId destination = kNoRoom;
  Rng rng;
};

class RandomWaypointAgent {
 public:
  struct Config {
    double speed_min_mps = 0.5;
    double speed_max_mps = 1.5;
    /// Dwell at the destination before picking the next one.
    Duration pause_min = Duration::seconds(5);
    Duration pause_max = Duration::seconds(60);
  };

  /// `paths` must be the all-pairs structure of `building.to_graph()` and
  /// both must outlive the agent.
  RandomWaypointAgent(sim::Simulator& sim, const Building& building,
                      const graph::AllPairsPaths& paths, Rng rng,
                      RoomId start, Config cfg);
  RandomWaypointAgent(const RandomWaypointAgent&) = delete;
  RandomWaypointAgent& operator=(const RandomWaypointAgent&) = delete;

  void start();
  void stop();

  /// Scripted interrupt (scenario `act ... walk-to`): abandons the current
  /// dwell or trip and walks to `target` along the corridor graph, anchored
  /// at the nearest room node. On arrival the normal dwell/wander cadence
  /// resumes (a stopped agent simply stays at `target`). The speed draw
  /// comes from the agent's own stream, so the act perturbs the run
  /// deterministically.
  void walk_to(RoomId target);

  using ExitCallback = std::function<void(TransitState)>;

  /// Confines the agent to the x-band [x_lo, x_hi] (a shard's zone). The
  /// instant a walk crosses the band edge, the agent suspends itself at the
  /// exact crossing point (snapped onto the seam so floating point cannot
  /// strand it on the wrong side) and hands its TransitState to `on_exit` --
  /// the sharded wiring mails it to the neighbouring shard's replica. Exit
  /// instants are computed analytically per trip, so confinement adds no
  /// polling events. Call while the agent is at rest.
  void set_domain(double x_lo, double x_hi, ExitCallback on_exit);

  /// Resumes this (dormant) replica from a TransitState handed off by a
  /// neighbour shard: adopts the position, Rng, and remaining route, then
  /// continues the trip -- or the dwell cadence if the route is empty.
  void resume_transit(TransitState st);

  Vec2 position() const { return walker_.position(); }
  /// Ground truth: the room whose coverage circle contains the agent.
  RoomId covering_room(double radius_m) const {
    return building_.nearest_room_within(position(), radius_m);
  }
  RoomId destination() const { return destination_; }
  bool walking() const { return walker_.moving(); }
  double odometer() const { return walker_.odometer(); }

 private:
  void pick_next_trip();
  void depart(RoomId target);
  void begin_walk(std::vector<Vec2> waypoints, double speed);
  void exit_domain(Vec2 at);

  sim::Simulator& sim_;
  const Building& building_;
  const graph::AllPairsPaths& paths_;
  Rng rng_;
  Config cfg_;
  Walker walker_;
  RoomId destination_;
  bool running_ = false;
  sim::EventHandle pause_event_;
  double dom_lo_ = 0.0, dom_hi_ = 0.0;  // active only with on_exit_
  ExitCallback on_exit_;
  sim::EventHandle domain_event_;
};

/// Agenda-driven pedestrian: keeps appointments ("seminar room at 10:00 for
/// an hour"), walking the corridor graph to each one when it is due and
/// dwelling in place otherwise. This is the convergence workload the
/// paper's introduction motivates (students and staff gathering for
/// meetings) and the natural stress test for park mode: everyone ends up
/// in one piconet at once.
class AgendaAgent {
 public:
  struct Appointment {
    SimTime at;
    RoomId room = kNoRoom;
  };

  /// `appointments` must be sorted by time; all in the future at start().
  AgendaAgent(sim::Simulator& sim, const Building& building,
              const graph::AllPairsPaths& paths, Rng rng, RoomId start,
              std::vector<Appointment> appointments,
              double speed_mps = 1.3);
  AgendaAgent(const AgendaAgent&) = delete;
  AgendaAgent& operator=(const AgendaAgent&) = delete;

  void start();
  void stop();

  Vec2 position() const { return walker_.position(); }
  RoomId covering_room(double radius_m) const {
    return building_.nearest_room_within(position(), radius_m);
  }
  /// The room of the last appointment begun (or the start room).
  RoomId current_destination() const { return destination_; }
  std::size_t appointments_kept() const { return next_; }

 private:
  void depart_for(RoomId room);

  sim::Simulator& sim_;
  const Building& building_;
  const graph::AllPairsPaths& paths_;
  Rng rng_;
  Walker walker_;
  std::vector<Appointment> agenda_;
  std::size_t next_ = 0;
  RoomId destination_;
  double speed_;
  bool running_ = false;
  std::vector<sim::EventHandle> timers_;
};

/// Walks a straight line through a piconet centred at `center`: enters at
/// one edge of the coverage circle, exits at the opposite edge.
class CorridorCrosser {
 public:
  CorridorCrosser(sim::Simulator& sim, Vec2 center, double radius_m,
                  double speed_mps, std::function<void()> on_exit = nullptr);

  void start();
  Vec2 position() const { return walker_.position(); }
  double speed_mps() const { return speed_; }
  /// Time to cross the full diameter at this speed.
  Duration crossing_time() const {
    return Duration::from_seconds(2.0 * radius_ / speed_);
  }

 private:
  Vec2 center_;
  double radius_;
  double speed_;
  Walker walker_;
  std::function<void()> on_exit_;
};

}  // namespace bips::mobility
