// Top-down ASCII rendering of a building and the people in it.
//
// Purely cosmetic (examples and debugging), but it makes a simulation
// legible at a glance:
//
//     . . . . . . .
//   . . # office-a. .
//     . .   a   . .
//       . # lobby .
//
// '#' marks a workstation, lowercase letters are markers (users), dots are
// coverage (cells within the piconet radius of some workstation).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/mobility/building.hpp"

namespace bips::mobility {

struct RenderOptions {
  /// Metres per character cell (x). Vertical cells cover twice as much to
  /// roughly correct for terminal glyph aspect ratio.
  double meters_per_cell = 2.0;
  /// Draw '.' on cells covered by at least one piconet.
  bool show_coverage = true;
  double coverage_radius_m = 10.0;
  /// Print room names next to their workstations.
  bool label_rooms = true;
};

/// A labelled position (e.g. {'a', alice_position}).
using Marker = std::pair<char, Vec2>;

/// Renders the building with the given markers overlaid.
std::string render_map(const Building& building,
                       const std::vector<Marker>& markers,
                       const RenderOptions& opts = RenderOptions{});

}  // namespace bips::mobility
