#include "src/mobility/building.hpp"

#include <limits>

#include "src/util/assert.hpp"

namespace bips::mobility {

RoomId Building::add_room(std::string name, Vec2 center) {
  BIPS_ASSERT_MSG(!name.empty(), "room name must be non-empty");
  BIPS_ASSERT_MSG(!find(name).has_value(), "duplicate room name");
  const auto id = static_cast<RoomId>(rooms_.size());
  rooms_.push_back(Room{id, std::move(name), center});
  return id;
}

void Building::connect(RoomId a, RoomId b) {
  BIPS_ASSERT(a < rooms_.size() && b < rooms_.size());
  connect(a, b, distance(rooms_[a].center, rooms_[b].center));
}

void Building::connect(RoomId a, RoomId b, double walking_distance) {
  BIPS_ASSERT(a < rooms_.size() && b < rooms_.size());
  BIPS_ASSERT(a != b);
  BIPS_ASSERT(walking_distance > 0);
  corridors_.push_back(Corridor{a, b, walking_distance});
}

const Room& Building::room(RoomId id) const {
  BIPS_ASSERT(id < rooms_.size());
  return rooms_[id];
}

std::optional<RoomId> Building::find(std::string_view name) const {
  for (const Room& r : rooms_) {
    if (r.name == name) return r.id;
  }
  return std::nullopt;
}

graph::Graph Building::to_graph() const {
  graph::Graph g;
  for (const Room& r : rooms_) g.add_node(r.name);
  for (const Corridor& c : corridors_) g.add_edge(c.a, c.b, c.distance);
  return g;
}

RoomId Building::nearest_room(Vec2 p) const {
  RoomId best = kNoRoom;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Room& r : rooms_) {
    const double d = distance_sq(p, r.center);
    if (d < best_d) {
      best_d = d;
      best = r.id;
    }
  }
  return best;
}

RoomId Building::nearest_room_within(Vec2 p, double radius) const {
  const RoomId r = nearest_room(p);
  if (r == kNoRoom) return kNoRoom;
  return distance_sq(p, rooms_[r].center) <= radius * radius ? r : kNoRoom;
}

Building Building::corridor(int n, double spacing) {
  BIPS_ASSERT(n >= 1);
  Building b;
  for (int i = 0; i < n; ++i) {
    b.add_room("room-" + std::to_string(i),
               Vec2{spacing * static_cast<double>(i), 0.0});
  }
  for (int i = 0; i + 1 < n; ++i) {
    b.connect(static_cast<RoomId>(i), static_cast<RoomId>(i + 1));
  }
  return b;
}

Building Building::grid(int rows, int cols, double spacing) {
  BIPS_ASSERT(rows >= 1 && cols >= 1);
  Building b;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      b.add_room("room-" + std::to_string(r) + "-" + std::to_string(c),
                 Vec2{spacing * c, spacing * r});
    }
  }
  auto id = [cols](int r, int c) {
    return static_cast<RoomId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.connect(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.connect(id(r, c), id(r + 1, c));
    }
  }
  return b;
}

Building Building::department() {
  // One floor of an academic department. Rooms sit on a double-loaded
  // corridor; distances are door-to-door walking metres (integer weights,
  // like the paper's graph).
  Building b;
  const RoomId lobby = b.add_room("lobby", {0, 0});
  const RoomId office_a = b.add_room("office-a", {12, 6});
  const RoomId office_b = b.add_room("office-b", {24, 6});
  const RoomId office_c = b.add_room("office-c", {36, 6});
  const RoomId lab_net = b.add_room("lab-networks", {12, -6});
  const RoomId lab_sys = b.add_room("lab-systems", {24, -6});
  const RoomId library = b.add_room("library", {36, -6});
  const RoomId seminar = b.add_room("seminar-room", {48, 0});
  const RoomId coffee = b.add_room("coffee-corner", {48, 12});
  const RoomId admin = b.add_room("admin-office", {0, 12});

  b.connect(lobby, office_a, 14);
  b.connect(lobby, lab_net, 14);
  b.connect(lobby, admin, 12);
  b.connect(office_a, office_b, 12);
  b.connect(office_b, office_c, 12);
  b.connect(lab_net, lab_sys, 12);
  b.connect(lab_sys, library, 12);
  b.connect(office_c, seminar, 14);
  b.connect(library, seminar, 14);
  b.connect(seminar, coffee, 12);
  b.connect(office_b, lab_sys, 12);  // internal staircase shortcut
  return b;
}

}  // namespace bips::mobility
