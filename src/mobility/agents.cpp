#include "src/mobility/agents.hpp"

#include <optional>
#include <utility>

#include "src/util/assert.hpp"

namespace bips::mobility {

namespace {
/// First strict exit of the piecewise trajectory (start -> route...) from
/// the band [lo, hi]: time from departure and the crossing point, with its
/// x snapped exactly onto the seam so the resumed replica starts on its own
/// (closed) side of the boundary.
struct ExitHit {
  Duration after;
  Vec2 at;
};
std::optional<ExitHit> first_exit(Vec2 a, const std::vector<Vec2>& route,
                                  double speed, double lo, double hi) {
  double dist = 0.0;
  for (const Vec2& b : route) {
    const double len = distance(a, b);
    if (len > 0.0) {
      double s_hit = 2.0;  // > 1: no crossing inside this segment
      double x_hit = 0.0;
      if (b.x > hi && a.x <= hi) {
        s_hit = (hi - a.x) / (b.x - a.x);
        x_hit = hi;
      }
      if (b.x < lo && a.x >= lo) {
        const double s = (lo - a.x) / (b.x - a.x);
        if (s < s_hit) {
          s_hit = s;
          x_hit = lo;
        }
      }
      if (s_hit <= 1.0) {
        const Vec2 at{x_hit, a.y + (b.y - a.y) * s_hit};
        return ExitHit{Duration::from_seconds((dist + s_hit * len) / speed),
                       at};
      }
      dist += len;
    }
    a = b;
  }
  return std::nullopt;
}
}  // namespace

RandomWaypointAgent::RandomWaypointAgent(sim::Simulator& sim,
                                         const Building& building,
                                         const graph::AllPairsPaths& paths,
                                         Rng rng, RoomId start, Config cfg)
    : sim_(sim),
      building_(building),
      paths_(paths),
      rng_(std::move(rng)),
      cfg_(cfg),
      walker_(sim, building.room(start).center),
      destination_(start) {
  BIPS_ASSERT(building.room_count() >= 1);
  BIPS_ASSERT(paths.node_count() == building.room_count());
  BIPS_ASSERT(cfg_.speed_min_mps > 0);
  BIPS_ASSERT(cfg_.speed_max_mps >= cfg_.speed_min_mps);
  BIPS_ASSERT(cfg_.pause_max >= cfg_.pause_min);
}

void RandomWaypointAgent::start() {
  if (running_) return;
  running_ = true;
  pick_next_trip();
}

void RandomWaypointAgent::stop() {
  running_ = false;
  pause_event_.cancel();
  domain_event_.cancel();
  walker_.stop();
}

void RandomWaypointAgent::set_domain(double x_lo, double x_hi,
                                     ExitCallback on_exit) {
  BIPS_ASSERT(x_lo < x_hi);
  BIPS_ASSERT_MSG(!walker_.moving(),
                  "install the domain before the agent walks");
  dom_lo_ = x_lo;
  dom_hi_ = x_hi;
  on_exit_ = std::move(on_exit);
}

void RandomWaypointAgent::resume_transit(TransitState st) {
  BIPS_ASSERT_MSG(!running_, "resume_transit on an active agent");
  rng_ = st.rng;
  destination_ = st.destination;
  walker_.set_position(st.position);
  running_ = true;
  if (st.route.empty()) {
    pick_next_trip();
    return;
  }
  begin_walk(std::move(st.route), st.speed_mps);
}

void RandomWaypointAgent::begin_walk(std::vector<Vec2> waypoints,
                                     double speed) {
  domain_event_.cancel();
  std::optional<ExitHit> hit;
  if (on_exit_) {
    hit = first_exit(walker_.position(), waypoints, speed, dom_lo_, dom_hi_);
  }
  walker_.walk(std::move(waypoints), speed, [this] { pick_next_trip(); });
  if (hit) {
    domain_event_ = sim_.schedule(
        hit->after, [this, at = hit->at] { exit_domain(at); });
  }
}

void RandomWaypointAgent::exit_domain(Vec2 at) {
  TransitState st;
  st.route = walker_.remaining_route();
  st.speed_mps = walker_.speed_mps();
  st.destination = destination_;
  st.rng = rng_;  // this replica goes dormant; the stream moves on
  walker_.stop();
  walker_.set_position(at);
  st.position = at;
  pause_event_.cancel();
  running_ = false;
  // on_exit_ stays installed: this replica may be resumed (and exit) again.
  on_exit_(std::move(st));
}

void RandomWaypointAgent::pick_next_trip() {
  if (!running_) return;
  const Duration pause =
      cfg_.pause_min +
      Duration::nanos(static_cast<std::int64_t>(rng_.uniform(
          static_cast<std::uint64_t>((cfg_.pause_max - cfg_.pause_min).ns()) +
          1)));
  pause_event_ = sim_.schedule(pause, [this] {
    if (building_.room_count() == 1) {
      pick_next_trip();  // nowhere to go; keep dwelling
      return;
    }
    RoomId target = destination_;
    while (target == destination_) {
      target = static_cast<RoomId>(rng_.uniform(building_.room_count()));
    }
    depart(target);
  });
}

void RandomWaypointAgent::walk_to(RoomId target) {
  BIPS_ASSERT(target < building_.room_count());
  pause_event_.cancel();
  // Route from wherever the agent is; the nearest room node anchors the
  // path (the agent may be interrupted mid-corridor).
  const RoomId from = building_.nearest_room(walker_.position());
  const double speed =
      rng_.uniform_double(cfg_.speed_min_mps, cfg_.speed_max_mps);
  destination_ = target;
  if (from == target) {
    begin_walk({building_.room(target).center}, speed);
    return;
  }
  const auto node_path = paths_.path(from, target);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  begin_walk(std::move(waypoints), speed);
}

void RandomWaypointAgent::depart(RoomId target) {
  const auto node_path = paths_.path(destination_, target);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  const double speed =
      rng_.uniform_double(cfg_.speed_min_mps, cfg_.speed_max_mps);
  destination_ = target;
  begin_walk(std::move(waypoints), speed);
}

AgendaAgent::AgendaAgent(sim::Simulator& sim, const Building& building,
                         const graph::AllPairsPaths& paths, Rng rng,
                         RoomId start, std::vector<Appointment> appointments,
                         double speed_mps)
    : sim_(sim),
      building_(building),
      paths_(paths),
      rng_(std::move(rng)),
      walker_(sim, building.room(start).center),
      agenda_(std::move(appointments)),
      destination_(start),
      speed_(speed_mps) {
  BIPS_ASSERT(speed_mps > 0);
  for (std::size_t i = 1; i < agenda_.size(); ++i) {
    BIPS_ASSERT_MSG(agenda_[i - 1].at <= agenda_[i].at,
                    "agenda must be sorted by time");
  }
  for (const auto& a : agenda_) {
    BIPS_ASSERT(a.room < building.room_count());
  }
}

void AgendaAgent::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = next_; i < agenda_.size(); ++i) {
    const Appointment& a = agenda_[i];
    BIPS_ASSERT_MSG(a.at >= sim_.now(), "appointment already in the past");
    timers_.push_back(sim_.schedule_at(a.at, [this, room = a.room] {
      ++next_;
      depart_for(room);
    }));
  }
}

void AgendaAgent::stop() {
  running_ = false;
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  walker_.stop();
}

void AgendaAgent::depart_for(RoomId room) {
  if (!running_) return;
  // Route from wherever the agent is: nearest room node anchors the path.
  const RoomId from = building_.nearest_room(walker_.position());
  destination_ = room;
  if (from == room) {
    walker_.walk({building_.room(room).center}, speed_);
    return;
  }
  const auto node_path = paths_.path(from, room);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  walker_.walk(std::move(waypoints), speed_);
}

CorridorCrosser::CorridorCrosser(sim::Simulator& sim, Vec2 center,
                                 double radius_m, double speed_mps,
                                 std::function<void()> on_exit)
    : center_(center),
      radius_(radius_m),
      speed_(speed_mps),
      walker_(sim, Vec2{center.x - radius_m, center.y}),
      on_exit_(std::move(on_exit)) {
  BIPS_ASSERT(radius_m > 0 && speed_mps > 0);
}

void CorridorCrosser::start() {
  walker_.walk({Vec2{center_.x + radius_, center_.y}}, speed_, [this] {
    if (on_exit_) on_exit_();
  });
}

}  // namespace bips::mobility
