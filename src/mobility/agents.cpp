#include "src/mobility/agents.hpp"

#include "src/util/assert.hpp"

namespace bips::mobility {

RandomWaypointAgent::RandomWaypointAgent(sim::Simulator& sim,
                                         const Building& building,
                                         const graph::AllPairsPaths& paths,
                                         Rng rng, RoomId start, Config cfg)
    : sim_(sim),
      building_(building),
      paths_(paths),
      rng_(std::move(rng)),
      cfg_(cfg),
      walker_(sim, building.room(start).center),
      destination_(start) {
  BIPS_ASSERT(building.room_count() >= 1);
  BIPS_ASSERT(paths.node_count() == building.room_count());
  BIPS_ASSERT(cfg_.speed_min_mps > 0);
  BIPS_ASSERT(cfg_.speed_max_mps >= cfg_.speed_min_mps);
  BIPS_ASSERT(cfg_.pause_max >= cfg_.pause_min);
}

void RandomWaypointAgent::start() {
  if (running_) return;
  running_ = true;
  pick_next_trip();
}

void RandomWaypointAgent::stop() {
  running_ = false;
  pause_event_.cancel();
  walker_.stop();
}

void RandomWaypointAgent::pick_next_trip() {
  if (!running_) return;
  const Duration pause =
      cfg_.pause_min +
      Duration::nanos(static_cast<std::int64_t>(rng_.uniform(
          static_cast<std::uint64_t>((cfg_.pause_max - cfg_.pause_min).ns()) +
          1)));
  pause_event_ = sim_.schedule(pause, [this] {
    if (building_.room_count() == 1) {
      pick_next_trip();  // nowhere to go; keep dwelling
      return;
    }
    RoomId target = destination_;
    while (target == destination_) {
      target = static_cast<RoomId>(rng_.uniform(building_.room_count()));
    }
    depart(target);
  });
}

void RandomWaypointAgent::walk_to(RoomId target) {
  BIPS_ASSERT(target < building_.room_count());
  pause_event_.cancel();
  // Route from wherever the agent is; the nearest room node anchors the
  // path (the agent may be interrupted mid-corridor).
  const RoomId from = building_.nearest_room(walker_.position());
  const double speed =
      rng_.uniform_double(cfg_.speed_min_mps, cfg_.speed_max_mps);
  destination_ = target;
  if (from == target) {
    walker_.walk({building_.room(target).center}, speed,
                 [this] { pick_next_trip(); });
    return;
  }
  const auto node_path = paths_.path(from, target);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  walker_.walk(std::move(waypoints), speed, [this] { pick_next_trip(); });
}

void RandomWaypointAgent::depart(RoomId target) {
  const auto node_path = paths_.path(destination_, target);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  const double speed =
      rng_.uniform_double(cfg_.speed_min_mps, cfg_.speed_max_mps);
  destination_ = target;
  walker_.walk(std::move(waypoints), speed, [this] { pick_next_trip(); });
}

AgendaAgent::AgendaAgent(sim::Simulator& sim, const Building& building,
                         const graph::AllPairsPaths& paths, Rng rng,
                         RoomId start, std::vector<Appointment> appointments,
                         double speed_mps)
    : sim_(sim),
      building_(building),
      paths_(paths),
      rng_(std::move(rng)),
      walker_(sim, building.room(start).center),
      agenda_(std::move(appointments)),
      destination_(start),
      speed_(speed_mps) {
  BIPS_ASSERT(speed_mps > 0);
  for (std::size_t i = 1; i < agenda_.size(); ++i) {
    BIPS_ASSERT_MSG(agenda_[i - 1].at <= agenda_[i].at,
                    "agenda must be sorted by time");
  }
  for (const auto& a : agenda_) {
    BIPS_ASSERT(a.room < building.room_count());
  }
}

void AgendaAgent::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = next_; i < agenda_.size(); ++i) {
    const Appointment& a = agenda_[i];
    BIPS_ASSERT_MSG(a.at >= sim_.now(), "appointment already in the past");
    timers_.push_back(sim_.schedule_at(a.at, [this, room = a.room] {
      ++next_;
      depart_for(room);
    }));
  }
}

void AgendaAgent::stop() {
  running_ = false;
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  walker_.stop();
}

void AgendaAgent::depart_for(RoomId room) {
  if (!running_) return;
  // Route from wherever the agent is: nearest room node anchors the path.
  const RoomId from = building_.nearest_room(walker_.position());
  destination_ = room;
  if (from == room) {
    walker_.walk({building_.room(room).center}, speed_);
    return;
  }
  const auto node_path = paths_.path(from, room);
  BIPS_ASSERT_MSG(!node_path.empty(), "building graph must be connected");
  std::vector<Vec2> waypoints;
  waypoints.reserve(node_path.size());
  for (const auto node : node_path) {
    waypoints.push_back(building_.room(static_cast<RoomId>(node)).center);
  }
  walker_.walk(std::move(waypoints), speed_);
}

CorridorCrosser::CorridorCrosser(sim::Simulator& sim, Vec2 center,
                                 double radius_m, double speed_mps,
                                 std::function<void()> on_exit)
    : center_(center),
      radius_(radius_m),
      speed_(speed_mps),
      walker_(sim, Vec2{center.x - radius_m, center.y}),
      on_exit_(std::move(on_exit)) {
  BIPS_ASSERT(radius_m > 0 && speed_mps > 0);
}

void CorridorCrosser::start() {
  walker_.walk({Vec2{center_.x + radius_, center_.y}}, speed_, [this] {
    if (on_exit_) on_exit_();
  });
}

}  // namespace bips::mobility
