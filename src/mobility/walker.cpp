#include "src/mobility/walker.hpp"

#include "src/util/assert.hpp"

namespace bips::mobility {

Vec2 Walker::position() const {
  if (!moving_) return pos_;
  const double seg_len = distance(segment_from_, segment_to_);
  if (seg_len <= 0) return segment_to_;
  const double walked =
      (sim_.now() - segment_start_).to_seconds() * speed_;
  const double t = walked >= seg_len ? 1.0 : walked / seg_len;
  return lerp(segment_from_, segment_to_, t);
}

double Walker::odometer() const {
  if (!moving_) return odometer_;
  return odometer_ + distance(segment_from_, position());
}

void Walker::walk(std::vector<Vec2> waypoints, double speed_mps,
                  ArrivalCallback on_arrival) {
  BIPS_ASSERT(speed_mps > 0);
  stop();
  if (waypoints.empty()) {
    if (on_arrival) on_arrival();
    return;
  }
  route_ = std::move(waypoints);
  next_waypoint_ = 0;
  speed_ = speed_mps;
  on_arrival_ = std::move(on_arrival);
  moving_ = true;
  begin_segment();
}

void Walker::stop() {
  if (!moving_) return;
  odometer_ += distance(segment_from_, position());
  pos_ = position();
  moving_ = false;
  arrival_event_.cancel();
  route_.clear();
  on_arrival_ = nullptr;
}

void Walker::set_position(Vec2 p) {
  BIPS_ASSERT_MSG(!moving_, "cannot teleport a walker mid-segment");
  pos_ = p;
}

std::vector<Vec2> Walker::remaining_route() const {
  if (!moving_) return {};
  return std::vector<Vec2>(route_.begin() + static_cast<std::ptrdiff_t>(next_waypoint_),
                           route_.end());
}

void Walker::begin_segment() {
  segment_from_ = pos_;
  segment_to_ = route_[next_waypoint_];
  segment_start_ = sim_.now();
  const double seg_len = distance(segment_from_, segment_to_);
  const Duration travel = Duration::from_seconds(seg_len / speed_);
  arrival_event_ = sim_.schedule(travel, [this] { segment_done(); });
}

void Walker::segment_done() {
  odometer_ += distance(segment_from_, segment_to_);
  pos_ = segment_to_;
  ++next_waypoint_;
  if (next_waypoint_ < route_.size()) {
    begin_segment();
    return;
  }
  moving_ = false;
  route_.clear();
  // Move the callback out first: it may start a new walk immediately.
  ArrivalCallback cb = std::move(on_arrival_);
  on_arrival_ = nullptr;
  if (cb) cb();
}

}  // namespace bips::mobility
