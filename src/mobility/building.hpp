// Building model: rooms, physical connections, and the mapping to the
// BIPS topology graph.
//
// The paper: "BIPS considers each room of the building as a granule of
// location information ... There is a node in the graph for every BIPS
// workstation. An edge between two adjacent nodes is defined when there is
// a physical path in the building that connects the rooms containing the
// two corresponding workstations."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/geom.hpp"

namespace bips::mobility {

using RoomId = std::uint32_t;
inline constexpr RoomId kNoRoom = UINT32_MAX;

struct Room {
  RoomId id = kNoRoom;
  std::string name;
  Vec2 center;  // where the workstation (piconet master) sits
};

struct Corridor {
  RoomId a = kNoRoom;
  RoomId b = kNoRoom;
  double distance = 0.0;  // walking distance (edge weight)
};

class Building {
 public:
  /// Adds a room with its workstation at `center`. Names must be unique.
  RoomId add_room(std::string name, Vec2 center);

  /// Declares a physical path between two rooms; weight defaults to the
  /// Euclidean distance between the room centers.
  void connect(RoomId a, RoomId b);
  void connect(RoomId a, RoomId b, double walking_distance);

  std::size_t room_count() const { return rooms_.size(); }
  const Room& room(RoomId id) const;
  const std::vector<Room>& rooms() const { return rooms_; }
  const std::vector<Corridor>& corridors() const { return corridors_; }
  std::optional<RoomId> find(std::string_view name) const;

  /// Builds the weighted undirected topology graph (node ids == room ids).
  graph::Graph to_graph() const;

  /// Room whose workstation is nearest to p; kNoRoom for an empty building.
  RoomId nearest_room(Vec2 p) const;
  /// Nearest room within `radius` metres of p (the piconet that would cover
  /// a device standing at p), or kNoRoom when outside all coverage circles.
  RoomId nearest_room_within(Vec2 p, double radius) const;

  // ---- canned floor plans --------------------------------------------

  /// `n` rooms in a row along a corridor, `spacing` metres apart.
  static Building corridor(int n, double spacing = 12.0);
  /// rows x cols office grid; neighbours connected orthogonally.
  static Building grid(int rows, int cols, double spacing = 12.0);
  /// A small academic department like the paper's testbed: offices, labs,
  /// a library, a seminar room and a lobby on one floor (10 rooms).
  static Building department();

 private:
  std::vector<Room> rooms_;
  std::vector<Corridor> corridors_;
};

}  // namespace bips::mobility
