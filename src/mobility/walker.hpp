// Continuous-position waypoint walker.
//
// Movement is event-light: only segment endpoints create simulator events;
// position() interpolates along the active segment at the current simulated
// time, which is what the radio channel samples at packet-delivery instants.
#pragma once

#include <functional>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/util/geom.hpp"

namespace bips::mobility {

class Walker {
 public:
  using ArrivalCallback = std::function<void()>;

  Walker(sim::Simulator& sim, Vec2 start) : sim_(sim), pos_(start) {}
  ~Walker() { stop(); }
  Walker(const Walker&) = delete;
  Walker& operator=(const Walker&) = delete;

  /// Current position at the simulator's current time.
  Vec2 position() const;
  bool moving() const { return moving_; }
  double speed_mps() const { return speed_; }

  /// Walks through `waypoints` in order at constant `speed` (m/s); invokes
  /// `on_arrival` at the final waypoint. Replaces any walk in progress
  /// (starting from the current interpolated position).
  void walk(std::vector<Vec2> waypoints, double speed_mps,
            ArrivalCallback on_arrival = nullptr);

  /// Halts at the current interpolated position.
  void stop();

  /// Repositions a resting walker (shard handoff / scripted teleport).
  /// Asserts !moving(): a mid-segment walker must be stop()ped first.
  void set_position(Vec2 p);

  /// Waypoints not yet reached by the walk in progress, in order (empty
  /// when resting). The current interpolated position is the implicit start.
  std::vector<Vec2> remaining_route() const;

  /// Total distance walked so far (metres, including partial segments).
  double odometer() const;

 private:
  void begin_segment();
  void segment_done();

  sim::Simulator& sim_;
  Vec2 pos_;  // position at segment start (or rest position)
  bool moving_ = false;
  double speed_ = 0.0;
  std::vector<Vec2> route_;
  std::size_t next_waypoint_ = 0;
  SimTime segment_start_;
  Vec2 segment_from_, segment_to_;
  ArrivalCallback on_arrival_;
  sim::EventHandle arrival_event_;
  double odometer_ = 0.0;
};

}  // namespace bips::mobility
