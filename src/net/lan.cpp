#include "src/net/lan.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace bips::net {

bool Endpoint::send(Address to, Payload data) {
  return lan_->send(addr_, to, std::move(data));
}

Lan::Lan(sim::Simulator& sim, Rng& rng, Config cfg)
    : sim_(sim), rng_(rng), cfg_(cfg) {
  BIPS_ASSERT(cfg_.base_latency >= Duration(0));
  BIPS_ASSERT(cfg_.jitter >= Duration(0));
  BIPS_ASSERT(cfg_.loss >= 0.0 && cfg_.loss <= 1.0);
}

Endpoint& Lan::create_endpoint() {
  const auto addr = static_cast<Address>(endpoints_.size());
  endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, addr)));
  return *endpoints_.back();
}

bool Lan::send(Address from, Address to, Payload data) {
  if (to >= endpoints_.size()) return false;
  ++stats_.sent;
  if (cfg_.loss > 0 && rng_.chance(cfg_.loss)) {
    ++stats_.dropped;
    return true;  // accepted by the NIC, lost on the wire
  }
  Duration delay = cfg_.base_latency;
  if (cfg_.jitter > Duration(0)) {
    delay += Duration::nanos(static_cast<std::int64_t>(
        rng_.uniform(static_cast<std::uint64_t>(cfg_.jitter.ns()))));
  }
  SimTime when = sim_.now() + delay;
  // FIFO per (from, to): never deliver before an earlier send's delivery.
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const auto it = last_delivery_.find(key);
  if (it != last_delivery_.end()) when = std::max(when, it->second);
  last_delivery_[key] = when;

  sim_.schedule_at(when, [this, from, to, d = std::move(data)] {
    ++stats_.delivered;
    Endpoint& dst = *endpoints_[to];
    if (dst.handler_) dst.handler_(from, d);
  });
  return true;
}

}  // namespace bips::net
