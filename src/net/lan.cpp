#include "src/net/lan.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace bips::net {

namespace {
/// Amortises the FIFO-state sweep: one pass every this many sends.
constexpr std::uint32_t kPrunePeriod = 1024;
}  // namespace

bool Endpoint::send(Address to, Payload data) {
  return lan_->send(addr_, to, std::move(data));
}

Lan::Lan(sim::Simulator& sim, Rng& rng, Config cfg)
    : sim_(sim),
      rng_(rng),
      cfg_(cfg),
      c_sent_(&sim.obs().metrics.counter("lan.sent")),
      c_delivered_(&sim.obs().metrics.counter("lan.delivered")),
      c_dropped_(&sim.obs().metrics.counter("lan.dropped")),
      c_partition_dropped_(&sim.obs().metrics.counter("lan.partition_dropped")),
      tracer_(&sim.obs().tracer) {
  BIPS_ASSERT(cfg_.base_latency >= Duration(0));
  BIPS_ASSERT(cfg_.jitter >= Duration(0));
  BIPS_ASSERT(cfg_.loss >= 0.0 && cfg_.loss <= 1.0);
}

Endpoint& Lan::create_endpoint() {
  const auto addr =
      static_cast<Address>(cfg_.address_base + endpoints_.size());
  endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, addr)));
  return *endpoints_.back();
}

void Lan::deliver_remote(Address from, Address to, const Payload& data) {
  if (!local(to)) {
    c_dropped_->inc();
    return;
  }
  c_delivered_->inc();
  Endpoint& dst = *endpoints_[to - cfg_.address_base];
  if (dst.handler_) dst.handler_(from, data);
}

void Lan::set_loss(double loss) {
  BIPS_ASSERT(loss >= 0.0 && loss <= 1.0);
  cfg_.loss = loss;
}

void Lan::set_link_loss(Address a, Address b, double loss) {
  BIPS_ASSERT(loss >= 0.0 && loss <= 1.0);
  if (loss == 0.0) {
    link_loss_.erase(link_key(a, b));
  } else {
    link_loss_[link_key(a, b)] = loss;
  }
}

double Lan::link_loss(Address a, Address b) const {
  const auto it = link_loss_.find(link_key(a, b));
  return it == link_loss_.end() ? 0.0 : it->second;
}

void Lan::partition(std::vector<Address> group_a, std::vector<Address> group_b,
                    SimTime from, SimTime until) {
  BIPS_ASSERT(from < until);
  partitions_.push_back(
      Partition{std::move(group_a), std::move(group_b), from, until});
}

bool Lan::partitioned(Address x, Address y) const {
  const SimTime now = sim_.now();
  for (const Partition& p : partitions_) {
    if (now < p.from || now >= p.until) continue;
    const bool x_in_a = std::find(p.a.begin(), p.a.end(), x) != p.a.end();
    const bool y_in_a = std::find(p.a.begin(), p.a.end(), y) != p.a.end();
    const bool x_in_b = std::find(p.b.begin(), p.b.end(), x) != p.b.end();
    const bool y_in_b = std::find(p.b.begin(), p.b.end(), y) != p.b.end();
    if ((x_in_a && y_in_b) || (x_in_b && y_in_a)) return true;
  }
  return false;
}

void Lan::prune_fifo_state() {
  const SimTime now = sim_.now();
  for (auto it = last_delivery_.begin(); it != last_delivery_.end();) {
    // A past delivery time can no longer delay anything: base latency is
    // non-negative, so every future send already lands at or after now.
    it = it->second <= now ? last_delivery_.erase(it) : std::next(it);
  }
  // Healed partitions can never drop traffic again either.
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [now](const Partition& p) { return p.until <= now; }),
      partitions_.end());
}

bool Lan::send(Address from, Address to, Payload data) {
  const bool is_local = local(to);
  if (!is_local && !uplink_) return false;
  c_sent_->inc();
  tracer_->emit(sim_.now(), obs::TraceKind::kLanSend, from, to, data.size());
  if (++sends_since_prune_ >= kPrunePeriod) {
    sends_since_prune_ = 0;
    prune_fifo_state();
  }
  // lan.drop payload `b` encodes the cause: 0 partition, 1 uniform loss,
  // 2 per-link loss (the schema in DESIGN.md section 7).
  if (partitioned(from, to)) {
    c_dropped_->inc();
    c_partition_dropped_->inc();
    tracer_->emit(sim_.now(), obs::TraceKind::kLanDrop, from, to, 0);
    return true;  // accepted by the NIC, cut by the dead switch
  }
  if (cfg_.loss > 0 && rng_.chance(cfg_.loss)) {
    c_dropped_->inc();
    tracer_->emit(sim_.now(), obs::TraceKind::kLanDrop, from, to, 1);
    return true;  // accepted by the NIC, lost on the wire
  }
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(link_key(from, to));
    if (it != link_loss_.end() && rng_.chance(it->second)) {
      c_dropped_->inc();
      tracer_->emit(sim_.now(), obs::TraceKind::kLanDrop, from, to, 2);
      return true;
    }
  }
  Duration delay = cfg_.base_latency;
  if (!is_local) delay += cfg_.uplink_extra;
  if (cfg_.jitter > Duration(0)) {
    delay += Duration::nanos(static_cast<std::int64_t>(
        rng_.uniform(static_cast<std::uint64_t>(cfg_.jitter.ns()))));
  }
  SimTime when = sim_.now() + delay;
  // FIFO per (from, to): never deliver before an earlier send's delivery.
  // Remote sends clamp sender-side too -- all traffic from this segment to a
  // given remote address is ordered here before it ever crosses the uplink.
  const std::uint64_t key = pair_key(from, to);
  const auto it = last_delivery_.find(key);
  if (it != last_delivery_.end()) when = std::max(when, it->second);
  last_delivery_[key] = when;

  if (!is_local) return uplink_(from, to, when, std::move(data));

  sim_.schedule_at(when, [this, from, to, d = std::move(data)] {
    c_delivered_->inc();
    Endpoint& dst = *endpoints_[to - cfg_.address_base];
    if (dst.handler_) dst.handler_(from, d);
  });
  return true;
}

}  // namespace bips::net
