// Simulated Ethernet LAN connecting BIPS workstations to the central server.
//
// The paper's static part is "a centralized server machine and a set of
// workstations interconnected via an Ethernet LAN". BIPS traffic is light
// (presence deltas and queries), so the LAN is modelled as a reliable
// message bus with configurable latency and jitter. FIFO order is preserved
// per (source, destination) pair even under jitter -- TCP-like behaviour,
// which is what the real deployment used.
//
// For failure injection the bus also models what actually goes wrong in a
// building LAN: uniform datagram loss, per-link loss (one flaky cable run),
// and scheduled partitions (a switch dies and isolates a group of nodes for
// a window). BIPS itself assumes a reliable LAN; the fault layer does not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/util/rng.hpp"
#include "src/util/time.hpp"

namespace bips::net {

/// LAN node address (assigned sequentially by Lan::create_endpoint).
using Address = std::uint32_t;
inline constexpr Address kInvalidAddress = UINT32_MAX;

using Payload = std::vector<std::uint8_t>;

class Lan;

/// One attachment point on the LAN. Create through Lan::create_endpoint;
/// destroy before (or never after) the Lan.
class Endpoint {
 public:
  using Handler = std::function<void(Address from, const Payload& data)>;

  Address address() const { return addr_; }
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Sends a datagram; delivery is asynchronous via the receiving
  /// endpoint's handler. Returns false if `to` does not exist.
  bool send(Address to, Payload data);

 private:
  friend class Lan;
  Endpoint(Lan* lan, Address addr) : lan_(lan), addr_(addr) {}

  Lan* lan_;
  Address addr_;
  Handler handler_;
};

class Lan {
 public:
  struct Config {
    Duration base_latency = Duration::micros(200);
    /// Uniform extra delay in [0, jitter).
    Duration jitter = Duration::micros(100);
    /// Independent drop probability (failure injection only; default 0).
    double loss = 0.0;
    /// First address handed out by create_endpoint. Sharded worlds give each
    /// zone LAN a disjoint base (shard k << 20) so addresses are globally
    /// unique and routable; a destination outside this LAN's local range
    /// goes through the uplink router.
    Address address_base = 0;
    /// Extra one-way latency of the inter-zone uplink (the switch hop
    /// between building-zone LAN segments). Only remote sends pay it; it is
    /// the latency floor the conservative-lookahead window relies on, so a
    /// sharded world wants it well above the intra-zone base latency.
    Duration uplink_extra = Duration(0);
  };

  /// Routes a datagram whose destination lies outside this LAN segment.
  /// `due` is the fully-computed delivery instant (base + uplink extra +
  /// jitter + FIFO clamp, all drawn sender-side so the destination shard
  /// consumes no randomness). The router must arrange for
  /// dst_lan.deliver_remote(from, to, data) to run at `due` on the
  /// destination shard; returns false if `to` is unroutable.
  using UplinkRouter =
      std::function<bool(Address from, Address to, SimTime due, Payload data)>;

  // Nested-class default member initializers are only complete at the end
  // of the enclosing class, so no `cfg = Config{}` default argument here.
  Lan(sim::Simulator& sim, Rng& rng, Config cfg);
  Lan(const Lan&) = delete;
  Lan& operator=(const Lan&) = delete;

  /// Creates a new endpoint; the Lan owns it. Addresses are assigned
  /// sequentially from Config::address_base.
  Endpoint& create_endpoint();
  std::size_t endpoint_count() const { return endpoints_.size(); }

  /// True if `a` belongs to this LAN segment's local address range.
  bool local(Address a) const {
    return a >= cfg_.address_base &&
           a - cfg_.address_base < endpoints_.size();
  }

  /// Installs the inter-zone uplink. Without one, sends to non-local
  /// addresses fail (single-LAN worlds never notice).
  void set_uplink(UplinkRouter router) { uplink_ = std::move(router); }

  /// Delivers a datagram routed in from another LAN segment; invoked by the
  /// uplink machinery on this LAN's shard at the precomputed delivery
  /// instant. Unknown destinations are counted as drops (the sender cannot
  /// re-check liveness across the uplink).
  void deliver_remote(Address from, Address to, const Payload& data);

  // ---- fault injection --------------------------------------------------

  /// Changes the uniform loss probability at runtime (loss bursts).
  void set_loss(double loss);
  double loss() const { return cfg_.loss; }

  /// Extra drop probability on the (a, b) link, symmetric; 0 clears it.
  /// Models one flaky cable run without degrading the whole LAN.
  void set_link_loss(Address a, Address b, double loss);
  double link_loss(Address a, Address b) const;

  /// Schedules a partition: every datagram between a member of `group_a`
  /// and a member of `group_b` is dropped while sim time is in
  /// [from, until). Multiple partitions may overlap. Expired partitions are
  /// pruned lazily.
  void partition(std::vector<Address> group_a, std::vector<Address> group_b,
                 SimTime from, SimTime until);

  /// True if an active partition currently separates `x` from `y`.
  bool partitioned(Address x, Address y) const;

  // Traffic counters live in the simulator's MetricsRegistry: "lan.sent",
  // "lan.delivered", "lan.dropped" (all causes) and "lan.partition_dropped"
  // (of which: partition cuts). Read them via obs().metrics.counter_value.

  /// Live (from, to) FIFO-tracking entries (bounded by pruning; test hook).
  std::size_t fifo_state_size() const { return last_delivery_.size(); }

 private:
  friend class Endpoint;

  struct Partition {
    std::vector<Address> a;
    std::vector<Address> b;
    SimTime from;
    SimTime until;
  };

  bool send(Address from, Address to, Payload data);
  void prune_fifo_state();
  static std::uint64_t pair_key(Address a, Address b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static std::uint64_t link_key(Address a, Address b) {
    return a < b ? pair_key(a, b) : pair_key(b, a);
  }

  sim::Simulator& sim_;
  Rng& rng_;
  Config cfg_;
  UplinkRouter uplink_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Last scheduled delivery per (from, to), to keep FIFO under jitter.
  /// Entries whose delivery time has passed are pruned periodically.
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;
  std::uint32_t sends_since_prune_ = 0;
  std::unordered_map<std::uint64_t, double> link_loss_;
  std::vector<Partition> partitions_;
  // Cached registry cells ("lan.*") and the tracer; see stats().
  obs::Counter* c_sent_;
  obs::Counter* c_delivered_;
  obs::Counter* c_dropped_;
  obs::Counter* c_partition_dropped_;
  obs::Tracer* tracer_;
};

}  // namespace bips::net
