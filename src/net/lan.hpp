// Simulated Ethernet LAN connecting BIPS workstations to the central server.
//
// The paper's static part is "a centralized server machine and a set of
// workstations interconnected via an Ethernet LAN". BIPS traffic is light
// (presence deltas and queries), so the LAN is modelled as a reliable
// message bus with configurable latency and jitter. FIFO order is preserved
// per (source, destination) pair even under jitter -- TCP-like behaviour,
// which is what the real deployment used. Optional loss exists for failure
// injection tests; BIPS itself assumes a reliable LAN.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/util/rng.hpp"
#include "src/util/time.hpp"

namespace bips::net {

/// LAN node address (assigned sequentially by Lan::create_endpoint).
using Address = std::uint32_t;
inline constexpr Address kInvalidAddress = UINT32_MAX;

using Payload = std::vector<std::uint8_t>;

class Lan;

/// One attachment point on the LAN. Create through Lan::create_endpoint;
/// destroy before (or never after) the Lan.
class Endpoint {
 public:
  using Handler = std::function<void(Address from, const Payload& data)>;

  Address address() const { return addr_; }
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Sends a datagram; delivery is asynchronous via the receiving
  /// endpoint's handler. Returns false if `to` does not exist.
  bool send(Address to, Payload data);

 private:
  friend class Lan;
  Endpoint(Lan* lan, Address addr) : lan_(lan), addr_(addr) {}

  Lan* lan_;
  Address addr_;
  Handler handler_;
};

class Lan {
 public:
  struct Config {
    Duration base_latency = Duration::micros(200);
    /// Uniform extra delay in [0, jitter).
    Duration jitter = Duration::micros(100);
    /// Independent drop probability (failure injection only; default 0).
    double loss = 0.0;
  };

  // Nested-class default member initializers are only complete at the end
  // of the enclosing class, so no `cfg = Config{}` default argument here.
  Lan(sim::Simulator& sim, Rng& rng, Config cfg);
  Lan(const Lan&) = delete;
  Lan& operator=(const Lan&) = delete;

  /// Creates a new endpoint; the Lan owns it.
  Endpoint& create_endpoint();

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Endpoint;
  bool send(Address from, Address to, Payload data);

  sim::Simulator& sim_;
  Rng& rng_;
  Config cfg_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Last scheduled delivery per (from, to), to keep FIFO under jitter.
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;
  Stats stats_;
};

}  // namespace bips::net
