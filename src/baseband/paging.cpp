#include "src/baseband/paging.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

namespace {
constexpr Duration kResponseListenSpan = Duration::micros(1310);
/// How long either side waits for the counterpart's next packet mid-exchange
/// before declaring the attempt dead and resuming its sweep/scan.
constexpr Duration kExchangeTimeout = 4 * kSlot;
}  // namespace

// ---------------------------------------------------------------- Pager ---

Pager::Pager(Device& dev, PageConfig cfg) : dev_(dev), cfg_(cfg) {
  BIPS_ASSERT(cfg_.train_repetitions > 0);
}

std::uint32_t Pager::estimated_clkn(SimTime t) const {
  const auto elapsed_ticks =
      static_cast<std::uint64_t>((t - sample_time_).ns()) / 312'500;
  return static_cast<std::uint32_t>((clock_sample_ + elapsed_ticks) &
                                    ((1u << 28) - 1));
}

void Pager::page(BdAddr target, std::uint32_t clock_sample,
                 SimTime sample_time) {
  BIPS_ASSERT_MSG(!active_, "Pager supports one page at a time");
  BIPS_ASSERT(!target.is_null());
  active_ = true;
  awaiting_ack_ = false;
  target_ = target;
  clock_sample_ = clock_sample;
  sample_time_ = sample_time;
  reps_ = 0;
  tx_slot_ = 0;
  on_second_train_ = false;
  ++stats_.pages_started;

  // Centre the first train on the channel the estimate predicts the slave
  // will scan, so a good estimate connects at the slave's first window.
  const std::uint32_t predicted =
      predicted_page_index(estimated_clkn(dev_.sim().now()));
  train_base_index_ = (predicted + kChannelsPerSet - kTrainSize / 2) %
                      kChannelsPerSet;

  const SimTime first = dev_.clock().next_even_slot(dev_.sim().now());
  slot_event_ = dev_.sim().schedule_at(first, [this] { tx_slot(); });
  if (cfg_.timeout > Duration(0)) {
    page_timeout_event_ = dev_.sim().schedule(cfg_.timeout, [this] { fail(); });
  }
}

void Pager::cancel() {
  if (!active_) return;
  cleanup();
}

void Pager::cleanup() {
  active_ = false;
  awaiting_ack_ = false;
  slot_event_.cancel();
  id2_event_.cancel();
  close_events_[0].cancel();
  close_events_[1].cancel();
  fhs_event_.cancel();
  ack_timeout_event_.cancel();
  page_timeout_event_.cancel();
  for (ListenId id : open_listens_) dev_.radio().stop_listen(id);
  open_listens_.clear();
  dev_.radio().stop_listen(ack_listen_);
  ack_listen_ = kNoListen;
}

void Pager::fail() {
  if (!active_) return;
  const BdAddr t = target_;
  ++stats_.pages_failed;
  cleanup();
  if (on_failure_) on_failure_(t);
}

void Pager::tx_slot() {
  if (!active_ || awaiting_ack_) return;
  const SimTime t0 = dev_.sim().now();

  const std::uint32_t idx1 =
      (train_base_index_ + tx_slot_ * 2) % kChannelsPerSet;
  const std::uint32_t idx2 =
      (train_base_index_ + tx_slot_ * 2 + 1) % kChannelsPerSet;

  Packet id;
  id.type = PacketType::kId;
  id.sender = dev_.addr();
  id.access_code = target_;  // page IDs are addressed

  dev_.radio().transmit(&dev_, page_channel(target_, idx1), id);
  ++stats_.ids_sent;
  id2_event_ = dev_.sim().schedule(kHalfSlot, [this, idx2, id] {
    if (!active_ || awaiting_ack_) return;
    dev_.radio().transmit(&dev_, page_channel(target_, idx2), id);
    ++stats_.ids_sent;
  });

  auto handler = [this](const Packet& p, RfChannel ch, SimTime end) {
    on_response(p, ch, end);
  };
  const ListenId la =
      dev_.radio().start_listen(&dev_, page_channel(target_, idx1), handler);
  const ListenId lb =
      dev_.radio().start_listen(&dev_, page_channel(target_, idx2), handler);
  open_listens_.insert(la);
  open_listens_.insert(lb);
  close_events_[close_rotor_] =
      dev_.sim().schedule_at(t0 + kResponseListenSpan, [this, la, lb] {
        dev_.radio().stop_listen(la);
        dev_.radio().stop_listen(lb);
        open_listens_.erase(la);
        open_listens_.erase(lb);
      });
  close_rotor_ ^= 1;

  advance_phase();
  slot_event_ = dev_.sim().schedule_at(t0 + 2 * kSlot, [this] { tx_slot(); });
}

void Pager::advance_phase() {
  if (++tx_slot_ < kTrainTxSlots) return;
  tx_slot_ = 0;
  if (++reps_ < cfg_.train_repetitions) return;
  reps_ = 0;
  if (cfg_.switch_trains) {
    train_base_index_ =
        (train_base_index_ + kTrainSize) % kChannelsPerSet;
    on_second_train_ = !on_second_train_;
  }
}

void Pager::on_response(const Packet& p, RfChannel ch, SimTime end) {
  if (!active_ || awaiting_ack_) return;
  if (p.type != PacketType::kId || p.access_code != target_) return;
  // Target answered: freeze the sweep and send the FHS 625 us after the
  // response began.
  awaiting_ack_ = true;
  slot_event_.cancel();
  id2_event_.cancel();

  const SimTime resp_start = end - p.duration();
  fhs_event_ = dev_.sim().schedule_at(resp_start + kSlot, [this, ch] {
    if (!active_) return;
    Packet fhs;
    fhs.type = PacketType::kFhs;
    fhs.sender = dev_.addr();
    fhs.access_code = target_;
    fhs.clock = dev_.clock().clkn(dev_.sim().now());
    dev_.radio().transmit(&dev_, ch, fhs);

    // Await the final ID ack on the same channel.
    ack_listen_ = dev_.radio().start_listen(
        &dev_, ch, [this](const Packet& q, RfChannel, SimTime e) {
          on_ack(q, e);
        });
    ack_timeout_event_ = dev_.sim().schedule(kExchangeTimeout, [this] {
      // Ack lost: resume the sweep where it left off.
      if (!active_) return;
      dev_.radio().stop_listen(ack_listen_);
      ack_listen_ = kNoListen;
      awaiting_ack_ = false;
      const SimTime next = dev_.clock().next_even_slot(dev_.sim().now());
      slot_event_ = dev_.sim().schedule_at(next, [this] { tx_slot(); });
    });
  });
}

void Pager::on_ack(const Packet& p, SimTime end) {
  if (!active_) return;
  if (p.type != PacketType::kId || p.access_code != target_) return;
  const BdAddr t = target_;
  ++stats_.pages_succeeded;
  cleanup();
  BIPS_TRACE(end, "pager %s: connected to %s",
             dev_.addr().to_string().c_str(), t.to_string().c_str());
  if (on_success_) on_success_(t, end);
}

// ---------------------------------------------------------- PageScanner ---

PageScanner::PageScanner(Device& dev, ScanConfig cfg) : dev_(dev), cfg_(cfg) {
  BIPS_ASSERT(cfg_.window > Duration(0));
  BIPS_ASSERT(cfg_.interval >= cfg_.window);
}

void PageScanner::start() {
  const Duration phase = Duration::nanos(static_cast<std::int64_t>(
      dev_.rng().uniform(static_cast<std::uint64_t>(cfg_.interval.ns()))));
  start_with_phase(phase);
}

void PageScanner::start_with_phase(Duration phase) {
  BIPS_ASSERT(!running_);
  running_ = true;
  window_index_ = 0;
  responding_ = false;
  window_open_event_ = dev_.sim().schedule(phase, [this] { open_window(); });
}

void PageScanner::stop() {
  if (!running_) return;
  running_ = false;
  window_open_event_.cancel();
  window_close_event_.cancel();
  respond_event_.cancel();
  fhs_timeout_event_.cancel();
  ack_event_.cancel();
  end_listen();
  window_open_ = false;
  responding_ = false;
}

void PageScanner::open_window() {
  if (!running_) return;
  ++stats_.windows_opened;
  ++window_index_;
  window_open_ = true;
  window_close_event_ =
      dev_.sim().schedule(cfg_.window, [this] { close_window(); });
  window_open_event_ =
      dev_.sim().schedule(cfg_.interval, [this] { open_window(); });
  if (responding_) return;  // mid-exchange; skip this window

  // The page-scan channel is a function of the device's own clock (CLKN
  // 16-12), which is exactly what the pager predicts from the FHS sample.
  const std::uint32_t idx = dev_.clock().scan_phase(dev_.sim().now());
  listen_ = dev_.radio().start_listen(
      &dev_, page_scan_channel(dev_.addr(), idx),
      [this](const Packet& p, RfChannel ch, SimTime end) {
        on_page_id(p, ch, end);
      });
}

void PageScanner::close_window() {
  window_open_ = false;
  if (!responding_) end_listen();
}

void PageScanner::end_listen() {
  dev_.radio().stop_listen(listen_);
  listen_ = kNoListen;
}

void PageScanner::on_page_id(const Packet& p, RfChannel ch, SimTime end) {
  if (p.type != PacketType::kId || p.access_code != dev_.addr()) return;
  ++stats_.pages_heard;
  end_listen();
  responding_ = true;

  const SimTime id_start = end - p.duration();
  respond_event_ = dev_.sim().schedule_at(id_start + kSlot, [this, ch] {
    if (!running_) return;
    Packet resp;
    resp.type = PacketType::kId;
    resp.sender = dev_.addr();
    resp.access_code = dev_.addr();
    dev_.radio().transmit(&dev_, ch, resp);

    // Await the master's FHS on the same channel.
    listen_ = dev_.radio().start_listen(
        &dev_, ch, [this](const Packet& q, RfChannel c, SimTime e) {
          on_fhs(q, c, e);
        });
    fhs_timeout_event_ = dev_.sim().schedule(kExchangeTimeout, [this] {
      // Master vanished (or its FHS collided): back to normal scanning.
      end_listen();
      responding_ = false;
    });
  });
}

void PageScanner::on_fhs(const Packet& p, RfChannel ch, SimTime end) {
  if (p.type != PacketType::kFhs || p.access_code != dev_.addr()) return;
  fhs_timeout_event_.cancel();
  end_listen();

  const SimTime fhs_start = end - p.duration();
  const BdAddr master = p.sender;
  const std::uint32_t master_clock = p.clock;
  ack_event_ = dev_.sim().schedule_at(fhs_start + kSlot, [this, ch, master,
                                                          master_clock] {
    if (!running_) return;
    Packet ack;
    ack.type = PacketType::kId;
    ack.sender = dev_.addr();
    ack.access_code = dev_.addr();
    dev_.radio().transmit(&dev_, ch, ack);
    ++stats_.connections;
    const SimTime when = dev_.sim().now();
    BIPS_TRACE(when, "scanner %s: connected to master %s",
               dev_.addr().to_string().c_str(), master.to_string().c_str());
    // Entering the connection state ends page scanning; the link layer
    // restarts it after a detach.
    auto cb = on_connected_;
    stop();
    if (cb) cb(master, master_clock, when);
  });
}

}  // namespace bips::baseband
