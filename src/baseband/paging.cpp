#include "src/baseband/paging.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

namespace {
constexpr Duration kResponseListenSpan = Duration::micros(1310);
/// How long either side waits for the counterpart's next packet mid-exchange
/// before declaring the attempt dead and resuming its sweep/scan.
constexpr Duration kExchangeTimeout = 4 * kSlot;
}  // namespace

// ---------------------------------------------------------------- Pager ---

Pager::Pager(Device& dev, PageConfig cfg)
    : dev_(dev),
      cfg_(cfg),
      slot_proc_(dev.sim(), [this] { tx_slot(); }),
      id2_proc_(dev.sim(), [this] { second_id(); }),
      close_procs_{{dev.sim(), [this] { close_pair(0); }},
                   {dev.sim(), [this] { close_pair(1); }}},
      fhs_proc_(dev.sim(), [this] { send_fhs(); }),
      ack_timeout_proc_(dev.sim(), [this] { ack_timed_out(); }),
      page_timeout_proc_(dev.sim(), [this] { fail(); }),
      vclock_(dev.sim(), 2 * kSlot),
      wake_proc_(dev.sim(), [this] { wake(); }) {
  BIPS_ASSERT(cfg_.train_repetitions > 0);
}

std::uint32_t Pager::estimated_clkn(SimTime t) const {
  const auto elapsed_ticks =
      static_cast<std::uint64_t>((t - sample_time_).ns()) / 312'500;
  return static_cast<std::uint32_t>((clock_sample_ + elapsed_ticks) &
                                    ((1u << 28) - 1));
}

void Pager::page(BdAddr target, std::uint32_t clock_sample,
                 SimTime sample_time) {
  BIPS_ASSERT_MSG(!active_, "Pager supports one page at a time");
  BIPS_ASSERT(!target.is_null());
  active_ = true;
  awaiting_ack_ = false;
  exact_ = dev_.radio().config().exact_slots;
  target_ = target;
  page_ns_ = page_namespace(target);
  clock_sample_ = clock_sample;
  sample_time_ = sample_time;
  reps_ = 0;
  tx_slot_ = 0;
  on_second_train_ = false;
  ++stats_.pages_started;
  dev_.sim().obs().tracer.emit(dev_.sim().now(), obs::TraceKind::kPageStart,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               target.raw());

  // Centre the first train on the channel the estimate predicts the slave
  // will scan, so a good estimate connects at the slave's first window.
  const std::uint32_t predicted =
      predicted_page_index(estimated_clkn(dev_.sim().now()));
  train_base_index_ = (predicted + kChannelsPerSet - kTrainSize / 2) %
                      kChannelsPerSet;

  id_packet_ = Packet{};
  id_packet_.type = PacketType::kId;
  id_packet_.sender = dev_.addr();
  id_packet_.access_code = target_;  // page IDs are addressed

  slot_proc_.call_at(dev_.clock().next_even_slot(dev_.sim().now()));
  if (cfg_.timeout > Duration(0)) {
    page_timeout_proc_.call_after(cfg_.timeout);
  }
}

void Pager::cancel() {
  if (!active_) return;
  cleanup();
}

void Pager::cleanup() {
  active_ = false;
  awaiting_ack_ = false;
  if (vclock_.parked()) absorb_park(dev_.sim().now());
  wake_proc_.cancel();
  slot_proc_.cancel();
  id2_proc_.cancel();
  close_procs_[0].cancel();
  close_procs_[1].cancel();
  fhs_proc_.cancel();
  ack_timeout_proc_.cancel();
  page_timeout_proc_.cancel();
  close_pair(0);
  close_pair(1);
  dev_.radio().stop_listen(ack_listen_);
  ack_listen_ = kNoListen;
}

void Pager::fail() {
  if (!active_) return;
  const BdAddr t = target_;
  ++stats_.pages_failed;
  dev_.sim().obs().tracer.emit(dev_.sim().now(), obs::TraceKind::kPageFail,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               t.raw());
  cleanup();
  if (on_failure_) on_failure_(t);
}

void Pager::tx_slot() {
  if (!active_ || awaiting_ack_) return;
  const SimTime t0 = dev_.sim().now();

  // Virtual-slot park: only the target (whose page namespace this is) can
  // answer an addressed ID, so with no triggering listener in reach the
  // sweep is unobservable -- skip ahead. See Inquirer::tx_slot.
  if (!exact_ && !dev_.radio().occupied(page_ns_, dev_.position())) {
    park(t0);
    return;
  }

  const std::uint32_t idx1 =
      (train_base_index_ + tx_slot_ * 2) % kChannelsPerSet;
  second_index_ = (train_base_index_ + tx_slot_ * 2 + 1) % kChannelsPerSet;

  dev_.radio().transmit(&dev_, page_channel(target_, idx1), id_packet_);
  ++stats_.ids_sent;
  id2_proc_.call_after(kHalfSlot);

  auto handler = [this](const Packet& p, RfChannel ch, SimTime end) {
    on_response(p, ch, end);
  };
  ListenId* pair = open_pairs_[close_rotor_];
  pair[0] = dev_.radio().start_listen(&dev_, page_channel(target_, idx1),
                                      handler, ListenKind::kPassive);
  pair[1] = dev_.radio().start_listen(&dev_, page_channel(target_, second_index_),
                                      handler, ListenKind::kPassive);
  close_procs_[close_rotor_].call_at(t0 + kResponseListenSpan);
  close_rotor_ ^= 1;

  advance_phase();
  slot_proc_.call_at(t0 + 2 * kSlot);
}

void Pager::park(SimTime t0) {
  vclock_.park(t0);
  occ_sub_ = dev_.radio().subscribe_occupancy(
      page_ns_, dev_.position(), [this](SimTime) {
        // Fired from inside a triggering registration: only schedule here.
        occ_sub_ = kNoOccupancySub;
        wake_proc_.call_at(dev_.sim().now());
      });
}

void Pager::wake() {
  if (!active_ || awaiting_ack_ || !vclock_.parked()) return;
  const SimTime now = dev_.sim().now();
  const SimTime parked_at = vclock_.parked_at();
  const auto wk = vclock_.wake(now);
  const SimTime resume = wk.resume;
  const std::uint64_t n = wk.skipped;

  if (n > 0) {
    // Credit the elided sweep exactly as the exact path would have accrued
    // it (two 68 us IDs per skipped slot; the last second ID is replayed
    // for real instead of credited if it is still in the future).
    const SimTime p1 = resume - 2 * kSlot;  // last skipped slot (k = n-1)
    const bool replay_second = p1 + kHalfSlot >= now;
    const std::uint64_t ids = 2 * n - (replay_second ? 1 : 0);
    stats_.ids_sent += ids - park_ids_credited_;  // minus lazy mid-park reads
    park_ids_credited_ = 0;
    dev_.account_tx(Duration::micros(68) * static_cast<std::int64_t>(ids) -
                    park_tx_credited_);
    park_tx_credited_ = Duration(0);

    // Reconstruct the (at most two) response-listen pairs still open as
    // backdated listens; fully-elapsed windows are credited closed-form.
    std::uint64_t reconstructed = 0;
    auto handler = [this](const Packet& p, RfChannel ch, SimTime end) {
      on_response(p, ch, end);
    };
    const auto reconstruct = [&](std::uint64_t k, SimTime slot_t) {
      const auto [i1, i2] = indices_at(k);
      ListenId* pair = open_pairs_[close_rotor_];
      BIPS_ASSERT(pair[0] == kNoListen && pair[1] == kNoListen);
      pair[0] = dev_.radio().start_listen_backdated(
          &dev_, page_channel(target_, i1), slot_t, handler,
          ListenKind::kPassive);
      pair[1] = dev_.radio().start_listen_backdated(
          &dev_, page_channel(target_, i2), slot_t, handler,
          ListenKind::kPassive);
      close_procs_[close_rotor_].call_at(slot_t + kResponseListenSpan);
      close_rotor_ ^= 1;
      ++reconstructed;
    };
    if (n >= 2) {
      const SimTime p2 = resume - 4 * kSlot;
      if (p2 + kResponseListenSpan > now) reconstruct(n - 2, p2);
    }
    reconstruct(n - 1, p1);  // now <= resume = p1 + 1250 < p1 + span: open
    // Reconstructed windows have t + span > now, so the lazy mid-park
    // crediting (strictly-closed windows only) never counted them.
    dev_.account_listen(2 * kResponseListenSpan *
                            static_cast<std::int64_t>(n - reconstructed) -
                        park_listen_credited_);
    park_listen_credited_ = Duration(0);

    if (replay_second) {
      second_index_ = indices_at(n - 1).second;
      id2_proc_.call_at(p1 + kHalfSlot);
    }

    advance_phase_by(n);
    dev_.sim().obs().tracer.emit(now, obs::TraceKind::kRadioFf,
                                 static_cast<std::uint32_t>(dev_.addr().raw()),
                                 n, static_cast<std::uint64_t>(
                                        (now - parked_at).ns()));
  }
  slot_proc_.call_at(resume);
}

void Pager::absorb_park(SimTime now) {
  const SimTime parked_at = vclock_.parked_at();
  const std::uint64_t n = vclock_.retire(now);
  if (occ_sub_ != kNoOccupancySub) {
    dev_.radio().unsubscribe_occupancy(page_ns_, occ_sub_);
    occ_sub_ = kNoOccupancySub;
  }
  if (n == 0) return;
  // Mirror of Inquirer::retire_park: credit the n slots the exact path
  // would have drummed before this stop.
  const SimTime last = parked_at + (n - 1) * (2 * kSlot);
  const bool last_second = last + kHalfSlot < now;
  const std::uint64_t ids = 2 * n - (last_second ? 0 : 1);
  stats_.ids_sent += ids - park_ids_credited_;  // minus lazy mid-park reads
  park_ids_credited_ = 0;
  dev_.account_tx(Duration::micros(68) * static_cast<std::int64_t>(ids) -
                  park_tx_credited_);
  park_tx_credited_ = Duration(0);
  Duration listen_credit{0};
  const std::uint64_t full = n > 2 ? n - 2 : 0;
  listen_credit += 2 * kResponseListenSpan * static_cast<std::int64_t>(full);
  for (std::uint64_t k = full; k < n; ++k) {
    const SimTime t = parked_at + k * (2 * kSlot);
    const Duration open = now - t;
    listen_credit += 2 * (open < kResponseListenSpan ? open
                                                     : kResponseListenSpan);
  }
  // Lazy mid-park reads only credited fully-closed windows at full span,
  // which the bulk figure includes too: subtraction cannot go negative.
  dev_.account_listen(listen_credit - park_listen_credited_);
  park_listen_credited_ = Duration(0);
  advance_phase_by(n);
  dev_.sim().obs().tracer.emit(now, obs::TraceKind::kRadioFf,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               n, static_cast<std::uint64_t>(
                                      (now - parked_at).ns()));
}

void Pager::sync_park_stats() const {
  if (!vclock_.parked()) return;
  const SimTime now = dev_.sim().now();
  const std::uint64_t n = vclock_.elided_before(now);
  if (n == 0) return;
  // Same crediting formula wake()/absorb_park() apply when the park ends
  // (see Inquirer::sync_park_stats for the derivation).
  const SimTime last = vclock_.parked_at() + (n - 1) * (2 * kSlot);
  const std::uint64_t ids = 2 * n - (last + kHalfSlot < now ? 0 : 1);
  stats_.ids_sent += ids - park_ids_credited_;
  park_ids_credited_ = ids;
  // Energy rides the same lazy scheme (see Inquirer::sync_park_stats for
  // the window-counting derivation): IDs at their transmit instants,
  // response windows only once strictly closed.
  const Duration tx = Duration::micros(68) * static_cast<std::int64_t>(ids);
  dev_.account_tx(tx - park_tx_credited_);
  park_tx_credited_ = tx;
  const std::int64_t fully_closed_span =
      (now - vclock_.parked_at() - kResponseListenSpan).ns();
  const std::int64_t step = (2 * kSlot).ns();
  std::uint64_t closed =
      fully_closed_span > 0
          ? static_cast<std::uint64_t>((fully_closed_span + step - 1) / step)
          : 0;
  if (closed > n) closed = n;
  const Duration listen =
      2 * kResponseListenSpan * static_cast<std::int64_t>(closed);
  dev_.account_listen(listen - park_listen_credited_);
  park_listen_credited_ = listen;
}

std::pair<std::uint32_t, std::uint32_t> Pager::indices_at(
    std::uint64_t k) const {
  const std::uint64_t per_train =
      static_cast<std::uint64_t>(kTrainTxSlots) *
      static_cast<std::uint64_t>(cfg_.train_repetitions);
  const std::uint64_t total = tx_slot_ +
                              static_cast<std::uint64_t>(kTrainTxSlots) *
                                  static_cast<std::uint64_t>(reps_) +
                              k;
  std::uint32_t base = train_base_index_;
  if (cfg_.switch_trains && ((total / per_train) & 1) != 0) {
    base = (base + kTrainSize) % kChannelsPerSet;
  }
  const std::uint32_t ts = static_cast<std::uint32_t>(total % kTrainTxSlots);
  return {(base + ts * 2) % kChannelsPerSet,
          (base + ts * 2 + 1) % kChannelsPerSet};
}

void Pager::advance_phase_by(std::uint64_t n) {
  const std::uint64_t per_train =
      static_cast<std::uint64_t>(kTrainTxSlots) *
      static_cast<std::uint64_t>(cfg_.train_repetitions);
  std::uint64_t total = tx_slot_ +
                        static_cast<std::uint64_t>(kTrainTxSlots) *
                            static_cast<std::uint64_t>(reps_) +
                        n;
  const std::uint64_t crossings = total / per_train;
  if (cfg_.switch_trains && (crossings & 1) != 0) {
    train_base_index_ = (train_base_index_ + kTrainSize) % kChannelsPerSet;
    on_second_train_ = !on_second_train_;
  }
  total %= per_train;
  reps_ = static_cast<int>(total / kTrainTxSlots);
  tx_slot_ = static_cast<std::uint32_t>(total % kTrainTxSlots);
}

void Pager::second_id() {
  if (!active_ || awaiting_ack_) return;
  dev_.radio().transmit(&dev_, page_channel(target_, second_index_),
                        id_packet_);
  ++stats_.ids_sent;
}

void Pager::close_pair(int k) {
  for (ListenId& id : open_pairs_[k]) {
    dev_.radio().stop_listen(id);
    id = kNoListen;
  }
}

void Pager::advance_phase() {
  if (++tx_slot_ < kTrainTxSlots) return;
  tx_slot_ = 0;
  if (++reps_ < cfg_.train_repetitions) return;
  reps_ = 0;
  if (cfg_.switch_trains) {
    train_base_index_ =
        (train_base_index_ + kTrainSize) % kChannelsPerSet;
    on_second_train_ = !on_second_train_;
  }
}

void Pager::on_response(const Packet& p, RfChannel ch, SimTime end) {
  if (!active_ || awaiting_ack_) return;
  if (p.type != PacketType::kId || p.access_code != target_) return;
  // Defensive: a response while parked is unreachable (the scanner's
  // occupancy hold wakes the sweep before its response lands), but if one
  // ever slipped through, absorb the park so the frozen sweep stays sane.
  if (vclock_.parked()) absorb_park(dev_.sim().now());
  // Target answered: freeze the sweep and send the FHS 625 us after the
  // response began.
  awaiting_ack_ = true;
  slot_proc_.cancel();
  id2_proc_.cancel();

  contact_ch_ = ch;
  const SimTime resp_start = end - p.duration();
  fhs_proc_.call_at(resp_start + kSlot);
}

void Pager::send_fhs() {
  if (!active_) return;
  Packet fhs;
  fhs.type = PacketType::kFhs;
  fhs.sender = dev_.addr();
  fhs.access_code = target_;
  fhs.clock = dev_.clock().clkn(dev_.sim().now());
  dev_.radio().transmit(&dev_, contact_ch_, fhs);

  // Await the final ID ack on the same channel. Passive: the scanner's
  // committed ack is covered by its own occupancy hold.
  ack_listen_ = dev_.radio().start_listen(
      &dev_, contact_ch_,
      [this](const Packet& q, RfChannel, SimTime e) { on_ack(q, e); },
      ListenKind::kPassive);
  ack_timeout_proc_.call_after(kExchangeTimeout);
}

void Pager::ack_timed_out() {
  // Ack lost: resume the sweep where it left off.
  if (!active_) return;
  dev_.radio().stop_listen(ack_listen_);
  ack_listen_ = kNoListen;
  awaiting_ack_ = false;
  slot_proc_.call_at(dev_.clock().next_even_slot(dev_.sim().now()));
}

void Pager::on_ack(const Packet& p, SimTime end) {
  if (!active_) return;
  if (p.type != PacketType::kId || p.access_code != target_) return;
  const BdAddr t = target_;
  ++stats_.pages_succeeded;
  dev_.sim().obs().tracer.emit(end, obs::TraceKind::kPageOk,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               t.raw());
  cleanup();
  BIPS_TRACE(end, "pager %s: connected to %s",
             dev_.addr().to_string().c_str(), t.to_string().c_str());
  if (on_success_) on_success_(t, end);
}

// ---------------------------------------------------------- PageScanner ---

PageScanner::PageScanner(Device& dev, ScanConfig cfg)
    : dev_(dev),
      cfg_(cfg),
      window_open_proc_(dev.sim(), [this] { open_window(); }),
      window_close_proc_(dev.sim(), [this] { close_window(); }),
      respond_proc_(dev.sim(), [this] { send_response(); }),
      fhs_timeout_proc_(dev.sim(),
                        [this] {
                          // Master vanished (or its FHS collided): back to
                          // normal scanning.
                          end_listen();
                          responding_ = false;
                        }),
      ack_proc_(dev.sim(), [this] { send_ack(); }) {
  BIPS_ASSERT(cfg_.window > Duration(0));
  BIPS_ASSERT(cfg_.interval >= cfg_.window);
}

void PageScanner::start() {
  const Duration phase = Duration::nanos(static_cast<std::int64_t>(
      dev_.rng().uniform(static_cast<std::uint64_t>(cfg_.interval.ns()))));
  start_with_phase(phase);
}

void PageScanner::start_with_phase(Duration phase) {
  BIPS_ASSERT(!running_);
  running_ = true;
  window_index_ = 0;
  responding_ = false;
  window_open_proc_.call_after(phase);
}

void PageScanner::stop() {
  if (!running_) return;
  running_ = false;
  window_open_proc_.cancel();
  window_close_proc_.cancel();
  respond_proc_.cancel();
  fhs_timeout_proc_.cancel();
  ack_proc_.cancel();
  end_listen();
  window_open_ = false;
  responding_ = false;
}

void PageScanner::open_window() {
  if (!running_) return;
  ++stats_.windows_opened;
  ++window_index_;
  window_open_ = true;
  window_close_proc_.call_after(cfg_.window);
  window_open_proc_.call_after(cfg_.interval);
  if (responding_) return;  // mid-exchange; skip this window

  // The page-scan channel is a function of the device's own clock (CLKN
  // 16-12), which is exactly what the pager predicts from the FHS sample.
  const std::uint32_t idx = dev_.clock().scan_phase(dev_.sim().now());
  listen_ = dev_.radio().start_listen(
      &dev_, page_scan_channel(dev_.addr(), idx),
      [this](const Packet& p, RfChannel ch, SimTime end) {
        on_page_id(p, ch, end);
      });
}

void PageScanner::close_window() {
  window_open_ = false;
  if (!responding_) end_listen();
}

void PageScanner::end_listen() {
  dev_.radio().stop_listen(listen_);
  listen_ = kNoListen;
}

void PageScanner::on_page_id(const Packet& p, RfChannel ch, SimTime end) {
  if (p.type != PacketType::kId || p.access_code != dev_.addr()) return;
  ++stats_.pages_heard;
  end_listen();
  responding_ = true;

  contact_ch_ = ch;
  const SimTime id_start = end - p.duration();
  respond_proc_.call_at(id_start + kSlot);
  // The window listen just closed, but the committed 68 us ID response is
  // still in flight: hold the occupancy so a parked pager keeps drumming
  // exactly until it lands.
  dev_.radio().occupancy_hold(ch, dev_.position(),
                              id_start + kSlot + Duration::micros(68));
}

void PageScanner::send_response() {
  if (!running_) return;
  Packet resp;
  resp.type = PacketType::kId;
  resp.sender = dev_.addr();
  resp.access_code = dev_.addr();
  dev_.radio().transmit(&dev_, contact_ch_, resp);

  // Await the master's FHS on the same channel.
  listen_ = dev_.radio().start_listen(
      &dev_, contact_ch_, [this](const Packet& q, RfChannel c, SimTime e) {
        on_fhs(q, c, e);
      });
  fhs_timeout_proc_.call_after(kExchangeTimeout);
}

void PageScanner::on_fhs(const Packet& p, RfChannel ch, SimTime end) {
  if (p.type != PacketType::kFhs || p.access_code != dev_.addr()) return;
  fhs_timeout_proc_.cancel();
  end_listen();

  contact_ch_ = ch;
  pending_master_ = p.sender;
  pending_master_clock_ = p.clock;
  const SimTime fhs_start = end - p.duration();
  ack_proc_.call_at(fhs_start + kSlot);
  // Same as on_page_id: cover the committed ack's flight time.
  dev_.radio().occupancy_hold(ch, dev_.position(),
                              fhs_start + kSlot + Duration::micros(68));
}

void PageScanner::send_ack() {
  if (!running_) return;
  Packet ack;
  ack.type = PacketType::kId;
  ack.sender = dev_.addr();
  ack.access_code = dev_.addr();
  dev_.radio().transmit(&dev_, contact_ch_, ack);
  ++stats_.connections;
  const SimTime when = dev_.sim().now();
  const BdAddr master = pending_master_;
  const std::uint32_t master_clock = pending_master_clock_;
  BIPS_TRACE(when, "scanner %s: connected to master %s",
             dev_.addr().to_string().c_str(), master.to_string().c_str());
  // Entering the connection state ends page scanning; the link layer
  // restarts it after a detach.
  auto cb = on_connected_;
  stop();
  if (cb) cb(master, master_clock, when);
}

}  // namespace bips::baseband
